package learned

import (
	"math"

	"sofos/internal/facet"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// Encoder maps views of one facet to fixed-width feature vectors, per the
// paper's description: "we encode a query into a vector representing the
// relationships, the attributes, and the type of aggregates in the query,
// along with statistics about the relationship frequency and the attribute
// frequency".
type Encoder struct {
	facet      *facet.Facet
	stats      *store.Stats
	dimDomain  []float64 // log(1+estimated value-domain size) per dimension
	predFreqs  []float64 // log(1+count) for each pattern predicate
	logTriples float64
}

// NewEncoder builds an encoder from the facet and graph statistics.
func NewEncoder(f *facet.Facet, stats *store.Stats) *Encoder {
	e := &Encoder{facet: f, stats: stats, logTriples: math.Log1p(float64(stats.Triples))}
	// Relationship frequencies: one per constant predicate in the pattern.
	for _, tp := range f.Pattern.Triples {
		if !tp.P.IsVar {
			e.predFreqs = append(e.predFreqs, math.Log1p(float64(stats.PredicateCount(tp.P.Term.Value))))
		}
	}
	// Dimension domains: a dimension variable usually appears as the object
	// of some pattern; the predicate's distinct-object count estimates the
	// attribute's value-domain size.
	e.dimDomain = make([]float64, len(f.Dims))
	for i, d := range f.Dims {
		e.dimDomain[i] = e.domainEstimate(d)
	}
	return e
}

// domainEstimate finds the distinct-object count of the predicate binding
// the variable, falling back to distinct subjects or the graph size.
func (e *Encoder) domainEstimate(varName string) float64 {
	for _, tp := range e.facet.Pattern.Triples {
		if tp.P.IsVar {
			continue
		}
		if tp.O.IsVar && tp.O.Var == varName {
			for _, ps := range e.stats.Predicates {
				if ps.Predicate.Value == tp.P.Term.Value {
					return math.Log1p(float64(ps.DistinctObjects))
				}
			}
		}
		if tp.S.IsVar && tp.S.Var == varName {
			for _, ps := range e.stats.Predicates {
				if ps.Predicate.Value == tp.P.Term.Value {
					return math.Log1p(float64(ps.DistinctSubjects))
				}
			}
		}
	}
	return math.Log1p(float64(e.stats.Triples))
}

// Dim returns the feature-vector width: per-dimension inclusion bits, the
// level fraction, the estimated log group count, aggregate one-hot, pattern
// size, graph size, and predicate-frequency statistics (mean, min, max).
func (e *Encoder) Dim() int {
	return len(e.facet.Dims) + 1 + 1 + 5 + 1 + 1 + 3
}

// Encode builds the feature vector of a view.
func (e *Encoder) Encode(v facet.View) []float64 {
	nd := len(e.facet.Dims)
	x := make([]float64, 0, e.Dim())
	// Per-dimension inclusion bits (the "attributes" of the query).
	var logGroups float64
	for i := 0; i < nd; i++ {
		if v.Mask&(1<<i) != 0 {
			x = append(x, 1)
			logGroups += e.dimDomain[i]
		} else {
			x = append(x, 0)
		}
	}
	// Level fraction.
	x = append(x, float64(v.Level())/float64(nd))
	// Estimated log group count (sum of log domain sizes = log of product).
	x = append(x, logGroups)
	// Aggregate type one-hot (the "type of aggregates").
	for _, k := range []sparql.AggKind{sparql.AggCount, sparql.AggSum, sparql.AggAvg, sparql.AggMin, sparql.AggMax} {
		if e.facet.Agg == k {
			x = append(x, 1)
		} else {
			x = append(x, 0)
		}
	}
	// Pattern size (the "relationships").
	x = append(x, float64(len(e.facet.Pattern.Triples)))
	// Graph size.
	x = append(x, e.logTriples)
	// Relationship frequency statistics.
	mean, minV, maxV := freqStats(e.predFreqs)
	x = append(x, mean, minV, maxV)
	return x
}

// freqStats summarizes the predicate log-frequencies.
func freqStats(fs []float64) (mean, minV, maxV float64) {
	if len(fs) == 0 {
		return 0, 0, 0
	}
	minV, maxV = fs[0], fs[0]
	for _, f := range fs {
		mean += f
		if f < minV {
			minV = f
		}
		if f > maxV {
			maxV = f
		}
	}
	return mean / float64(len(fs)), minV, maxV
}
