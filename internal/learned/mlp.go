// Package learned implements the learned cost model of §3.1: a small
// feed-forward regression network trained on (query encoding, running time)
// pairs, following the protocol of Ortiz et al. adapted by SOFOS. The
// encoding captures the relationships, attributes, and aggregate type of the
// view's defining query together with relationship/attribute frequency
// statistics from the graph.
package learned

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one training example: a feature vector and the target value
// (log-transformed running time).
type Sample struct {
	X []float64
	Y float64
}

// MLP is a fully connected feed-forward network with ReLU hidden activations
// and a linear output, trained by SGD with momentum on mean squared error.
type MLP struct {
	sizes   []int // layer widths, input first, 1 last
	weights [][]float64
	biases  [][]float64
	velW    [][]float64
	velB    [][]float64
}

// NewMLP builds a network with the given input width and hidden layer
// widths; the output layer is always width 1. Weights are initialized with
// the seeded He scheme so training is reproducible.
func NewMLP(inputDim int, hidden []int, seed int64) (*MLP, error) {
	if inputDim <= 0 {
		return nil, fmt.Errorf("learned: input dimension %d must be positive", inputDim)
	}
	sizes := append([]int{inputDim}, hidden...)
	sizes = append(sizes, 1)
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: sizes}
	for l := 1; l < len(sizes); l++ {
		in, out := sizes[l-1], sizes[l]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
		m.velW = append(m.velW, make([]float64, in*out))
		m.velB = append(m.velB, make([]float64, out))
	}
	return m, nil
}

// InputDim returns the expected feature-vector length.
func (m *MLP) InputDim() int { return m.sizes[0] }

// forward computes activations for every layer; acts[0] is the input.
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.sizes))
	acts[0] = x
	for l := 1; l < len(m.sizes); l++ {
		in, out := m.sizes[l-1], m.sizes[l]
		a := make([]float64, out)
		w, b := m.weights[l-1], m.biases[l-1]
		prev := acts[l-1]
		for j := 0; j < out; j++ {
			sum := b[j]
			for i := 0; i < in; i++ {
				sum += w[j*in+i] * prev[i]
			}
			if l < len(m.sizes)-1 && sum < 0 {
				sum = 0 // ReLU on hidden layers
			}
			a[j] = sum
		}
		acts[l] = a
	}
	return acts
}

// Predict evaluates the network on one input.
func (m *MLP) Predict(x []float64) (float64, error) {
	if len(x) != m.sizes[0] {
		return 0, fmt.Errorf("learned: input has %d features, model expects %d", len(x), m.sizes[0])
	}
	acts := m.forward(x)
	return acts[len(acts)-1][0], nil
}

// TrainConfig controls SGD.
type TrainConfig struct {
	Epochs   int
	LR       float64
	Momentum float64
	Seed     int64 // shuffling seed
}

// DefaultTrainConfig is tuned for the small view-cost datasets SOFOS trains
// on (tens to hundreds of samples).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 400, LR: 0.01, Momentum: 0.9, Seed: 1}
}

// Train runs SGD over the samples and returns the per-epoch mean squared
// error curve.
func (m *MLP) Train(samples []Sample, cfg TrainConfig) ([]float64, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("learned: no training samples")
	}
	for i, s := range samples {
		if len(s.X) != m.sizes[0] {
			return nil, fmt.Errorf("learned: sample %d has %d features, model expects %d", i, len(s.X), m.sizes[0])
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	curve := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sse float64
		for _, idx := range order {
			s := samples[idx]
			sse += m.step(s, cfg.LR, cfg.Momentum)
		}
		curve = append(curve, sse/float64(len(samples)))
	}
	return curve, nil
}

// step performs one SGD update and returns the squared error before the
// update.
func (m *MLP) step(s Sample, lr, momentum float64) float64 {
	acts := m.forward(s.X)
	out := acts[len(acts)-1][0]
	errv := out - s.Y

	// Backpropagate deltas layer by layer.
	deltas := make([][]float64, len(m.sizes))
	deltas[len(m.sizes)-1] = []float64{errv}
	for l := len(m.sizes) - 2; l >= 1; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		d := make([]float64, in)
		next := deltas[l+1]
		for i := 0; i < in; i++ {
			if acts[l][i] <= 0 {
				continue // ReLU gradient
			}
			var sum float64
			for j := 0; j < out; j++ {
				sum += w[j*in+i] * next[j]
			}
			d[i] = sum
		}
		deltas[l] = d
	}
	// Gradient update with momentum.
	for l := 1; l < len(m.sizes); l++ {
		in, out := m.sizes[l-1], m.sizes[l]
		w, b := m.weights[l-1], m.biases[l-1]
		vw, vb := m.velW[l-1], m.velB[l-1]
		prev, d := acts[l-1], deltas[l]
		for j := 0; j < out; j++ {
			for i := 0; i < in; i++ {
				g := d[j] * prev[i]
				vw[j*in+i] = momentum*vw[j*in+i] - lr*g
				w[j*in+i] += vw[j*in+i]
			}
			vb[j] = momentum*vb[j] - lr*d[j]
			b[j] += vb[j]
		}
	}
	return errv * errv
}

// Normalizer standardizes features to zero mean and unit variance, fitted on
// the training set. Predict-time inputs reuse the fitted statistics.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer computes per-feature statistics.
func FitNormalizer(samples []Sample) *Normalizer {
	if len(samples) == 0 {
		return &Normalizer{}
	}
	dim := len(samples[0].X)
	n := &Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, s := range samples {
		for i, x := range s.X {
			n.Mean[i] += x
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(samples))
	}
	for _, s := range samples {
		for i, x := range s.X {
			d := x - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(len(samples)))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply standardizes one vector (copying).
func (n *Normalizer) Apply(x []float64) []float64 {
	if len(n.Mean) == 0 {
		return x
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = (x[i] - n.Mean[i]) / n.Std[i]
	}
	return out
}

// ApplyAll standardizes a sample set in place.
func (n *Normalizer) ApplyAll(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = Sample{X: n.Apply(s.X), Y: s.Y}
	}
	return out
}

// LogMicros transforms a duration in microseconds into the regression
// target space; Train targets log(1+µs) so the loss is scale-free.
func LogMicros(micros float64) float64 { return math.Log1p(micros) }

// UnlogMicros inverts LogMicros.
func UnlogMicros(y float64) float64 { return math.Expm1(y) }
