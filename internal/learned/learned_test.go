package learned

import (
	"math"
	"math/rand"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(0, []int{4}, 1); err == nil {
		t.Error("zero input dim accepted")
	}
	m, err := NewMLP(3, []int{8, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 3 {
		t.Errorf("InputDim = %d", m.InputDim())
	}
}

func TestMLPPredictValidatesWidth(t *testing.T) {
	m, _ := NewMLP(2, []int{4}, 1)
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := m.Predict([]float64{1, 2}); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a, _ := NewMLP(4, []int{8}, 7)
	b, _ := NewMLP(4, []int{8}, 7)
	x := []float64{0.5, -1, 2, 0.1}
	pa, _ := a.Predict(x)
	pb, _ := b.Predict(x)
	if pa != pb {
		t.Errorf("same seed diverges: %v vs %v", pa, pb)
	}
	c, _ := NewMLP(4, []int{8}, 8)
	pc, _ := c.Predict(x)
	if pa == pc {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestMLPTrainValidation(t *testing.T) {
	m, _ := NewMLP(2, []int{4}, 1)
	if _, err := m.Train(nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := m.Train([]Sample{{X: []float64{1}, Y: 0}}, DefaultTrainConfig()); err == nil {
		t.Error("mis-sized sample accepted")
	}
}

// TestMLPLearnsLinearFunction: the network must fit y = 2a - 3b + 1.
func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 200; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		samples = append(samples, Sample{X: []float64{a, b}, Y: 2*a - 3*b + 1})
	}
	m, _ := NewMLP(2, []int{16, 8}, 3)
	curve, err := m.Train(samples, TrainConfig{Epochs: 300, LR: 0.01, Momentum: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if curve[len(curve)-1] > curve[0]/10 {
		t.Errorf("loss did not drop 10x: %v -> %v", curve[0], curve[len(curve)-1])
	}
	// Holdout accuracy.
	var sse float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		want := 2*a - 3*b + 1
		got, _ := m.Predict([]float64{a, b})
		sse += (got - want) * (got - want)
	}
	if rmse := math.Sqrt(sse / 50); rmse > 0.3 {
		t.Errorf("holdout RMSE = %v", rmse)
	}
}

// TestMLPLearnsNonlinear: |a| requires the hidden layer.
func TestMLPLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 300; i++ {
		a := rng.Float64()*4 - 2
		samples = append(samples, Sample{X: []float64{a}, Y: math.Abs(a)})
	}
	m, _ := NewMLP(1, []int{16, 8}, 2)
	curve, err := m.Train(samples, TrainConfig{Epochs: 400, LR: 0.01, Momentum: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if curve[len(curve)-1] > 0.05 {
		t.Errorf("final loss = %v", curve[len(curve)-1])
	}
}

func TestNormalizer(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 100}, Y: 0},
		{X: []float64{3, 300}, Y: 0},
	}
	n := FitNormalizer(samples)
	norm := n.ApplyAll(samples)
	for col := 0; col < 2; col++ {
		sum := norm[0].X[col] + norm[1].X[col]
		if math.Abs(sum) > 1e-9 {
			t.Errorf("col %d not centered: %v", col, sum)
		}
	}
	// Constant columns get unit std to avoid division by zero.
	cSamples := []Sample{{X: []float64{5}, Y: 0}, {X: []float64{5}, Y: 0}}
	cn := FitNormalizer(cSamples)
	if cn.Std[0] != 1 {
		t.Errorf("constant column std = %v", cn.Std[0])
	}
	// Empty normalizer passes through.
	e := FitNormalizer(nil)
	x := []float64{1, 2}
	got := e.Apply(x)
	if &got[0] != &x[0] && (got[0] != 1 || got[1] != 2) {
		t.Error("empty normalizer mangled input")
	}
}

func TestLogMicrosRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 1000, 1e6} {
		if got := UnlogMicros(LogMicros(v)); math.Abs(got-v) > v*1e-9+1e-9 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

// encFixture builds a small graph + facet for encoder tests.
func encFixture(t *testing.T) (*facet.Facet, *store.Stats) {
	t.Helper()
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for i := 0; i < 20; i++ {
		obs := ex("o" + string(rune('a'+i%5)) + string(rune('0'+i%3)))
		g.MustAdd(rdf.Triple{S: obs, P: ex("d1"), O: rdf.NewLiteral(string(rune('A' + i%5)))})
		g.MustAdd(rdf.Triple{S: obs, P: ex("d2"), O: rdf.NewInteger(int64(i % 3))})
		g.MustAdd(rdf.Triple{S: obs, P: ex("val"), O: rdf.NewInteger(int64(i))})
	}
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?a ?b (SUM(?v) AS ?s) WHERE { ?o ex:d1 ?a . ?o ex:d2 ?b . ?o ex:val ?v . } GROUP BY ?a ?b`)
	f, err := facet.FromQuery("enc", q)
	if err != nil {
		t.Fatal(err)
	}
	return f, g.Snapshot()
}

func TestEncoderShape(t *testing.T) {
	f, stats := encFixture(t)
	e := NewEncoder(f, stats)
	for _, mask := range []facet.Mask{0, 1, 2, 3} {
		x := e.Encode(f.View(mask))
		if len(x) != e.Dim() {
			t.Fatalf("mask %b: %d features, want %d", mask, len(x), e.Dim())
		}
	}
}

func TestEncoderDistinguishesViews(t *testing.T) {
	f, stats := encFixture(t)
	e := NewEncoder(f, stats)
	a := e.Encode(f.View(1))
	b := e.Encode(f.View(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different views encode identically")
	}
}

func TestEncoderMonotoneGroupEstimate(t *testing.T) {
	f, stats := encFixture(t)
	e := NewEncoder(f, stats)
	nd := len(f.Dims)
	// The estimated log group count feature (index nd+1) grows with mask.
	apex := e.Encode(f.View(0))[nd+1]
	one := e.Encode(f.View(1))[nd+1]
	full := e.Encode(f.View(3))[nd+1]
	if !(apex <= one && one <= full) {
		t.Errorf("group estimate not monotone: %v %v %v", apex, one, full)
	}
	if apex != 0 {
		t.Errorf("apex group estimate = %v, want 0", apex)
	}
}

func TestEncoderAggOneHot(t *testing.T) {
	f, stats := encFixture(t)
	e := NewEncoder(f, stats)
	x := e.Encode(f.View(1))
	nd := len(f.Dims)
	oneHot := x[nd+2 : nd+7]
	sum := 0.0
	for _, v := range oneHot {
		sum += v
	}
	if sum != 1 || oneHot[1] != 1 { // SUM is position 1
		t.Errorf("agg one-hot = %v", oneHot)
	}
}
