package engine

import (
	"sync"

	"sofos/internal/obs"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// Parallel query execution.
//
// The store's lock-free snapshot Iterators make data-parallel scans safe with
// zero coordination: every partition shares the immutable sorted runs and
// owns a disjoint slice of the delta overlay. The engine exploits that in
// three places — splitting the leading pattern's index range into per-worker
// sub-ranges (store.Iterator.Split), chunking wide intermediate row sets
// across workers, and merging per-partition aggregation states. Partitions
// are always contiguous in the serial iteration order and merged in partition
// order, so parallel output is identical to serial execution.

const (
	// parallelMinScan is the smallest leading-range size worth splitting
	// across workers; below it, per-goroutine startup dominates and the
	// engine falls back to serial execution.
	parallelMinScan = 1024

	// parallelMinRowsPerWorker is the smallest per-worker chunk of
	// intermediate rows worth fanning the remaining pipeline out over.
	parallelMinRowsPerWorker = 128

	// aggMinRowsPerWorker is the smallest per-worker row count worth a
	// parallel grouping pass; grouping is cheap per row, so the bar is
	// higher than for joins.
	aggMinRowsPerWorker = 512
)

// runPartitioned executes part(i) for n partitions concurrently, each on its
// own goroutine with a private execCtx, then concatenates partition outputs
// in partition order and folds the work counters. A non-zero cap truncates
// the concatenation (LIMIT pushdown): the first cap rows of the concatenation
// are exactly the first cap rows serial execution would produce.
func (e *Engine) runPartitioned(n int, p *Plan, stats *ExecStats, cap int,
	part func(i int, ctx *execCtx) ([]binding, error)) ([]binding, error) {
	outs := make([][]binding, n)
	errs := make([]error, n)
	ctxs := make([]execCtx, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctxs[i].arena.width = len(p.vars)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := p.span.Child("engine.partition")
			sp.AttrInt("worker", int64(i))
			outs[i], errs[i] = part(i, &ctxs[i])
			sp.AttrInt("rows_out", int64(len(outs[i])))
			sp.End()
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		stats.fold(&ctxs[i].stats)
		total += len(outs[i])
	}
	stats.Partitions += n
	rows := make([]binding, 0, total)
	for _, out := range outs {
		rows = append(rows, out...)
		if cap > 0 && len(rows) >= cap {
			rows = rows[:cap]
			break
		}
	}
	return rows, nil
}

// runRowChunks partitions an intermediate row set into contiguous chunks and
// runs the remaining branch pipeline per chunk.
func (e *Engine) runRowChunks(rows []binding, p *Plan, br *branchPlan, steps []step, cap int, stats *ExecStats, workers int) ([]binding, error) {
	n := workers
	if len(rows) < n {
		n = len(rows)
	}
	return e.runPartitioned(n, p, stats, cap, func(i int, ctx *execCtx) ([]binding, error) {
		lo, hi := i*len(rows)/n, (i+1)*len(rows)/n
		return e.runTail(rows[lo:hi], p, br, steps, cap, ctx)
	})
}

// runSplitScan splits the leading pattern's already-opened range scan into
// per-worker sub-ranges and runs the downstream join/filter pipeline per
// partition.
func (e *Engine) runSplitScan(it store.Iterator, row binding, p *Plan, br *branchPlan, steps []step, cap int, stats *ExecStats, workers int) ([]binding, error) {
	parts := it.Split(workers)
	return e.runPartitioned(len(parts), p, stats, cap, func(i int, ctx *execCtx) ([]binding, error) {
		rows := e.runLeadingPartition(parts[i], row, p, steps[0], len(steps) == 1, cap, ctx)
		return e.runTail(rows, p, br, steps[1:], cap, ctx)
	})
}

// runLeadingPartition applies the branch's first step over one sub-range of
// its scan, with the same filter/clone/cap behaviour as runSteps for a
// single row. last marks steps[0] as the branch's only step, the one place a
// LIMIT cap may stop the scan early (see rowCap).
func (e *Engine) runLeadingPartition(part store.Iterator, row binding, p *Plan, st step, last bool, cap int, ctx *execCtx) []binding {
	scratch := make(binding, len(p.vars))
	var out []binding
	yieldMatches(&part, row, scratch, st.pat, func(extended binding) bool {
		if len(st.filters) == 0 || e.filtersPass(extended, p, st.filters) {
			out = append(out, ctx.arena.clone(extended))
			ctx.stats.IntermediateRows++
		}
		return !(cap > 0 && last && len(out) >= cap)
	})
	return out
}

// aggregateRows builds the grouping state for finishAggregate, in parallel
// when the row set is wide enough: contiguous row chunks are grouped
// concurrently, then the partial states fold left-to-right so group order and
// accumulator inputs match a serial pass. A parallel pass counts toward
// stats.Partitions like the join-phase fan-outs.
func (e *Engine) aggregateRows(rows []binding, groupSlots, aggSlots []int, aggItems []sparql.SelectItem, stats *ExecStats, span obs.SpanHandle) *aggState {
	workers := stats.Workers
	if workers <= 1 || len(rows) < workers*aggMinRowsPerWorker {
		return e.buildAggState(rows, groupSlots, aggSlots, aggItems)
	}
	stats.Partitions += workers
	sp := span.Child("engine.aggregate_merge")
	sp.AttrInt("rows", int64(len(rows)))
	sp.AttrInt("partitions", int64(workers))
	defer sp.End()
	parts := make([]*aggState, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*len(rows)/workers, (i+1)*len(rows)/workers
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			parts[i] = e.buildAggState(rows[lo:hi], groupSlots, aggSlots, aggItems)
		}(i, lo, hi)
	}
	wg.Wait()
	state := parts[0]
	for _, src := range parts[1:] {
		foldAggStates(state, src)
	}
	return state
}
