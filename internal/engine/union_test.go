package engine

import (
	"reflect"
	"strings"
	"testing"

	"sofos/internal/sparql"
)

func TestUnionBasic(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE {
  { ?c ex:language "German" . }
  UNION
  { ?c ex:language "Italian" . }
}`)
	got := res.Sorted()
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if !strings.Contains(got[0], "germany") || !strings.Contains(got[1], "italy") {
		t.Errorf("rows = %v", got)
	}
}

func TestUnionBagSemantics(t *testing.T) {
	g := figure1Graph(t)
	// Overlapping branches produce duplicate rows (bag union), removable
	// with DISTINCT.
	src := `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE {
  { ?c ex:language "French" . }
  UNION
  { ?c ex:name "France" . }
}`
	res := exec(t, g, src)
	if len(res.Rows) != 3 { // france (x2: both branches), canada
		t.Errorf("bag union rows = %v", res.Sorted())
	}
	res = exec(t, g, strings.Replace(src, "SELECT ?c", "SELECT DISTINCT ?c", 1))
	if len(res.Rows) != 2 {
		t.Errorf("distinct union rows = %v", res.Sorted())
	}
}

func TestUnionDisjointVariables(t *testing.T) {
	g := figure1Graph(t)
	// Variables bound in only one branch are unbound in the other's rows.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?pop ?u WHERE {
  { ex:france ex:population ?pop . }
  UNION
  { ex:france ex:partOf ?u . }
}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	bound := 0
	for _, row := range res.Rows {
		if row[0].Bound != row[1].Bound {
			bound++
		} else {
			t.Errorf("expected exactly one bound column per row: %v", row)
		}
	}
	if bound != 2 {
		t.Errorf("disjoint binding pattern wrong: %v", res.Sorted())
	}
}

func TestUnionWithAggregation(t *testing.T) {
	g := figure1Graph(t)
	// Total population of German- or Italian-speaking countries.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (SUM(?pop) AS ?total) WHERE {
  { ?c ex:language "German" . ?c ex:population ?pop . }
  UNION
  { ?c ex:language "Italian" . ?c ex:population ?pop . }
}`)
	if res.Rows[0][0].Term.Value != "142000000" {
		t.Errorf("union SUM = %s", res.Rows[0][0])
	}
}

func TestUnionWithFiltersInBranches(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  { ?c ex:name ?name . ?c ex:population ?pop . FILTER (?pop > 80000000) }
  UNION
  { ?c ex:name ?name . ?c ex:population ?pop . FILTER (?pop < 40000000) }
}`)
	got := res.Sorted()
	want := []string{`"Canada"`, `"Germany"`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestUnionWithOptionalInBranch(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?u WHERE {
  { ?c ex:language "French" . ?c ex:name ?name . OPTIONAL { ?c ex:partOf ?u . } }
  UNION
  { ?c ex:language "German" . ?c ex:name ?name . }
}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Sorted())
	}
}

func TestUnionEmptyBranch(t *testing.T) {
	g := figure1Graph(t)
	// One branch mentions a term absent from the graph: only the other
	// contributes.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE {
  { ?c ex:language "Klingon" . }
  UNION
  { ?c ex:language "German" . }
}`)
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Sorted())
	}
	// Both branches empty.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE {
  { ?c ex:language "Klingon" . }
  UNION
  { ?c ex:language "Vulcan" . }
}`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestUnionParseErrors(t *testing.T) {
	cases := []string{
		// Union mixed with triples at the same level.
		`SELECT ?c WHERE { ?c <http://p> ?o . { ?c <http://q> ?x . } UNION { ?c <http://r> ?y . } }`,
		// Single-branch "union".
		`SELECT ?c WHERE { { ?c <http://p> ?o . } }`,
		// Nested union.
		`SELECT ?c WHERE { { { ?c <http://a> ?o . } UNION { ?c <http://b> ?o . } } UNION { ?c <http://q> ?o . } }`,
		// Union inside OPTIONAL.
		`SELECT ?c WHERE { ?c <http://p> ?o . OPTIONAL { { ?c <http://a> ?x . } UNION { ?c <http://b> ?x . } } }`,
		// UNION not followed by a brace.
		`SELECT ?c WHERE { { ?c <http://a> ?o . } UNION ?c <http://b> ?o . }`,
	}
	for _, src := range cases {
		if _, err := sparql.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestUnionStringRoundTrip(t *testing.T) {
	src := `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE {
  { ?c ex:language "German" . }
  UNION
  { ?c ex:language "Italian" . FILTER (?c != ex:vatican) }
}`
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := q.String()
	q2, err := sparql.Parse(text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if q2.String() != text {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", text, q2.String())
	}
}

func TestUnionExplain(t *testing.T) {
	g := figure1Graph(t)
	q := mustQuery(t, `PREFIX ex: <http://ex.org/>
SELECT ?c WHERE { { ?c ex:language "German" . } UNION { ?c ex:language "Italian" . } }`)
	plan, err := New(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	text := plan.String()
	if !strings.Contains(text, "union branch 1") || !strings.Contains(text, "union branch 2") {
		t.Errorf("plan:\n%s", text)
	}
}

func TestUnionOrderLimit(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE {
  { ?c ex:language "French" . ?c ex:name ?name . ?c ex:population ?pop . }
  UNION
  { ?c ex:language "German" . ?c ex:name ?name . ?c ex:population ?pop . }
} ORDER BY DESC(?pop) LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	if res.Rows[0][0].Term.Value != "Germany" || res.Rows[1][0].Term.Value != "France" {
		t.Errorf("order = %v", res.Sorted())
	}
}
