package engine

import (
	"fmt"
	"sort"
	"strings"

	"sofos/internal/obs"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// compiledTerm is one component of a compiled triple pattern: either a
// constant (resolved to a dictionary ID) or a variable slot.
type compiledTerm struct {
	isVar bool
	slot  int    // variable slot index when isVar
	id    rdf.ID // dictionary ID when constant; NoID means the constant does
	// not occur in the graph at all, so the pattern cannot match.
	missing bool // constant absent from the dictionary
}

// compiledPattern is a triple pattern with resolved constants.
type compiledPattern struct {
	s, p, o compiledTerm
	src     sparql.TriplePattern // original pattern, for Explain
	est     int                  // base cardinality estimate (constants only)
}

// step is one element of the physical plan: a pattern scan plus the filters
// that become fully bound right after it.
type step struct {
	pat     compiledPattern
	filters []sparql.Expr
}

// Plan is a compiled query: the ordered required steps, compiled optionals,
// and leftover filters evaluated at the end (e.g. filters over optional
// variables).
type Plan struct {
	vars   []string // slot -> variable name
	slots  map[string]int
	main   branchPlan   // the conjunctive plan for non-UNION queries
	unions []branchPlan // set for UNION queries; main unused
	query  *sparql.Query
	span   obs.SpanHandle // parent span for partition traces (zero = off)
	empty  bool           // a constant is missing from the graph: zero results
}

// optionalPlan is a compiled OPTIONAL block.
type optionalPlan struct {
	steps      []step
	lateFilter []sparql.Expr
	// ownSlots are slots first bound inside the optional (reset to unbound
	// when the block does not match).
	ownSlots []int
}

// Vars returns the variable names by slot order.
func (p *Plan) Vars() []string { return p.vars }

// String renders the plan for EXPLAIN-style inspection.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("plan:\n")
	if p.empty {
		b.WriteString("  <empty: constant term missing from graph>\n")
		return b.String()
	}
	for i, st := range p.main.steps {
		fmt.Fprintf(&b, "  %2d. scan %s (est %d)\n", i+1, st.pat.src.String(), st.pat.est)
		for _, f := range st.filters {
			fmt.Fprintf(&b, "      filter %s\n", f.String())
		}
	}
	for _, opt := range p.main.optionals {
		b.WriteString("  optional:\n")
		for _, st := range opt.steps {
			fmt.Fprintf(&b, "    scan %s (est %d)\n", st.pat.src.String(), st.pat.est)
		}
	}
	for _, f := range p.main.lateFilter {
		fmt.Fprintf(&b, "  late filter %s\n", f.String())
	}
	for i, br := range p.unions {
		fmt.Fprintf(&b, "  union branch %d:\n", i+1)
		for _, st := range br.steps {
			fmt.Fprintf(&b, "    scan %s (est %d)\n", st.pat.src.String(), st.pat.est)
		}
	}
	return b.String()
}

// branchPlan is one compiled conjunctive group (the required BGP with its
// filters and optionals). A plain query has exactly one; a UNION query has
// one per alternation branch.
type branchPlan struct {
	steps      []step
	optionals  []optionalPlan
	lateFilter []sparql.Expr
	inline     []inlineBinding // VALUES clauses, applied as initial bindings
	empty      bool
}

// inlineBinding is a compiled VALUES clause: the variable slot and the
// dictionary IDs of its allowed terms. Terms absent from the graph are
// dropped at compile time — they can never join with a triple pattern, and
// the validator guarantees every VALUES variable occurs in one.
type inlineBinding struct {
	slot int
	ids  []rdf.ID
}

// compiler carries shared state while building a plan.
type compiler struct {
	g    *store.Graph
	p    *Plan
	opts Options
}

// slot interns a variable name to a slot index on the plan.
func (c *compiler) slot(name string) int {
	if s, ok := c.p.slots[name]; ok {
		return s
	}
	s := len(c.p.vars)
	c.p.slots[name] = s
	c.p.vars = append(c.p.vars, name)
	return s
}

// compileOne resolves one triple pattern against the graph dictionary. The
// base cardinality estimate is exact: the store reads it off the matching
// permutation range's length, so greedy ordering never guesses.
func (c *compiler) compileOne(tp sparql.TriplePattern) compiledPattern {
	cp := compiledPattern{src: tp}
	comp := func(pt sparql.PatternTerm) compiledTerm {
		if pt.IsVar {
			return compiledTerm{isVar: true, slot: c.slot(pt.Var)}
		}
		id, ok := c.g.Dict().Lookup(pt.Term)
		if !ok {
			return compiledTerm{missing: true}
		}
		return compiledTerm{id: id}
	}
	cp.s, cp.p, cp.o = comp(tp.S), comp(tp.P), comp(tp.O)
	if cp.s.missing || cp.p.missing || cp.o.missing {
		cp.est = 0
	} else {
		cp.est = c.g.Estimate(constID(cp.s), constID(cp.p), constID(cp.o))
	}
	return cp
}

// compileGroup compiles one conjunctive group into a branch plan.
func (c *compiler) compileGroup(gp *sparql.GroupPattern) branchPlan {
	var br branchPlan
	boundSlots := make(map[int]bool)
	// VALUES clauses bind their variables before any scan.
	for _, d := range gp.Values {
		ib := inlineBinding{slot: c.slot(d.Var)}
		for _, t := range d.Terms {
			if id, ok := c.g.Dict().Lookup(t); ok {
				ib.ids = append(ib.ids, id)
			}
		}
		if len(ib.ids) == 0 {
			br.empty = true // no listed term exists in the graph
		}
		br.inline = append(br.inline, ib)
		boundSlots[ib.slot] = true
	}

	required := make([]compiledPattern, 0, len(gp.Triples))
	for _, tp := range gp.Triples {
		cp := c.compileOne(tp)
		if (cp.s.missing || cp.p.missing || cp.o.missing) || cp.est == 0 && allConst(cp) {
			br.empty = true
		}
		required = append(required, cp)
	}

	ordered := required
	if !c.opts.NaiveOrder {
		ordered = orderPatterns(required, boundSlots)
	}
	pendingFilters := append([]sparql.Expr(nil), gp.Filters...)
	for _, cp := range ordered {
		st := step{pat: cp}
		markBound(cp, boundSlots)
		st.filters, pendingFilters = takeApplicable(pendingFilters, c.p.slots, boundSlots)
		br.steps = append(br.steps, st)
	}
	// With an empty BGP (allowed: pure-filter queries are rejected by the
	// validator, so this only happens with optionals), filters wait.

	for i := range gp.Optionals {
		opt := &gp.Optionals[i]
		before := make(map[int]bool, len(boundSlots))
		for k := range boundSlots {
			before[k] = true
		}
		var op optionalPlan
		var optPatterns []compiledPattern
		for _, tp := range opt.Triples {
			optPatterns = append(optPatterns, c.compileOne(tp))
		}
		optBound := boundSlots
		optPending := append([]sparql.Expr(nil), opt.Filters...)
		if !c.opts.NaiveOrder {
			optPatterns = orderPatterns(optPatterns, boundSlots)
		}
		for _, cp := range optPatterns {
			st := step{pat: cp}
			markBound(cp, optBound)
			st.filters, optPending = takeApplicable(optPending, c.p.slots, optBound)
			op.steps = append(op.steps, st)
		}
		op.lateFilter = optPending
		for s := range optBound {
			if !before[s] {
				op.ownSlots = append(op.ownSlots, s)
			}
		}
		sort.Ints(op.ownSlots)
		br.optionals = append(br.optionals, op)
	}
	br.lateFilter = pendingFilters
	return br
}

// compile builds a Plan for q over g.
func compile(g *store.Graph, q *sparql.Query, opts Options) (*Plan, error) {
	p := &Plan{slots: make(map[string]int), query: q}
	c := &compiler{g: g, p: p, opts: opts}
	// Register variables in first-appearance order (required part first).
	for _, v := range q.Where.Vars() {
		c.slot(v)
	}
	if q.Where.IsUnion() {
		for i := range q.Where.Unions {
			p.unions = append(p.unions, c.compileGroup(&q.Where.Unions[i]))
		}
		// A union is empty only if every branch is.
		p.empty = true
		for _, br := range p.unions {
			if !br.empty {
				p.empty = false
			}
		}
		return p, nil
	}
	br := c.compileGroup(&q.Where)
	p.main = br
	p.empty = br.empty
	return p, nil
}

// constID returns the ID of a constant component or NoID for variables
// (wildcard in estimation).
func constID(ct compiledTerm) rdf.ID {
	if ct.isVar {
		return rdf.NoID
	}
	return ct.id
}

// allConst reports whether the pattern has no variables.
func allConst(cp compiledPattern) bool {
	return !cp.s.isVar && !cp.p.isVar && !cp.o.isVar
}

// markBound records the pattern's variable slots as bound.
func markBound(cp compiledPattern, bound map[int]bool) {
	for _, ct := range []compiledTerm{cp.s, cp.p, cp.o} {
		if ct.isVar {
			bound[ct.slot] = true
		}
	}
}

// takeApplicable splits filters into those whose variables are all bound
// (returned first) and the rest.
func takeApplicable(filters []sparql.Expr, slots map[string]int, bound map[int]bool) (ready, pending []sparql.Expr) {
	for _, f := range filters {
		ok := true
		for _, v := range sparql.ExprVars(f) {
			s, known := slots[v]
			if !known || !bound[s] {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, f)
		} else {
			pending = append(pending, f)
		}
	}
	return ready, pending
}

// orderPatterns produces a greedy join order: repeatedly pick the remaining
// pattern with the lowest effective cost, strongly preferring patterns that
// share an already-bound variable (index nested-loop joins) over Cartesian
// products. seedBound marks slots bound before the first scan (VALUES).
func orderPatterns(pats []compiledPattern, seedBound map[int]bool) []compiledPattern {
	if len(pats) <= 1 {
		return pats
	}
	remaining := append([]compiledPattern(nil), pats...)
	bound := make(map[int]bool, len(seedBound))
	for k := range seedBound {
		bound[k] = true
	}
	var out []compiledPattern
	for len(remaining) > 0 {
		bestIdx, bestScore := -1, 0.0
		for i, cp := range remaining {
			score := patternScore(cp, bound)
			if bestIdx == -1 || score < bestScore {
				bestIdx, bestScore = i, score
			}
		}
		chosen := remaining[bestIdx]
		out = append(out, chosen)
		markBound(chosen, bound)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

// patternScore estimates the cost of scanning a pattern given currently
// bound variables. Bound variables act as constants at execution time, so
// each one sharply reduces the expected matches; an unconnected pattern is
// a Cartesian product and is penalized.
func patternScore(cp compiledPattern, bound map[int]bool) float64 {
	est := float64(cp.est)
	nvars, nbound := 0, 0
	for _, ct := range []compiledTerm{cp.s, cp.p, cp.o} {
		if ct.isVar {
			nvars++
			if bound[ct.slot] {
				nbound++
			}
		}
	}
	if nvars == 0 {
		return 0.5 // fully constant: existence check, nearly free
	}
	if nbound > 0 {
		// Each bound variable behaves like an added constant selector.
		return est / (1 + 50*float64(nbound))
	}
	if len(bound) > 0 {
		// Disconnected from current bindings: Cartesian product penalty.
		return est * 1000
	}
	return est
}
