package engine

import (
	"reflect"
	"strings"
	"testing"

	"sofos/internal/sparql"
)

func TestValuesBasic(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  VALUES ?name { "France" "Italy" }
}`)
	got := res.Sorted()
	if len(got) != 2 || !strings.Contains(got[0], "France") || !strings.Contains(got[1], "Italy") {
		t.Errorf("rows = %v", got)
	}
}

func TestValuesEquivalentToFilterDisjunction(t *testing.T) {
	g := figure1Graph(t)
	withValues := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name . ?c ex:language ?lang .
  VALUES ?lang { "French" "German" }
}`)
	withFilter := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name . ?c ex:language ?lang .
  FILTER (?lang = "French" || ?lang = "German")
}`)
	if !reflect.DeepEqual(withValues.Sorted(), withFilter.Sorted()) {
		t.Errorf("VALUES %v != FILTER %v", withValues.Sorted(), withFilter.Sorted())
	}
}

func TestValuesUnknownTermsYieldNothing(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?c ex:name ?name . VALUES ?name { "Atlantis" } }`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Sorted())
	}
	// Mixed known/unknown keeps the known.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?c ex:name ?name . VALUES ?name { "Atlantis" "Canada" } }`)
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestValuesWithAggregation(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (SUM(?pop) AS ?total) WHERE {
  ?c ex:population ?pop . ?c ex:language ?lang .
  VALUES ?lang { "French" }
}`)
	if res.Rows[0][0].Term.Value != "104000000" {
		t.Errorf("SUM = %s", res.Rows[0][0])
	}
}

func TestValuesWithIRIsAndNumbers(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?p WHERE { ?c ex:population ?p . VALUES ?p { 67000000 60000000 } } ORDER BY ?p`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?u WHERE { ?c ex:partOf ?u . VALUES ?c { ex:france ex:canada } }`)
	if len(res.Rows) != 1 { // only france is partOf something
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestValuesMultipleClauses(t *testing.T) {
	g := figure1Graph(t)
	// Two VALUES clauses form a cross product, constrained by the pattern.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?lang WHERE {
  ?c ex:name ?name . ?c ex:language ?lang .
  VALUES ?name { "France" "Canada" }
  VALUES ?lang { "French" "English" }
} ORDER BY ?name ?lang`)
	// France/French, Canada/French, Canada/English.
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestValuesInUnionBranches(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  { ?c ex:name ?name . VALUES ?name { "France" } }
  UNION
  { ?c ex:name ?name . VALUES ?name { "Italy" } }
}`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestValuesValidation(t *testing.T) {
	cases := []string{
		// Empty term list.
		`SELECT ?x WHERE { ?x <http://p> ?o . VALUES ?o { } }`,
		// Variable not in any pattern.
		`SELECT ?x WHERE { ?x <http://p> ?o . VALUES ?zzz { "a" } }`,
		// Variable inside VALUES.
		`SELECT ?x WHERE { ?x <http://p> ?o . VALUES ?o { ?x } }`,
		// VALUES inside OPTIONAL.
		`SELECT ?x WHERE { ?x <http://p> ?o . OPTIONAL { ?x <http://q> ?y . VALUES ?y { "a" } } }`,
	}
	for _, src := range cases {
		if _, err := sparql.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestValuesStringRoundTrip(t *testing.T) {
	src := `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?c ex:name ?name . VALUES ?name { "France" "Italy" } }`
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := q.String()
	q2, err := sparql.Parse(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if q2.String() != text {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", text, q2.String())
	}
	if len(q2.Where.Values) != 1 || len(q2.Where.Values[0].Terms) != 2 {
		t.Errorf("values lost: %+v", q2.Where.Values)
	}
}

func TestValuesDrivesJoinOrder(t *testing.T) {
	// With a VALUES binding, the planner prefers patterns touching the bound
	// variable first.
	g := figure1Graph(t)
	q := mustQuery(t, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:population ?pop .
  ?c ex:name ?name .
  VALUES ?name { "France" }
}`)
	plan, err := New(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.main.steps[0].pat.src.String(), "name") {
		t.Errorf("VALUES-bound pattern not scanned first:\n%s", plan.String())
	}
}
