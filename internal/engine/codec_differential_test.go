package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

// TestEngineDifferentialFlatVsBlock runs identical random BGP workloads over
// a flat-codec and a block-codec graph and requires bit-identical answers.
// Unlike the brute-force reference tests this uses graphs large enough that
// the block runs really span many blocks and the vectorized NextSpan path is
// the one the executor exercises — the flat codec is the oracle. Interleaved
// updates keep a live delta overlay in play, and a final compaction retests
// everything on pure multi-block runs.
func TestEngineDifferentialFlatVsBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	flat := store.NewGraphWithCodec(store.CodecFlat)
	block := store.NewGraphWithCodec(store.CodecBlock)

	addRandom := func(n int) {
		for i := 0; i < n; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			p := rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3)))
			var o rdf.Term
			if rng.Intn(2) == 0 {
				o = rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			} else {
				o = rdf.NewInteger(int64(rng.Intn(8)))
			}
			tr := rdf.Triple{S: s, P: p, O: o}
			fok, ferr := flat.Add(tr)
			bok, berr := block.Add(tr)
			if fok != bok || (ferr == nil) != (berr == nil) {
				t.Fatalf("Add(%v) return values diverged", tr)
			}
		}
	}
	// The tiny vocabulary above saturates quickly; widen the subject space so
	// runs grow well past one block.
	addWide := func(n int) {
		for i := 0; i < n; i++ {
			tr := rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://wide/s%d", rng.Intn(4000))),
				P: rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3))),
				O: rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6))),
			}
			fok, ferr := flat.Add(tr)
			bok, berr := block.Add(tr)
			if fok != bok || (ferr == nil) != (berr == nil) {
				t.Fatalf("Add(%v) return values diverged", tr)
			}
		}
	}

	checkQueries := func(stage string, trials int) {
		t.Helper()
		if flat.Len() != block.Len() {
			t.Fatalf("%s: Len %d (flat) != %d (block)", stage, flat.Len(), block.Len())
		}
		for trial := 0; trial < trials; trial++ {
			q := randomBGPQuery(rng)
			fres, ferr := New(flat).Execute(q)
			bres, berr := New(block).Execute(q)
			if (ferr == nil) != (berr == nil) {
				t.Fatalf("%s trial %d: errors diverged: flat=%v block=%v\n%s", stage, trial, ferr, berr, q)
			}
			if ferr != nil {
				continue
			}
			fs, bs := fres.Sorted(), bres.Sorted()
			if !reflect.DeepEqual(fs, bs) {
				t.Fatalf("%s trial %d: results diverged on\n%s\nflat:  %v\nblock: %v", stage, trial, q, fs, bs)
			}
		}
	}

	addRandom(40)
	addWide(3000)
	checkQueries("initial", 12)

	// Churn: deletes and re-inserts leave both graphs with live overlays.
	all := flat.Triples()
	for i := 0; i < 400; i++ {
		tr := all[rng.Intn(len(all))]
		if flat.Remove(tr) != block.Remove(tr) {
			t.Fatalf("Remove(%v) return values diverged", tr)
		}
	}
	addRandom(30)
	addWide(200)
	checkQueries("overlay", 12)

	flat.Compact()
	block.Compact()
	checkQueries("compacted", 12)
}
