package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

// TestEngineDifferentialHeapVsMmap loads the same paged (v3) snapshot twice —
// once with heap storage (the oracle, every page resident and CRC-verified
// eagerly) and once with mmap storage (pages faulted in lazily from the OS
// page cache) — and requires bit-identical answers for random BGP queries and
// a battery of aggregates across every lifecycle stage: the initial load, a
// live delta overlay, a checkpoint + reopen, and a final compaction. The
// re-saved snapshots themselves must also be byte-identical, so the two
// storage backends cannot drift even in what they persist.
func TestEngineDifferentialHeapVsMmap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	// Build the seed graph with the same vocabulary the flat-vs-block
	// differential uses: a tiny dense core randomBGPQuery knows about plus a
	// wide subject space so runs span many blocks and pages.
	seed := store.NewGraphWithCodec(store.CodecBlock)
	addRandomTo := func(g *store.Graph, n int) {
		for i := 0; i < n; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			p := rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3)))
			var o rdf.Term
			if rng.Intn(2) == 0 {
				o = rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			} else {
				o = rdf.NewInteger(int64(rng.Intn(8)))
			}
			g.MustAdd(rdf.Triple{S: s, P: p, O: o})
		}
	}
	addWideTo := func(g *store.Graph, n int) {
		for i := 0; i < n; i++ {
			g.MustAdd(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://wide/s%d", rng.Intn(4000))),
				P: rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3))),
				O: rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6))),
			})
		}
	}
	addRandomTo(seed, 40)
	addWideTo(seed, 3000)

	const pageSize = 16 << 10
	dir := t.TempDir()
	writeSnap := func(name string, g *store.Graph) string {
		t.Helper()
		var buf bytes.Buffer
		if err := g.SavePaged(&buf, pageSize); err != nil {
			t.Fatalf("SavePaged: %v", err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write snapshot: %v", err)
		}
		return path
	}
	loadPair := func(path string) (heap, mm *store.Graph) {
		t.Helper()
		heap, err := store.LoadFileWith(path, store.CodecBlock, store.StorageHeap)
		if err != nil {
			t.Fatalf("heap load: %v", err)
		}
		mm, err = store.LoadFileWith(path, store.CodecBlock, store.StorageMmap)
		if err != nil {
			if strings.Contains(err.Error(), "not supported") {
				t.Skipf("mmap storage unavailable: %v", err)
			}
			t.Fatalf("mmap load: %v", err)
		}
		if got := mm.MemStats(); got.Storage != "mmap" || got.MappedBytes == 0 {
			t.Fatalf("mmap graph stats = %+v, want storage=mmap with mapped bytes", got)
		}
		return heap, mm
	}

	heap, mm := loadPair(writeSnap("seed.snap", seed))

	// Aggregates have no random generator; a fixed battery parameterized by
	// the rng covers COUNT/SUM/AVG/MIN/MAX, GROUP BY, and grouped counts over
	// both the dense and wide vocabularies.
	aggQueries := func() []string {
		p := rng.Intn(3)
		return []string{
			"SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p ORDER BY ?p",
			fmt.Sprintf("SELECT (COUNT(?o) AS ?n) WHERE { ?s <http://p%d> ?o . }", p),
			fmt.Sprintf("SELECT ?o (COUNT(?s) AS ?n) WHERE { ?s <http://p%d> ?o . } GROUP BY ?o", p),
			fmt.Sprintf("SELECT (SUM(?o) AS ?t) (AVG(?o) AS ?a) (MIN(?o) AS ?mn) (MAX(?o) AS ?mx) "+
				"WHERE { <http://n%d> ?p ?o . FILTER(?o >= %d) }", rng.Intn(6), rng.Intn(4)),
			fmt.Sprintf("SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p <http://n%d> . } GROUP BY ?s", rng.Intn(6)),
		}
	}

	checkStage := func(stage string, trials int) {
		t.Helper()
		if heap.Len() != mm.Len() {
			t.Fatalf("%s: Len %d (heap) != %d (mmap)", stage, heap.Len(), mm.Len())
		}
		for trial := 0; trial < trials; trial++ {
			q := randomBGPQuery(rng)
			hres, herr := New(heap).Execute(q)
			mres, merr := New(mm).Execute(q)
			if (herr == nil) != (merr == nil) {
				t.Fatalf("%s trial %d: errors diverged: heap=%v mmap=%v\n%s", stage, trial, herr, merr, q)
			}
			if herr != nil {
				continue
			}
			hs, ms := hres.Sorted(), mres.Sorted()
			if !reflect.DeepEqual(hs, ms) {
				t.Fatalf("%s trial %d: results diverged on\n%s\nheap: %v\nmmap: %v", stage, trial, q, hs, ms)
			}
		}
		for _, src := range aggQueries() {
			hres, herr := New(heap).ExecuteString(src)
			mres, merr := New(mm).ExecuteString(src)
			if (herr == nil) != (merr == nil) {
				t.Fatalf("%s aggregate: errors diverged: heap=%v mmap=%v\n%s", stage, herr, merr, src)
			}
			if herr != nil {
				continue
			}
			hs, ms := hres.Sorted(), mres.Sorted()
			if !reflect.DeepEqual(hs, ms) {
				t.Fatalf("%s aggregate diverged on\n%s\nheap: %v\nmmap: %v", stage, src, hs, ms)
			}
		}
	}

	checkStage("initial", 12)

	// Churn both loaded graphs in lockstep so a live delta overlay sits on
	// top of the shared paged runs.
	all := heap.Triples()
	for i := 0; i < 400; i++ {
		tr := all[rng.Intn(len(all))]
		if heap.Remove(tr) != mm.Remove(tr) {
			t.Fatalf("Remove(%v) return values diverged", tr)
		}
	}
	for i := 0; i < 30; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
		p := rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3)))
		o := rdf.NewInteger(int64(rng.Intn(8)))
		tr := rdf.Triple{S: s, P: p, O: o}
		hok, herr := heap.Add(tr)
		mok, merr := mm.Add(tr)
		if hok != mok || (herr == nil) != (merr == nil) {
			t.Fatalf("Add(%v) return values diverged", tr)
		}
	}
	checkStage("overlay", 12)

	// Mid-test checkpoint + reopen: both graphs must serialize to the very
	// same bytes, and the reloaded pair must still agree.
	var hbuf, mbuf bytes.Buffer
	if err := heap.SavePaged(&hbuf, pageSize); err != nil {
		t.Fatalf("heap SavePaged: %v", err)
	}
	if err := mm.SavePaged(&mbuf, pageSize); err != nil {
		t.Fatalf("mmap SavePaged: %v", err)
	}
	if !bytes.Equal(hbuf.Bytes(), mbuf.Bytes()) {
		t.Fatalf("re-saved snapshots differ: heap %d bytes, mmap %d bytes", hbuf.Len(), mbuf.Len())
	}
	reopened := filepath.Join(dir, "reopened.snap")
	if err := os.WriteFile(reopened, hbuf.Bytes(), 0o644); err != nil {
		t.Fatalf("write reopened snapshot: %v", err)
	}
	heap, mm = loadPair(reopened)
	checkStage("reopened", 12)

	heap.Compact()
	mm.Compact()
	checkStage("compacted", 12)
}
