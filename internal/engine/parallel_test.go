package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

// parallelGraph builds a synthetic graph wide enough to cross every parallel
// threshold: ~nItems subjects in nGroups groups, each with a type edge, a
// group edge, a numeric score, and (for two thirds) a link to a hub — so
// joins fan out and the leading `?s ex:type ex:item` range holds nItems
// triples (well above parallelMinScan).
func parallelGraph(t testing.TB, nItems, nGroups int) *store.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	term := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	var ts []rdf.Triple
	typeP, groupP, scoreP, linkP := term("type"), term("group"), term("score"), term("link")
	item := term("item")
	for i := 0; i < nItems; i++ {
		s := term(fmt.Sprintf("s%05d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: typeP, O: item},
			rdf.Triple{S: s, P: groupP, O: term(fmt.Sprintf("g%03d", i%nGroups))},
			rdf.Triple{S: s, P: scoreP, O: rdf.NewInteger(int64(rng.Intn(1000)))},
		)
		if i%3 != 0 {
			ts = append(ts, rdf.Triple{S: s, P: linkP, O: term(fmt.Sprintf("hub%02d", i%17))})
		}
	}
	g := store.NewGraph()
	if _, err := g.LoadTriples(ts); err != nil {
		t.Fatalf("fixture load: %v", err)
	}
	return g
}

// render flattens result rows in order, so comparisons include row order —
// the parallel engine must be bit-identical to serial, not just set-equal.
func render(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var line string
		for i, v := range row {
			if i > 0 {
				line += "\t"
			}
			line += v.String()
		}
		out = append(out, line)
	}
	return out
}

// parallelQueries covers every operator the engine supports: multi-pattern
// joins, filters, OPTIONAL, UNION, VALUES, all aggregates with GROUP BY and
// HAVING, DISTINCT, ORDER BY, and LIMIT/OFFSET.
var parallelQueries = []struct {
	name string
	src  string
}{
	{"join", `PREFIX ex: <http://ex.org/>
SELECT ?s ?g ?v WHERE {
  ?s ex:type ex:item .
  ?s ex:group ?g .
  ?s ex:score ?v .
}`},
	{"join-filter", `PREFIX ex: <http://ex.org/>
SELECT ?s ?v WHERE {
  ?s ex:type ex:item .
  ?s ex:score ?v .
  FILTER (?v > 500)
}`},
	{"join-hub", `PREFIX ex: <http://ex.org/>
SELECT ?s ?o ?h WHERE {
  ?s ex:group ex:g000 .
  ?s ex:link ?h .
  ?o ex:link ?h .
}`},
	{"optional", `PREFIX ex: <http://ex.org/>
SELECT ?s ?h WHERE {
  ?s ex:type ex:item .
  OPTIONAL { ?s ex:link ?h . }
}`},
	{"union", `PREFIX ex: <http://ex.org/>
SELECT ?s WHERE {
  { ?s ex:link ex:hub00 . }
  UNION
  { ?s ex:link ex:hub01 . }
}`},
	{"optional-wide-tail", `PREFIX ex: <http://ex.org/>
SELECT ?s ?o ?v WHERE {
  ?s ex:link ex:hub00 .
  ?s ex:group ?g .
  ?o ex:group ?g .
  OPTIONAL { ?o ex:score ?v . FILTER (?v > 900) }
}`},
	{"values", `PREFIX ex: <http://ex.org/>
SELECT ?s ?g WHERE {
  VALUES ?g { ex:g000 ex:g001 ex:g002 }
  ?s ex:group ?g .
  ?s ex:type ex:item .
}`},
	{"agg-count-star", `PREFIX ex: <http://ex.org/>
SELECT ?g (COUNT(*) AS ?n) WHERE {
  ?s ex:type ex:item .
  ?s ex:group ?g .
} GROUP BY ?g`},
	{"agg-all", `PREFIX ex: <http://ex.org/>
SELECT ?g (SUM(?v) AS ?sum) (AVG(?v) AS ?avg) (MIN(?v) AS ?min) (MAX(?v) AS ?max) (COUNT(?v) AS ?n) WHERE {
  ?s ex:type ex:item .
  ?s ex:group ?g .
  ?s ex:score ?v .
} GROUP BY ?g ORDER BY ?g`},
	{"agg-having", `PREFIX ex: <http://ex.org/>
SELECT ?h (COUNT(?s) AS ?n) WHERE {
  ?s ex:type ex:item .
  ?s ex:link ?h .
} GROUP BY ?h HAVING (?n > 100) ORDER BY ?h`},
	{"agg-global", `PREFIX ex: <http://ex.org/>
SELECT (SUM(?v) AS ?total) (COUNT(?s) AS ?n) WHERE {
  ?s ex:type ex:item .
  ?s ex:score ?v .
}`},
	{"distinct", `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?g WHERE {
  ?s ex:type ex:item .
  ?s ex:group ?g .
}`},
	{"limit-offset", `PREFIX ex: <http://ex.org/>
SELECT ?s ?v WHERE {
  ?s ex:type ex:item .
  ?s ex:score ?v .
} LIMIT 37 OFFSET 11`},
	{"order-limit", `PREFIX ex: <http://ex.org/>
SELECT ?s ?v WHERE {
  ?s ex:type ex:item .
  ?s ex:score ?v .
} ORDER BY ?v LIMIT 25`},
}

// TestParallelMatchesSerial is the differential suite of the parallel
// execution engine: for every query shape and worker count, parallel results
// (including row order and stats invariants) must equal serial execution.
// Run under -race in CI, this also proves the partitions share no state.
func TestParallelMatchesSerial(t *testing.T) {
	g := parallelGraph(t, 6000, 40)
	serial := NewWithOptions(g, Options{Workers: 1})
	for _, tc := range parallelQueries {
		t.Run(tc.name, func(t *testing.T) {
			want, err := serial.ExecuteString(tc.src)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				par := NewWithOptions(g, Options{Workers: workers})
				got, err := par.ExecuteString(tc.src)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(render(got), render(want)) {
					t.Errorf("workers=%d: %d rows differ from serial %d rows",
						workers, len(got.Rows), len(want.Rows))
				}
				if got.Stats.Workers != workers {
					t.Errorf("workers=%d: Stats.Workers = %d", workers, got.Stats.Workers)
				}
				if workers == 1 && got.Stats.Partitions != 0 {
					t.Errorf("serial run reported %d partitions", got.Stats.Partitions)
				}
			}
		})
	}
}

// TestParallelUsesPartitions asserts the wide join actually takes the
// parallel path (guarding against a silently-serial regression).
func TestParallelUsesPartitions(t *testing.T) {
	g := parallelGraph(t, 6000, 40)
	eng := NewWithOptions(g, Options{Workers: 4})
	res, err := eng.ExecuteString(`PREFIX ex: <http://ex.org/>
SELECT ?s ?g WHERE { ?s ex:type ex:item . ?s ex:group ?g . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions == 0 {
		t.Error("wide scan executed serially; expected Split partitions")
	}
	if res.Stats.ResultRows != 6000 {
		t.Errorf("ResultRows = %d, want 6000", res.Stats.ResultRows)
	}
}

// TestParallelWithDeltaOverlay checks parallel equality on a graph whose
// delta overlay is non-empty, exercising Split's extra/tombstone routing
// through the engine.
func TestParallelWithDeltaOverlay(t *testing.T) {
	g := parallelGraph(t, 4000, 20)
	term := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	// Remove a slice of type edges and add late items, staying under the
	// compaction threshold so scans see a live overlay.
	for i := 0; i < 300; i += 7 {
		g.Remove(rdf.Triple{S: term(fmt.Sprintf("s%05d", i)), P: term("type"), O: term("item")})
	}
	for i := 0; i < 200; i++ {
		g.MustAdd(rdf.Triple{S: term(fmt.Sprintf("late%04d", i)), P: term("type"), O: term("item")})
		g.MustAdd(rdf.Triple{S: term(fmt.Sprintf("late%04d", i)), P: term("score"), O: rdf.NewInteger(int64(i))})
	}
	src := `PREFIX ex: <http://ex.org/>
SELECT ?s ?v WHERE { ?s ex:type ex:item . ?s ex:score ?v . }`
	want, err := NewWithOptions(g, Options{Workers: 1}).ExecuteString(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := NewWithOptions(g, Options{Workers: workers}).ExecuteString(src)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(render(got), render(want)) {
			t.Errorf("workers=%d: delta-overlay results differ from serial", workers)
		}
	}
}

// TestDefaultWorkersIsGOMAXPROCS pins the documented default.
func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	if got := (Options{}).EffectiveWorkers(); got < 1 {
		t.Errorf("EffectiveWorkers = %d", got)
	}
	if got := (Options{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Errorf("EffectiveWorkers(3) = %d", got)
	}
}
