package engine

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/obs"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// Query aliases sparql.Query so engine callers need not import both
// packages for the common parse-then-execute flow.
type Query = sparql.Query

// ParseQuery parses a SPARQL query in the SOFOS fragment.
func ParseQuery(src string) (*Query, error) { return sparql.Parse(src) }

// Options tune engine behaviour; the zero value is the production default.
type Options struct {
	// NaiveOrder disables greedy selectivity-based join ordering, executing
	// triple patterns in query text order. Exists for the join-ordering
	// ablation benchmark; results are identical, only performance differs.
	NaiveOrder bool

	// Workers bounds the goroutines used for data-parallel execution of one
	// query: leading-range partitioning (store.Iterator.Split), intermediate
	// row-chunk fan-out, and the parallel aggregation merge. 0 (the default)
	// means runtime.GOMAXPROCS(0); 1 forces fully serial execution. Results
	// are identical at every setting — partitions are contiguous and merged
	// in partition order.
	Workers int

	// Span, when non-zero, parents trace spans recorded during execution:
	// compile, per-worker partitions, and the parallel aggregate merge. The
	// zero handle disables tracing at no cost beyond a nil check.
	Span obs.SpanHandle
}

// EffectiveWorkers resolves Workers: 0 means one worker per logical CPU.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Engine executes queries against one graph.
type Engine struct {
	graph *store.Graph
	opts  Options
}

// New returns an engine over g with default options.
func New(g *store.Graph) *Engine { return &Engine{graph: g} }

// NewWithOptions returns an engine with explicit options.
func NewWithOptions(g *store.Graph, opts Options) *Engine {
	return &Engine{graph: g, opts: opts}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *store.Graph { return e.graph }

// ExecStats records work counters for performance analysis; SOFOS's online
// module reports these alongside wall-clock time.
type ExecStats struct {
	PatternScans     int           // triple-pattern index lookups issued
	IntermediateRows int64         // binding rows produced across all joins
	ResultRows       int           // final rows returned
	Workers          int           // configured parallelism for this execution
	Partitions       int           // parallel partitions run (0 = fully serial)
	Elapsed          time.Duration // wall time of Execute
}

// fold accumulates another context's work counters; Elapsed, Workers and
// ResultRows are set once by the caller.
func (s *ExecStats) fold(o *ExecStats) {
	s.PatternScans += o.PatternScans
	s.IntermediateRows += o.IntermediateRows
	s.Partitions += o.Partitions
}

// Result is a solution sequence: named columns over rows of values.
type Result struct {
	Vars  []string
	Rows  [][]algebra.Value
	Stats ExecStats
}

// Sorted returns the rows rendered and sorted lexicographically — a
// canonical form for result comparison in tests and rewrite validation.
func (r *Result) Sorted() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "\t"))
	}
	sort.Strings(out)
	return out
}

// Execute parses nothing: it runs an already-parsed query.
func (e *Engine) Execute(q *sparql.Query) (*Result, error) {
	start := time.Now()
	execSp := e.opts.Span.Child("engine.execute")
	compileSp := execSp.Child("engine.compile")
	plan, err := compile(e.graph, q, e.opts)
	compileSp.End()
	if err != nil {
		execSp.End()
		return nil, err
	}
	plan.span = execSp
	res, err := e.run(plan)
	if err != nil {
		execSp.End()
		return nil, err
	}
	res.Stats.Elapsed = time.Since(start)
	res.Stats.ResultRows = len(res.Rows)
	execSp.AttrInt("workers", int64(res.Stats.Workers))
	execSp.AttrInt("partitions", int64(res.Stats.Partitions))
	execSp.AttrInt("pattern_scans", int64(res.Stats.PatternScans))
	execSp.AttrInt("intermediate_rows", res.Stats.IntermediateRows)
	execSp.AttrInt("result_rows", int64(res.Stats.ResultRows))
	execSp.End()
	return res, nil
}

// ExecuteString parses and runs a query in one step.
func (e *Engine) ExecuteString(src string) (*Result, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(q)
}

// Explain compiles the query and returns its physical plan.
func (e *Engine) Explain(q *sparql.Query) (*Plan, error) {
	return compile(e.graph, q, e.opts)
}

// binding is a working row of slot values; NoID means unbound. Aggregate
// and expression evaluation decode IDs through the graph dictionary.
type binding []rdf.ID

// rowArena block-allocates the fixed-width binding rows of one execution,
// replacing one heap allocation per intermediate join row with one per
// chunk. Arenas are per-execution, so parallel workload runs never share.
type rowArena struct {
	width int
	buf   []rdf.ID
}

const arenaChunkRows = 256

// clone copies row into arena-backed storage.
func (a *rowArena) clone(row binding) binding {
	if a.width == 0 {
		return binding{}
	}
	if len(a.buf) < a.width {
		a.buf = make([]rdf.ID, a.width*arenaChunkRows)
	}
	r := binding(a.buf[:a.width:a.width])
	a.buf = a.buf[a.width:]
	copy(r, row)
	return r
}

// execCtx is the per-goroutine execution state: a private row arena plus work
// counters. The serial path uses one; every parallel partition owns its own,
// and the counters are folded into the query's ExecStats after the partitions
// join, so no execution state is ever shared between workers.
type execCtx struct {
	arena rowArena
	stats ExecStats
}

// run executes a compiled plan.
func (e *Engine) run(p *Plan) (*Result, error) {
	q := p.query
	res := &Result{}
	if p.empty {
		res.Vars = projectionVars(q)
		if q.HasAggregates() && len(q.GroupBy) == 0 {
			// Aggregates over an empty solution sequence produce one row
			// (e.g. COUNT = 0).
			row, keep := e.aggregateEmptyRow(q)
			if keep {
				res.Rows = append(res.Rows, row)
			}
		}
		return res, nil
	}

	var rows []binding
	var stats ExecStats
	var err error
	workers := e.opts.EffectiveWorkers()
	stats.Workers = workers
	cap := rowCap(p)
	if len(p.unions) > 0 {
		// Bag union: concatenate the branch solution sequences.
		for i := range p.unions {
			br := &p.unions[i]
			if br.empty {
				continue
			}
			brCap := 0
			if cap > 0 {
				if len(rows) >= cap {
					break
				}
				brCap = cap - len(rows)
			}
			brRows, err := e.runBranch(br, p, brCap, &stats, workers)
			if err != nil {
				return nil, err
			}
			rows = append(rows, brRows...)
		}
	} else {
		branch := p.main
		rows, err = e.runBranch(&branch, p, cap, &stats, workers)
		if err != nil {
			return nil, err
		}
	}

	out, err := e.finish(rows, p, &stats)
	if err != nil {
		return nil, err
	}
	out.Stats = stats
	return out, nil
}

// rowCap returns the maximum number of solution rows worth producing for a
// query, or 0 for unlimited. LIMIT can only terminate the join early when no
// downstream operator (aggregation, DISTINCT, ORDER BY, optional left-joins,
// late filters) could reorder or drop rows.
func rowCap(p *Plan) int {
	q := p.query
	if q.Limit < 0 || q.HasAggregates() || len(q.GroupBy) > 0 ||
		q.Distinct || len(q.OrderBy) > 0 || len(p.main.optionals) > 0 || len(p.main.lateFilter) > 0 {
		return 0
	}
	for i := range p.unions {
		if len(p.unions[i].optionals) > 0 || len(p.unions[i].lateFilter) > 0 {
			return 0
		}
	}
	return q.Limit + q.Offset
}

// runBranch executes one conjunctive branch: required steps, then optional
// left-joins, then late filters. A non-zero cap bounds the produced rows
// (LIMIT pushdown).
//
// With workers > 1 it executes the branch data-parallel: if the leading
// pattern's index range is large it is Split into per-worker sub-ranges and
// the downstream pipeline runs per partition; otherwise steps run serially
// until the intermediate row set is wide enough to chunk across workers.
// Partitions are contiguous and their outputs concatenated in partition
// order, so the rows returned are identical to serial execution.
func (e *Engine) runBranch(br *branchPlan, p *Plan, cap int, stats *ExecStats, workers int) ([]binding, error) {
	ctx := &execCtx{arena: rowArena{width: len(p.vars)}}
	rows := e.seedRows(br, p, ctx)
	steps := br.steps
	for workers > 1 && len(rows) > 0 && len(steps) > 0 {
		if len(rows) >= workers*parallelMinRowsPerWorker {
			stats.fold(&ctx.stats)
			return e.runRowChunks(rows, p, br, steps, cap, stats, workers)
		}
		// Not enough work to fan out yet: advance one step serially and
		// reassess (a selective first pattern often explodes on step two).
		stepCap := 0
		if len(steps) == 1 {
			stepCap = cap
		}
		if len(rows) == 1 {
			it, ok := e.leadingScan(rows[0], steps[0].pat)
			if !ok {
				rows = nil // constant term missing: the pattern cannot match
				break
			}
			ctx.stats.PatternScans++
			if it.Remaining() >= parallelMinScan {
				stats.fold(&ctx.stats)
				return e.runSplitScan(it, rows[0], p, br, steps, cap, stats, workers)
			}
			// Reuse the probe scan for the serial step rather than paying
			// scan setup twice on selective (point-lookup) chains.
			rows = e.runLeadingPartition(it, rows[0], p, steps[0], len(steps) == 1, stepCap, ctx)
		} else {
			var err error
			rows, err = e.runSteps(rows, p, steps[:1], stepCap, ctx)
			if err != nil {
				return nil, err
			}
		}
		steps = steps[1:]
	}
	// The final step may have fanned out wide after the loop's last width
	// check: optional left-joins and late filters are per-row independent, so
	// chunk them too when there is enough work.
	if workers > 1 && len(rows) >= workers*parallelMinRowsPerWorker &&
		(len(br.optionals) > 0 || len(br.lateFilter) > 0) {
		stats.fold(&ctx.stats)
		return e.runRowChunks(rows, p, br, steps, cap, stats, workers)
	}
	rows, err := e.runTail(rows, p, br, steps, cap, ctx)
	stats.fold(&ctx.stats)
	return rows, err
}

// seedRows builds the branch's initial binding rows: the cross product of its
// VALUES clauses, or one empty row when there are none.
func (e *Engine) seedRows(br *branchPlan, p *Plan, ctx *execCtx) []binding {
	rows := []binding{make(binding, len(p.vars))}
	for _, ib := range br.inline {
		var next []binding
		for _, row := range rows {
			for _, id := range ib.ids {
				nr := ctx.arena.clone(row)
				nr[ib.slot] = id
				next = append(next, nr)
			}
		}
		rows = next
	}
	return rows
}

// leadingScan resolves a pattern against one row and opens its range scan,
// reporting false when a constant term is missing from the graph (the pattern
// cannot match, which the serial step handles identically).
func (e *Engine) leadingScan(row binding, cp compiledPattern) (store.Iterator, bool) {
	if cp.s.missing || cp.p.missing || cp.o.missing {
		return store.Iterator{}, false
	}
	resolve := func(ct compiledTerm) rdf.ID {
		if !ct.isVar {
			return ct.id
		}
		return row[ct.slot]
	}
	return e.graph.Scan(resolve(cp.s), resolve(cp.p), resolve(cp.o)), true
}

// runTail finishes a branch pipeline for one partition's rows: the remaining
// steps, then optional left-joins and late filters.
func (e *Engine) runTail(rows []binding, p *Plan, br *branchPlan, steps []step, cap int, ctx *execCtx) ([]binding, error) {
	rows, err := e.runSteps(rows, p, steps, cap, ctx)
	if err != nil {
		return nil, err
	}
	for i := range br.optionals {
		rows, err = e.runOptional(rows, p, &br.optionals[i], ctx)
		if err != nil {
			return nil, err
		}
	}
	if len(br.lateFilter) > 0 {
		kept := rows[:0]
		for _, row := range rows {
			if e.filtersPass(row, p, br.lateFilter) {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	return rows, nil
}

// runSteps performs the binding-propagation join over the plan steps. A
// non-zero cap stops producing rows on the final step once cap rows exist —
// safe because every filter is attached to some step and nothing downstream
// drops rows when the planner passes a cap (see rowCap).
func (e *Engine) runSteps(rows []binding, p *Plan, steps []step, cap int, ctx *execCtx) ([]binding, error) {
	for si, st := range steps {
		if len(rows) == 0 {
			return rows, nil
		}
		last := si == len(steps)-1
		var next []binding
		// scratch receives each candidate extension; it is only copied into
		// arena storage once the row survives binding and filters, and the
		// Iterator is reused across rows so its delta buffers allocate once.
		scratch := make(binding, len(p.vars))
		var it store.Iterator
		for _, row := range rows {
			if cap > 0 && last && len(next) >= cap {
				break
			}
			ctx.stats.PatternScans++
			e.matchPattern(&it, row, scratch, st.pat, func(extended binding) bool {
				if len(st.filters) == 0 || e.filtersPass(extended, p, st.filters) {
					next = append(next, ctx.arena.clone(extended))
					ctx.stats.IntermediateRows++
				}
				return !(cap > 0 && last && len(next) >= cap)
			})
		}
		rows = next
	}
	return rows, nil
}

// runOptional left-joins each row with the optional block.
func (e *Engine) runOptional(rows []binding, p *Plan, op *optionalPlan, ctx *execCtx) ([]binding, error) {
	var out []binding
	for _, row := range rows {
		matches, err := e.runSteps([]binding{row}, p, op.steps, 0, ctx)
		if err != nil {
			return nil, err
		}
		if len(op.lateFilter) > 0 {
			kept := matches[:0]
			for _, m := range matches {
				if e.filtersPass(m, p, op.lateFilter) {
					kept = append(kept, m)
				}
			}
			matches = kept
		}
		if len(matches) == 0 {
			// No match: keep the row with the optional's own slots unbound.
			clean := ctx.arena.clone(row)
			for _, s := range op.ownSlots {
				clean[s] = rdf.NoID
			}
			out = append(out, clean)
			continue
		}
		out = append(out, matches...)
	}
	return out, nil
}

// matchPattern extends row with every graph match of the pattern, invoking
// yield with the extension written into scratch (callers copy rows they
// keep). Bound variables act as constants, so the store answers each
// propagation step with one permutation range scan; the Iterator is caller-
// owned for buffer reuse and holds no graph lock, keeping filter evaluation
// off the store's critical section.
func (e *Engine) matchPattern(it *store.Iterator, row, scratch binding, cp compiledPattern, yield func(binding) bool) {
	if cp.s.missing || cp.p.missing || cp.o.missing {
		return // a constant term absent from the graph can never match
	}
	resolve := func(ct compiledTerm) rdf.ID {
		if !ct.isVar {
			return ct.id
		}
		return row[ct.slot] // NoID when unbound -> wildcard
	}
	s, p, o := resolve(cp.s), resolve(cp.p), resolve(cp.o)
	e.graph.ScanInto(it, s, p, o)
	yieldMatches(it, row, scratch, cp, yield)
}

// yieldMatches drains an already-opened scan, binding each triple into
// scratch over row and yielding the surviving extensions. Shared between the
// serial per-row path (matchPattern) and the parallel leading-partition path
// (runLeadingPartition), so the two cannot drift apart. Triples are consumed
// span-at-a-time: NextSpan hands back one decoded block as SoA component
// slices, so the inner loop walks plain []rdf.ID memory instead of paying a
// per-triple iterator call.
func yieldMatches(it *store.Iterator, row, scratch binding, cp compiledPattern, yield func(binding) bool) {
	for {
		ss, ps, os := it.NextSpan()
		if len(ss) == 0 {
			return
		}
		for i := range ss {
			copy(scratch, row)
			if !bindComponent(scratch, cp.s, ss[i]) ||
				!bindComponent(scratch, cp.p, ps[i]) ||
				!bindComponent(scratch, cp.o, os[i]) {
				continue // shared-variable mismatch (e.g. ?x ?p ?x): skip
			}
			if !yield(scratch) {
				return
			}
		}
	}
}

// bindComponent writes a matched ID into the row slot for variable
// components, returning false on conflict with an existing binding.
func bindComponent(row binding, ct compiledTerm, id rdf.ID) bool {
	if !ct.isVar {
		return true
	}
	if row[ct.slot] != rdf.NoID && row[ct.slot] != id {
		return false
	}
	row[ct.slot] = id
	return true
}

// filtersPass evaluates all filters against the row.
func (e *Engine) filtersPass(row binding, p *Plan, filters []sparql.Expr) bool {
	resolve := e.resolver(row, p)
	for _, f := range filters {
		if !algebra.EvalBool(f, resolve) {
			return false
		}
	}
	return true
}

// resolver adapts a binding row to the algebra.Resolver interface.
func (e *Engine) resolver(row binding, p *Plan) algebra.Resolver {
	return func(name string) algebra.Value {
		s, ok := p.slots[name]
		if !ok || row[s] == rdf.NoID {
			return algebra.Unbound
		}
		return algebra.Bind(e.graph.Dict().Term(row[s]))
	}
}

// projectionVars lists the output column names of a query.
func projectionVars(q *sparql.Query) []string {
	out := make([]string, len(q.Select))
	for i, si := range q.Select {
		out[i] = si.Var
	}
	return out
}

// finish applies grouping/aggregation, HAVING, projection, DISTINCT,
// ORDER BY and LIMIT/OFFSET to the joined rows. stats supplies the worker
// budget and receives the partition count of a parallel aggregation pass.
func (e *Engine) finish(rows []binding, p *Plan, stats *ExecStats) (*Result, error) {
	q := p.query
	res := &Result{Vars: projectionVars(q)}

	if q.HasAggregates() || len(q.GroupBy) > 0 {
		if err := e.finishAggregate(rows, p, res, stats); err != nil {
			return nil, err
		}
	} else {
		for _, row := range rows {
			out := make([]algebra.Value, len(q.Select))
			for i, si := range q.Select {
				s, ok := p.slots[si.Var]
				if ok && row[s] != rdf.NoID {
					out[i] = algebra.Bind(e.graph.Dict().Term(row[s]))
				}
			}
			res.Rows = append(res.Rows, out)
		}
	}

	if q.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	if len(q.OrderBy) > 0 {
		if err := orderRows(res, q); err != nil {
			return nil, err
		}
	}
	applyLimitOffset(res, q)
	return res, nil
}

// aggSlotStar and aggSlotNone are sentinel aggregate input slots for
// COUNT(*) and for aggregate variables never bound by any pattern.
const (
	aggSlotStar = -1
	aggSlotNone = -2
)

// groupState carries per-group accumulators.
type groupState struct {
	key  []algebra.Value // values of GroupBy vars
	accs []algebra.Accumulator
}

// aggState is the grouping state over one row partition: per-group
// accumulators plus first-seen key order.
type aggState struct {
	groups map[string]*groupState
	order  []string
}

// buildAggState folds one contiguous row partition into grouping state.
func (e *Engine) buildAggState(rows []binding, groupSlots, aggSlots []int, aggItems []sparql.SelectItem) *aggState {
	st := &aggState{groups: make(map[string]*groupState)}
	// Group keys are the raw slot IDs in fixed-width binary — the
	// map[string] lookup on string(keyBuf) does not allocate on hit, so a
	// row belonging to an existing group costs no heap traffic.
	var keyBuf []byte
	for _, row := range rows {
		keyBuf = keyBuf[:0]
		for _, s := range groupSlots {
			keyBuf = binary.LittleEndian.AppendUint32(keyBuf, uint32(row[s]))
		}
		g, ok := st.groups[string(keyBuf)]
		if !ok {
			key := string(keyBuf)
			g = &groupState{
				key:  make([]algebra.Value, len(groupSlots)),
				accs: make([]algebra.Accumulator, len(aggItems)),
			}
			for j, s := range groupSlots {
				if row[s] != rdf.NoID {
					g.key[j] = algebra.Bind(e.graph.Dict().Term(row[s]))
				}
			}
			for j, item := range aggItems {
				g.accs[j] = algebra.NewAccumulator(item)
			}
			st.groups[key] = g
			st.order = append(st.order, key)
		}
		for i, s := range aggSlots {
			switch {
			case s == aggSlotStar: // COUNT(*)
				g.accs[i].Add(algebra.Bind(rdf.NewBoolean(true)))
			case s == aggSlotNone || row[s] == rdf.NoID:
				g.accs[i].Add(algebra.Unbound)
			default:
				g.accs[i].Add(algebra.Bind(e.graph.Dict().Term(row[s])))
			}
		}
	}
	return st
}

// foldAggStates folds src into dst in partition order: groups first seen in
// src are appended, shared groups fold their accumulators. Because row
// partitions are contiguous and folded left to right, group order and
// aggregate inputs match a serial pass over the concatenated rows.
func foldAggStates(dst, src *aggState) {
	for _, key := range src.order {
		g := src.groups[key]
		d, ok := dst.groups[key]
		if !ok {
			dst.groups[key] = g
			dst.order = append(dst.order, key)
			continue
		}
		for i := range d.accs {
			d.accs[i].Fold(g.accs[i])
		}
	}
}

// finishAggregate groups rows and computes aggregates. With workers > 1 and
// enough rows, partitions are grouped concurrently and the partial states
// merged in order (the parallel-safe aggregation merge).
func (e *Engine) finishAggregate(rows []binding, p *Plan, res *Result, stats *ExecStats) error {
	q := p.query
	groupSlots := make([]int, len(q.GroupBy))
	for i, v := range q.GroupBy {
		s, ok := p.slots[v]
		if !ok {
			return fmt.Errorf("engine: GROUP BY variable ?%s has no slot", v)
		}
		groupSlots[i] = s
	}
	aggItems := q.Aggregates()
	// Resolve each aggregate's input slot once, outside the row loop.
	aggSlots := make([]int, len(aggItems))
	for i, item := range aggItems {
		switch s, ok := p.slots[item.AggVar]; {
		case item.AggVar == "":
			aggSlots[i] = aggSlotStar
		case !ok:
			aggSlots[i] = aggSlotNone
		default:
			aggSlots[i] = s
		}
	}
	state := e.aggregateRows(rows, groupSlots, aggSlots, aggItems, stats, p.span)

	// Aggregates without GROUP BY over an empty input yield a single group.
	if len(rows) == 0 && len(q.GroupBy) == 0 {
		row, keep := e.aggregateEmptyRow(q)
		if keep {
			res.Rows = append(res.Rows, row)
		}
		return nil
	}

	groupIdx := make(map[string]int, len(q.GroupBy))
	for i, v := range q.GroupBy {
		groupIdx[v] = i
	}
	// Resolve each projected column to its group-key index (or -1 for
	// aggregates) once, outside the group loop.
	selIdx := make([]int, len(q.Select))
	for i, si := range q.Select {
		if si.Agg == sparql.AggNone {
			selIdx[i] = groupIdx[si.Var]
		} else {
			selIdx[i] = -1
		}
	}
	for _, key := range state.order {
		g := state.groups[key]
		// Build the projected row, plus a resolver map when HAVING needs it.
		var aggVals map[string]algebra.Value
		if q.Having != nil {
			aggVals = make(map[string]algebra.Value, len(aggItems))
		}
		ai := 0
		out := make([]algebra.Value, len(q.Select))
		for i, si := range q.Select {
			if selIdx[i] >= 0 {
				out[i] = g.key[selIdx[i]]
			} else {
				v := g.accs[ai].Result()
				if aggVals != nil {
					aggVals[si.Var] = v
				}
				out[i] = v
				ai++
			}
		}
		if q.Having != nil {
			resolve := func(name string) algebra.Value {
				if v, ok := aggVals[name]; ok {
					return v
				}
				if gi, ok := groupIdx[name]; ok {
					return g.key[gi]
				}
				return algebra.Unbound
			}
			if !algebra.EvalBool(q.Having, resolve) {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return nil
}

// aggregateEmptyRow produces the single aggregate row over an empty input
// (COUNT()=0, SUM()=0, MIN/MAX/AVG unbound); keep is false when HAVING
// rejects it.
func (e *Engine) aggregateEmptyRow(q *sparql.Query) ([]algebra.Value, bool) {
	out := make([]algebra.Value, len(q.Select))
	aggVals := make(map[string]algebra.Value)
	for i, si := range q.Select {
		acc := algebra.NewAccumulator(si)
		v := acc.Result()
		out[i] = v
		aggVals[si.Var] = v
	}
	if q.Having != nil {
		resolve := func(name string) algebra.Value { return aggVals[name] }
		if !algebra.EvalBool(q.Having, resolve) {
			return nil, false
		}
	}
	return out, true
}

// dedupRows removes duplicate rows by rendered key, preserving order.
func dedupRows(rows [][]algebra.Value) [][]algebra.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var b strings.Builder
	for _, row := range rows {
		b.Reset()
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte('\x00')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

// orderRows sorts the result per ORDER BY.
func orderRows(res *Result, q *sparql.Query) error {
	idx := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		idx[v] = i
	}
	conds := make([]struct {
		col  int
		desc bool
	}, len(q.OrderBy))
	for i, oc := range q.OrderBy {
		col, ok := idx[oc.Var]
		if !ok {
			return fmt.Errorf("engine: ORDER BY variable ?%s not in projection", oc.Var)
		}
		conds[i] = struct {
			col  int
			desc bool
		}{col, oc.Desc}
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for _, c := range conds {
			cmp := algebra.SortCompare(res.Rows[i][c.col], res.Rows[j][c.col])
			if cmp != 0 {
				if c.desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// applyLimitOffset trims the rows per OFFSET/LIMIT.
func applyLimitOffset(res *Result, q *sparql.Query) {
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
}
