// Package engine executes SPARQL queries of the SOFOS fragment against a
// store.Graph. It compiles a query into a physical plan — index-backed
// triple-pattern scans in a greedy selectivity order with filters pushed to
// their earliest applicable position — and then runs a binding-propagation
// join, followed by OPTIONAL left-joins, grouping/aggregation, HAVING,
// DISTINCT, ORDER BY, and LIMIT/OFFSET.
//
// Execution is data-parallel by default (Options.Workers; 0 means one
// worker per logical CPU, 1 forces serial). Three mechanisms share the
// work, all built on the store's lock-free snapshot iterators:
//
//   - leading-range split: the first join step's index range is partitioned
//     into contiguous per-worker sub-ranges (store.Iterator.Split) and each
//     worker runs the whole downstream pipeline over its partition;
//   - row-chunk fan-out: when the leading pattern is selective, steps run
//     serially until the intermediate row set is wide enough, then the
//     remaining pipeline fans out over contiguous row chunks;
//   - parallel aggregation merge: GROUP BY state accumulates per partition
//     and the partial accumulators fold left-to-right
//     (algebra.Accumulator.Fold).
//
// Partitions are contiguous in the serial iteration order and merged in
// partition order, so results are bit-identical to serial execution at
// every worker count; the package's differential tests assert this under
// -race. ExecStats on every Result reports the scan, row, and partition
// counters the online module's performance analyzer displays.
package engine
