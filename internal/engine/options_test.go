package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

func TestNaiveOrderSameResults(t *testing.T) {
	g := figure1Graph(t)
	queries := []string{
		`PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE { ?c ex:name ?name . ?c ex:population ?pop . ?c ex:language "French" . }`,
		`PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?t) WHERE { ?c ex:language ?lang . ?c ex:population ?pop . } GROUP BY ?lang`,
		`PREFIX ex: <http://ex.org/>
SELECT ?name ?u WHERE { ?c ex:name ?name . OPTIONAL { ?c ex:partOf ?u . } }`,
	}
	def := New(g)
	naive := NewWithOptions(g, Options{NaiveOrder: true})
	for _, src := range queries {
		a, err := def.ExecuteString(src)
		if err != nil {
			t.Fatalf("default: %v", err)
		}
		b, err := naive.ExecuteString(src)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if !reflect.DeepEqual(a.Sorted(), b.Sorted()) {
			t.Errorf("ordering changed results for %q:\n%v\nvs\n%v", src, a.Sorted(), b.Sorted())
		}
	}
}

func TestNaiveOrderPreservesTextOrder(t *testing.T) {
	g := figure1Graph(t)
	src := `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  ?c ex:language "French" .
}`
	q := mustQuery(t, src)
	naive := NewWithOptions(g, Options{NaiveOrder: true})
	plan, err := naive.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	first := plan.main.steps[0].pat.src.String()
	if !strings.Contains(first, "name") {
		t.Errorf("naive plan reordered; first = %s", first)
	}
	// The default engine puts the selective French pattern first.
	plan2, err := New(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.main.steps[0].pat.src.String(), "French") {
		t.Errorf("greedy plan did not reorder; first = %s", plan2.main.steps[0].pat.src.String())
	}
}

func TestNaiveOrderDoesMoreWork(t *testing.T) {
	// On a graph where ordering matters, naive execution scans strictly more
	// intermediate rows than the greedy plan.
	g := store.NewGraph()
	for i := 0; i < 200; i++ {
		g.MustAdd(tripleIRI("s", i, "broad", "o", i))
	}
	g.MustAdd(tripleIRI("s", 7, "narrow", "x", 0))
	src := `PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:broad ?o . ?s ex:narrow ?x . }`
	a, err := New(g).ExecuteString(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWithOptions(g, Options{NaiveOrder: true}).ExecuteString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sorted(), b.Sorted()) {
		t.Fatal("results differ")
	}
	if b.Stats.IntermediateRows <= a.Stats.IntermediateRows {
		t.Errorf("naive rows %d <= greedy rows %d",
			b.Stats.IntermediateRows, a.Stats.IntermediateRows)
	}
}

func TestLimitPushdownStopsEarly(t *testing.T) {
	g := store.NewGraph()
	for i := 0; i < 500; i++ {
		g.MustAdd(tripleIRI("s", i, "p", "o", i))
	}
	limited := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?s ?o WHERE { ?s ex:p ?o . } LIMIT 5`)
	if len(limited.Rows) != 5 {
		t.Fatalf("rows = %d", len(limited.Rows))
	}
	full := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?s ?o WHERE { ?s ex:p ?o . }`)
	if limited.Stats.IntermediateRows >= full.Stats.IntermediateRows {
		t.Errorf("limit did not stop early: %d vs %d rows scanned",
			limited.Stats.IntermediateRows, full.Stats.IntermediateRows)
	}
	// Every limited row must be a valid full-result row.
	all := map[string]bool{}
	for _, r := range full.Sorted() {
		all[r] = true
	}
	for _, r := range limited.Sorted() {
		if !all[r] {
			t.Errorf("limited row %q not in full result", r)
		}
	}
}

func TestLimitPushdownDisabledWhenUnsafe(t *testing.T) {
	g := figure1Graph(t)
	// ORDER BY requires seeing all rows: LIMIT must still return the true
	// top-k, not an arbitrary prefix.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE { ?c ex:name ?name . ?c ex:population ?pop . }
ORDER BY DESC(?pop) LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Term.Value != "Germany" {
		t.Errorf("ordered LIMIT = %v", res.Sorted())
	}
	// DISTINCT with LIMIT still deduplicates before cutting.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?year WHERE { ?c ex:year ?year . } LIMIT 5`)
	if len(res.Rows) != 1 {
		t.Errorf("distinct LIMIT rows = %v", res.Sorted())
	}
	// Aggregation with LIMIT aggregates over everything first.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (SUM(?pop) AS ?t) WHERE { ?c ex:population ?pop . } LIMIT 1`)
	if res.Rows[0][0].Term.Value != "246000000" {
		t.Errorf("aggregate under LIMIT = %v", res.Sorted())
	}
}

func TestLimitPushdownWithUnion(t *testing.T) {
	g := store.NewGraph()
	for i := 0; i < 100; i++ {
		g.MustAdd(tripleIRI("a", i, "p", "x", i))
		g.MustAdd(tripleIRI("b", i, "q", "y", i))
	}
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { { ?s ex:p ?o . } UNION { ?s ex:q ?o . } } LIMIT 7`)
	if len(res.Rows) != 7 {
		t.Errorf("union LIMIT rows = %d", len(res.Rows))
	}
	if res.Stats.IntermediateRows > 20 {
		t.Errorf("union LIMIT scanned %d rows", res.Stats.IntermediateRows)
	}
}

// tripleIRI builds ex:<a><i> ex:<p> ex:<b><j>.
func tripleIRI(a string, i int, p, b string, j int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://ex.org/%s%d", a, i)),
		P: rdf.NewIRI("http://ex.org/" + p),
		O: rdf.NewIRI(fmt.Sprintf("http://ex.org/%s%d", b, j)),
	}
}
