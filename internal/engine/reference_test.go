package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/algebra"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// refEval is a brute-force evaluator: Cartesian expansion of the triple
// patterns with consistency, VALUES, and filter checks, and bag union over
// branches. Exponential, so only for tiny graphs — it defines the ground
// truth the optimized engine must match.
func refEval(g *store.Graph, q *sparql.Query) []string {
	var rows []string
	if q.Where.IsUnion() {
		for i := range q.Where.Unions {
			rows = append(rows, refEvalGroup(g, q, &q.Where.Unions[i])...)
		}
	} else {
		rows = refEvalGroup(g, q, &q.Where)
	}
	sortStrings(rows)
	return rows
}

// refEvalGroup brute-forces one conjunctive group.
func refEvalGroup(g *store.Graph, q *sparql.Query, gp *sparql.GroupPattern) []string {
	all := g.Triples()
	type env map[string]rdf.Term
	var envs []env
	envs = append(envs, env{})
	// VALUES clauses: cross product of inline bindings.
	for _, d := range gp.Values {
		var next []env
		for _, e := range envs {
			for _, t := range d.Terms {
				ne := make(env, len(e)+1)
				for k, v := range e {
					ne[k] = v
				}
				ne[d.Var] = t
				next = append(next, ne)
			}
		}
		envs = next
	}
	match := func(pt sparql.PatternTerm, t rdf.Term, e env) (env, bool) {
		if !pt.IsVar {
			if pt.Term == t {
				return e, true
			}
			return nil, false
		}
		if v, ok := e[pt.Var]; ok {
			if v == t {
				return e, true
			}
			return nil, false
		}
		ne := make(env, len(e)+1)
		for k, v := range e {
			ne[k] = v
		}
		ne[pt.Var] = t
		return ne, true
	}
	for _, tp := range gp.Triples {
		var next []env
		for _, e := range envs {
			for _, tr := range all {
				e1, ok := match(tp.S, tr.S, e)
				if !ok {
					continue
				}
				e2, ok := match(tp.P, tr.P, e1)
				if !ok {
					continue
				}
				e3, ok := match(tp.O, tr.O, e2)
				if !ok {
					continue
				}
				next = append(next, e3)
			}
		}
		envs = next
	}
	// Filters.
	var kept []env
	for _, e := range envs {
		ok := true
		for _, f := range gp.Filters {
			resolve := func(name string) algebra.Value {
				if t, found := e[name]; found {
					return algebra.Bind(t)
				}
				return algebra.Unbound
			}
			if !algebra.EvalBool(f, resolve) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, e)
		}
	}
	// Project.
	var rows []string
	for _, e := range kept {
		row := ""
		for i, si := range q.Select {
			if i > 0 {
				row += "\t"
			}
			if t, ok := e[si.Var]; ok {
				row += t.String()
			} else {
				row += "UNDEF"
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// TestEngineDifferentialRandomBGPs generates random graphs and random BGP
// queries with random shapes (chains, stars, constants, shared variables,
// filters) and checks the engine against the brute-force evaluator.
func TestEngineDifferentialRandomBGPs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		g := store.NewGraph()
		nTriples := 10 + rng.Intn(25)
		for i := 0; i < nTriples; i++ {
			s := fmt.Sprintf("http://n%d", rng.Intn(6))
			p := fmt.Sprintf("http://p%d", rng.Intn(3))
			var o rdf.Term
			if rng.Intn(2) == 0 {
				o = rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			} else {
				o = rdf.NewInteger(int64(rng.Intn(8)))
			}
			g.MustAdd(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: o})
		}
		q := randomBGPQuery(rng)
		engRes, err := New(g).Execute(q)
		if err != nil {
			t.Fatalf("trial %d: engine error: %v\n%s", trial, err, q)
		}
		want := refEval(g, q)
		got := engRes.Sorted()
		if want == nil {
			want = []string{}
		}
		if got == nil {
			got = []string{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d mismatch on\n%s\nengine: %v\nreference: %v", trial, q, got, want)
		}
	}
}

// randomBGPQuery builds a random SELECT over 1-4 patterns, sometimes with a
// filter and shared/repeated variables.
func randomBGPQuery(rng *rand.Rand) *sparql.Query {
	vars := []string{"a", "b", "c", "d"}
	term := func() sparql.PatternTerm {
		switch rng.Intn(4) {
		case 0:
			return sparql.Constant(rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6))))
		default:
			return sparql.Variable(vars[rng.Intn(len(vars))])
		}
	}
	pred := func() sparql.PatternTerm {
		if rng.Intn(4) == 0 {
			return sparql.Variable(vars[rng.Intn(len(vars))])
		}
		return sparql.Constant(rdf.NewIRI(fmt.Sprintf("http://p%d", rng.Intn(3))))
	}
	q := &sparql.Query{Prefixes: map[string]string{}, Limit: -1}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		q.Where.Triples = append(q.Where.Triples, sparql.TriplePattern{
			S: term(), P: pred(), O: term(),
		})
	}
	seen := map[string]bool{}
	for _, v := range q.Where.Vars() {
		if !seen[v] {
			seen[v] = true
			q.Select = append(q.Select, sparql.SelectItem{Var: v})
		}
	}
	if len(q.Select) == 0 {
		// All-constant pattern: select nothing is invalid; add a variable
		// pattern to keep the query well-formed.
		q.Where.Triples = append(q.Where.Triples, sparql.TriplePattern{
			S: sparql.Variable("a"), P: pred(), O: term(),
		})
		q.Select = append(q.Select, sparql.SelectItem{Var: "a"})
	}
	// Occasionally add a numeric filter over a selected variable.
	if rng.Intn(3) == 0 {
		v := q.Select[rng.Intn(len(q.Select))].Var
		q.Where.Filters = append(q.Where.Filters, &sparql.BinaryExpr{
			Op:    sparql.OpGe,
			Left:  &sparql.VarExpr{Name: v},
			Right: &sparql.TermExpr{Term: rdf.NewInteger(int64(rng.Intn(6)))},
		})
	}
	// Occasionally constrain a variable with VALUES (terms from the graph's
	// vocabulary so some match).
	if rng.Intn(4) == 0 && len(q.Select) > 0 {
		v := q.Select[rng.Intn(len(q.Select))].Var
		d := sparql.InlineData{Var: v}
		for i := 0; i < 1+rng.Intn(3); i++ {
			if rng.Intn(2) == 0 {
				d.Terms = append(d.Terms, rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6))))
			} else {
				d.Terms = append(d.Terms, rdf.NewInteger(int64(rng.Intn(8))))
			}
		}
		q.Where.Values = append(q.Where.Values, d)
	}
	return q
}

// TestEngineDifferentialRandomUnions mirrors the BGP differential test for
// two-branch unions.
func TestEngineDifferentialRandomUnions(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		g := store.NewGraph()
		for i := 0; i < 15+rng.Intn(20); i++ {
			s := fmt.Sprintf("http://n%d", rng.Intn(6))
			p := fmt.Sprintf("http://p%d", rng.Intn(3))
			var o rdf.Term
			if rng.Intn(2) == 0 {
				o = rdf.NewIRI(fmt.Sprintf("http://n%d", rng.Intn(6)))
			} else {
				o = rdf.NewInteger(int64(rng.Intn(8)))
			}
			g.MustAdd(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: o})
		}
		b1 := randomBGPQuery(rng)
		b2 := randomBGPQuery(rng)
		q := &sparql.Query{Prefixes: map[string]string{}, Limit: -1}
		q.Where.Unions = []sparql.GroupPattern{b1.Where, b2.Where}
		seen := map[string]bool{}
		for _, v := range q.Where.Vars() {
			if !seen[v] {
				seen[v] = true
				q.Select = append(q.Select, sparql.SelectItem{Var: v})
			}
		}
		engRes, err := New(g).Execute(q)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, q)
		}
		want := refEval(g, q)
		got := engRes.Sorted()
		if want == nil {
			want = []string{}
		}
		if got == nil {
			got = []string{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d mismatch on\n%s\nengine: %v\nreference: %v", trial, q, got, want)
		}
	}
}
