package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

// figure1Graph builds the knowledge graph of Figure 1 in the paper:
// countries with name, population, year, language, and part-of edges.
func figure1Graph(t testing.TB) *store.Graph {
	t.Helper()
	src := `
@prefix ex: <http://ex.org/> .
ex:france ex:name "France" ; ex:language "French" ; ex:population 67000000 ; ex:year 2019 ; ex:partOf ex:eu .
ex:germany ex:name "Germany" ; ex:language "German" ; ex:population 82000000 ; ex:year 2019 ; ex:partOf ex:eu .
ex:italy ex:name "Italy" ; ex:language "Italian" ; ex:population 60000000 ; ex:year 2019 ; ex:partOf ex:eu .
ex:canada ex:name "Canada" ; ex:language "French" ; ex:population 37000000 ; ex:year 2019 .
ex:canada ex:language "English" .
ex:eu ex:name "EU" .
`
	ts, err := rdf.ParseString(src)
	if err != nil {
		t.Fatalf("fixture parse: %v", err)
	}
	g := store.NewGraph()
	if _, err := g.LoadTriples(ts); err != nil {
		t.Fatalf("fixture load: %v", err)
	}
	return g
}

func exec(t testing.TB, g *store.Graph, src string) *Result {
	t.Helper()
	res, err := New(g).ExecuteString(src)
	if err != nil {
		t.Fatalf("ExecuteString(%q): %v", src, err)
	}
	return res
}

func TestExecuteSingleSelect(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ex:france ex:name ?n . }`)
	if len(res.Rows) != 1 || res.Rows[0][0].Term.Value != "France" {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestExecuteJoin(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE {
  ?c ex:language "French" .
  ?c ex:name ?name .
  ?c ex:population ?pop .
}`)
	got := res.Sorted()
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if !strings.Contains(got[0], "Canada") || !strings.Contains(got[1], "France") {
		t.Errorf("rows = %v", got)
	}
}

func TestExecuteFilterComparison(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  FILTER (?pop > 60000000)
}`)
	got := res.Sorted()
	want := []string{`"France"`, `"Germany"`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestExecuteGroupBySum(t *testing.T) {
	g := figure1Graph(t)
	// Total population per language — Example 1.1 of the paper.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?total) WHERE {
  ?c ex:language ?lang .
  ?c ex:population ?pop .
} GROUP BY ?lang ORDER BY ?lang`)
	got := res.Sorted()
	want := []string{
		`"English"	"37000000"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`"French"	"104000000"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`"German"	"82000000"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`"Italian"	"60000000"^^<http://www.w3.org/2001/XMLSchema#integer>`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestExecuteCountCountries(t *testing.T) {
	g := figure1Graph(t)
	// "In how many countries is French an official language?" (Example 1.1).
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(?c) AS ?n) WHERE { ?c ex:language "French" . }`)
	if len(res.Rows) != 1 || res.Rows[0][0].Term.Value != "2" {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestExecuteAllAggregates(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(*) AS ?n) (SUM(?pop) AS ?s) (AVG(?pop) AS ?a) (MIN(?pop) AS ?mn) (MAX(?pop) AS ?mx)
WHERE { ?c ex:population ?pop . }`)
	row := res.Rows[0]
	wantVals := []string{"4", "246000000", "61500000", "37000000", "82000000"}
	for i, w := range wantVals {
		if row[i].Term.Value != w {
			t.Errorf("col %d = %s, want %s", i, row[i].Term.Value, w)
		}
	}
}

func TestExecuteAggregateEmptyInput(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(?c) AS ?n) (SUM(?pop) AS ?s) (MIN(?pop) AS ?m) WHERE { ?c ex:language "Klingon" . ?c ex:population ?pop . }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	row := res.Rows[0]
	if row[0].Term.Value != "0" || row[1].Term.Value != "0" || row[2].Bound {
		t.Errorf("empty aggregates = %v", res.Sorted())
	}
	// With GROUP BY, an empty input gives zero rows instead.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?lang (COUNT(?c) AS ?n) WHERE { ?c ex:language ?lang . ?c ex:name "Klingonia" . } GROUP BY ?lang`)
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty input rows = %v", res.Sorted())
	}
}

func TestExecuteMissingConstant(t *testing.T) {
	g := figure1Graph(t)
	// A term that was never interned must yield an empty result quickly.
	res := exec(t, g, `SELECT ?o WHERE { <http://nowhere.org/x> <http://nowhere.org/p> ?o . }`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestExecuteHaving(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?lang (COUNT(?c) AS ?n) WHERE {
  ?c ex:language ?lang .
} GROUP BY ?lang HAVING (?n > 1)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Term.Value != "French" {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestExecuteOrderByLimitOffset(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE { ?c ex:name ?name . ?c ex:population ?pop . }
ORDER BY DESC(?pop) LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	if res.Rows[0][0].Term.Value != "Germany" || res.Rows[1][0].Term.Value != "France" {
		t.Errorf("order = %v %v", res.Rows[0][0], res.Rows[1][0])
	}
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop WHERE { ?c ex:name ?name . ?c ex:population ?pop . }
ORDER BY DESC(?pop) LIMIT 2 OFFSET 1`)
	if res.Rows[0][0].Term.Value != "France" || res.Rows[1][0].Term.Value != "Italy" {
		t.Errorf("offset order = %v", res.Sorted())
	}
	// Offset beyond result size.
	res = exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?c ex:name ?name . } OFFSET 100`)
	if len(res.Rows) != 0 {
		t.Errorf("beyond-offset rows = %v", res.Sorted())
	}
}

func TestExecuteDistinct(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?year WHERE { ?c ex:year ?year . }`)
	if len(res.Rows) != 1 {
		t.Errorf("distinct years = %v", res.Sorted())
	}
}

func TestExecuteOptional(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?union WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  OPTIONAL { ?c ex:partOf ?u . ?u ex:name ?union . }
} ORDER BY ?name`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Sorted())
	}
	byName := map[string]string{}
	for _, row := range res.Rows {
		byName[row[0].Term.Value] = row[1].String()
	}
	if byName["France"] != `"EU"` || byName["Canada"] != "UNDEF" {
		t.Errorf("optional bindings = %v", byName)
	}
}

func TestExecuteOptionalWithFilter(t *testing.T) {
	g := figure1Graph(t)
	// Filter inside OPTIONAL removes the optional binding, not the row.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?pop2 WHERE {
  ?c ex:name ?name .
  OPTIONAL { ?c ex:population ?pop2 . FILTER (?pop2 > 70000000) }
} ORDER BY ?name`)
	byName := map[string]bool{}
	for _, row := range res.Rows {
		byName[row[0].Term.Value] = row[1].Bound
	}
	if !byName["Germany"] || byName["France"] || byName["EU"] {
		t.Errorf("optional filter bindings = %v", byName)
	}
}

func TestExecuteLateFilterOnOptionalVar(t *testing.T) {
	g := figure1Graph(t)
	// !BOUND filter referencing an optional variable runs late.
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  OPTIONAL { ?c ex:partOf ?u . }
  FILTER (!BOUND(?u))
}`)
	if len(res.Rows) != 1 || res.Rows[0][0].Term.Value != "Canada" {
		t.Errorf("rows = %v", res.Sorted())
	}
}

func TestExecuteSharedVariablePattern(t *testing.T) {
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	g.MustAdd(rdf.Triple{S: ex("a"), P: ex("knows"), O: ex("a")})
	g.MustAdd(rdf.Triple{S: ex("a"), P: ex("knows"), O: ex("b")})
	g.MustAdd(rdf.Triple{S: ex("b"), P: ex("knows"), O: ex("b")})
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?x WHERE { ?x ex:knows ?x . }`)
	if len(res.Rows) != 2 {
		t.Errorf("self-loops = %v", res.Sorted())
	}
}

func TestExecuteVariablePredicate(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?p WHERE { ex:france ?p ?o . } ORDER BY ?p`)
	if len(res.Rows) != 5 {
		t.Errorf("predicates = %v", res.Sorted())
	}
}

func TestExecuteCountDistinct(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(DISTINCT ?lang) AS ?n) WHERE { ?c ex:language ?lang . }`)
	if res.Rows[0][0].Term.Value != "4" {
		t.Errorf("distinct languages = %v", res.Sorted())
	}
}

func TestExecuteStringParseError(t *testing.T) {
	g := figure1Graph(t)
	if _, err := New(g).ExecuteString("not sparql"); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestExecStatsPopulated(t *testing.T) {
	g := figure1Graph(t)
	res := exec(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?c ex:name ?n . ?c ex:population ?p . }`)
	if res.Stats.PatternScans == 0 || res.Stats.IntermediateRows == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.ResultRows != len(res.Rows) {
		t.Errorf("ResultRows = %d, rows = %d", res.Stats.ResultRows, len(res.Rows))
	}
	if res.Stats.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
}

func TestExplainPlanOrdering(t *testing.T) {
	g := figure1Graph(t)
	// The selective pattern (language = "French", 2 matches) must be scanned
	// before the broad ones (name: 6 matches, population: 4).
	q := mustQuery(t, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?c ex:name ?name .
  ?c ex:population ?pop .
  ?c ex:language "French" .
}`)
	plan, err := New(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	first := plan.main.steps[0].pat.src.String()
	if !strings.Contains(first, "French") {
		t.Errorf("first step = %s; plan:\n%s", first, plan.String())
	}
	if !strings.Contains(plan.String(), "scan") {
		t.Errorf("plan string = %s", plan.String())
	}
}

func TestExplainEmptyPlan(t *testing.T) {
	g := figure1Graph(t)
	q := mustQuery(t, `SELECT ?o WHERE { <http://gone> <http://p> ?o . }`)
	plan, err := New(g).Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.empty {
		t.Error("plan not marked empty")
	}
	if !strings.Contains(plan.String(), "empty") {
		t.Errorf("plan string = %q", plan.String())
	}
	if len(plan.Vars()) == 0 {
		t.Error("vars not tracked")
	}
}

func mustQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestJoinOrderInsensitivity: all permutations of the BGP produce identical
// results — the planner's ordering is an optimization, not a semantics
// change.
func TestJoinOrderInsensitivity(t *testing.T) {
	g := figure1Graph(t)
	patterns := []string{
		`?c ex:name ?name .`,
		`?c ex:population ?pop .`,
		`?c ex:language ?lang .`,
		`?c ex:year 2019 .`,
	}
	perms := permutations(len(patterns))
	var want []string
	for i, perm := range perms {
		var body strings.Builder
		for _, pi := range perm {
			body.WriteString(patterns[pi])
			body.WriteString("\n")
		}
		src := "PREFIX ex: <http://ex.org/>\nSELECT ?name ?pop ?lang WHERE {\n" + body.String() + "}"
		got := exec(t, g, src).Sorted()
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %v differs:\n%v\nvs\n%v", perm, got, want)
		}
	}
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	sub := permutations(n - 1)
	var out [][]int
	for _, s := range sub {
		for i := 0; i <= len(s); i++ {
			p := make([]int, 0, n)
			p = append(p, s[:i]...)
			p = append(p, n-1)
			p = append(p, s[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestEngineAgainstReferenceEvaluator cross-checks BGP+filter execution on
// random graphs against a brute-force evaluator.
func TestEngineAgainstReferenceEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := store.NewGraph()
		nt := 30 + rng.Intn(60)
		for i := 0; i < nt; i++ {
			s := fmt.Sprintf("http://ex.org/s%d", rng.Intn(10))
			p := fmt.Sprintf("http://ex.org/p%d", rng.Intn(4))
			var o rdf.Term
			if rng.Intn(2) == 0 {
				o = rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", rng.Intn(10)))
			} else {
				o = rdf.NewInteger(int64(rng.Intn(20)))
			}
			g.MustAdd(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: o})
		}
		src := `PREFIX ex: <http://ex.org/>
SELECT ?x ?y WHERE { ?x ex:p0 ?y . ?x ex:p1 ?z . FILTER (?z >= 5) }`
		got := exec(t, g, src).Sorted()
		want := referenceEval(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d mismatch:\nengine: %v\nreference: %v", trial, got, want)
		}
	}
}

// referenceEval brute-forces the fixed test query above.
func referenceEval(g *store.Graph) []string {
	var out []string
	all := g.Triples()
	for _, t1 := range all {
		if t1.P.Value != "http://ex.org/p0" {
			continue
		}
		for _, t2 := range all {
			if t2.P.Value != "http://ex.org/p1" || t2.S != t1.S {
				continue
			}
			v, err := t2.O.Float()
			if err != nil || v < 5 {
				continue
			}
			out = append(out, t1.S.String()+"\t"+t1.O.String())
		}
	}
	// Deduplicate: multiple z matches produce duplicate (x, y) rows in both
	// implementations, so keep duplicates — but ordering must be canonical.
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
