// Package facet implements analytical facets and the lattice of views they
// induce (§3 of the SOFOS paper).
//
// A facet F = ⟨X, P, agg(u)⟩ describes the information to aggregate: X is the
// ordered set of grouping (dimension) variables, P a SPARQL graph pattern,
// u the measure variable, and agg one of {SUM, AVG, COUNT, MAX, MIN}. Every
// subset X' ⊆ X defines a view V = ⟨X', P, agg(u)⟩ aggregating at a coarser
// granularity; the 2^|X| views ordered by ⊆ form the view lattice V(F).
package facet

import (
	"fmt"
	"math/bits"
	"strings"

	"sofos/internal/sparql"
)

// MaxDims bounds the number of dimension variables: the lattice has 2^d
// views, and the demo's facets have 3-6 dimensions.
const MaxDims = 16

// Facet is an analytical facet F = ⟨X, P, agg(u)⟩.
type Facet struct {
	Name     string              // identifier used in view IRIs and reports
	Dims     []string            // X: ordered dimension variable names
	Measure  string              // u: the aggregated variable ("" for COUNT(*))
	Agg      sparql.AggKind      // the aggregation expression
	Pattern  sparql.GroupPattern // P
	Prefixes map[string]string   // prefixes for rendering queries
}

// New validates and constructs a facet.
func New(name string, dims []string, measure string, agg sparql.AggKind, pattern sparql.GroupPattern, prefixes map[string]string) (*Facet, error) {
	f := &Facet{Name: name, Dims: dims, Measure: measure, Agg: agg, Pattern: pattern, Prefixes: prefixes}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FromQuery derives a facet from a template analytical query: GROUP BY
// variables become the dimensions, the (single) aggregate becomes agg(u),
// and the WHERE clause becomes P.
func FromQuery(name string, q *sparql.Query) (*Facet, error) {
	aggs := q.Aggregates()
	if len(aggs) != 1 {
		return nil, fmt.Errorf("facet: template query must have exactly one aggregate, got %d", len(aggs))
	}
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("facet: template query must have GROUP BY dimensions")
	}
	return New(name, append([]string(nil), q.GroupBy...), aggs[0].AggVar, aggs[0].Agg, q.Where.Clone(), q.Prefixes)
}

// Validate checks structural invariants.
func (f *Facet) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("facet: empty name")
	}
	if len(f.Dims) == 0 {
		return fmt.Errorf("facet %s: no dimension variables", f.Name)
	}
	if len(f.Dims) > MaxDims {
		return fmt.Errorf("facet %s: %d dimensions exceed the maximum %d", f.Name, len(f.Dims), MaxDims)
	}
	if f.Agg == sparql.AggNone {
		return fmt.Errorf("facet %s: missing aggregate", f.Name)
	}
	if f.Measure == "" && f.Agg != sparql.AggCount {
		return fmt.Errorf("facet %s: %s requires a measure variable", f.Name, f.Agg)
	}
	patternVars := map[string]bool{}
	for _, v := range f.Pattern.Vars() {
		patternVars[v] = true
	}
	seen := map[string]bool{}
	for _, d := range f.Dims {
		if !patternVars[d] {
			return fmt.Errorf("facet %s: dimension ?%s does not occur in the pattern", f.Name, d)
		}
		if seen[d] {
			return fmt.Errorf("facet %s: duplicate dimension ?%s", f.Name, d)
		}
		if d == f.Measure {
			return fmt.Errorf("facet %s: measure ?%s cannot also be a dimension", f.Name, d)
		}
		seen[d] = true
	}
	if f.Measure != "" && !patternVars[f.Measure] {
		return fmt.Errorf("facet %s: measure ?%s does not occur in the pattern", f.Name, f.Measure)
	}
	return nil
}

// FullMask is the mask of the finest view (all dimensions).
func (f *Facet) FullMask() Mask { return Mask(1<<len(f.Dims)) - 1 }

// DimIndex returns the position of a dimension variable, or -1.
func (f *Facet) DimIndex(name string) int {
	for i, d := range f.Dims {
		if d == name {
			return i
		}
	}
	return -1
}

// TemplateQuery renders the facet's own analytical query (the finest view's
// query): SELECT X agg(u) WHERE P GROUP BY X.
func (f *Facet) TemplateQuery() *sparql.Query {
	return f.View(f.FullMask()).Query()
}

// String summarizes the facet.
func (f *Facet) String() string {
	return fmt.Sprintf("facet %s: ⟨{?%s}, P(%d patterns), %s(?%s)⟩",
		f.Name, strings.Join(f.Dims, ", ?"), len(f.Pattern.Triples), f.Agg, f.Measure)
}

// Mask identifies a view within a facet's lattice: bit i set means Dims[i]
// is kept as a grouping variable.
type Mask uint32

// Level is the number of kept dimensions.
func (m Mask) Level() int { return bits.OnesCount32(uint32(m)) }

// Subset reports whether m's dimensions are a subset of o's.
func (m Mask) Subset(o Mask) bool { return m&o == m }

// View is one node of the lattice: the facet restricted to the dimension
// subset encoded by Mask.
type View struct {
	Facet *Facet
	Mask  Mask
}

// View constructs the view for a mask.
func (f *Facet) View(m Mask) View { return View{Facet: f, Mask: m} }

// ViewByDims constructs the view keeping exactly the named dimensions.
func (f *Facet) ViewByDims(dims ...string) (View, error) {
	var m Mask
	for _, d := range dims {
		i := f.DimIndex(d)
		if i < 0 {
			return View{}, fmt.Errorf("facet %s: unknown dimension ?%s", f.Name, d)
		}
		m |= 1 << i
	}
	return f.View(m), nil
}

// Dims returns the kept dimension variables in facet order.
func (v View) Dims() []string {
	var out []string
	for i, d := range v.Facet.Dims {
		if v.Mask&(1<<i) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// Level returns the number of kept dimensions (the lattice level).
func (v View) Level() int { return v.Mask.Level() }

// ID is a stable identifier like "country+lang" or "apex" for the empty
// view, unique within the facet.
func (v View) ID() string {
	dims := v.Dims()
	if len(dims) == 0 {
		return "apex"
	}
	return strings.Join(dims, "+")
}

// IRI returns the view's IRI in the sofos namespace, used to tag its
// materialized triples inside the expanded graph G+.
func (v View) IRI() string {
	return fmt.Sprintf("http://sofos.ics.forth.gr/view/%s/%s", v.Facet.Name, v.ID())
}

// Covers reports whether v can answer queries targeting w: v keeps a
// superset of w's dimensions, so w is a roll-up of v.
func (v View) Covers(w View) bool {
	return v.Facet == w.Facet && w.Mask.Subset(v.Mask)
}

// Query builds the view's defining query ⟨X', P, agg(u)⟩:
// SELECT X' (agg(?u) AS ?__agg) WHERE P GROUP BY X'. For the apex view
// (no dimensions) the GROUP BY is omitted. The pattern P is kept whole so
// that group multiplicities — and therefore roll-up results — are identical
// at every level of the lattice.
func (v View) Query() *sparql.Query {
	dims := v.Dims()
	q := &sparql.Query{
		Prefixes: v.Facet.Prefixes,
		Where:    v.Facet.Pattern.Clone(),
		Limit:    -1,
	}
	for _, d := range dims {
		q.Select = append(q.Select, sparql.SelectItem{Var: d})
	}
	q.Select = append(q.Select, sparql.SelectItem{
		Var: AggAlias, Agg: v.Facet.Agg, AggVar: v.Facet.Measure,
	})
	if v.Facet.Agg == sparql.AggAvg {
		// AVG views also carry SUM and COUNT so coarser views can be rolled
		// up exactly from finer ones.
		q.Select = append(q.Select,
			sparql.SelectItem{Var: SumAlias, Agg: sparql.AggSum, AggVar: v.Facet.Measure},
			sparql.SelectItem{Var: CountAlias, Agg: sparql.AggCount, AggVar: v.Facet.Measure},
		)
	}
	q.GroupBy = dims
	return q
}

// Aliases used by view-defining queries and the G+ encoding.
const (
	AggAlias   = "__agg"
	SumAlias   = "__sum"
	CountAlias = "__count"
)

// AnalyticalQuery builds the user-facing analytical query at this view's
// granularity: SELECT X' (agg(?u) AS ?__agg) WHERE P GROUP BY X'. Unlike
// Query it never adds the AVG roll-up companions, so it always has exactly
// one aggregate — the form workload queries and rewriting probes take.
func (v View) AnalyticalQuery() *sparql.Query {
	dims := v.Dims()
	q := &sparql.Query{
		Prefixes: v.Facet.Prefixes,
		Where:    v.Facet.Pattern.Clone(),
		Limit:    -1,
	}
	for _, d := range dims {
		q.Select = append(q.Select, sparql.SelectItem{Var: d})
	}
	q.Select = append(q.Select, sparql.SelectItem{
		Var: AggAlias, Agg: v.Facet.Agg, AggVar: v.Facet.Measure,
	})
	q.GroupBy = dims
	return q
}

// String renders the view for reports.
func (v View) String() string {
	return fmt.Sprintf("%s[%s]", v.Facet.Name, v.ID())
}
