package facet

import (
	"strings"
	"testing"

	"sofos/internal/sparql"
)

// popFacet builds the paper's running-example facet: population by
// (country, language, year).
func popFacet(t testing.TB) *Facet {
	t.Helper()
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (SUM(?pop) AS ?total) WHERE {
  ?c ex:name ?country .
  ?c ex:language ?lang .
  ?c ex:year ?year .
  ?c ex:population ?pop .
} GROUP BY ?country ?lang ?year`)
	f, err := FromQuery("population", q)
	if err != nil {
		t.Fatalf("FromQuery: %v", err)
	}
	return f
}

func TestFromQuery(t *testing.T) {
	f := popFacet(t)
	if len(f.Dims) != 3 || f.Dims[0] != "country" || f.Dims[2] != "year" {
		t.Errorf("Dims = %v", f.Dims)
	}
	if f.Measure != "pop" || f.Agg != sparql.AggSum {
		t.Errorf("measure/agg = %s/%v", f.Measure, f.Agg)
	}
	if len(f.Pattern.Triples) != 4 {
		t.Errorf("pattern triples = %d", len(f.Pattern.Triples))
	}
	if !strings.Contains(f.String(), "population") {
		t.Errorf("String = %q", f.String())
	}
}

func TestFromQueryErrors(t *testing.T) {
	noAgg := sparql.MustParse(`SELECT ?x WHERE { ?x ?p ?o . }`)
	if _, err := FromQuery("f", noAgg); err == nil {
		t.Error("query without aggregate accepted")
	}
	noGroup := sparql.MustParse(`SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o . }`)
	if _, err := FromQuery("f", noGroup); err == nil {
		t.Error("query without GROUP BY accepted")
	}
	twoAggs := sparql.MustParse(`SELECT ?x (COUNT(?o) AS ?n) (SUM(?o) AS ?s) WHERE { ?x ?p ?o . } GROUP BY ?x`)
	if _, err := FromQuery("f", twoAggs); err == nil {
		t.Error("query with two aggregates accepted")
	}
}

func TestFacetValidate(t *testing.T) {
	base := popFacet(t)
	cases := []struct {
		name   string
		mutate func(*Facet)
	}{
		{"empty name", func(f *Facet) { f.Name = "" }},
		{"no dims", func(f *Facet) { f.Dims = nil }},
		{"too many dims", func(f *Facet) {
			f.Dims = make([]string, MaxDims+1)
			for i := range f.Dims {
				f.Dims[i] = "country"
			}
		}},
		{"missing agg", func(f *Facet) { f.Agg = sparql.AggNone }},
		{"sum without measure", func(f *Facet) { f.Measure = "" }},
		{"dim not in pattern", func(f *Facet) { f.Dims = []string{"ghost"} }},
		{"duplicate dim", func(f *Facet) { f.Dims = []string{"country", "country"} }},
		{"measure is dim", func(f *Facet) { f.Dims = []string{"country", "pop"} }},
		{"measure not in pattern", func(f *Facet) { f.Measure = "ghost" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := *base
			f.Dims = append([]string(nil), base.Dims...)
			tc.mutate(&f)
			if err := f.Validate(); err == nil {
				t.Error("invalid facet accepted")
			}
		})
	}
	// COUNT facets may omit the measure.
	q := sparql.MustParse(`SELECT ?x (COUNT(*) AS ?n) WHERE { ?x <http://p> ?o . } GROUP BY ?x`)
	f, err := FromQuery("count", q)
	if err != nil {
		t.Fatalf("COUNT(*) facet rejected: %v", err)
	}
	if f.Measure != "" {
		t.Errorf("measure = %q", f.Measure)
	}
}

func TestViewDimsAndID(t *testing.T) {
	f := popFacet(t)
	v := f.View(MaskFromBits(0, 2))
	dims := v.Dims()
	if len(dims) != 2 || dims[0] != "country" || dims[1] != "year" {
		t.Errorf("Dims = %v", dims)
	}
	if v.ID() != "country+year" {
		t.Errorf("ID = %q", v.ID())
	}
	if f.View(0).ID() != "apex" {
		t.Errorf("apex ID = %q", f.View(0).ID())
	}
	if !strings.Contains(v.IRI(), "population/country+year") {
		t.Errorf("IRI = %q", v.IRI())
	}
	if v.Level() != 2 || f.View(0).Level() != 0 {
		t.Error("levels wrong")
	}
}

func TestViewByDims(t *testing.T) {
	f := popFacet(t)
	v, err := f.ViewByDims("lang", "year")
	if err != nil {
		t.Fatal(err)
	}
	if v.Mask != MaskFromBits(1, 2) {
		t.Errorf("mask = %b", v.Mask)
	}
	if _, err := f.ViewByDims("ghost"); err == nil {
		t.Error("unknown dim accepted")
	}
}

func TestViewCovers(t *testing.T) {
	f := popFacet(t)
	full := f.View(f.FullMask())
	cl := f.View(MaskFromBits(0, 1))
	c := f.View(MaskFromBits(0))
	apex := f.View(0)
	if !full.Covers(cl) || !cl.Covers(c) || !c.Covers(apex) || !full.Covers(apex) {
		t.Error("covers chain broken")
	}
	if c.Covers(cl) {
		t.Error("subset view covers superset")
	}
	if !c.Covers(c) {
		t.Error("view does not cover itself")
	}
	other := popFacet(t)
	if full.Covers(other.View(0)) {
		t.Error("covers across facets")
	}
}

func TestViewQuery(t *testing.T) {
	f := popFacet(t)
	v := f.View(MaskFromBits(1)) // lang only
	q := v.Query()
	if err := q.Validate(); err != nil {
		t.Fatalf("view query invalid: %v", err)
	}
	text := q.String()
	if !strings.Contains(text, "GROUP BY ?lang") {
		t.Errorf("query = %s", text)
	}
	if !strings.Contains(text, "SUM(?pop)") {
		t.Errorf("query = %s", text)
	}
	// The pattern is kept whole: all four triple patterns present.
	if len(q.Where.Triples) != 4 {
		t.Errorf("pattern triples = %d", len(q.Where.Triples))
	}
	// Re-parsable.
	if _, err := sparql.Parse(text); err != nil {
		t.Errorf("view query not parsable: %v\n%s", err, text)
	}
	// Apex query has no GROUP BY.
	apexQ := f.View(0).Query()
	if len(apexQ.GroupBy) != 0 {
		t.Errorf("apex GROUP BY = %v", apexQ.GroupBy)
	}
	if err := apexQ.Validate(); err != nil {
		t.Errorf("apex query invalid: %v", err)
	}
}

func TestViewQueryAvgCarriesSumCount(t *testing.T) {
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?x (AVG(?v) AS ?a) WHERE { ?s ex:d ?x . ?s ex:v ?v . } GROUP BY ?x`)
	f, err := FromQuery("avgf", q)
	if err != nil {
		t.Fatal(err)
	}
	vq := f.View(f.FullMask()).Query()
	if len(vq.Aggregates()) != 3 {
		t.Fatalf("AVG view query aggregates = %v", vq.Select)
	}
	text := vq.String()
	if !strings.Contains(text, "AVG(?v)") || !strings.Contains(text, "SUM(?v)") || !strings.Contains(text, "COUNT(?v)") {
		t.Errorf("AVG view query = %s", text)
	}
}

func TestTemplateQueryMatchesTop(t *testing.T) {
	f := popFacet(t)
	if f.TemplateQuery().String() != f.View(f.FullMask()).Query().String() {
		t.Error("TemplateQuery != top view query")
	}
}

func TestDimIndex(t *testing.T) {
	f := popFacet(t)
	if f.DimIndex("lang") != 1 || f.DimIndex("ghost") != -1 {
		t.Error("DimIndex wrong")
	}
}
