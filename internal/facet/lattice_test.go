package facet

import (
	"testing"
	"testing/quick"
)

func popLattice(t testing.TB) *Lattice {
	l, err := NewLattice(popFacet(t))
	if err != nil {
		t.Fatalf("NewLattice: %v", err)
	}
	return l
}

func TestLatticeSizeAndLevels(t *testing.T) {
	l := popLattice(t)
	if l.Size() != 8 {
		t.Fatalf("Size = %d, want 8", l.Size())
	}
	levels := l.Levels()
	wantWidths := []int{1, 3, 3, 1}
	if len(levels) != 4 {
		t.Fatalf("levels = %d", len(levels))
	}
	for k, w := range wantWidths {
		if len(levels[k]) != w {
			t.Errorf("level %d width = %d, want %d", k, len(levels[k]), w)
		}
		if l.LevelWidth(k) != w {
			t.Errorf("LevelWidth(%d) = %d, want %d", k, l.LevelWidth(k), w)
		}
		if len(l.Level(k)) != w {
			t.Errorf("Level(%d) = %d views, want %d", k, len(l.Level(k)), w)
		}
	}
	if l.LevelWidth(-1) != 0 || l.LevelWidth(9) != 0 {
		t.Error("out-of-range LevelWidth != 0")
	}
}

func TestLatticeTopApex(t *testing.T) {
	l := popLattice(t)
	if l.Top().Mask != 7 || l.Apex().Mask != 0 {
		t.Errorf("top=%b apex=%b", l.Top().Mask, l.Apex().Mask)
	}
}

func TestLatticeViewRange(t *testing.T) {
	l := popLattice(t)
	if _, err := l.View(7); err != nil {
		t.Errorf("View(7): %v", err)
	}
	if _, err := l.View(8); err == nil {
		t.Error("out-of-range mask accepted")
	}
}

func TestChildrenParents(t *testing.T) {
	l := popLattice(t)
	v := l.Facet.View(MaskFromBits(0, 1)) // country+lang
	children := l.Children(v)
	if len(children) != 2 {
		t.Fatalf("children = %v", children)
	}
	for _, c := range children {
		if c.Level() != 1 || !v.Covers(c) {
			t.Errorf("bad child %v", c)
		}
	}
	parents := l.Parents(v)
	if len(parents) != 1 || parents[0].Mask != 7 {
		t.Errorf("parents = %v", parents)
	}
	// Apex has no children; top has no parents.
	if len(l.Children(l.Apex())) != 0 {
		t.Error("apex has children")
	}
	if len(l.Parents(l.Top())) != 0 {
		t.Error("top has parents")
	}
}

func TestDescendantsAncestors(t *testing.T) {
	l := popLattice(t)
	v := l.Facet.View(MaskFromBits(0, 2))
	desc := l.Descendants(v)
	if len(desc) != 4 { // {}, {0}, {2}, {0,2}
		t.Fatalf("descendants = %v", desc)
	}
	for _, d := range desc {
		if !v.Covers(d) {
			t.Errorf("descendant %v not covered", d)
		}
	}
	anc := l.Ancestors(v)
	if len(anc) != 2 { // {0,2}, {0,1,2}
		t.Fatalf("ancestors = %v", anc)
	}
	for _, a := range anc {
		if !a.Covers(v) {
			t.Errorf("ancestor %v does not cover", a)
		}
	}
}

func TestCoveringViews(t *testing.T) {
	l := popLattice(t)
	candidates := []View{
		l.Facet.View(MaskFromBits(0, 1, 2)),
		l.Facet.View(MaskFromBits(0, 1)),
		l.Facet.View(MaskFromBits(1)),
	}
	covering := CoveringViews(candidates, MaskFromBits(1))
	if len(covering) != 3 {
		t.Fatalf("covering = %v", covering)
	}
	// Coarsest first.
	if covering[0].Level() != 1 || covering[2].Level() != 3 {
		t.Errorf("covering order = %v", covering)
	}
	covering = CoveringViews(candidates, MaskFromBits(0, 2))
	if len(covering) != 1 || covering[0].Mask != 7 {
		t.Errorf("covering for {0,2} = %v", covering)
	}
	if len(CoveringViews(nil, 0)) != 0 {
		t.Error("empty candidates should give empty cover")
	}
}

// TestLatticeOrderLaws checks the partial-order laws on the full lattice:
// reflexivity, antisymmetry, transitivity of Covers, and consistency of
// Children/Parents with Covers.
func TestLatticeOrderLaws(t *testing.T) {
	l := popLattice(t)
	vs := l.Views()
	for _, a := range vs {
		if !a.Covers(a) {
			t.Errorf("%v not reflexive", a)
		}
		for _, b := range vs {
			if a.Covers(b) && b.Covers(a) && a.Mask != b.Mask {
				t.Errorf("antisymmetry violated: %v %v", a, b)
			}
			for _, c := range vs {
				if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
					t.Errorf("transitivity violated: %v %v %v", a, b, c)
				}
			}
		}
	}
	for _, v := range vs {
		for _, c := range l.Children(v) {
			if c.Level() != v.Level()-1 || !v.Covers(c) {
				t.Errorf("child law violated: %v -> %v", v, c)
			}
		}
		for _, p := range l.Parents(v) {
			if p.Level() != v.Level()+1 || !p.Covers(v) {
				t.Errorf("parent law violated: %v -> %v", v, p)
			}
		}
	}
}

// TestMaskSubsetProperty: Subset agrees with the bitwise definition.
func TestMaskSubsetProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		ma, mb := Mask(a), Mask(b)
		want := uint32(a)&uint32(b) == uint32(a)
		return ma.Subset(mb) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestDescendantCountProperty: a view at level k has exactly 2^k
// descendants (including itself).
func TestDescendantCountProperty(t *testing.T) {
	l := popLattice(t)
	for _, v := range l.Views() {
		want := 1 << v.Level()
		if got := len(l.Descendants(v)); got != want {
			t.Errorf("view %v: %d descendants, want %d", v, got, want)
		}
		wantAnc := 1 << (len(l.Facet.Dims) - v.Level())
		if got := len(l.Ancestors(v)); got != wantAnc {
			t.Errorf("view %v: %d ancestors, want %d", v, got, wantAnc)
		}
	}
}

func TestPopCount(t *testing.T) {
	if PopCount(MaskFromBits(0, 3, 5)) != 3 {
		t.Error("PopCount wrong")
	}
}

func TestNewLatticeInvalidFacet(t *testing.T) {
	f := popFacet(t)
	f.Dims = nil
	if _, err := NewLattice(f); err == nil {
		t.Error("invalid facet accepted")
	}
}
