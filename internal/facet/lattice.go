package facet

import (
	"fmt"
	"math/bits"
	"sort"
)

// Lattice is the full view lattice V(F) of a facet: all 2^|X| dimension
// subsets, partially ordered by set inclusion. The top (full mask) is the
// finest view; the apex (empty mask) is the grand total.
type Lattice struct {
	Facet *Facet
	views []View // indexed by mask
}

// NewLattice enumerates the lattice of f.
func NewLattice(f *Facet) (*Lattice, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n := 1 << len(f.Dims)
	l := &Lattice{Facet: f, views: make([]View, n)}
	for m := 0; m < n; m++ {
		l.views[m] = f.View(Mask(m))
	}
	return l, nil
}

// Size returns the number of views, 2^|X|.
func (l *Lattice) Size() int { return len(l.views) }

// View returns the view for a mask.
func (l *Lattice) View(m Mask) (View, error) {
	if int(m) >= len(l.views) {
		return View{}, fmt.Errorf("facet: mask %b out of range for %d-dimension lattice", m, len(l.Facet.Dims))
	}
	return l.views[m], nil
}

// Views returns all views ordered by mask.
func (l *Lattice) Views() []View { return append([]View(nil), l.views...) }

// Top returns the finest view (all dimensions).
func (l *Lattice) Top() View { return l.views[len(l.views)-1] }

// Apex returns the coarsest view (no dimensions, grand total).
func (l *Lattice) Apex() View { return l.views[0] }

// Level returns the views with exactly k dimensions, ordered by mask.
func (l *Lattice) Level(k int) []View {
	var out []View
	for _, v := range l.views {
		if v.Level() == k {
			out = append(out, v)
		}
	}
	return out
}

// Levels returns the views grouped by level, from apex (level 0) upward.
func (l *Lattice) Levels() [][]View {
	out := make([][]View, len(l.Facet.Dims)+1)
	for _, v := range l.views {
		out[v.Level()] = append(out[v.Level()], v)
	}
	return out
}

// Children returns the views directly below v: one dimension removed.
func (l *Lattice) Children(v View) []View {
	var out []View
	m := uint32(v.Mask)
	for m != 0 {
		bit := m & (-m)
		out = append(out, l.views[v.Mask&^Mask(bit)])
		m &^= bit
	}
	return out
}

// Parents returns the views directly above v: one dimension added.
func (l *Lattice) Parents(v View) []View {
	var out []View
	full := uint32(l.Facet.FullMask())
	missing := full &^ uint32(v.Mask)
	for missing != 0 {
		bit := missing & (-missing)
		out = append(out, l.views[v.Mask|Mask(bit)])
		missing &^= bit
	}
	return out
}

// Descendants returns every view w ⊑ v (strictly below or equal, per the
// subset order), i.e. all roll-ups answerable from v, including v itself.
func (l *Lattice) Descendants(v View) []View {
	// Enumerate submasks of v.Mask via the standard subset-iteration trick.
	var out []View
	m := uint32(v.Mask)
	sub := m
	for {
		out = append(out, l.views[Mask(sub)])
		if sub == 0 {
			break
		}
		sub = (sub - 1) & m
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mask < out[j].Mask })
	return out
}

// Ancestors returns every view that covers v (supersets of its mask),
// including v itself, ordered by mask.
func (l *Lattice) Ancestors(v View) []View {
	var out []View
	for _, w := range l.views {
		if v.Mask.Subset(w.Mask) {
			out = append(out, w)
		}
	}
	return out
}

// CoveringViews returns, among the given candidate views, those that can
// answer queries over target (mask superset), sorted coarsest-first (fewest
// dimensions) so the first usable candidate tends to be the cheapest.
func CoveringViews(candidates []View, target Mask) []View {
	var out []View
	for _, v := range candidates {
		if target.Subset(v.Mask) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Level(), out[j].Level()
		if li != lj {
			return li < lj
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// LevelWidth returns the binomial count of views at level k, for report
// rendering without enumerating.
func (l *Lattice) LevelWidth(k int) int {
	d := len(l.Facet.Dims)
	if k < 0 || k > d {
		return 0
	}
	// C(d, k) with small d, exact in int.
	num, den := 1, 1
	for i := 0; i < k; i++ {
		num *= d - i
		den *= i + 1
	}
	return num / den
}

// MaskFromBits is a helper for tests: builds a mask from set bit positions.
func MaskFromBits(positions ...int) Mask {
	var m Mask
	for _, p := range positions {
		m |= 1 << p
	}
	return m
}

// PopCount exposes the level computation for reports.
func PopCount(m Mask) int { return bits.OnesCount32(uint32(m)) }
