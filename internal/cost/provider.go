// Package cost implements the six view-selection cost models of §3.1 of the
// SOFOS paper — Random, Number of triples, Number of aggregated values,
// Number of nodes, Learned, and User defined — behind one Model interface,
// together with the full-lattice statistics provider they read from and the
// measurement probes used to train/evaluate the learned model.
package cost

import (
	"fmt"
	"time"

	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/store"
	"sofos/internal/views"
)

// ViewStats bundles the per-view quantities the analytic models use.
type ViewStats struct {
	Mask        facet.Mask
	Groups      int // |Vi(G)|: number of aggregated values
	Triples     int // |G_Vi|: triples of the view's RDF encoding
	Nodes       int // |Ii ∪ Bi ∪ Li|
	Bytes       int64
	ComputeTime time.Duration // time to compute the view's contents from G
}

// BaseStats are the same quantities for the raw graph G, used as the cost of
// answering without any view.
type BaseStats struct {
	Triples int
	Nodes   int
	// PatternRows is the number of bindings the facet pattern produces on G
	// (the pre-aggregation result size) — the "aggregated values" analogue
	// for the raw graph.
	PatternRows int
}

// Provider precomputes the full lattice of a facet over a graph and serves
// exact per-view statistics. This mirrors the demo's "Exploration of the
// Full Lattice" step, which precomputes every level.
type Provider struct {
	Lattice *facet.Lattice
	data    map[facet.Mask]*views.Data
	stats   map[facet.Mask]ViewStats
	base    BaseStats
}

// NewProvider computes data for every view in the lattice: the top view is
// computed from the graph, every other view by exact roll-up from the top.
func NewProvider(g *store.Graph, l *facet.Lattice) (*Provider, error) {
	p := &Provider{
		Lattice: l,
		data:    make(map[facet.Mask]*views.Data, l.Size()),
		stats:   make(map[facet.Mask]ViewStats, l.Size()),
	}
	eng := engine.New(g)
	top, err := views.Compute(eng, l.Top())
	if err != nil {
		return nil, fmt.Errorf("cost: computing top view: %w", err)
	}
	p.data[l.Top().Mask] = top
	for _, v := range l.Views() {
		if v.Mask == l.Top().Mask {
			continue
		}
		d, err := views.RollUp(top, v)
		if err != nil {
			return nil, fmt.Errorf("cost: rolling up %s: %w", v, err)
		}
		// Re-time as a direct computation measure: the roll-up time is not
		// comparable to a from-base compute, so re-compute small views from
		// base lazily only when asked (see MeasureComputeTimes).
		p.data[v.Mask] = d
	}
	for mask, d := range p.data {
		st := views.ComputeStats(d)
		var bytes int64
		for _, grp := range d.Groups {
			for _, kv := range grp.Key {
				bytes += int64(len(kv.Term.Value) + 8)
			}
			bytes += int64(len(grp.Agg.Term.Value) + 24)
		}
		p.stats[mask] = ViewStats{
			Mask:        mask,
			Groups:      st.Groups,
			Triples:     st.Triples,
			Nodes:       st.Nodes,
			Bytes:       bytes,
			ComputeTime: d.ComputeTime,
		}
	}
	p.base = BaseStats{
		Triples:     g.Len(),
		Nodes:       g.DistinctNodes(),
		PatternRows: patternRows(top),
	}
	return p, nil
}

// patternRows lower-bounds the pre-aggregation binding count by the top
// view's group count (each group has at least one binding).
func patternRows(top *views.Data) int {
	n := top.NumGroups()
	if n == 0 {
		return 1
	}
	return n
}

// Data returns the precomputed contents of a view.
func (p *Provider) Data(m facet.Mask) (*views.Data, error) {
	d, ok := p.data[m]
	if !ok {
		return nil, fmt.Errorf("cost: no data for mask %b", m)
	}
	return d, nil
}

// Stats returns the statistics of a view.
func (p *Provider) Stats(m facet.Mask) (ViewStats, error) {
	s, ok := p.stats[m]
	if !ok {
		return ViewStats{}, fmt.Errorf("cost: no stats for mask %b", m)
	}
	return s, nil
}

// MustStats is Stats for masks known to exist (every mask in the lattice).
func (p *Provider) MustStats(m facet.Mask) ViewStats {
	s, err := p.Stats(m)
	if err != nil {
		panic(err)
	}
	return s
}

// Base returns the raw-graph statistics.
func (p *Provider) Base() BaseStats { return p.base }

// AllStats returns stats for every view ordered by mask.
func (p *Provider) AllStats() []ViewStats {
	out := make([]ViewStats, 0, len(p.stats))
	for _, v := range p.Lattice.Views() {
		out = append(out, p.stats[v.Mask])
	}
	return out
}

// TotalTriples sums the encoding sizes over the whole lattice — the cost of
// materializing everything, which the demo shows to be impractical.
func (p *Provider) TotalTriples() int {
	total := 0
	for _, s := range p.stats {
		total += s.Triples
	}
	return total
}
