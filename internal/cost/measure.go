package cost

import (
	"fmt"
	"math/rand"
	"time"

	"sofos/internal/facet"
	"sofos/internal/learned"
	"sofos/internal/rewrite"
	"sofos/internal/store"
	"sofos/internal/views"
)

// MeasureViewTimes measures, for each sampled view, the average wall-clock
// time to answer probe queries when (only) that view is materialized. These
// ground-truth times train the learned model and anchor the cost-fidelity
// experiment (E5): they are what every cost model is trying to predict.
//
// Probes are roll-up queries over random dimension subsets of the view, so
// every probe is answerable by the view under test.
func MeasureViewTimes(base *store.Graph, l *facet.Lattice, sample []facet.View, probesPerView int, seed int64) (map[facet.Mask]time.Duration, error) {
	if probesPerView <= 0 {
		probesPerView = 3
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(map[facet.Mask]time.Duration, len(sample))
	catalog := views.NewCatalog(base, l.Facet)
	rw := rewrite.New(catalog)
	for _, v := range sample {
		if _, err := catalog.Materialize(v); err != nil {
			return nil, fmt.Errorf("cost: materializing probe view %s: %w", v, err)
		}
		var total time.Duration
		n := 0
		for p := 0; p < probesPerView; p++ {
			sub := randomSubmask(rng, v.Mask)
			q := l.Facet.View(sub).AnalyticalQuery()
			ans, err := rw.Answer(q)
			if err != nil {
				return nil, fmt.Errorf("cost: probing %s: %w", v, err)
			}
			if !ans.UsedView() {
				return nil, fmt.Errorf("cost: probe for %s unexpectedly fell back to base: %s", v, ans.Reason)
			}
			total += ans.Elapsed
			n++
		}
		out[v.Mask] = total / time.Duration(n)
		catalog.Drop(v)
	}
	return out, nil
}

// MeasureBaseTime measures the average time to answer probe queries directly
// on the base graph (no views), at random granularities of the facet.
func MeasureBaseTime(base *store.Graph, l *facet.Lattice, probes int, seed int64) (time.Duration, error) {
	if probes <= 0 {
		probes = 3
	}
	rng := rand.New(rand.NewSource(seed))
	catalog := views.NewCatalog(base, l.Facet)
	rw := rewrite.New(catalog) // empty catalog: always base
	var total time.Duration
	for p := 0; p < probes; p++ {
		sub := randomSubmask(rng, l.Facet.FullMask())
		q := l.Facet.View(sub).AnalyticalQuery()
		ans, err := rw.Answer(q)
		if err != nil {
			return 0, fmt.Errorf("cost: base probe: %w", err)
		}
		total += ans.Elapsed
	}
	return total / time.Duration(probes), nil
}

// randomSubmask picks a uniformly random submask of m (possibly m itself or
// empty).
func randomSubmask(rng *rand.Rand, m facet.Mask) facet.Mask {
	var out facet.Mask
	for i := 0; i < 32; i++ {
		bit := facet.Mask(1) << i
		if m&bit != 0 && rng.Intn(2) == 0 {
			out |= bit
		}
	}
	return out
}

// TrainConfig configures TrainLearnedModel.
type TrainConfig struct {
	ProbesPerView int   // probe queries per sampled view (default 3)
	SampleLimit   int   // max views to measure; 0 = whole lattice
	Seed          int64 // sampling, probing, and net-init seed
	Hidden        []int // hidden layer widths (default [16, 8])
	Epochs        int   // training epochs (default 400)
}

// TrainResult is the trained model plus its training diagnostics.
type TrainResult struct {
	Model      *LearnedModel
	LossCurve  []float64
	Samples    int
	Times      map[facet.Mask]time.Duration // measured ground truth
	HoldoutErr float64                      // mean relative error on held-out views (0 if none held out)
}

// TrainLearnedModel measures a sample of views, encodes them, and fits the
// regression network, reproducing §3.1's offline training phase.
func TrainLearnedModel(base *store.Graph, l *facet.Lattice, cfg TrainConfig) (*TrainResult, error) {
	if cfg.ProbesPerView <= 0 {
		cfg.ProbesPerView = 3
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{16, 8}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 400
	}
	all := l.Views()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := append([]facet.View(nil), all...)
	if cfg.SampleLimit > 0 && cfg.SampleLimit < len(sample) {
		rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
		sample = sample[:cfg.SampleLimit]
	}
	times, err := MeasureViewTimes(base, l, sample, cfg.ProbesPerView, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	enc := learned.NewEncoder(l.Facet, base.Snapshot())
	var samples []learned.Sample
	for _, v := range sample {
		micros := float64(times[v.Mask].Microseconds())
		samples = append(samples, learned.Sample{
			X: enc.Encode(v),
			Y: learned.LogMicros(micros),
		})
	}
	norm := learned.FitNormalizer(samples)
	normalized := norm.ApplyAll(samples)
	net, err := learned.NewMLP(enc.Dim(), cfg.Hidden, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	curve, err := net.Train(normalized, learned.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.01, Momentum: 0.9, Seed: cfg.Seed + 3,
	})
	if err != nil {
		return nil, err
	}
	baseTime, err := MeasureBaseTime(base, l, cfg.ProbesPerView, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	model := &LearnedModel{
		Encoder:    enc,
		Net:        net,
		Normalizer: norm,
		Base:       float64(baseTime.Microseconds()),
	}
	res := &TrainResult{Model: model, LossCurve: curve, Samples: len(samples), Times: times}
	// Holdout relative error over views not in the sample.
	var relSum float64
	var relN int
	if cfg.SampleLimit > 0 && cfg.SampleLimit < len(all) {
		inSample := make(map[facet.Mask]bool, len(sample))
		for _, v := range sample {
			inSample[v.Mask] = true
		}
		var holdout []facet.View
		for _, v := range all {
			if !inSample[v.Mask] {
				holdout = append(holdout, v)
			}
		}
		hTimes, err := MeasureViewTimes(base, l, holdout, cfg.ProbesPerView, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		for _, v := range holdout {
			actual := float64(hTimes[v.Mask].Microseconds())
			if actual <= 0 {
				continue
			}
			pred := model.Cost(v)
			rel := (pred - actual) / actual
			if rel < 0 {
				rel = -rel
			}
			relSum += rel
			relN++
		}
	}
	if relN > 0 {
		res.HoldoutErr = relSum / float64(relN)
	}
	return res, nil
}
