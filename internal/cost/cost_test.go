package cost

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// fixture builds a graph and 3-dimension facet.
func fixture(t testing.TB) (*store.Graph, *facet.Lattice) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < 6; ci++ {
		for li := 0; li < 4; li++ {
			for yi := 0; yi < 2; yi++ {
				if (ci+li+yi)%5 == 0 {
					continue
				}
				obs := ex(fmt.Sprintf("o%d_%d_%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2018 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(900) + 100))})
			}
		}
	}
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`)
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	l, err := facet.NewLattice(f)
	if err != nil {
		t.Fatal(err)
	}
	return g, l
}

func TestProviderComputesWholeLattice(t *testing.T) {
	g, l := fixture(t)
	p, err := NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.AllStats()) != l.Size() {
		t.Fatalf("stats for %d views, want %d", len(p.AllStats()), l.Size())
	}
	for _, v := range l.Views() {
		st, err := p.Stats(v.Mask)
		if err != nil {
			t.Fatalf("Stats(%s): %v", v, err)
		}
		if st.Groups <= 0 || st.Triples <= 0 || st.Nodes <= 0 {
			t.Errorf("view %s has empty stats %+v", v, st)
		}
		d, err := p.Data(v.Mask)
		if err != nil || d.NumGroups() != st.Groups {
			t.Errorf("data/stats mismatch for %s", v)
		}
	}
	if _, err := p.Stats(facet.Mask(999)); err == nil {
		t.Error("unknown mask accepted")
	}
	if _, err := p.Data(facet.Mask(999)); err == nil {
		t.Error("unknown mask accepted by Data")
	}
	if p.TotalTriples() <= 0 {
		t.Error("TotalTriples not positive")
	}
	base := p.Base()
	if base.Triples != g.Len() || base.Nodes != g.DistinctNodes() || base.PatternRows <= 0 {
		t.Errorf("base stats = %+v", base)
	}
}

func TestProviderMonotonicity(t *testing.T) {
	// Coarser views have at most as many groups as finer ones.
	g, l := fixture(t)
	p, err := NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range l.Views() {
		for _, c := range l.Children(v) {
			if p.MustStats(c.Mask).Groups > p.MustStats(v.Mask).Groups {
				t.Errorf("child %s has more groups than parent %s", c, v)
			}
		}
	}
}

func TestRandomModel(t *testing.T) {
	_, l := fixture(t)
	m := &RandomModel{Seed: 5}
	if m.Name() != "random" {
		t.Error("name")
	}
	if err := Validate(m, l); err != nil {
		t.Fatal(err)
	}
	// Deterministic under a seed, different across seeds (for some view).
	m2 := &RandomModel{Seed: 5}
	m3 := &RandomModel{Seed: 6}
	diff := false
	for _, v := range l.Views() {
		if m.Cost(v) != m2.Cost(v) {
			t.Fatal("same seed differs")
		}
		if m.Cost(v) != m3.Cost(v) {
			diff = true
		}
		if c := m.Cost(v); c <= 0 || c >= m.BaseCost() {
			t.Errorf("cost %f outside (0, base)", c)
		}
	}
	if !diff {
		t.Error("different seeds never differ")
	}
}

func TestAnalyticModels(t *testing.T) {
	g, l := fixture(t)
	p, err := NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{
		&TriplesModel{Provider: p},
		&AggValuesModel{Provider: p},
		&NodesModel{Provider: p},
	}
	names := map[string]bool{}
	for _, m := range models {
		if err := Validate(m, l); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		names[m.Name()] = true
		if m.BaseCost() <= 0 {
			t.Errorf("%s base cost = %f", m.Name(), m.BaseCost())
		}
	}
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
	// Cross-check the defining quantities on the top view.
	top := l.Top()
	st := p.MustStats(top.Mask)
	if got := (&TriplesModel{Provider: p}).Cost(top); got != float64(st.Triples) {
		t.Errorf("triples cost = %f, want %d", got, st.Triples)
	}
	if got := (&AggValuesModel{Provider: p}).Cost(top); got != float64(st.Groups) {
		t.Errorf("aggvalues cost = %f, want %d", got, st.Groups)
	}
	if got := (&NodesModel{Provider: p}).Cost(top); got != float64(st.Nodes) {
		t.Errorf("nodes cost = %f, want %d", got, st.Nodes)
	}
}

func TestModelsDisagreeOnRanking(t *testing.T) {
	// The paper's core observation: the relational proxy (#triples) and the
	// RDF-aware models need not produce the same ranking. At minimum the
	// numeric scales differ; check the ratio triples/nodes is not constant
	// across views (so rankings can diverge).
	g, l := fixture(t)
	p, err := NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	tm := &TriplesModel{Provider: p}
	nm := &NodesModel{Provider: p}
	ratios := map[string]bool{}
	for _, v := range l.Views() {
		if v.Mask == 0 {
			continue
		}
		r := tm.Cost(v) / nm.Cost(v)
		ratios[fmt.Sprintf("%.3f", r)] = true
	}
	if len(ratios) < 2 {
		t.Errorf("triples/nodes ratio constant across views: %v", ratios)
	}
}

func TestUserModel(t *testing.T) {
	_, l := fixture(t)
	chosen := []facet.View{l.Top(), l.Facet.View(facet.MaskFromBits(0))}
	m := NewUserSelection("picked", chosen)
	if m.Name() != "picked" {
		t.Error("label not used")
	}
	if (&UserModel{}).Name() != "user" {
		t.Error("default name wrong")
	}
	for _, v := range chosen {
		if m.Cost(v) != 0 {
			t.Errorf("chosen view cost = %f", m.Cost(v))
		}
	}
	if !math.IsInf(m.Cost(l.Facet.View(facet.MaskFromBits(1))), 1) {
		t.Error("unchosen view not infinite")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	_, l := fixture(t)
	bad := &UserModel{BaseC: -1}
	if err := Validate(bad, l); err == nil {
		t.Error("negative base cost accepted")
	}
	nan := &UserModel{BaseC: 1, Costs: map[facet.Mask]float64{0: math.NaN()}}
	if err := Validate(nan, l); err == nil {
		t.Error("NaN cost accepted")
	}
}

func TestMeasureViewTimes(t *testing.T) {
	g, l := fixture(t)
	sample := []facet.View{l.Top(), l.Facet.View(facet.MaskFromBits(1))}
	times, err := MeasureViewTimes(g, l, sample, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("times = %v", times)
	}
	for m, d := range times {
		if d <= 0 {
			t.Errorf("mask %b time = %v", m, d)
		}
	}
	base, err := MeasureBaseTime(g, l, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Errorf("base time = %v", base)
	}
}

func TestTrainLearnedModel(t *testing.T) {
	g, l := fixture(t)
	res, err := TrainLearnedModel(g, l, TrainConfig{ProbesPerView: 2, Seed: 3, Epochs: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != l.Size() {
		t.Errorf("samples = %d, want %d", res.Samples, l.Size())
	}
	if len(res.LossCurve) != 150 {
		t.Errorf("loss curve length = %d", len(res.LossCurve))
	}
	first, last := res.LossCurve[0], res.LossCurve[len(res.LossCurve)-1]
	if !(last < first) {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if err := Validate(res.Model, l); err != nil {
		t.Errorf("trained model invalid: %v", err)
	}
	if res.Model.BaseCost() <= 0 {
		t.Errorf("learned base cost = %f", res.Model.BaseCost())
	}
	if res.Model.Name() != "learned" {
		t.Error("name")
	}
}

func TestTrainLearnedModelWithHoldout(t *testing.T) {
	g, l := fixture(t)
	res, err := TrainLearnedModel(g, l, TrainConfig{ProbesPerView: 2, Seed: 3, Epochs: 100, SampleLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 5 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.HoldoutErr <= 0 {
		t.Errorf("holdout error = %f, expected positive", res.HoldoutErr)
	}
}

func TestRandomSubmask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := facet.MaskFromBits(0, 2, 4)
	for i := 0; i < 100; i++ {
		sub := randomSubmask(rng, m)
		if !sub.Subset(m) {
			t.Fatalf("submask %b not a subset of %b", sub, m)
		}
	}
}
