package cost

import (
	"testing"

	"sofos/internal/benchkit"
	"sofos/internal/facet"
)

func TestEstimatedModelBasics(t *testing.T) {
	g, l := fixture(t)
	m := NewEstimatedModel(l.Facet, g.Snapshot())
	if m.Name() != "estimated" {
		t.Error("name")
	}
	if err := Validate(m, l); err != nil {
		t.Fatal(err)
	}
	if m.BaseCost() <= 0 {
		t.Errorf("base cost = %f", m.BaseCost())
	}
	// Apex estimates one group.
	if got := m.Cost(l.Apex()); got != 1 {
		t.Errorf("apex estimate = %f", got)
	}
	// Estimates never exceed the pattern-rows upper bound.
	for _, v := range l.Views() {
		if c := m.Cost(v); c > m.BaseCost()+1e-9 {
			t.Errorf("view %s estimate %f exceeds rows bound %f", v, c, m.BaseCost())
		}
	}
}

func TestEstimatedModelMonotone(t *testing.T) {
	g, l := fixture(t)
	m := NewEstimatedModel(l.Facet, g.Snapshot())
	for _, v := range l.Views() {
		for _, p := range l.Parents(v) {
			if m.Cost(p) < m.Cost(v)-1e-9 {
				t.Errorf("estimate not monotone: %s=%f > parent %s=%f",
					v, m.Cost(v), p, m.Cost(p))
			}
		}
	}
}

// TestEstimatedModelTracksExactModel: the estimate must rank views
// similarly to the exact aggregated-values model (it approximates the same
// quantity), with high rank correlation on the test lattice.
func TestEstimatedModelTracksExactModel(t *testing.T) {
	g, l := fixture(t)
	p, err := NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	exact := &AggValuesModel{Provider: p}
	est := NewEstimatedModel(l.Facet, g.Snapshot())
	var xs, ys []float64
	for _, v := range l.Views() {
		xs = append(xs, est.Cost(v))
		ys = append(ys, exact.Cost(v))
	}
	rho := benchkit.Spearman(xs, ys)
	if rho < 0.8 {
		t.Errorf("estimate/exact Spearman = %f, want >= 0.8", rho)
	}
}

func TestEstimatedModelSelectsReasonably(t *testing.T) {
	// Selection with the estimated model must be valid and non-empty.
	g, l := fixture(t)
	m := NewEstimatedModel(l.Facet, g.Snapshot())
	sel := greedyPick(t, l, m, 3)
	if len(sel) == 0 {
		t.Fatal("estimated model selected nothing")
	}
	seen := map[facet.Mask]bool{}
	for _, v := range sel {
		if seen[v.Mask] {
			t.Error("duplicate pick")
		}
		seen[v.Mask] = true
	}
}

// greedyPick inlines the HRU loop to avoid importing selection (which would
// create an import cycle in tests only — kept local for clarity).
func greedyPick(t *testing.T, l *facet.Lattice, m Model, k int) []facet.View {
	t.Helper()
	costTo := make(map[facet.Mask]float64, l.Size())
	for _, v := range l.Views() {
		costTo[v.Mask] = m.BaseCost()
	}
	var out []facet.View
	chosen := map[facet.Mask]bool{}
	for pick := 0; pick < k; pick++ {
		best, bestBenefit := facet.View{}, 0.0
		found := false
		for _, v := range l.Views() {
			if chosen[v.Mask] {
				continue
			}
			benefit := 0.0
			for _, w := range l.Descendants(v) {
				if gain := costTo[w.Mask] - m.Cost(v); gain > 0 {
					benefit += gain
				}
			}
			if !found || benefit > bestBenefit {
				found, best, bestBenefit = true, v, benefit
			}
		}
		if !found || bestBenefit <= 0 {
			break
		}
		chosen[best.Mask] = true
		out = append(out, best)
		for _, w := range l.Descendants(best) {
			if c := m.Cost(best); c < costTo[w.Mask] {
				costTo[w.Mask] = c
			}
		}
	}
	return out
}
