package cost

import (
	"fmt"
	"math"

	"sofos/internal/facet"
	"sofos/internal/learned"
)

// Model estimates, for a view Vi of the lattice, the cost C(Vi) a query pays
// when answered from Vi (§3: "a cost function C : V(F) → R+ predicting the
// running time of any query Q if the view Vi is materialized"). BaseCost is
// the cost of answering from the raw graph G, used by the greedy selector as
// the starting point every view's benefit is measured against.
type Model interface {
	Name() string
	Cost(v facet.View) float64
	BaseCost() float64
}

// --- 1. Random ---

// RandomModel assigns each view a deterministic pseudo-random cost in (0,1).
// The paper defines the random baseline as the constant function C(Vi)=1,
// whose greedy selection degenerates to an arbitrary k-subset; jittering the
// constant realizes exactly that arbitrary choice while keeping runs
// reproducible under a seed.
type RandomModel struct {
	Seed int64
}

// Name implements Model.
func (m *RandomModel) Name() string { return "random" }

// Cost implements Model with a splitmix64-style hash of (seed, mask).
func (m *RandomModel) Cost(v facet.View) float64 {
	x := uint64(m.Seed)*0x9E3779B97F4A7C15 + uint64(v.Mask)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x%1_000_000)/1_000_000 + 1e-9
}

// BaseCost implements Model: answering from G always costs more than any
// view under the random proxy.
func (m *RandomModel) BaseCost() float64 { return 2 }

// --- 2. Number of triples ---

// TriplesModel is the direct adaptation of relational tuple counting:
// C(Vi) = |G_Vi|, the triple count of the view's RDF encoding.
type TriplesModel struct {
	Provider *Provider
}

// Name implements Model.
func (m *TriplesModel) Name() string { return "triples" }

// Cost implements Model.
func (m *TriplesModel) Cost(v facet.View) float64 {
	return float64(m.Provider.MustStats(v.Mask).Triples)
}

// BaseCost implements Model: the triple count of G.
func (m *TriplesModel) BaseCost() float64 { return float64(m.Provider.Base().Triples) }

// --- 3. Number of aggregated values ---

// AggValuesModel is the first RDF-aware model: C(Vi) = |Vi(G)|, the number
// of aggregated results the view stores.
type AggValuesModel struct {
	Provider *Provider
}

// Name implements Model.
func (m *AggValuesModel) Name() string { return "aggvalues" }

// Cost implements Model.
func (m *AggValuesModel) Cost(v facet.View) float64 {
	return float64(m.Provider.MustStats(v.Mask).Groups)
}

// BaseCost implements Model: the pre-aggregation binding count on G.
func (m *AggValuesModel) BaseCost() float64 { return float64(m.Provider.Base().PatternRows) }

// --- 4. Number of nodes ---

// NodesModel is the second RDF-aware model: C(Vi) = |Ii ∪ Bi ∪ Li|, the
// count of distinct nodes in the view's subgraph. Unlike triple counts, node
// counts de-duplicate shared dimension values, which is precisely where this
// model's ranking diverges from the relational proxy.
type NodesModel struct {
	Provider *Provider
}

// Name implements Model.
func (m *NodesModel) Name() string { return "nodes" }

// Cost implements Model.
func (m *NodesModel) Cost(v facet.View) float64 {
	return float64(m.Provider.MustStats(v.Mask).Nodes)
}

// BaseCost implements Model: the node count of G.
func (m *NodesModel) BaseCost() float64 { return float64(m.Provider.Base().Nodes) }

// --- 5. Learned ---

// LearnedModel wraps a trained regression network f : V(F) → R predicting
// per-view query time (§3.1's learned cost).
type LearnedModel struct {
	Encoder    *learned.Encoder
	Net        *learned.MLP
	Normalizer *learned.Normalizer
	Base       float64 // measured/predicted cost of answering from G
}

// Name implements Model.
func (m *LearnedModel) Name() string { return "learned" }

// Cost implements Model: the predicted running time (µs, unlogged).
func (m *LearnedModel) Cost(v facet.View) float64 {
	x := m.Encoder.Encode(v)
	if m.Normalizer != nil {
		x = m.Normalizer.Apply(x)
	}
	y, err := m.Net.Predict(x)
	if err != nil {
		// The encoder and network are constructed together; a width mismatch
		// is a programming error, surfaced as an infinite cost.
		return math.Inf(1)
	}
	c := learned.UnlogMicros(y)
	if c < 0 {
		c = 0
	}
	return c
}

// BaseCost implements Model.
func (m *LearnedModel) BaseCost() float64 { return m.Base }

// --- 6. User defined ---

// UserModel lets the user act as the cost function by assigning explicit
// costs (or simply marking chosen views with cost 0 and everything else
// +Inf, which makes greedy selection pick exactly the marked views).
type UserModel struct {
	Label string
	Costs map[facet.Mask]float64
	BaseC float64
}

// NewUserSelection builds a UserModel that forces the greedy selector to
// pick exactly the given views, mirroring the demo's "User Selected Views"
// step.
func NewUserSelection(label string, chosen []facet.View) *UserModel {
	m := &UserModel{Label: label, Costs: make(map[facet.Mask]float64, len(chosen)), BaseC: 1}
	for _, v := range chosen {
		m.Costs[v.Mask] = 0
	}
	return m
}

// Name implements Model.
func (m *UserModel) Name() string {
	if m.Label == "" {
		return "user"
	}
	return m.Label
}

// Cost implements Model: assigned cost, or +Inf for unassigned views.
func (m *UserModel) Cost(v facet.View) float64 {
	if c, ok := m.Costs[v.Mask]; ok {
		return c
	}
	return math.Inf(1)
}

// BaseCost implements Model.
func (m *UserModel) BaseCost() float64 { return m.BaseC }

// Validate checks that a model produces finite non-negative costs across a
// lattice (used by tests and the CLI before running selection).
func Validate(m Model, l *facet.Lattice) error {
	if m.BaseCost() < 0 {
		return fmt.Errorf("cost: model %s has negative base cost", m.Name())
	}
	for _, v := range l.Views() {
		c := m.Cost(v)
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("cost: model %s produced invalid cost %f for %s", m.Name(), c, v)
		}
	}
	return nil
}
