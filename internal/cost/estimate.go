package cost

import (
	"math"

	"sofos/internal/facet"
	"sofos/internal/store"
)

// EstimatedModel approximates the number of aggregated values of a view from
// graph statistics alone — no lattice precomputation. It is this repo's step
// toward the "native graph-aware model" the paper calls for: where the
// analytic models need every view's exact contents (an expensive offline
// pass, the Provider), this model prices a view in O(|dims|) from predicate
// statistics.
//
// The estimate combines the independence assumption (group count ≈ product
// of dimension domain sizes) with the upper bound given by the pattern's
// pre-aggregation row count:
//
//	Ĉ(V) = min( Π_{d ∈ dims(V)} |dom(d)| , rows(P) )
//
// where |dom(d)| is the distinct-object (or subject) count of the predicate
// binding dimension d, and rows(P) is a join-cardinality estimate of the
// facet pattern.
type EstimatedModel struct {
	facet    *facet.Facet
	domains  []float64 // per-dimension domain-size estimates
	rows     float64   // pattern row estimate (upper bound on groups)
	baseCost float64
}

// NewEstimatedModel builds the model from a statistics snapshot.
func NewEstimatedModel(f *facet.Facet, stats *store.Stats) *EstimatedModel {
	m := &EstimatedModel{facet: f}
	m.domains = make([]float64, len(f.Dims))
	for i, d := range f.Dims {
		m.domains[i] = domainSize(f, stats, d)
	}
	m.rows = patternRowEstimate(f, stats)
	m.baseCost = m.rows
	return m
}

// domainSize estimates a dimension's value-domain size from the statistics
// of the predicate binding it. Predicate stats come from the snapshot's
// indexed lookup, which the store reads off POS permutation range lengths.
func domainSize(f *facet.Facet, stats *store.Stats, varName string) float64 {
	for _, tp := range f.Pattern.Triples {
		if tp.P.IsVar {
			continue
		}
		ps, ok := stats.Predicate(tp.P.Term.Value)
		if !ok {
			continue
		}
		if tp.O.IsVar && tp.O.Var == varName {
			return float64(ps.DistinctObjects)
		}
		if tp.S.IsVar && tp.S.Var == varName {
			return float64(ps.DistinctSubjects)
		}
	}
	return float64(stats.Triples) // unknown binding: pessimistic
}

// patternRowEstimate estimates the pre-aggregation binding count of the
// facet pattern with the classic independence heuristic: the star join's
// row count is driven by its largest predicate extension, expanded by the
// average fan-out of each additional pattern.
func patternRowEstimate(f *facet.Facet, stats *store.Stats) float64 {
	rows := 1.0
	for _, tp := range f.Pattern.Triples {
		if tp.P.IsVar {
			rows *= math.Sqrt(float64(stats.Triples) + 1)
			continue
		}
		ps, ok := stats.Predicate(tp.P.Term.Value)
		if !ok || ps.Count == 0 {
			return 1
		}
		count := float64(ps.Count)
		// Each pattern multiplies rows by its average fan-out per already
		// bound subject; for star patterns this is count / distinctSubjects.
		ds := float64(ps.DistinctSubjects)
		if ds == 0 {
			ds = 1
		}
		if rows == 1 {
			rows = count
		} else {
			rows *= count / ds
		}
	}
	return rows
}

// Name implements Model.
func (m *EstimatedModel) Name() string { return "estimated" }

// Cost implements Model.
func (m *EstimatedModel) Cost(v facet.View) float64 {
	groups := 1.0
	for i := range m.facet.Dims {
		if v.Mask&(1<<i) != 0 {
			groups *= m.domains[i]
		}
	}
	if groups > m.rows {
		groups = m.rows
	}
	return groups
}

// BaseCost implements Model.
func (m *EstimatedModel) BaseCost() float64 { return m.baseCost }

// interface guard: EstimatedModel must satisfy Model like the other six.
var _ Model = (*EstimatedModel)(nil)
