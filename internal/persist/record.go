package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"sofos/internal/rdf"
)

// Record is one durably logged committed update batch: the effective delta
// the batch applied (store.Delta's wire content — net inserts and deletes
// plus the graph-version interval it moved across) together with the serving
// metadata replay needs to land on the exact acknowledged state.
type Record struct {
	// FromVersion and ToVersion are the base graph's version immediately
	// before and after the batch. Replay checks FromVersion against the
	// recovering graph's version, so a gap in the chain is detected instead
	// of silently producing a divergent graph.
	FromVersion int64
	ToVersion   int64

	// Generation is the catalog generation the batch was acknowledged at —
	// after the commit and, for eager batches, after the refresh. Replay
	// forwards the recovered catalog's counter to it, so /stats reports the
	// exact pre-crash generation.
	Generation int64

	// Eager records whether the batch was maintained eagerly; replay repeats
	// the same maintenance so recovered staleness matches the live run.
	Eager bool

	// Inserts and Deletes are the batch's effective delta: re-applying them
	// to the pre-batch graph state reproduces the post-batch state exactly.
	Inserts []rdf.Triple
	Deletes []rdf.Triple
}

// recordFormat versions the payload layout.
const recordFormat = 1

// Len is the batch's |ΔG|.
func (r *Record) Len() int { return len(r.Inserts) + len(r.Deletes) }

// encode renders the payload (the bytes the segment CRC covers).
//
//	format (1 byte)
//	fromVersion, toVersion, generation (varint)
//	eager (1 byte)
//	insert count (uvarint), inserts; delete count (uvarint), deletes
//	  per triple: S, P, O terms (kind byte + value/datatype/lang strings)
func (r *Record) encode() []byte {
	var b bytes.Buffer
	var buf [binary.MaxVarintLen64]byte
	varint := func(v int64) { b.Write(buf[:binary.PutVarint(buf[:], v)]) }
	uvarint := func(v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
	str := func(s string) { uvarint(uint64(len(s))); b.WriteString(s) }
	term := func(t rdf.Term) { b.WriteByte(byte(t.Kind)); str(t.Value); str(t.Datatype); str(t.Lang) }
	triples := func(ts []rdf.Triple) {
		uvarint(uint64(len(ts)))
		for _, t := range ts {
			term(t.S)
			term(t.P)
			term(t.O)
		}
	}
	b.WriteByte(recordFormat)
	varint(r.FromVersion)
	varint(r.ToVersion)
	varint(r.Generation)
	if r.Eager {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	triples(r.Inserts)
	triples(r.Deletes)
	return b.Bytes()
}

// decodeRecord inverts encode. The payload has already passed its checksum,
// so errors here mean a format mismatch, not transport damage.
func decodeRecord(payload []byte) (*Record, error) {
	br := bytes.NewReader(payload)
	format, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("record format: %w", err)
	}
	if format != recordFormat {
		return nil, fmt.Errorf("unsupported record format %d", format)
	}
	rec := &Record{}
	if rec.FromVersion, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("record from-version: %w", err)
	}
	if rec.ToVersion, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("record to-version: %w", err)
	}
	if rec.Generation, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("record generation: %w", err)
	}
	eager, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("record eager flag: %w", err)
	}
	if eager > 1 {
		return nil, fmt.Errorf("invalid eager flag %d", eager)
	}
	rec.Eager = eager == 1
	if rec.Inserts, err = decodeTriples(br); err != nil {
		return nil, fmt.Errorf("record inserts: %w", err)
	}
	if rec.Deletes, err = decodeTriples(br); err != nil {
		return nil, fmt.Errorf("record deletes: %w", err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after record", br.Len())
	}
	return rec, nil
}

// decodeTriples reads one length-prefixed triple block.
func decodeTriples(br *bytes.Reader) ([]rdf.Triple, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("count: %w", err)
	}
	// Every triple needs ≥ 12 payload bytes, so the remaining length bounds
	// the count honestly; a corrupt count fails here instead of allocating.
	// The capacity hint is clamped separately: a count that merely *fits*
	// the payload could still demand ~170× the payload in Triple headers
	// up front, so oversized batches grow by append and fail on the reads.
	if n > uint64(br.Len()) {
		return nil, fmt.Errorf("count %d exceeds remaining payload", n)
	}
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	ts := make([]rdf.Triple, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var t rdf.Triple
		if t.S, err = decodeTerm(br); err != nil {
			return nil, fmt.Errorf("triple %d subject: %w", i, err)
		}
		if t.P, err = decodeTerm(br); err != nil {
			return nil, fmt.Errorf("triple %d predicate: %w", i, err)
		}
		if t.O, err = decodeTerm(br); err != nil {
			return nil, fmt.Errorf("triple %d object: %w", i, err)
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// decodeTerm reads one term.
func decodeTerm(br *bytes.Reader) (rdf.Term, error) {
	var t rdf.Term
	kind, err := br.ReadByte()
	if err != nil {
		return t, err
	}
	if kind > byte(rdf.KindLiteral) {
		return t, fmt.Errorf("invalid term kind %d", kind)
	}
	t.Kind = rdf.TermKind(kind)
	if t.Value, err = decodeString(br); err != nil {
		return t, err
	}
	if t.Datatype, err = decodeString(br); err != nil {
		return t, err
	}
	if t.Lang, err = decodeString(br); err != nil {
		return t, err
	}
	return t, nil
}

// decodeString reads one length-prefixed string, bounded by the remaining
// payload.
func decodeString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", fmt.Errorf("string length %d exceeds remaining payload", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
