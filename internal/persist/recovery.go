package persist

import (
	"log/slog"
	"time"
)

// RecoveryStats reports what one recovery (core.Restore) did — surfaced
// through the server's /v1/stats endpoint and the boot log so operators can
// verify that recovery replayed only the WAL suffix, not the whole history.
// It lives here rather than in core so the API layer can reference it
// without importing the system builder.
type RecoveryStats struct {
	// Checkpoint identity and the state it restored directly.
	CheckpointSeq        uint64 `json:"checkpoint_seq"`
	CheckpointVersion    int64  `json:"checkpoint_graph_version"`
	CheckpointGeneration int64  `json:"checkpoint_generation"`
	RestoredViews        int    `json:"restored_views"`
	RestoredTriples      int    `json:"restored_triples"`

	// WAL replay outcome.
	ReplayedBatches      int  `json:"replayed_batches"`
	ReplayedTriples      int  `json:"replayed_triples"` // Σ|ΔG| over replayed batches
	SkippedBatches       int  `json:"skipped_batches"`  // already inside the checkpoint
	EagerRefreshes       int  `json:"eager_refreshes"`
	IncrementalRefreshes int  `json:"incremental_refreshes"`
	TornTail             bool `json:"torn_tail"` // final record cut by the crash; never acknowledged

	// Final state and cost.
	Generation   int64         `json:"generation"`
	GraphVersion int64         `json:"graph_version"`
	SnapshotLoad time.Duration `json:"-"`
	Elapsed      time.Duration `json:"-"`

	// Microsecond mirrors for JSON consumers.
	SnapshotLoadUS int64 `json:"snapshot_load_us"`
	ElapsedUS      int64 `json:"elapsed_us"`
}

// LogRecovery writes a one-line replay summary to the structured logger —
// the boot-time progress line sofos-serve emits.
func (r *RecoveryStats) LogRecovery() {
	slog.Info("recovered checkpoint",
		"checkpoint_seq", r.CheckpointSeq,
		"generation", r.Generation,
		"triples", r.RestoredTriples,
		"views", r.RestoredViews,
		"wal_batches", r.ReplayedBatches,
		"wal_triples", r.ReplayedTriples,
		"wal_skipped", r.SkippedBatches,
		"torn_tail", r.TornTail,
		"elapsed", r.Elapsed.Round(time.Millisecond),
		"snapshot_load", r.SnapshotLoad.Round(time.Millisecond))
}
