// Package persist is the durability subsystem of the serving layer: a
// write-ahead log of committed update batches plus checkpointed snapshots of
// the base graph and catalog state, so a killed sofos-serve process restarts
// from its data directory with snapshot-load + WAL-suffix replay instead of
// rebuilding the graph from generators and rematerializing every view.
//
// Three pieces cooperate:
//
//   - Log (wal.go): sequence-numbered segment files of length-prefixed,
//     CRC32-guarded records. Every acknowledged /update batch is appended —
//     its effective delta, version interval, post-ack generation, and
//     maintenance mode — before the client sees the 200. The fsync policy
//     (-wal-sync=always|interval|none) trades ack latency against the
//     machine-crash window; a process kill (SIGKILL) never loses an
//     acknowledged batch under any policy.
//
//   - Dir checkpoints (checkpoint.go): store.Save graph snapshots paired
//     with views.Catalog.SaveState catalog state under a JSON manifest,
//     published atomically via rename + CURRENT. A checkpoint rotates the
//     WAL and truncates segments it made redundant, bounding both recovery
//     time and disk use.
//
//   - Replay (ReplayWAL + core.Restore): recovery loads the newest
//     checkpoint, restores the graph's version counter and the catalog's
//     generation, then replays the WAL suffix through the catalog's
//     incremental O(|ΔG|) maintenance path. A torn final record — the
//     signature of a crash mid-append — is dropped cleanly: it was never
//     acknowledged.
//
// The same on-disk format serves offline tooling: `sofos snapshot` dumps and
// restores data directories the server can boot from.
package persist
