package persist

import (
	"errors"
	"fmt"
	"testing"

	"sofos/internal/rdf"
)

// streamRec builds a chained test record moving version v-1 → v.
func streamRec(v int64) *Record {
	return &Record{
		FromVersion: v - 1,
		ToVersion:   v,
		Generation:  v * 10,
		Inserts: []rdf.Triple{{
			S: rdf.Term{Kind: rdf.KindIRI, Value: fmt.Sprintf("http://s/%d", v)},
			P: rdf.Term{Kind: rdf.KindIRI, Value: "http://p"},
			O: rdf.Term{Kind: rdf.KindLiteral, Value: fmt.Sprintf("%d", v)},
		}},
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	rec := streamRec(7)
	rec.Eager = true
	got, err := DecodeRecord(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.FromVersion != rec.FromVersion || got.ToVersion != rec.ToVersion ||
		got.Generation != rec.Generation || !got.Eager ||
		len(got.Inserts) != 1 || got.Inserts[0] != rec.Inserts[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

// drain reads records until ErrWALNoMore, asserting the version chain.
func drain(t *testing.T, c *WALCursor) []*Record {
	t.Helper()
	var out []*Record
	for {
		rec, _, err := c.Next()
		if errors.Is(err, ErrWALNoMore) {
			return out
		}
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		out = append(out, rec)
	}
}

func TestWALCursorFollowsAppendsAndRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for v := int64(1); v <= 3; v++ {
		if err := l.Append(streamRec(v)); err != nil {
			t.Fatal(err)
		}
	}
	c := OpenWALCursor(dir, 0)
	defer c.Close()
	got := drain(t, c)
	if len(got) != 3 || got[2].ToVersion != 3 {
		t.Fatalf("drained %d records, want 3 ending at version 3", len(got))
	}

	// The cursor follows appends made after it hit the tail.
	if err := l.Append(streamRec(4)); err != nil {
		t.Fatal(err)
	}
	got = drain(t, c)
	if len(got) != 1 || got[0].ToVersion != 4 {
		t.Fatalf("follow-up drain = %d records, want the version-4 record", len(got))
	}

	// ... and spans a segment rotation.
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(streamRec(5)); err != nil {
		t.Fatal(err)
	}
	got = drain(t, c)
	if len(got) != 1 || got[0].ToVersion != 5 {
		t.Fatalf("post-rotation drain = %d records, want the version-5 record", len(got))
	}
	if c.Version() != 5 {
		t.Fatalf("cursor version = %d, want 5", c.Version())
	}
}

func TestWALCursorResumesMidLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for v := int64(1); v <= 5; v++ {
		if err := l.Append(streamRec(v)); err != nil {
			t.Fatal(err)
		}
	}
	c := OpenWALCursor(dir, 3)
	defer c.Close()
	got := drain(t, c)
	if len(got) != 2 || got[0].FromVersion != 3 || got[1].ToVersion != 5 {
		t.Fatalf("resume from 3 delivered %d records (%+v), want versions 3→4 and 4→5", len(got), got)
	}
}

func TestWALCursorDetectsTruncationGap(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for v := int64(1); v <= 3; v++ {
		if err := l.Append(streamRec(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint-style rotation + truncation: records 1..3 vanish.
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.TruncateBefore(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(streamRec(4)); err != nil {
		t.Fatal(err)
	}

	// A follower at version 0 cannot chain to the surviving 3→4 record.
	c := OpenWALCursor(dir, 0)
	defer c.Close()
	if _, _, err := c.Next(); !errors.Is(err, ErrWALGap) {
		t.Fatalf("cursor across truncation = %v, want ErrWALGap", err)
	}

	// A follower at version 3 resumes cleanly.
	c2 := OpenWALCursor(dir, 3)
	defer c2.Close()
	got := drain(t, c2)
	if len(got) != 1 || got[0].ToVersion != 4 {
		t.Fatalf("resume at truncation boundary delivered %d records, want the 3→4 record", len(got))
	}
}

func TestWALCursorEmptyDirWaits(t *testing.T) {
	c := OpenWALCursor(t.TempDir(), 0)
	defer c.Close()
	if _, _, err := c.Next(); !errors.Is(err, ErrWALNoMore) {
		t.Fatalf("empty dir: %v, want ErrWALNoMore", err)
	}
}
