package persist

import (
	"archive/tar"
	"bytes"
	"io"
	"testing"
)

// archiveFixture writes one checkpoint with known payloads and returns it.
func archiveFixture(t *testing.T, graph, catalog string) *Checkpoint {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := d.WriteCheckpoint(
		Manifest{Dataset: "fixture", Scale: 2, Seed: 7, GraphVersion: 42, Generation: 9, WALSeq: 3},
		func(w io.Writer) error { _, err := io.WriteString(w, graph); return err },
		func(w io.Writer) error { _, err := io.WriteString(w, catalog); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestArchiveRoundTrip pins the bootstrap wire format: WriteArchive →
// RestoreArchive reproduces the manifest and both payload files bit-exactly,
// and the restored directory's CURRENT resolves to the unpacked checkpoint.
func TestArchiveRoundTrip(t *testing.T) {
	const graph, catalog = "graph-bytes\x00\x01binary", "catalog-bytes"
	cp := archiveFixture(t, graph, catalog)

	var buf bytes.Buffer
	if err := cp.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}

	dir, man, err := RestoreArchive(bytes.NewReader(buf.Bytes()), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if *man != cp.Manifest {
		t.Fatalf("restored manifest %+v, want %+v", *man, cp.Manifest)
	}
	got, err := dir.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Manifest != cp.Manifest {
		t.Fatalf("CURRENT resolves to %+v, want %+v", got, cp.Manifest)
	}
	for name, want := range map[string]string{"graph": graph, "catalog": catalog} {
		open := got.OpenGraph
		if name == "catalog" {
			open = got.OpenCatalog
		}
		f, err := open()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != want {
			t.Errorf("restored %s = %q, want %q", name, raw, want)
		}
	}
}

// TestRestoreArchiveRejectsTruncation requires a torn download to fail the
// restore rather than publish a partial checkpoint.
func TestRestoreArchiveRejectsTruncation(t *testing.T) {
	cp := archiveFixture(t, "some graph bytes", "some catalog bytes")
	var buf bytes.Buffer
	if err := cp.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 10, buf.Len() / 2, buf.Len() - 1} {
		if _, _, err := RestoreArchive(bytes.NewReader(buf.Bytes()[:cut]), t.TempDir()); err == nil {
			t.Errorf("archive truncated at %d/%d bytes restored cleanly", cut, buf.Len())
		}
	}
}

// TestRestoreArchiveRejectsForeignEntries keeps the unpack from writing
// anything but the three checkpoint files (a hostile or corrupt archive must
// not plant paths).
func TestRestoreArchiveRejectsForeignEntries(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	body := []byte("boom")
	if err := tw.WriteHeader(&tar.Header{Name: "../escape", Mode: 0o644, Size: int64(len(body))}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreArchive(bytes.NewReader(buf.Bytes()), t.TempDir()); err == nil {
		t.Fatal("archive with a foreign entry restored cleanly")
	}
}
