package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sofos/internal/rdf"
)

// testRecord builds a distinguishable record for batch i.
func testRecord(i int) *Record {
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	return &Record{
		FromVersion: int64(i * 10),
		ToVersion:   int64(i*10 + 10),
		Generation:  int64(i + 100),
		Eager:       i%2 == 0,
		Inserts: []rdf.Triple{
			{S: ex(fmt.Sprintf("s%d", i)), P: ex("p"), O: rdf.NewInteger(int64(i))},
			{S: ex(fmt.Sprintf("s%d", i)), P: ex("q"), O: rdf.NewLangLiteral("hi", "en")},
		},
		Deletes: []rdf.Triple{
			{S: ex(fmt.Sprintf("d%d", i)), P: ex("p"), O: rdf.NewTypedLiteral("3.5", rdf.XSDDouble)},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i := 0; i < 3; i++ {
		rec := testRecord(i)
		got, err := decodeRecord(rec.encode())
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, rec)
		}
	}
	empty := &Record{FromVersion: 5, ToVersion: 7, Generation: 9}
	got, err := decodeRecord(empty.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.ToVersion != 7 {
		t.Fatalf("empty record round trip: %+v", got)
	}
}

func TestRecordDecodeCorruption(t *testing.T) {
	payload := testRecord(1).encode()
	// Every truncation must error, never panic.
	for n := 0; n < len(payload); n++ {
		if _, err := decodeRecord(payload[:n]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", n)
		}
	}
	// Trailing garbage is rejected (the CRC covers the whole payload, so
	// this only triggers on a format bug, but it must still be an error).
	if _, err := decodeRecord(append(append([]byte{}, payload...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// appendAll opens a log, appends the records, and closes it.
func appendAll(t *testing.T, dir string, policy SyncPolicy, recs []*Record) {
	t.Helper()
	l, err := OpenLog(dir, policy)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll collects every record from a replay.
func replayAll(t *testing.T, dir string, fromSeq uint64) ([]*Record, *ReplayStats) {
	t.Helper()
	var got []*Record
	stats, err := ReplayWAL(dir, fromSeq, func(_ uint64, r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestWALAppendReplay(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			want := []*Record{testRecord(0), testRecord(1), testRecord(2)}
			appendAll(t, dir, policy, want)
			got, stats := replayAll(t, dir, 0)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("replay mismatch:\n got %d records\nwant %d", len(got), len(want))
			}
			if stats.TornTail || stats.Records != len(want) {
				t.Fatalf("stats = %+v", stats)
			}
		})
	}
}

func TestWALNewSegmentPerOpen(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, SyncNone, []*Record{testRecord(0)})
	appendAll(t, dir, SyncNone, []*Record{testRecord(1)})
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("segments = %v", seqs)
	}
	got, _ := replayAll(t, dir, 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d records across segments", len(got))
	}
}

func TestWALRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotated to seq %d", seq)
	}
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	// Replay from the rotation point sees only the later record.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir, seq)
	if len(got) != 1 || got[0].Generation != testRecord(1).Generation {
		t.Fatalf("suffix replay got %d records", len(got))
	}
	// Truncation removes the pre-checkpoint segment.
	l2, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	removed, err := l2.TruncateBefore(seq)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d segments", removed)
	}
	got, _ = replayAll(t, dir, 0)
	if len(got) != 1 {
		t.Fatalf("post-truncate replay got %d records", len(got))
	}
}

// TestWALTornTailEveryPrefix is the kill-point sweep: the log is cut after
// every possible byte — simulating SIGKILL mid-append at each instant — and
// recovery must always land on a record boundary: some prefix of the
// committed records, never a torn or corrupt batch.
func TestWALTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	want := []*Record{testRecord(0), testRecord(1), testRecord(2)}
	appendAll(t, dir, SyncNone, want)
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments = %v, err %v", seqs, err)
	}
	full, err := os.ReadFile(filepath.Join(dir, segmentName(seqs[0])))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []*Record
		stats, err := ReplayWAL(cutDir, 0, func(_ uint64, r *Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: replay error %v (torn tails must recover cleanly)", cut, err)
		}
		if len(got) > len(want) {
			t.Fatalf("cut at %d: %d records from %d appended", cut, len(got), len(want))
		}
		for i, r := range got {
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("cut at %d: record %d torn or corrupt", cut, i)
			}
		}
		if len(got) < len(want) && !stats.TornTail && cut < len(full) {
			// Fewer records than appended must be explained by a detected
			// tear, except at exact record boundaries.
			if !atRecordBoundary(t, full, cut) {
				t.Fatalf("cut at %d: lost records without a torn-tail report", cut)
			}
		}
	}
}

// atRecordBoundary reports whether cutting the segment at off leaves a
// decodable whole-record prefix (replay then ends by clean EOF, not a tear).
func atRecordBoundary(t *testing.T, full []byte, off int) bool {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:off], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayWAL(dir, 0, func(uint64, *Record) error { return nil })
	return err == nil && !stats.TornTail
}

// TestWALBitFlips flips each byte of a one-segment log and asserts replay
// either errors cleanly or reports a torn tail — never panics, never yields
// a record that was not appended.
func TestWALBitFlips(t *testing.T) {
	dir := t.TempDir()
	want := []*Record{testRecord(0), testRecord(1)}
	appendAll(t, dir, SyncNone, want)
	full, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		flipDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(flipDir, segmentName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []*Record
		_, _ = ReplayWAL(flipDir, 0, func(_ uint64, r *Record) error {
			got = append(got, r)
			return nil
		})
		// Whatever was yielded must be a prefix of the truth: CRC-guarded
		// records cannot be silently altered. (A flip inside record i stops
		// replay before it; a flip in the varint length can at worst hide
		// later records, never invent different ones.)
		for i, r := range got {
			if i < len(want) && !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("flip at %d: replay yielded an altered record", off)
			}
		}
	}
}

func TestWALCorruptMidLogFails(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, SyncNone, []*Record{testRecord(0)})
	appendAll(t, dir, SyncNone, []*Record{testRecord(1)})
	// Damage the first (non-final) segment's tail: acknowledged data follows
	// in segment 2, so replay must fail loudly.
	p := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayWAL(dir, 0, func(uint64, *Record) error { return nil })
	if err == nil {
		t.Fatal("mid-log corruption replayed without error")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if cp, err := d.LatestCheckpoint(); err != nil || cp != nil {
		t.Fatalf("empty dir: cp=%v err=%v", cp, err)
	}
	write := func(graph, catalog string, m Manifest) *Checkpoint {
		cp, err := d.WriteCheckpoint(m,
			func(w io.Writer) error { _, err := io.WriteString(w, graph); return err },
			func(w io.Writer) error { _, err := io.WriteString(w, catalog); return err })
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	cp1 := write("G1", "C1", Manifest{Dataset: "lubm", GraphVersion: 10, Generation: 3, WALSeq: 2})
	if cp1.Manifest.Sequence != 1 {
		t.Fatalf("first checkpoint seq = %d", cp1.Manifest.Sequence)
	}
	got, err := d.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.GraphVersion != 10 || got.Manifest.Dataset != "lubm" || got.Manifest.Format != manifestFormat {
		t.Fatalf("manifest = %+v", got.Manifest)
	}
	r, err := got.OpenGraph()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r)
	r.Close()
	if string(raw) != "G1" {
		t.Fatalf("graph payload = %q", raw)
	}

	// A second checkpoint supersedes the first and reclaims its directory.
	cp2 := write("G2", "C2", Manifest{Dataset: "lubm", GraphVersion: 20, Generation: 7, WALSeq: 5})
	if cp2.Manifest.Sequence != 2 {
		t.Fatalf("second checkpoint seq = %d", cp2.Manifest.Sequence)
	}
	got, err = d.LatestCheckpoint()
	if err != nil || got.Manifest.GraphVersion != 20 {
		t.Fatalf("latest after second: %+v, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(d.Path(), checkpointDirName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("superseded checkpoint not reclaimed: %v", err)
	}

	cr, err := got.OpenCatalog()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(cr)
	cr.Close()
	if string(raw) != "C2" {
		t.Fatalf("catalog payload = %q", raw)
	}
}

// TestCheckpointCrashMidWrite simulates dying between writing a checkpoint
// directory and repointing CURRENT: the previous checkpoint must stay
// authoritative, and the next write must clear the debris.
func TestCheckpointCrashMidWrite(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeStr := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	if _, err := d.WriteCheckpoint(Manifest{GraphVersion: 1}, writeStr("G1"), writeStr("C1")); err != nil {
		t.Fatal(err)
	}
	// Fake a crashed attempt at checkpoint 2: complete dir, CURRENT never
	// repointed; plus a half-written tmp dir.
	for _, name := range []string{checkpointDirName(2), checkpointDirName(2) + ".tmp"} {
		if err := os.MkdirAll(filepath.Join(d.Path(), name), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d.Path(), name, graphFile), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.LatestCheckpoint()
	if err != nil || got.Manifest.GraphVersion != 1 {
		t.Fatalf("debris changed the latest checkpoint: %+v, %v", got, err)
	}
	cp, err := d.WriteCheckpoint(Manifest{GraphVersion: 2}, writeStr("G2"), writeStr("C2"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Manifest.Sequence != 2 {
		t.Fatalf("retry checkpoint seq = %d", cp.Manifest.Sequence)
	}
	r, err := cp.OpenGraph()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r)
	r.Close()
	if string(raw) != "G2" {
		t.Fatalf("retry reused debris: graph = %q", raw)
	}
}

func TestCurrentRejectsPathEscape(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d.Path(), currentFile), []byte("../evil\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LatestCheckpoint(); err == nil {
		t.Fatal("CURRENT escaping the data dir accepted")
	}
}

func TestNextSegmentSeq(t *testing.T) {
	dir := t.TempDir()
	seq, err := NextSegmentSeq(dir)
	if err != nil || seq != 1 {
		t.Fatalf("empty dir: %d, %v", seq, err)
	}
	appendAll(t, dir, SyncNone, []*Record{testRecord(0)})
	seq, err = NextSegmentSeq(dir)
	if err != nil || seq != 2 {
		t.Fatalf("after one segment: %d, %v", seq, err)
	}
}

// TestWALTornTailWithEmptyLaterSegments: a tear is still recoverable when
// the segments after it hold no records (a later boot opened a fresh
// segment, then died before appending) — only an acknowledged record past
// the tear is corruption.
func TestWALTornTailWithEmptyLaterSegments(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, SyncNone, []*Record{testRecord(0), testRecord(1)})
	p := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Two later record-free segments: one complete, one with a torn header.
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(3)), []byte(walMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir, 0)
	if len(got) != 1 || !stats.TornTail {
		t.Fatalf("replayed %d records, stats %+v; want 1 record with a torn tail", len(got), stats)
	}
}

// TestWALRotateAfterFailedFlushRecovers: a latched bufio error from a failed
// append must not make rotation (and so healing checkpoints) fail forever.
// The unflushed bytes were never acknowledged, so dropping them is correct.
func TestWALRotateAfterFailedFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage: swap the segment file for a read-only handle, the shape of a
	// transient write error — the next append's flush fails and bufio
	// latches the error, but the file itself still closes cleanly.
	l.mu.Lock()
	name := l.f.Name()
	l.f.Close()
	ro, err := os.Open(name)
	if err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.f = ro
	l.mu.Unlock()
	if err := l.Append(testRecord(1)); err == nil {
		t.Fatal("append through a read-only segment succeeded")
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("rotation wedged by the latched flush error: %v", err)
	}
	if err := l.Append(testRecord(2)); err != nil {
		t.Fatalf("append after recovery rotation: %v", err)
	}
}

func TestWALStatsSegmentCounter(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("fresh log segments = %d", st.Segments)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 2 {
		t.Fatalf("after rotate segments = %d", st.Segments)
	}
	if _, err := l.TruncateBefore(seq); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	seqs, _ := listSegments(dir)
	if st.Segments != len(seqs) || st.Segments != 1 {
		t.Fatalf("after truncate segments = %d, on disk %d", st.Segments, len(seqs))
	}
}
