package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// WAL streaming: a cursor that reads committed records out of a live log
// directory in version order, following appends, segment rotations, and
// checkpoint truncations — the primary side of replication. Unlike
// ReplayWAL, which reads a quiescent log once, a cursor tolerates the
// writer's in-flight state: a record that is only partially visible at the
// tail of the newest segment is "not yet", not corruption, and the cursor
// re-reads it from the start once more bytes land.
//
// Correctness is anchored on the version chain, not on segment bookkeeping:
// every delivered record must begin exactly at the version the previous one
// ended at (seeded by the caller's resume version). A record that does not
// chain means the segments between were truncated by a checkpoint — the
// follower is too far behind the log and must re-bootstrap from a snapshot.

// Encode renders the record's durable payload — the bytes a WAL segment
// stores and CRC-guards. The replication stream ships these verbatim so a
// replica applies bit-identical batches; invert with DecodeRecord.
func (r *Record) Encode() []byte { return r.encode() }

// DecodeRecord inverts Record.Encode.
func DecodeRecord(payload []byte) (*Record, error) { return decodeRecord(payload) }

// ErrWALNoMore reports that the cursor has delivered every complete record
// currently on disk; poll again after the writer appends more.
var ErrWALNoMore = errors.New("persist: no further wal records yet")

// ErrWALGap reports that the log cannot resume from the requested version:
// the records spanning it were truncated by a checkpoint (or the version
// never existed). The follower must re-bootstrap from a checkpoint.
var ErrWALGap = errors.New("persist: wal cannot resume from the requested version")

// WALCursor reads records with ToVersion beyond a resume point out of a live
// log directory, in order. Not safe for concurrent use.
type WALCursor struct {
	dir     string
	version int64 // version the last delivered record ended at

	seq     uint64 // current segment (0 = none open yet)
	f       *os.File
	br      *bufio.Reader
	off     int64 // file offset of the next undelivered record
	started bool  // a first record chained successfully against version
}

// OpenWALCursor positions a cursor so that the next delivered record is the
// first one moving the graph past fromVersion. The resume point is validated
// lazily — on the first delivered record — because an empty or quiescent log
// cannot distinguish "in sync" from "truncated past you"; callers that can
// compare fromVersion against a checkpoint manifest should pre-check and
// refuse earlier (see the server's /v1/wal handler).
func OpenWALCursor(dir string, fromVersion int64) *WALCursor {
	return &WALCursor{dir: dir, version: fromVersion}
}

// Version returns the version the cursor's last delivered record ended at
// (the resume point before any delivery).
func (c *WALCursor) Version() int64 { return c.version }

// Close releases the cursor's open segment handle.
func (c *WALCursor) Close() error {
	if c.f != nil {
		err := c.f.Close()
		c.f, c.br = nil, nil
		return err
	}
	return nil
}

// Next returns the next record past the cursor's version, the segment it was
// read from, ErrWALNoMore when the log has no complete further record yet,
// or ErrWALGap when the version chain cannot be continued. Any other error
// is real I/O or corruption trouble.
func (c *WALCursor) Next() (*Record, uint64, error) {
	for {
		if c.f == nil {
			ok, err := c.openNextSegment()
			if err != nil {
				return nil, 0, err
			}
			// Not ok: nothing to open. Ok but still nil: the newest segment's
			// header is not fully flushed yet — equally "wait and retry".
			if !ok || c.f == nil {
				return nil, 0, ErrWALNoMore
			}
		}
		rec, n, err := c.readRecord()
		switch {
		case err == nil:
			c.off += n
			if rec.ToVersion <= c.version {
				continue // covered by the follower's snapshot already
			}
			if rec.FromVersion != c.version {
				return nil, 0, fmt.Errorf("%w: record spans %d→%d but the cursor is at %d",
					ErrWALGap, rec.FromVersion, rec.ToVersion, c.version)
			}
			c.version = rec.ToVersion
			c.started = true
			return rec, c.seq, nil
		case errors.Is(err, errSegmentEnd):
			// Clean end of this segment's bytes. If a later segment exists the
			// writer has rotated away and this segment is complete — advance.
			// Otherwise this is the live tail: wait for more.
			next, derr := c.nextSegmentSeq()
			if derr != nil {
				return nil, 0, derr
			}
			if next == 0 {
				return nil, 0, ErrWALNoMore
			}
			if err := c.advanceTo(next); err != nil {
				return nil, 0, err
			}
		case errors.Is(err, errPartialRecord):
			// A cut-short record. At the live tail this is an append in
			// flight: rewind to the record start and retry later. If a later
			// segment exists, rotation has completed — which happens only
			// after the final flush — so re-read once; still short means the
			// segment really is damaged mid-log.
			if _, serr := c.f.Seek(c.off, io.SeekStart); serr != nil {
				return nil, 0, fmt.Errorf("persist: rewinding wal cursor: %w", serr)
			}
			c.br.Reset(c.f)
			next, derr := c.nextSegmentSeq()
			if derr != nil {
				return nil, 0, derr
			}
			if next == 0 {
				return nil, 0, ErrWALNoMore
			}
			if rec, n, rerr := c.readRecord(); rerr == nil {
				c.off += n
				if rec.ToVersion <= c.version {
					continue
				}
				if rec.FromVersion != c.version {
					return nil, 0, fmt.Errorf("%w: record spans %d→%d but the cursor is at %d",
						ErrWALGap, rec.FromVersion, rec.ToVersion, c.version)
				}
				c.version = rec.ToVersion
				c.started = true
				return rec, c.seq, nil
			} else if errors.Is(rerr, errSegmentEnd) {
				if err := c.advanceTo(next); err != nil {
					return nil, 0, err
				}
			} else {
				return nil, 0, fmt.Errorf("persist: wal segment %d is damaged mid-log under cursor: %v", c.seq, rerr)
			}
		default:
			return nil, 0, err
		}
	}
}

// advanceTo closes the current segment and opens segment seq.
func (c *WALCursor) advanceTo(seq uint64) error {
	if c.f != nil {
		c.f.Close()
		c.f, c.br = nil, nil
	}
	return c.openSegment(seq)
}

// nextSegmentSeq returns the smallest on-disk segment past the current one,
// or 0 when none exists.
func (c *WALCursor) nextSegmentSeq() (uint64, error) {
	seqs, err := listSegments(c.dir)
	if err != nil {
		return 0, err
	}
	for _, s := range seqs {
		if s > c.seq {
			return s, nil
		}
	}
	return 0, nil
}

// openNextSegment opens the first segment at or past the cursor's position:
// the smallest on-disk segment when nothing has been opened yet, the next
// one otherwise. Returns false when there is nothing to open yet.
func (c *WALCursor) openNextSegment() (bool, error) {
	seqs, err := listSegments(c.dir)
	if err != nil {
		return false, err
	}
	for _, s := range seqs {
		if s > c.seq {
			return true, c.openSegment(s)
		}
	}
	return false, nil
}

// openSegment opens segment seq and validates its header. A header that is
// still short (created but not yet flushed by the writer) surfaces as
// errPartialRecord via readRecord on the first Next, which resolves itself
// once the writer flushes.
func (c *WALCursor) openSegment(seq uint64) error {
	f, err := os.Open(filepath.Join(c.dir, segmentName(seq)))
	if err != nil {
		return fmt.Errorf("persist: opening wal segment %d under cursor: %w", seq, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// Header not fully on disk yet: treat like an empty live tail by
		// positioning before the header and retrying from scratch next call.
		f.Close()
		c.f, c.br = nil, nil
		c.seq = seq - 1 // re-candidate this segment on the next openNextSegment
		return nil
	}
	if string(magic) != walMagic {
		f.Close()
		return fmt.Errorf("persist: wal segment %d has bad magic %q", seq, magic)
	}
	headerSeq, err := binary.ReadUvarint(br)
	if err != nil {
		f.Close()
		c.f, c.br = nil, nil
		c.seq = seq - 1
		return nil
	}
	if headerSeq != seq {
		f.Close()
		return fmt.Errorf("persist: wal segment %d header claims seq %d", seq, headerSeq)
	}
	// Compute the post-header offset: magic + the uvarint's encoded width.
	var buf [binary.MaxVarintLen64]byte
	c.off = int64(len(walMagic) + binary.PutUvarint(buf[:], headerSeq))
	if _, err := f.Seek(c.off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("persist: seeking wal segment %d: %w", seq, err)
	}
	br.Reset(f)
	c.f, c.br, c.seq = f, br, seq
	return nil
}

// errSegmentEnd marks a clean end-of-bytes exactly at a record boundary;
// errPartialRecord marks bytes that stop inside a record (or fail its
// checksum — indistinguishable from an append still in flight).
var (
	errSegmentEnd    = errors.New("persist: segment end")
	errPartialRecord = errors.New("persist: partial record")
)

// readRecord decodes one record at the reader's position, returning the
// record and its on-disk length (length prefix + crc + payload).
func (c *WALCursor) readRecord() (*Record, int64, error) {
	n, err := binary.ReadUvarint(c.br)
	if err == io.EOF {
		return nil, 0, errSegmentEnd
	}
	if err != nil {
		return nil, 0, errPartialRecord
	}
	if n > maxRecordBytes {
		return nil, 0, errPartialRecord
	}
	var crc [4]byte
	if _, err := io.ReadFull(c.br, crc[:]); err != nil {
		return nil, 0, errPartialRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, 0, errPartialRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, 0, errPartialRecord
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		// The checksum matched, so this is a format problem, not tearing.
		return nil, 0, fmt.Errorf("persist: wal segment %d under cursor: %w", c.seq, err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	return rec, int64(binary.PutUvarint(lenBuf[:], n) + 4 + int(n)), nil
}
