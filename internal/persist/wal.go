package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sofos/internal/obs"
)

// Write-ahead log: every committed /update batch is appended as one
// length-prefixed, CRC32-guarded record before the commit is acknowledged to
// the client. The log is split into sequence-numbered segment files; a
// checkpoint rotates to a fresh segment and truncates everything older, so
// recovery replays only the suffix after the last snapshot.
//
// Segment layout:
//
//	magic "SOFOSWAL1" (9 bytes)
//	segment sequence number (uvarint, must match the filename)
//	records:
//	  payload length (uvarint)
//	  CRC32-IEEE of the payload (4 bytes little-endian)
//	  payload (see Record encoding in record.go)
//
// A torn tail — a record cut short by a crash mid-append — terminates replay
// of the final segment cleanly: the batch it belonged to was never
// acknowledged, so dropping it recovers exactly the committed state. The same
// damage in any non-final segment is real corruption (acknowledged batches
// follow it) and fails recovery loudly instead of silently losing them.
const walMagic = "SOFOSWAL1"

// maxRecordBytes bounds a single record; corrupt lengths must fail fast, not
// allocate unboundedly.
const maxRecordBytes = 1 << 30

// SyncPolicy picks how eagerly WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append, before the batch is acknowledged:
	// an acknowledged update survives even a machine crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes every append to the OS and fsyncs on a background
	// ticker: a process crash (SIGKILL) loses nothing, a machine crash loses
	// at most the last interval.
	SyncInterval
	// SyncNone flushes to the OS and never fsyncs: a process crash loses
	// nothing, a machine crash may lose unflushed batches.
	SyncNone
)

// syncEvery is the background fsync cadence under SyncInterval.
const syncEvery = 200 * time.Millisecond

// ParseSyncPolicy maps the -wal-sync flag values to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("persist: unknown wal sync policy %q (use always, interval, or none)", s)
}

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// Log is an open write-ahead log: an append handle over the current segment.
// Appends, rotation, and stats are safe for concurrent use; the serving layer
// additionally orders appends against each other with its own write lock so
// records land in commit order.
type Log struct {
	dir    string
	policy SyncPolicy

	// AppendHist and FsyncCounter are optional observability hooks the
	// serving layer sets right after open (before traffic): per-record
	// append latency in seconds, and fsyncs issued (foreground and
	// background). Both are nil-safe no-ops when unset.
	AppendHist   *obs.Histogram
	FsyncCounter *obs.Counter

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seq      uint64
	segments int   // on-disk segment count, maintained so Stats never scans
	appended int64 // records appended through this handle
	bytes    int64 // bytes appended through this handle
	dirty    bool  // flushed-but-unsynced data pending (SyncInterval)
	closed   bool

	stopSync chan struct{} // closes the background syncer (SyncInterval)
	syncDone chan struct{}
}

// segmentName renders a segment's filename; lexical order equals numeric
// order thanks to the fixed-width sequence.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment sequence numbers, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: listing wal segments: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// NextSegmentSeq returns the sequence number a new segment in dir would get:
// one past the highest existing segment, or 1 in an empty directory. Offline
// checkpoint writers use it to stamp a manifest without opening a log.
func NextSegmentSeq(dir string) (uint64, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 1, nil
	}
	return seqs[len(seqs)-1] + 1, nil
}

// OpenLog opens a write-ahead log in dir, creating the directory if needed.
// It always starts a fresh segment past every existing one — a possibly-torn
// tail from a previous process is never appended to, so its evidence stays
// intact for replay.
func OpenLog(dir string, policy SyncPolicy) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating wal dir: %w", err)
	}
	existing, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	seq := uint64(1)
	if len(existing) > 0 {
		seq = existing[len(existing)-1] + 1
	}
	l := &Log{dir: dir, policy: policy, segments: len(existing)}
	if err := l.openSegment(seq); err != nil {
		return nil, err
	}
	l.segments++
	if policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegment creates and headers segment seq, replacing the current handle.
// Callers hold l.mu (or own the log exclusively during open).
func (l *Log) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating wal segment %d: %w", seq, err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(walMagic); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing wal header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], seq)
	if _, err := bw.Write(buf[:n]); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing wal header: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing wal header: %w", err)
	}
	// Make the segment's directory entry durable: without this, a machine
	// crash can lose the whole file — fsynced records included — which
	// would break SyncAlways's acknowledged-batches-survive guarantee.
	// SyncNone promises no fsyncs, so it skips this too.
	if l.policy != SyncNone {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.bw, l.seq = f, bw, seq
	return nil
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				// A failed background sync leaves dirty set; the next tick
				// retries, and Close reports the terminal error.
				if l.f.Sync() == nil {
					l.dirty = false
					l.FsyncCounter.Inc()
				}
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// Append serializes one record, writes it to the current segment, and applies
// the sync policy. When it returns under SyncAlways, the record is on stable
// storage; the serving layer calls it before acknowledging the batch.
func (l *Log) Append(rec *Record) error {
	start := time.Now()
	payload := rec.encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: wal is closed")
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(payload)))
	if _, err := l.bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("persist: appending wal record: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := l.bw.Write(crc[:]); err != nil {
		return fmt.Errorf("persist: appending wal record: %w", err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return fmt.Errorf("persist: appending wal record: %w", err)
	}
	// Every policy flushes to the OS so a process crash loses nothing; the
	// policies differ only in when the OS is forced to stable storage.
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("persist: flushing wal record: %w", err)
	}
	switch l.policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: syncing wal record: %w", err)
		}
		l.FsyncCounter.Inc()
	case SyncInterval:
		l.dirty = true
	}
	l.appended++
	l.bytes += int64(n + 4 + len(payload))
	l.AppendHist.ObserveSince(start)
	return nil
}

// Rotate closes the current segment and opens the next one, returning the new
// segment's sequence number. Checkpoints rotate first so the manifest can
// record "replay from here".
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("persist: wal is closed")
	}
	if err := l.closeSegmentLocked(); err != nil {
		return 0, err
	}
	if err := l.openSegment(l.seq + 1); err != nil {
		return 0, err
	}
	l.segments++
	return l.seq, nil
}

// closeSegmentLocked flushes, syncs, and closes the current segment file.
// A latched flush error is dropped, not returned: Append flushes after every
// record and surfaces its error to the caller, so bytes still buffered here
// can only belong to a failed, never-acknowledged append — and returning the
// bufio's sticky error would make every later rotation (and so every healing
// checkpoint) fail forever.
func (l *Log) closeSegmentLocked() error {
	if err := l.bw.Flush(); err != nil {
		slog.Warn("persist: dropping unflushable wal segment tail (never acknowledged)",
			"segment", l.seq, "err", err)
	}
	if l.policy != SyncNone {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: syncing wal segment %d: %w", l.seq, err)
		}
		l.dirty = false
		l.FsyncCounter.Inc()
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("persist: closing wal segment %d: %w", l.seq, err)
	}
	return nil
}

// TruncateBefore deletes segments with sequence numbers below seq — those a
// completed checkpoint made redundant — and reports how many were removed.
func (l *Log) TruncateBefore(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seqs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range seqs {
		if s >= seq || s == l.seq {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(s))); err != nil {
			l.segments -= removed
			return removed, fmt.Errorf("persist: truncating wal segment %d: %w", s, err)
		}
		removed++
	}
	l.segments -= removed
	return removed, nil
}

// Seq returns the current segment's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// LogStats reports an open log's health for /stats.
type LogStats struct {
	Policy   string `json:"policy"`
	Segments int    `json:"segments"`
	Seq      uint64 `json:"segment_seq"`
	Appended int64  `json:"appended_batches"`
	Bytes    int64  `json:"appended_bytes"`
}

// Stats snapshots the log's counters. The segment count is maintained by
// OpenLog/Rotate/TruncateBefore, so no directory scan runs here: /stats
// polls this under the serving read lock, and the log mutex is shared with
// the append path.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Policy:   l.policy.String(),
		Segments: l.segments,
		Seq:      l.seq,
		Appended: l.appended,
		Bytes:    l.bytes,
	}
}

// Close flushes, syncs, and closes the log. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.closeSegmentLocked()
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// ReplayStats summarizes one WAL replay pass.
type ReplayStats struct {
	Segments int   // segments visited
	Records  int   // records decoded and yielded
	Bytes    int64 // record bytes decoded
	// TornTail reports that the final segment ended in a cut-short or
	// corrupt record — the expected signature of a crash mid-append. The
	// batch it belonged to was never acknowledged, so replay stopped cleanly
	// at the last committed record.
	TornTail bool
}

// ReplayWAL streams every record in dir's segments with sequence ≥ fromSeq,
// in order, to yield. Decode damage in the final segment stops replay cleanly
// (see ReplayStats.TornTail); damage in any earlier segment is an error,
// because acknowledged records follow it. A yield error aborts the replay.
func ReplayWAL(dir string, fromSeq uint64, yield func(seq uint64, rec *Record) error) (*ReplayStats, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	stats := &ReplayStats{}
	for i, seq := range seqs {
		if seq < fromSeq {
			continue
		}
		stats.Segments++
		err := replaySegment(dir, seq, stats, yield)
		if err != nil {
			var tear *tornRecordError
			if errors.As(err, &tear) {
				// A tear is the log's tail — and recoverable — as long as no
				// acknowledged record follows it. Later segments may exist
				// with zero records (a boot opened a fresh segment, then died
				// before appending); those do not promote the tear to
				// corruption.
				if !segmentsHaveRecords(dir, seqs[i+1:]) {
					stats.TornTail = true
					return stats, nil
				}
				return stats, fmt.Errorf("persist: wal segment %d is corrupt mid-log (%v) but later segments hold acknowledged batches", seq, tear.cause)
			}
			return stats, err
		}
	}
	return stats, nil
}

// segmentsHaveRecords reports whether any of the segments holds at least one
// decodable record. Damage inside them is irrelevant here: the caller only
// needs to know if an acknowledged batch exists past an earlier tear.
func segmentsHaveRecords(dir string, seqs []uint64) bool {
	for _, seq := range seqs {
		found := false
		probe := &ReplayStats{}
		err := replaySegment(dir, seq, probe, func(uint64, *Record) error {
			found = true
			return errStopProbe
		})
		if found || (err != nil && errors.Is(err, errStopProbe)) {
			return true
		}
	}
	return false
}

// errStopProbe short-circuits segmentsHaveRecords at the first record.
var errStopProbe = errors.New("persist: stop probe")

// tornRecordError marks decode damage that is recoverable when at the very
// tail of the log.
type tornRecordError struct{ cause error }

func (e *tornRecordError) Error() string { return fmt.Sprintf("torn wal record: %v", e.cause) }

// replaySegment decodes one segment. Header damage is treated like a torn
// record (a crash can land between segment creation and header flush only for
// the final segment; anywhere else it is promoted to corruption by the
// caller).
func replaySegment(dir string, seq uint64, stats *ReplayStats, yield func(uint64, *Record) error) error {
	f, err := os.Open(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		return fmt.Errorf("persist: opening wal segment %d: %w", seq, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return &tornRecordError{cause: fmt.Errorf("segment header: %w", err)}
	}
	if string(magic) != walMagic {
		return &tornRecordError{cause: fmt.Errorf("bad segment magic %q", magic)}
	}
	headerSeq, err := binary.ReadUvarint(br)
	if err != nil {
		return &tornRecordError{cause: fmt.Errorf("segment header seq: %w", err)}
	}
	if headerSeq != seq {
		return &tornRecordError{cause: fmt.Errorf("segment header seq %d does not match filename seq %d", headerSeq, seq)}
	}
	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil // clean segment end
		}
		if err != nil {
			return &tornRecordError{cause: fmt.Errorf("record length: %w", err)}
		}
		if n > maxRecordBytes {
			return &tornRecordError{cause: fmt.Errorf("record length %d exceeds limit", n)}
		}
		var crc [4]byte
		if _, err := io.ReadFull(br, crc[:]); err != nil {
			return &tornRecordError{cause: fmt.Errorf("record checksum: %w", err)}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return &tornRecordError{cause: fmt.Errorf("record payload: %w", err)}
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc[:]) {
			return &tornRecordError{cause: errors.New("record checksum mismatch")}
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The checksum matched, so this is a format problem, not tearing.
			return fmt.Errorf("persist: wal segment %d: %w", seq, err)
		}
		stats.Records++
		stats.Bytes += int64(n)
		if err := yield(seq, rec); err != nil {
			return err
		}
	}
}
