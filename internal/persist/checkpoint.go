package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoints: a durable pairing of the base graph's binary snapshot
// (store.Save) with the serialized catalog state (views.Catalog.SaveState),
// stamped by a manifest that records the graph version, catalog generation,
// and the WAL segment recovery should replay from. Recovery is then
// snapshot-load plus replay of the WAL suffix — never a rematerialization.
//
// Data directory layout:
//
//	<data-dir>/
//	  CURRENT                    name of the latest complete checkpoint dir
//	  checkpoint-<seq>/
//	    MANIFEST.json
//	    graph.snap               store.Save snapshot of the base graph
//	    catalog.bin              views.Catalog.SaveState
//	  wal/
//	    wal-<seq>.log            write-ahead log segments
//
// A checkpoint becomes visible atomically: it is written under a temporary
// name, fsynced, renamed into place, and only then does CURRENT (also
// written via rename) point at it. A crash mid-checkpoint leaves CURRENT on
// the previous checkpoint and the WAL intact, so recovery is unaffected.

// manifestFormat versions the on-disk checkpoint layout.
const manifestFormat = 1

const (
	currentFile  = "CURRENT"
	manifestFile = "MANIFEST.json"
	graphFile    = "graph.snap"
	catalogFile  = "catalog.bin"
	walDirName   = "wal"
)

// Manifest identifies one checkpoint: what dataset it snapshots, the exact
// catalog state it captures, and where WAL replay resumes.
type Manifest struct {
	Format   int    `json:"format"`
	Sequence uint64 `json:"sequence"` // checkpoint number, monotonic per data dir

	// Dataset identity, so a restart (or offline tool) can rebuild the facet
	// without the graph generators and refuse a mismatched -dataset flag.
	Dataset string `json:"dataset"`
	Scale   int    `json:"scale"`
	Seed    int64  `json:"seed"`

	// GraphVersion and Generation are the base graph's version counter and
	// the catalog's mutation counter at checkpoint time; restore reinstates
	// both so WAL version intervals and cache generations stay aligned.
	GraphVersion int64 `json:"graph_version"`
	Generation   int64 `json:"generation"`

	// WALSeq is the first WAL segment recovery must replay after loading
	// this checkpoint; older segments are redundant and truncated.
	WALSeq uint64 `json:"wal_seq"`

	BaseTriples int   `json:"base_triples"`
	Views       int   `json:"views"`
	CreatedUnix int64 `json:"created_unix"`
}

// Dir is an open data directory.
type Dir struct {
	path string
}

// Open opens (creating if needed) a data directory.
func Open(path string) (*Dir, error) {
	if path == "" {
		return nil, errors.New("persist: empty data directory path")
	}
	if err := os.MkdirAll(filepath.Join(path, walDirName), 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory's root path.
func (d *Dir) Path() string { return d.path }

// WALDir returns the write-ahead log subdirectory.
func (d *Dir) WALDir() string { return filepath.Join(d.path, walDirName) }

// checkpointDirName renders a checkpoint directory name.
func checkpointDirName(seq uint64) string { return fmt.Sprintf("checkpoint-%016x", seq) }

// Checkpoint is one complete on-disk checkpoint.
type Checkpoint struct {
	Manifest Manifest
	dir      string // absolute checkpoint directory
}

// OpenGraph opens the checkpoint's graph snapshot for reading.
func (c *Checkpoint) OpenGraph() (io.ReadCloser, error) {
	return os.Open(filepath.Join(c.dir, graphFile))
}

// GraphPath returns the path of the checkpoint's graph snapshot file, for
// loaders that map the snapshot (store.LoadFile) instead of streaming it.
func (c *Checkpoint) GraphPath() string { return filepath.Join(c.dir, graphFile) }

// OpenCatalog opens the checkpoint's catalog state for reading.
func (c *Checkpoint) OpenCatalog() (io.ReadCloser, error) {
	return os.Open(filepath.Join(c.dir, catalogFile))
}

// LatestCheckpoint resolves CURRENT to a checkpoint, or returns (nil, nil)
// when the directory has none yet.
func (d *Dir) LatestCheckpoint() (*Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(d.path, currentFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: reading CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("persist: CURRENT names invalid checkpoint %q", name)
	}
	dir := filepath.Join(d.path, name)
	mraw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("persist: reading manifest of %s: %w", name, err)
	}
	var m Manifest
	if err := json.Unmarshal(mraw, &m); err != nil {
		return nil, fmt.Errorf("persist: parsing manifest of %s: %w", name, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("persist: checkpoint %s has format %d, this build reads %d", name, m.Format, manifestFormat)
	}
	return &Checkpoint{Manifest: m, dir: dir}, nil
}

// SnapshotSource describes how a checkpoint obtains its graph snapshot.
// Write streams a fresh serialization and must always be set. LinkPath, when
// non-empty, names an existing durable snapshot file whose logical content is
// current (store.Graph.PagedSource): the checkpoint then hard-links it —
// sharing the inode, so the bytes survive the old checkpoint directory's
// removal — and falls back to a plain file copy, then to Write, if linking is
// not possible. Either shortcut skips re-serializing the runs, which is what
// keeps periodic checkpoints of a read-mostly graph O(1) in the data size.
type SnapshotSource struct {
	Write    func(io.Writer) error
	LinkPath string
}

// WriteCheckpoint durably writes a new checkpoint. The manifest's Sequence
// and CreatedUnix are stamped here (one past the latest checkpoint); the
// caller fills everything else and supplies writers for the graph snapshot
// and catalog state. The checkpoint is complete — CURRENT repointed — only
// when this returns nil.
func (d *Dir) WriteCheckpoint(m Manifest, writeGraph, writeCatalog func(io.Writer) error) (*Checkpoint, error) {
	return d.WriteCheckpointFrom(m, SnapshotSource{Write: writeGraph}, writeCatalog)
}

// WriteCheckpointFrom is WriteCheckpoint with a graph SnapshotSource that can
// hard-link an existing paged snapshot instead of streaming a new one.
func (d *Dir) WriteCheckpointFrom(m Manifest, graph SnapshotSource, writeCatalog func(io.Writer) error) (*Checkpoint, error) {
	prev, err := d.LatestCheckpoint()
	if err != nil {
		return nil, err
	}
	m.Format = manifestFormat
	m.Sequence = 1
	var prevName string
	if prev != nil {
		m.Sequence = prev.Manifest.Sequence + 1
		prevName = checkpointDirName(prev.Manifest.Sequence)
	}
	name := checkpointDirName(m.Sequence)
	tmp := filepath.Join(d.path, name+".tmp")
	final := filepath.Join(d.path, name)
	// A leftover tmp dir from a crashed attempt is discarded; a leftover
	// final dir can only mean CURRENT was never repointed at it, so it is
	// equally dead.
	for _, p := range []string{tmp, final} {
		if err := os.RemoveAll(p); err != nil {
			return nil, fmt.Errorf("persist: clearing stale checkpoint %s: %w", p, err)
		}
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating checkpoint dir: %w", err)
	}
	if err := materializeGraphSnapshot(filepath.Join(tmp, graphFile), graph); err != nil {
		return nil, fmt.Errorf("persist: writing graph snapshot: %w", err)
	}
	if err := writeFileSynced(filepath.Join(tmp, catalogFile), writeCatalog); err != nil {
		return nil, fmt.Errorf("persist: writing catalog state: %w", err)
	}
	mraw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("persist: encoding manifest: %w", err)
	}
	if err := writeFileSynced(filepath.Join(tmp, manifestFile), func(w io.Writer) error {
		_, err := w.Write(append(mraw, '\n'))
		return err
	}); err != nil {
		return nil, fmt.Errorf("persist: writing manifest: %w", err)
	}
	// Sync the checkpoint directory itself so its entries (including any
	// hard link created above) are durable before the rename publishes it.
	if err := syncDir(tmp); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("persist: publishing checkpoint: %w", err)
	}
	if err := syncDir(d.path); err != nil {
		return nil, err
	}
	// Repoint CURRENT via the same write-rename dance.
	if err := writeFileSynced(filepath.Join(d.path, currentFile+".tmp"), func(w io.Writer) error {
		_, err := io.WriteString(w, name+"\n")
		return err
	}); err != nil {
		return nil, fmt.Errorf("persist: writing CURRENT: %w", err)
	}
	if err := os.Rename(filepath.Join(d.path, currentFile+".tmp"), filepath.Join(d.path, currentFile)); err != nil {
		return nil, fmt.Errorf("persist: publishing CURRENT: %w", err)
	}
	if err := syncDir(d.path); err != nil {
		return nil, err
	}
	// The previous checkpoint is now redundant; reclaim it. Failure here is
	// cosmetic (stale disk usage), not a durability problem.
	if prevName != "" && prevName != name {
		_ = os.RemoveAll(filepath.Join(d.path, prevName))
	}
	return &Checkpoint{Manifest: m, dir: final}, nil
}

// materializeGraphSnapshot produces the checkpoint's graph snapshot file at
// path from the source: hard link when possible, file copy when linking fails
// (e.g. a cross-filesystem LinkPath), streamed serialization otherwise. The
// linked source was fsynced when it was originally checkpointed and snapshot
// files are never modified in place, so a link needs no data sync of its own
// — only the directory entry, which the caller syncs.
func materializeGraphSnapshot(path string, graph SnapshotSource) error {
	if graph.LinkPath != "" {
		if err := os.Link(graph.LinkPath, path); err == nil {
			return nil
		}
		if err := copyFileSynced(graph.LinkPath, path); err == nil {
			return nil
		}
		// Fall through: the source file may have vanished; serialize fresh.
	}
	return writeFileSynced(path, graph.Write)
}

// copyFileSynced copies src to dst and fsyncs dst.
func copyFileSynced(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	return writeFileSynced(dst, func(w io.Writer) error {
		_, err := io.Copy(w, in)
		return err
	})
}

// writeFileSynced writes path via the callback and fsyncs it before closing.
func writeFileSynced(path string, write func(io.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: opening dir for sync: %w", err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("persist: syncing dir: %w", err)
	}
	return nil
}
