package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sofos/internal/rdf"
	"sofos/internal/store"
)

// v3SnapshotBytes serializes a small block-codec graph as a paged (v3)
// snapshot, so the kill-point sweeps below cut a real checkpoint payload —
// magic, directories, CRCs, page regions — not a placeholder string.
func v3SnapshotBytes(t *testing.T, n int) []byte {
	t.Helper()
	g := store.NewGraphWithCodec(store.CodecBlock)
	for i := 0; i < n; i++ {
		g.MustAdd(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://kp/s%d", i%17)),
			P: rdf.NewIRI(fmt.Sprintf("http://kp/p%d", i%5)),
			O: rdf.NewInteger(int64(i)),
		})
	}
	var buf bytes.Buffer
	if err := g.SavePaged(&buf, 512); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeBytes adapts a byte slice to a checkpoint writer callback.
func writeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error { _, err := w.Write(b); return err }
}

// TestCheckpointKillPointEveryByte simulates SIGKILL at every byte offset of
// a v3 checkpoint write — through the streamed graph snapshot, the catalog,
// the manifest, and the CURRENT repoint — and at the atomic steps between
// them. The invariant at every single cut: LatestCheckpoint still resolves
// to the previous checkpoint with its graph bytes intact, until the final
// CURRENT rename, which is the one and only commit point.
func TestCheckpointKillPointEveryByte(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := v3SnapshotBytes(t, 40)
	cp1, err := d.WriteCheckpoint(Manifest{GraphVersion: 1}, writeBytes(g1), writeBytes([]byte("CAT1")))
	if err != nil {
		t.Fatal(err)
	}

	// The exact files checkpoint 2 would write, in write order. The manifest
	// bytes mirror WriteCheckpointFrom's encoding so post-rename states parse.
	g2 := v3SnapshotBytes(t, 60)
	m2 := Manifest{Format: manifestFormat, Sequence: 2, GraphVersion: 2}
	m2raw, err := json.MarshalIndent(&m2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	m2raw = append(m2raw, '\n')
	files := []struct {
		name string
		data []byte
	}{
		{graphFile, g2},
		{catalogFile, []byte("CAT2")},
		{manifestFile, m2raw},
	}

	name2 := checkpointDirName(2)
	tmp := filepath.Join(d.Path(), name2+".tmp")
	final := filepath.Join(d.Path(), name2)

	assertLatest := func(state string, wantSeq uint64, wantGraph []byte) {
		t.Helper()
		cp, err := d.LatestCheckpoint()
		if err != nil || cp == nil {
			t.Fatalf("%s: LatestCheckpoint = %v, %v", state, cp, err)
		}
		if cp.Manifest.Sequence != wantSeq {
			t.Fatalf("%s: latest sequence = %d, want %d", state, cp.Manifest.Sequence, wantSeq)
		}
		raw, err := os.ReadFile(cp.GraphPath())
		if err != nil || !bytes.Equal(raw, wantGraph) {
			t.Fatalf("%s: checkpoint %d graph bytes damaged (%d bytes, err %v)", state, wantSeq, len(raw), err)
		}
	}

	// Sweep the tmp-dir writes twice: once with the graph snapshot streamed
	// byte by byte, once with it hard-linked from checkpoint 1 (the link
	// appears atomically, so only the later files have byte granularity).
	for _, linked := range []bool{false, true} {
		for fi := range files {
			if linked && fi == 0 {
				continue // the hard link is all-or-nothing, swept as fileStart below
			}
			for cut := 0; cut <= len(files[fi].data); cut++ {
				if err := os.RemoveAll(tmp); err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(tmp, 0o755); err != nil {
					t.Fatal(err)
				}
				if linked {
					if err := os.Link(cp1.GraphPath(), filepath.Join(tmp, graphFile)); err != nil {
						t.Fatal(err)
					}
				}
				start := 0
				if linked {
					start = 1
				}
				for j := start; j < fi; j++ {
					if err := os.WriteFile(filepath.Join(tmp, files[j].name), files[j].data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				if err := os.WriteFile(filepath.Join(tmp, files[fi].name), files[fi].data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				state := fmt.Sprintf("linked=%v %s cut=%d", linked, files[fi].name, cut)
				assertLatest(state, 1, g1)
			}
		}
	}
	if err := os.RemoveAll(tmp); err != nil {
		t.Fatal(err)
	}

	// Crash between the dir rename and the CURRENT repoint: the complete
	// final dir exists, but it is dead until CURRENT names it.
	writeAll := func(dir string) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeAll(final)
	assertLatest("renamed, CURRENT not repointed", 1, g1)

	// Crash mid-write of CURRENT.tmp, at every byte offset: CURRENT itself is
	// untouched, so checkpoint 1 stays authoritative.
	curTmp := filepath.Join(d.Path(), currentFile+".tmp")
	content := []byte(name2 + "\n")
	for cut := 0; cut <= len(content); cut++ {
		if err := os.WriteFile(curTmp, content[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		assertLatest(fmt.Sprintf("CURRENT.tmp cut=%d", cut), 1, g1)
	}

	// The commit point: renaming CURRENT.tmp over CURRENT flips the latest
	// checkpoint to 2 even though checkpoint 1's dir still exists (a crash
	// before the reclaim step leaves both behind).
	if err := os.WriteFile(curTmp, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(curTmp, filepath.Join(d.Path(), currentFile)); err != nil {
		t.Fatal(err)
	}
	assertLatest("CURRENT repointed, old checkpoint not reclaimed", 2, g2)
	if err := os.RemoveAll(filepath.Join(d.Path(), checkpointDirName(1))); err != nil {
		t.Fatal(err)
	}
	assertLatest("old checkpoint reclaimed", 2, g2)
}

// TestCheckpointRetryAfterKill drops a checkpoint attempt at each crash
// phase, then runs a real WriteCheckpointFrom over the debris — it must
// succeed, publish a readable checkpoint, and (for the hard-link phases)
// leave the linked source snapshot untouched: removing tmp debris only drops
// one name of a two-link inode.
func TestCheckpointRetryAfterKill(t *testing.T) {
	g1 := v3SnapshotBytes(t, 40)
	g2 := v3SnapshotBytes(t, 60)
	phases := []struct {
		name  string
		build func(t *testing.T, d *Dir, cp1 *Checkpoint)
	}{
		{"empty tmp dir", func(t *testing.T, d *Dir, _ *Checkpoint) {
			mkdir(t, filepath.Join(d.Path(), checkpointDirName(2)+".tmp"))
		}},
		{"partial streamed graph", func(t *testing.T, d *Dir, _ *Checkpoint) {
			tmp := filepath.Join(d.Path(), checkpointDirName(2)+".tmp")
			mkdir(t, tmp)
			if err := os.WriteFile(filepath.Join(tmp, graphFile), g2[:len(g2)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"hard-linked graph in tmp", func(t *testing.T, d *Dir, cp1 *Checkpoint) {
			tmp := filepath.Join(d.Path(), checkpointDirName(2)+".tmp")
			mkdir(t, tmp)
			if err := os.Link(cp1.GraphPath(), filepath.Join(tmp, graphFile)); err != nil {
				t.Fatal(err)
			}
		}},
		{"complete final dir, CURRENT stale", func(t *testing.T, d *Dir, cp1 *Checkpoint) {
			dir := filepath.Join(d.Path(), checkpointDirName(2))
			mkdir(t, dir)
			if err := os.Link(cp1.GraphPath(), filepath.Join(dir, graphFile)); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, catalogFile), []byte("CAT2"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn CURRENT.tmp", func(t *testing.T, d *Dir, _ *Checkpoint) {
			if err := os.WriteFile(filepath.Join(d.Path(), currentFile+".tmp"), []byte("checkpo"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, ph := range phases {
		t.Run(ph.name, func(t *testing.T) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cp1, err := d.WriteCheckpoint(Manifest{GraphVersion: 1}, writeBytes(g1), writeBytes([]byte("CAT1")))
			if err != nil {
				t.Fatal(err)
			}
			ph.build(t, d, cp1)

			// The retry hard-links the previous checkpoint's snapshot — the
			// exact path a paged graph takes after a crash.
			cp2, err := d.WriteCheckpointFrom(Manifest{GraphVersion: 2},
				SnapshotSource{Write: writeBytes(g2), LinkPath: cp1.GraphPath()}, writeBytes([]byte("CAT2")))
			if err != nil {
				t.Fatalf("retry over %s debris: %v", ph.name, err)
			}
			if cp2.Manifest.Sequence != 2 {
				t.Fatalf("retry sequence = %d, want 2", cp2.Manifest.Sequence)
			}
			raw, err := os.ReadFile(cp2.GraphPath())
			if err != nil || !bytes.Equal(raw, g1) {
				t.Fatalf("retry graph = %d bytes, err %v; want the linked %d-byte snapshot", len(raw), err, len(g1))
			}
			latest, err := d.LatestCheckpoint()
			if err != nil || latest.Manifest.Sequence != 2 {
				t.Fatalf("latest after retry = %+v, %v", latest, err)
			}
		})
	}
}

// TestCheckpointHardLinkSurvivesReclaim proves the link actually shares the
// inode: after the next checkpoint hard-links the snapshot and the old
// checkpoint directory is reclaimed, the new checkpoint's graph file is the
// same file (os.SameFile) and still serves every byte.
func TestCheckpointHardLinkSurvivesReclaim(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := v3SnapshotBytes(t, 40)
	cp1, err := d.WriteCheckpoint(Manifest{GraphVersion: 1}, writeBytes(g1), writeBytes([]byte("CAT1")))
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(cp1.GraphPath())
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := d.WriteCheckpointFrom(Manifest{GraphVersion: 2},
		SnapshotSource{Write: writeBytes(nil), LinkPath: cp1.GraphPath()}, writeBytes([]byte("CAT2")))
	if err != nil {
		t.Fatal(err)
	}
	// WriteCheckpointFrom reclaimed checkpoint 1; only the link keeps the
	// snapshot alive.
	if _, err := os.Stat(cp1.GraphPath()); !os.IsNotExist(err) {
		t.Fatalf("old checkpoint not reclaimed: %v", err)
	}
	after, err := os.Stat(cp2.GraphPath())
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(before, after) {
		t.Fatal("checkpoint graph was copied, not hard-linked")
	}
	raw, err := os.ReadFile(cp2.GraphPath())
	if err != nil || !bytes.Equal(raw, g1) {
		t.Fatalf("linked snapshot = %d bytes, err %v", len(raw), err)
	}
	// And it still loads as a graph.
	g, err := store.LoadFile(cp2.GraphPath())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("linked snapshot loaded empty")
	}
}

func mkdir(t *testing.T, path string) {
	t.Helper()
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
}
