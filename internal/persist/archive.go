package persist

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint archives: the bootstrap format replicas use. A primary streams
// its newest checkpoint as a tar of the three checkpoint files (GET
// /v1/checkpoint); a replica unpacks it into a fresh data-directory layout
// and restores from it exactly as a restart would — same snapshot loader,
// same manifest validation, empty WAL.

// WriteArchive streams the checkpoint as a tar archive holding
// MANIFEST.json, graph.snap, and catalog.bin. Both data files are opened
// before any byte is written: a concurrent checkpoint may delete this
// checkpoint's directory mid-stream, but open handles survive the unlink, so
// the archive is torn only if the copy itself fails.
func (c *Checkpoint) WriteArchive(w io.Writer) error {
	gf, err := os.Open(filepath.Join(c.dir, graphFile))
	if err != nil {
		return fmt.Errorf("persist: opening graph snapshot for archive: %w", err)
	}
	defer gf.Close()
	cf, err := os.Open(filepath.Join(c.dir, catalogFile))
	if err != nil {
		return fmt.Errorf("persist: opening catalog state for archive: %w", err)
	}
	defer cf.Close()

	tw := tar.NewWriter(w)
	mraw, err := json.MarshalIndent(&c.Manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encoding manifest for archive: %w", err)
	}
	mraw = append(mraw, '\n')
	if err := tw.WriteHeader(&tar.Header{Name: manifestFile, Mode: 0o644, Size: int64(len(mraw))}); err != nil {
		return fmt.Errorf("persist: archiving manifest: %w", err)
	}
	if _, err := tw.Write(mraw); err != nil {
		return fmt.Errorf("persist: archiving manifest: %w", err)
	}
	for _, part := range []struct {
		name string
		f    *os.File
	}{{graphFile, gf}, {catalogFile, cf}} {
		st, err := part.f.Stat()
		if err != nil {
			return fmt.Errorf("persist: sizing %s for archive: %w", part.name, err)
		}
		if err := tw.WriteHeader(&tar.Header{Name: part.name, Mode: 0o644, Size: st.Size()}); err != nil {
			return fmt.Errorf("persist: archiving %s: %w", part.name, err)
		}
		if _, err := io.Copy(tw, part.f); err != nil {
			return fmt.Errorf("persist: archiving %s: %w", part.name, err)
		}
	}
	return tw.Close()
}

// RestoreArchive materializes a checkpoint archive into a fresh data
// directory at path: the checkpoint directory, CURRENT pointing at it, and
// an empty WAL — exactly the layout core.Restore consumes. Existing contents
// under path are superseded (the archive's checkpoint becomes CURRENT).
func RestoreArchive(r io.Reader, path string) (*Dir, *Manifest, error) {
	d, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	tmp := filepath.Join(path, "bootstrap.tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return nil, nil, fmt.Errorf("persist: clearing stale bootstrap dir: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: creating bootstrap dir: %w", err)
	}
	tr := tar.NewReader(r)
	seen := map[string]bool{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("persist: reading checkpoint archive: %w", err)
		}
		switch hdr.Name {
		case manifestFile, graphFile, catalogFile:
		default:
			return nil, nil, fmt.Errorf("persist: unexpected checkpoint archive entry %q", hdr.Name)
		}
		if err := writeFileSynced(filepath.Join(tmp, hdr.Name), func(w io.Writer) error {
			_, err := io.Copy(w, tr)
			return err
		}); err != nil {
			return nil, nil, fmt.Errorf("persist: unpacking %s: %w", hdr.Name, err)
		}
		seen[hdr.Name] = true
	}
	for _, name := range []string{manifestFile, graphFile, catalogFile} {
		if !seen[name] {
			return nil, nil, fmt.Errorf("persist: checkpoint archive is missing %s", name)
		}
	}
	mraw, err := os.ReadFile(filepath.Join(tmp, manifestFile))
	if err != nil {
		return nil, nil, fmt.Errorf("persist: reading unpacked manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mraw, &m); err != nil {
		return nil, nil, fmt.Errorf("persist: parsing unpacked manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, nil, fmt.Errorf("persist: archived checkpoint has format %d, this build reads %d", m.Format, manifestFormat)
	}
	name := checkpointDirName(m.Sequence)
	final := filepath.Join(path, name)
	if err := os.RemoveAll(final); err != nil {
		return nil, nil, fmt.Errorf("persist: clearing stale checkpoint %s: %w", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, nil, fmt.Errorf("persist: publishing bootstrapped checkpoint: %w", err)
	}
	if err := syncDir(path); err != nil {
		return nil, nil, err
	}
	if err := writeFileSynced(filepath.Join(path, currentFile+".tmp"), func(w io.Writer) error {
		_, err := io.WriteString(w, name+"\n")
		return err
	}); err != nil {
		return nil, nil, fmt.Errorf("persist: writing CURRENT: %w", err)
	}
	if err := os.Rename(filepath.Join(path, currentFile+".tmp"), filepath.Join(path, currentFile)); err != nil {
		return nil, nil, fmt.Errorf("persist: publishing CURRENT: %w", err)
	}
	if err := syncDir(path); err != nil {
		return nil, nil, err
	}
	return d, &m, nil
}
