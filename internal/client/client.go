// Package client is the typed Go client for the sofos-serve /v1 API. It is
// the one place request/response handling lives: the workload replayer, the
// replica's apply loop, CI smoke scripts, and e2e tests all speak to the
// server through it, against the shared structs of internal/api.
//
// Read-your-writes: the client remembers the highest X-Sofos-Generation any
// response carried and sends it back as X-Sofos-Min-Generation on queries. A
// replica that has not applied that generation yet waits briefly for its
// replication stream and then redirects to the primary (a 307 the underlying
// http.Client follows transparently), so a client that writes to the primary
// and reads from a replica never observes its own write missing.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"sofos/internal/api"
	"sofos/internal/obs"
)

// traceIDKey carries a caller-supplied trace id through a context.
type traceIDKey struct{}

// WithTraceID returns a context whose requests carry the given
// X-Sofos-Trace-Id instead of a freshly generated one — how a driver
// correlates one logical operation across primary and replica requests.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace id attached by WithTraceID, if any.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Client talks to one sofos-serve instance. Safe for concurrent use; share
// one instance across goroutines so the generation ratchet spans them.
type Client struct {
	base string
	hc   *http.Client
	gen  atomic.Int64 // highest generation observed in any response
}

// New builds a client for the server at baseURL ("http://host:port"). A nil
// hc uses http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// BaseURL returns the server root this client targets.
func (c *Client) BaseURL() string { return c.base }

// Generation returns the highest catalog generation observed so far — the
// floor future queries demand via X-Sofos-Min-Generation.
func (c *Client) Generation() int64 { return c.gen.Load() }

// ObserveGeneration raises the generation floor to g (never lowers it) —
// how a reader client pointed at a replica inherits the writes a separate
// writer client made against the primary.
func (c *Client) ObserveGeneration(g int64) {
	for {
		cur := c.gen.Load()
		if g <= cur || c.gen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// APIError is a non-200 response carrying the server's typed error envelope.
type APIError struct {
	StatusCode int
	Err        api.Error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("status %d: %s: %s", e.StatusCode, e.Err.Code, e.Err.Message)
}

// Query answers one analytical query.
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if err := c.do(ctx, http.MethodPost, api.Prefix+"/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Update applies one batched write.
func (c *Client) Update(ctx context.Context, req api.UpdateRequest) (*api.UpdateResponse, error) {
	var out api.UpdateResponse
	if err := c.do(ctx, http.MethodPost, api.Prefix+"/update", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Views lists materializations.
func (c *Client) Views(ctx context.Context) (*api.ViewsResponse, error) {
	var out api.ViewsResponse
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/views", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ViewsAction runs one view-management action (materialize/refresh/drop/reset).
func (c *Client) ViewsAction(ctx context.Context, req api.ViewsRequest) (*api.ViewsActionResponse, error) {
	var out api.ViewsActionResponse
	if err := c.do(ctx, http.MethodPost, api.Prefix+"/views", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches serving health.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the liveness probe.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Checkpoint triggers a checkpoint on a durable server.
func (c *Client) Checkpoint(ctx context.Context) (*api.CheckpointResponse, error) {
	var out api.CheckpointResponse
	if err := c.do(ctx, http.MethodPost, api.Prefix+"/admin/checkpoint", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ack posts one replica progress report to a primary.
func (c *Client) Ack(ctx context.Context, req api.ReplicaAckRequest) error {
	var out api.ReplicaAckResponse
	return c.do(ctx, http.MethodPost, api.Prefix+"/replica/ack", req, &out)
}

// FetchCheckpoint streams the primary's newest checkpoint archive (a tar;
// unpack with persist.RestoreArchive). The caller closes the body.
func (c *Client) FetchCheckpoint(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.Prefix+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.HeaderTraceID, traceID(ctx))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	c.observe(resp.Header)
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// StreamWAL tails the primary's replication stream from the given applied
// graph version, invoking fn for every record and heartbeat event in order.
// It returns when fn errors (that error), the stream ends or drops
// (a transport error), the server reports a terminal stream error such as a
// WAL gap (an *APIError), or ctx is canceled (ctx.Err()). A 410 response —
// the resume version was truncated away — also surfaces as an *APIError,
// with code api.CodeWALTruncated: re-bootstrap and call again.
func (c *Client) StreamWAL(ctx context.Context, from int64, fn func(*api.WALEvent) error) error {
	url := fmt.Sprintf("%s%s/wal?from=%d", c.base, api.Prefix, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(api.HeaderTraceID, traceID(ctx))
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.observe(resp.Header)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.WALEvent
		if err := dec.Decode(&ev); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("client: wal stream ended: %w", err)
		}
		if ev.Error != nil {
			return &APIError{StatusCode: http.StatusOK, Err: *ev.Error}
		}
		if err := fn(&ev); err != nil {
			return err
		}
	}
}

// do issues one JSON request. Queries carry the min-generation floor; every
// response ratchets the observed generation.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		// bytes.Reader gives the request a GetBody, so the http.Client can
		// replay it across a replica's 307 redirect to the primary.
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if g := c.gen.Load(); g > 0 {
		req.Header.Set(api.HeaderMinGeneration, strconv.FormatInt(g, 10))
	}
	req.Header.Set(api.HeaderTraceID, traceID(ctx))
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.observe(resp.Header)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: malformed %s response: %w", path, err)
	}
	return nil
}

// traceID resolves the X-Sofos-Trace-Id for one request: the caller's id
// from WithTraceID, or a fresh one per request.
func traceID(ctx context.Context) string {
	if id := TraceIDFrom(ctx); id != "" {
		return id
	}
	return obs.NewTraceID()
}

// decodeError turns a non-200 response into an *APIError when the body is
// the typed envelope, or a plain error otherwise.
func decodeError(resp *http.Response) error {
	var env api.ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&env) == nil && env.Error.Code != "" {
		return &APIError{StatusCode: resp.StatusCode, Err: env.Error}
	}
	return fmt.Errorf("client: status %d from %s", resp.StatusCode, resp.Request.URL.Path)
}

// observe ratchets the generation floor from a response header.
func (c *Client) observe(h http.Header) {
	v := h.Get(api.HeaderGeneration)
	if v == "" {
		return
	}
	g, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return
	}
	c.ObserveGeneration(g)
}
