package workload

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sofos/internal/api"
	"sofos/internal/benchkit"
	"sofos/internal/client"
)

// HTTP replay: load generation against a running sofos-serve instance. The
// in-process replay path (core.RunWorkloadParallel) measures the engine;
// this replayer measures the whole serving stack — admission control, the
// result cache, JSON rendering — from the network side, through the shared
// typed client (internal/client). One client is shared across all requester
// goroutines, so its generation ratchet spans the run: replaying against a
// replica is read-your-writes with respect to everything the run has seen.

// HTTPConfig configures an HTTP replay run.
type HTTPConfig struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent requesters (default 1).
	Clients int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Rounds replays the workload this many times (default 1); repeated
	// rounds measure the result cache's effect on a hot workload.
	Rounds int
}

// withDefaults normalizes the configuration.
func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Rounds < 1 {
		c.Rounds = 1
	}
	return c
}

// HTTPOutcome records one replayed request.
type HTTPOutcome struct {
	Index   int    // position in the replay sequence
	Via     string // answering source reported by the server
	Cached  bool   // served from the result cache
	Rows    int
	Elapsed time.Duration // client-observed latency
}

// HTTPReport aggregates an HTTP replay run.
type HTTPReport struct {
	PerQuery  []HTTPOutcome
	Timing    benchkit.Timing
	ViewHits  int // answers served via a materialized view
	CacheHits int // answers served from the result cache
}

// HitRate is the fraction of requests answered from views.
func (r *HTTPReport) HitRate() float64 {
	if len(r.PerQuery) == 0 {
		return 0
	}
	return float64(r.ViewHits) / float64(len(r.PerQuery))
}

// CacheHitRate is the fraction of requests served from the result cache.
func (r *HTTPReport) CacheHitRate() float64 {
	if len(r.PerQuery) == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(len(r.PerQuery))
}

// ReplayHTTP replays the workload's queries against a server, cfg.Clients
// at a time, repeating for cfg.Rounds. Outcomes are in replay order
// (workload order within each round). The first transport error or non-200
// aborts the run: in-flight requests finish, queued ones are skipped.
func ReplayHTTP(cfg HTTPConfig, w *Workload) (*HTTPReport, error) {
	cfg = cfg.withDefaults()
	cl := client.New(cfg.BaseURL, cfg.Client)
	total := len(w.Queries) * cfg.Rounds
	outcomes := make([]HTTPOutcome, total)
	errs := make([]error, total)
	jobs := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue // drain without issuing further requests
				}
				outcomes[i], errs[i] = replayOne(cl, w.Queries[i%len(w.Queries)].Text, i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := &HTTPReport{}
	for i, o := range outcomes {
		if errs[i] != nil {
			return nil, fmt.Errorf("workload: replaying query %d: %w", i, errs[i])
		}
		if o.Via != "base" {
			rep.ViewHits++
		}
		if o.Cached {
			rep.CacheHits++
		}
		rep.Timing.Add(o.Elapsed)
		rep.PerQuery = append(rep.PerQuery, o)
	}
	return rep, nil
}

// replayOne issues one query through the shared client.
func replayOne(cl *client.Client, text string, index int) (HTTPOutcome, error) {
	start := time.Now()
	ans, err := cl.Query(context.Background(), api.QueryRequest{Query: text})
	if err != nil {
		return HTTPOutcome{}, err
	}
	return HTTPOutcome{
		Index:   index,
		Via:     ans.Via,
		Cached:  ans.Cached,
		Rows:    len(ans.Rows),
		Elapsed: time.Since(start),
	}, nil
}
