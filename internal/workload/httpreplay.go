package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sofos/internal/benchkit"
)

// HTTP replay: load generation against a running sofos-serve instance. The
// in-process replay path (core.RunWorkloadParallel) measures the engine;
// this client measures the whole serving stack — admission control, the
// result cache, JSON rendering — from the network side.

// HTTPConfig configures an HTTP replay run.
type HTTPConfig struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent requesters (default 1).
	Clients int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Rounds replays the workload this many times (default 1); repeated
	// rounds measure the result cache's effect on a hot workload.
	Rounds int
}

// withDefaults normalizes the configuration.
func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Rounds < 1 {
		c.Rounds = 1
	}
	return c
}

// HTTPOutcome records one replayed request.
type HTTPOutcome struct {
	Index   int    // position in the replay sequence
	Via     string // answering source reported by the server
	Cached  bool   // served from the result cache
	Rows    int
	Elapsed time.Duration // client-observed latency
}

// HTTPReport aggregates an HTTP replay run.
type HTTPReport struct {
	PerQuery  []HTTPOutcome
	Timing    benchkit.Timing
	ViewHits  int // answers served via a materialized view
	CacheHits int // answers served from the result cache
}

// HitRate is the fraction of requests answered from views.
func (r *HTTPReport) HitRate() float64 {
	if len(r.PerQuery) == 0 {
		return 0
	}
	return float64(r.ViewHits) / float64(len(r.PerQuery))
}

// CacheHitRate is the fraction of requests served from the result cache.
func (r *HTTPReport) CacheHitRate() float64 {
	if len(r.PerQuery) == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(len(r.PerQuery))
}

// httpAnswer is the subset of the server's /query response the client reads.
type httpAnswer struct {
	Rows   [][]string `json:"rows"`
	Via    string     `json:"via"`
	Cached bool       `json:"cached"`
	Error  string     `json:"error"`
}

// ReplayHTTP replays the workload's queries against a server, cfg.Clients
// at a time, repeating for cfg.Rounds. Outcomes are in replay order
// (workload order within each round). The first transport error or non-200
// aborts the run: in-flight requests finish, queued ones are skipped.
func ReplayHTTP(cfg HTTPConfig, w *Workload) (*HTTPReport, error) {
	cfg = cfg.withDefaults()
	url := strings.TrimRight(cfg.BaseURL, "/") + "/query"
	total := len(w.Queries) * cfg.Rounds
	outcomes := make([]HTTPOutcome, total)
	errs := make([]error, total)
	jobs := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue // drain without issuing further requests
				}
				outcomes[i], errs[i] = replayOne(cfg.Client, url, w.Queries[i%len(w.Queries)].Text, i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := &HTTPReport{}
	for i, o := range outcomes {
		if errs[i] != nil {
			return nil, fmt.Errorf("workload: replaying query %d: %w", i, errs[i])
		}
		if o.Via != "base" {
			rep.ViewHits++
		}
		if o.Cached {
			rep.CacheHits++
		}
		rep.Timing.Add(o.Elapsed)
		rep.PerQuery = append(rep.PerQuery, o)
	}
	return rep, nil
}

// replayOne issues one /query request and parses the answer.
func replayOne(client *http.Client, url, text string, index int) (HTTPOutcome, error) {
	body, err := json.Marshal(map[string]string{"query": text})
	if err != nil {
		return HTTPOutcome{}, err
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return HTTPOutcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The body may be the server's {"error": ...} or an intermediary's
		// HTML page; report the status either way.
		var ans httpAnswer
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&ans) == nil && ans.Error != "" {
			return HTTPOutcome{}, fmt.Errorf("status %d: %s", resp.StatusCode, ans.Error)
		}
		return HTTPOutcome{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var ans httpAnswer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		return HTTPOutcome{}, fmt.Errorf("malformed response: %w", err)
	}
	return HTTPOutcome{
		Index:   index,
		Via:     ans.Via,
		Cached:  ans.Cached,
		Rows:    len(ans.Rows),
		Elapsed: time.Since(start),
	}, nil
}
