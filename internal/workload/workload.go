// Package workload generates analytical query workloads from a facet,
// reproducing the demo's "query workload composed of different parametrized
// queries for a given query template" (§4). Each generated query targets the
// facet at a random granularity (a dimension subset) and may specialize it
// with FILTER conditions over dimension values sampled from the graph.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// Config controls workload generation.
type Config struct {
	Size       int     // number of queries (default 20)
	Seed       int64   // RNG seed: same seed, same workload
	FilterProb float64 // per-dimension probability of a FILTER (default 0.25)
	RangeProb  float64 // probability a numeric filter is a range instead of equality (default 0.5)
	ValuesProb float64 // per-dimension probability of a VALUES clause instead of a FILTER (default 0)
}

// withDefaults normalizes the configuration.
func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 20
	}
	if c.FilterProb <= 0 {
		c.FilterProb = 0.25
	}
	if c.RangeProb <= 0 {
		c.RangeProb = 0.5
	}
	return c
}

// Query is one generated workload query.
type Query struct {
	Parsed     *sparql.Query
	Text       string
	GroupMask  facet.Mask // dimensions grouped by
	FilterMask facet.Mask // dimensions constrained by FILTERs
}

// RequiredMask is the dimension set a view must keep to answer this query.
func (q *Query) RequiredMask() facet.Mask { return q.GroupMask | q.FilterMask }

// Workload is a reproducible set of queries over one facet.
type Workload struct {
	Facet   *facet.Facet
	Queries []Query
	Domains map[string][]rdf.Term // sampled value domain per dimension
}

// Generate builds a workload of cfg.Size queries over f, sampling dimension
// domains from the base graph.
func Generate(base *store.Graph, f *facet.Facet, cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	domains, err := DimensionDomains(base, f)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Facet: f, Domains: domains}
	for i := 0; i < cfg.Size; i++ {
		q := generateOne(rng, f, domains, cfg)
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// DimensionDomains computes the distinct values of each dimension variable
// on the base graph by executing SELECT DISTINCT ?d WHERE P.
func DimensionDomains(base *store.Graph, f *facet.Facet) (map[string][]rdf.Term, error) {
	eng := engine.New(base)
	out := make(map[string][]rdf.Term, len(f.Dims))
	for _, d := range f.Dims {
		q := &sparql.Query{
			Prefixes: f.Prefixes,
			Select:   []sparql.SelectItem{{Var: d}},
			Distinct: true,
			Where:    f.Pattern.Clone(),
			Limit:    -1,
		}
		res, err := eng.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("workload: computing domain of ?%s: %w", d, err)
		}
		var vals []rdf.Term
		for _, row := range res.Rows {
			if row[0].Bound {
				vals = append(vals, row[0].Term)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
		if len(vals) == 0 {
			return nil, fmt.Errorf("workload: dimension ?%s has an empty domain", d)
		}
		out[d] = vals
	}
	return out, nil
}

// generateOne builds a single random query.
func generateOne(rng *rand.Rand, f *facet.Facet, domains map[string][]rdf.Term, cfg Config) Query {
	nd := len(f.Dims)
	// Random grouping subset, biased toward coarser queries (the analyst
	// asks for summaries more often than for the full cube).
	var groupMask facet.Mask
	target := rng.Intn(nd + 1) // number of grouping dims
	perm := rng.Perm(nd)
	for _, i := range perm[:target] {
		groupMask |= 1 << i
	}
	view := f.View(groupMask)
	q := view.AnalyticalQuery()

	// FILTER / VALUES specialization over any dimension.
	var filterMask facet.Mask
	for i, d := range f.Dims {
		if rng.Float64() >= cfg.FilterProb {
			continue
		}
		dom := domains[d]
		if rng.Float64() < cfg.ValuesProb {
			// A VALUES clause restricting the dimension to 1-3 values.
			data := sparql.InlineData{Var: d}
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				data.Terms = append(data.Terms, dom[rng.Intn(len(dom))])
			}
			q.Where.Values = append(q.Where.Values, data)
			filterMask |= 1 << i
			continue
		}
		val := dom[rng.Intn(len(dom))]
		var cond sparql.Expr
		if _, numeric := algebra.NumericValue(val); numeric && rng.Float64() < cfg.RangeProb {
			cond = &sparql.BinaryExpr{
				Op:    sparql.OpGe,
				Left:  &sparql.VarExpr{Name: d},
				Right: &sparql.TermExpr{Term: val},
			}
		} else {
			cond = sparql.Eq(d, val)
		}
		q.Where.Filters = append(q.Where.Filters, cond)
		filterMask |= 1 << i
	}
	return Query{
		Parsed:     q,
		Text:       q.String(),
		GroupMask:  groupMask,
		FilterMask: filterMask,
	}
}

// Stats summarizes a workload for reports.
type Stats struct {
	Queries     int
	WithFilters int
	// GroupLevelHistogram[k] counts queries grouping by k dimensions.
	GroupLevelHistogram []int
}

// Summarize computes workload statistics.
func (w *Workload) Summarize() Stats {
	st := Stats{
		Queries:             len(w.Queries),
		GroupLevelHistogram: make([]int, len(w.Facet.Dims)+1),
	}
	for _, q := range w.Queries {
		if q.FilterMask != 0 {
			st.WithFilters++
		}
		st.GroupLevelHistogram[facet.PopCount(q.GroupMask)]++
	}
	return st
}
