package workload

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// stubWorkload builds a minimal workload with n query texts (the HTTP
// client only reads .Text, so no parsing is needed).
func stubWorkload(n int) *Workload {
	w := &Workload{}
	for i := 0; i < n; i++ {
		w.Queries = append(w.Queries, Query{Text: fmt.Sprintf("SELECT q%d", i)})
	}
	return w
}

// stubServer mimics /v1/query: first sight of a query is uncached and
// "base", repeats are cached and served via a view.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	seen := make(map[string]bool)
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/query" || r.Method != http.MethodPost {
			http.Error(w, `{"error":"bad route"}`, http.StatusNotFound)
			return
		}
		var req struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
			return
		}
		mu.Lock()
		cached := seen[req.Query]
		seen[req.Query] = true
		mu.Unlock()
		via := "base"
		if cached {
			via = "v1"
			hits.Add(1)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"rows":   [][]string{{"x"}},
			"via":    via,
			"cached": cached,
		})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestReplayHTTP(t *testing.T) {
	// One client keeps dispatch order deterministic: round two repeats
	// every query, so exactly half the requests are cached.
	ts, _ := stubServer(t)
	w := stubWorkload(5)
	rep, err := ReplayHTTP(HTTPConfig{BaseURL: ts.URL, Clients: 1, Rounds: 2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.PerQuery); got != 10 {
		t.Fatalf("replayed %d requests, want 10", got)
	}
	if rep.CacheHits != 5 {
		t.Errorf("cache hits = %d, want 5", rep.CacheHits)
	}
	if rep.CacheHitRate() != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", rep.CacheHitRate())
	}
	if rep.HitRate() != 0.5 {
		t.Errorf("view hit rate = %v, want 0.5", rep.HitRate())
	}
	if rep.Timing.N() != 10 {
		t.Errorf("timing samples = %d, want 10", rep.Timing.N())
	}
}

func TestReplayHTTPConcurrent(t *testing.T) {
	// With concurrent clients a round-2 duplicate can race its round-1
	// counterpart, so only the totals are deterministic.
	ts, _ := stubServer(t)
	w := stubWorkload(5)
	rep, err := ReplayHTTP(HTTPConfig{BaseURL: ts.URL, Clients: 3, Rounds: 4}, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.PerQuery); got != 20 {
		t.Fatalf("replayed %d requests, want 20", got)
	}
	// Each of the 5 distinct queries is uncached exactly once at the stub.
	if rep.CacheHits != 15 {
		t.Errorf("cache hits = %d, want 15", rep.CacheHits)
	}
}

func TestReplayHTTPErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "boom"})
	}))
	defer ts.Close()
	if _, err := ReplayHTTP(HTTPConfig{BaseURL: ts.URL}, stubWorkload(1)); err == nil {
		t.Fatal("expected an error from a failing server")
	}
	if _, err := ReplayHTTP(HTTPConfig{BaseURL: "http://127.0.0.1:0"}, stubWorkload(1)); err == nil {
		t.Fatal("expected a transport error")
	}
}
