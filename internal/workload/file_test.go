package workload

import (
	"strings"
	"testing"

	"sofos/internal/sparql"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 12, Seed: 21, FilterProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(buf.String()), f)
	if err != nil {
		t.Fatalf("Load: %v\nfile:\n%s", err, buf.String())
	}
	if len(loaded.Queries) != len(w.Queries) {
		t.Fatalf("loaded %d queries, want %d", len(loaded.Queries), len(w.Queries))
	}
	for i := range w.Queries {
		if loaded.Queries[i].Text != w.Queries[i].Text {
			t.Errorf("query %d text changed:\n%s\nvs\n%s", i, w.Queries[i].Text, loaded.Queries[i].Text)
		}
		if loaded.Queries[i].GroupMask != w.Queries[i].GroupMask ||
			loaded.Queries[i].FilterMask != w.Queries[i].FilterMask {
			t.Errorf("query %d masks changed", i)
		}
	}
}

func TestLoadHandwrittenFile(t *testing.T) {
	_, f := fixture(t)
	file := `
PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
} GROUP BY ?lang
---
PREFIX ex: <http://ex.org/>
SELECT (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
  FILTER (?year >= 2019)
}
`
	w, err := Load(strings.NewReader(file), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 2 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	if w.Queries[0].GroupMask != 1<<f.DimIndex("lang") {
		t.Errorf("query 0 group mask = %b", w.Queries[0].GroupMask)
	}
	if w.Queries[1].FilterMask != 1<<f.DimIndex("year") {
		t.Errorf("query 1 filter mask = %b", w.Queries[1].FilterMask)
	}
}

func TestLoadErrors(t *testing.T) {
	_, f := fixture(t)
	if _, err := Load(strings.NewReader(""), f); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := Load(strings.NewReader("not sparql\n---\n"), f); err == nil {
		t.Error("unparseable query accepted")
	}
}

func TestFromQueryForeignVars(t *testing.T) {
	_, f := fixture(t)
	// Grouping by a non-dimension variable contributes nothing to the mask.
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?o (COUNT(?pop) AS ?n) WHERE { ?o ex:pop ?pop . } GROUP BY ?o`)
	wq := FromQuery(f, q)
	if wq.GroupMask != 0 || wq.FilterMask != 0 {
		t.Errorf("masks = %b/%b", wq.GroupMask, wq.FilterMask)
	}
}
