package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/rewrite"
	"sofos/internal/sparql"
	"sofos/internal/store"
	"sofos/internal/views"
)

func fixture(t testing.TB) (*store.Graph, *facet.Facet) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < 5; ci++ {
		for li := 0; li < 3; li++ {
			for yi := 0; yi < 2; yi++ {
				obs := ex(fmt.Sprintf("o%d%d%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2018 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(100) + 1))})
			}
		}
	}
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`)
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	return g, f
}

func TestDimensionDomains(t *testing.T) {
	g, f := fixture(t)
	domains, err := DimensionDomains(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains["country"]) != 5 || len(domains["lang"]) != 3 || len(domains["year"]) != 2 {
		t.Errorf("domain sizes: %d %d %d", len(domains["country"]), len(domains["lang"]), len(domains["year"]))
	}
	// Sorted and deterministic.
	if domains["country"][0].Value != "C0" {
		t.Errorf("domain not sorted: %v", domains["country"][0])
	}
}

func TestGenerateReproducible(t *testing.T) {
	g, f := fixture(t)
	a, err := Generate(g, f, Config{Size: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, f, Config{Size: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != 15 {
		t.Fatalf("generated %d queries", len(a.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].Text != b.Queries[i].Text {
			t.Errorf("query %d differs under same seed", i)
		}
	}
	c, err := Generate(g, f, Config{Size: 15, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Queries {
		if a.Queries[i].Text != c.Queries[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGeneratedQueriesAreValidAndParseable(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 40, Seed: 3, FilterProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		if err := q.Parsed.Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
		reparsed, err := sparql.Parse(q.Text)
		if err != nil {
			t.Errorf("query %d text does not re-parse: %v\n%s", i, err, q.Text)
			continue
		}
		if reparsed.String() != q.Text {
			t.Errorf("query %d text not canonical", i)
		}
	}
}

func TestGeneratedQueriesExecutable(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 30, Seed: 11, FilterProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	c := views.NewCatalog(g, f)
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	rw := rewrite.New(c)
	viewAnswered := 0
	for i, q := range w.Queries {
		ans, err := rw.Answer(q.Parsed)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, q.Text)
		}
		if ans.UsedView() {
			viewAnswered++
		}
		// Every workload query targets the facet, so with the full view
		// materialized every one must be view-answerable.
		if !ans.UsedView() {
			t.Errorf("query %d fell back: %s\n%s", i, ans.Reason, q.Text)
		}
		base, err := c.BaseEngine().Execute(q.Parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans.Result.Sorted(), base.Sorted()) {
			t.Errorf("query %d: view answer differs from base\n%s", i, q.Text)
		}
	}
	if viewAnswered != len(w.Queries) {
		t.Errorf("only %d/%d queries view-answered", viewAnswered, len(w.Queries))
	}
}

func TestGeneratedMasksConsistent(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 50, Seed: 13, FilterProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	sawFilter := false
	for i, q := range w.Queries {
		if q.RequiredMask() != q.GroupMask|q.FilterMask {
			t.Errorf("query %d: RequiredMask inconsistent", i)
		}
		// GroupMask matches the parsed GROUP BY.
		var mask facet.Mask
		for _, v := range q.Parsed.GroupBy {
			mask |= 1 << f.DimIndex(v)
		}
		if mask != q.GroupMask {
			t.Errorf("query %d: group mask %b != parsed %b", i, q.GroupMask, mask)
		}
		// FilterMask matches the parsed filters.
		var fmask facet.Mask
		for _, fe := range q.Parsed.Where.Filters {
			for _, v := range sparql.ExprVars(fe) {
				fmask |= 1 << f.DimIndex(v)
			}
		}
		if fmask != q.FilterMask {
			t.Errorf("query %d: filter mask %b != parsed %b", i, q.FilterMask, fmask)
		}
		if q.FilterMask != 0 {
			sawFilter = true
		}
	}
	if !sawFilter {
		t.Error("no query got a filter at FilterProb=0.6")
	}
}

func TestSummarize(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 25, Seed: 17, FilterProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Summarize()
	if st.Queries != 25 {
		t.Errorf("Queries = %d", st.Queries)
	}
	total := 0
	for _, n := range st.GroupLevelHistogram {
		total += n
	}
	if total != 25 {
		t.Errorf("histogram sums to %d", total)
	}
	if st.WithFilters == 0 {
		t.Error("no filtered queries recorded")
	}
}

func TestGenerateWithValuesClauses(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{Size: 40, Seed: 23, FilterProb: 0.6, ValuesProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sawValues := false
	c := views.NewCatalog(g, f)
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	rw := rewrite.New(c)
	for i, q := range w.Queries {
		if len(q.Parsed.Where.Values) > 0 {
			sawValues = true
			// VALUES dims must be reflected in the filter mask.
			for _, d := range q.Parsed.Where.Values {
				if q.FilterMask&(1<<f.DimIndex(d.Var)) == 0 {
					t.Errorf("query %d: VALUES dim ?%s missing from filter mask", i, d.Var)
				}
			}
		}
		// Correctness end to end: view answer equals base answer.
		ans, err := rw.Answer(q.Parsed)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, q.Text)
		}
		base, err := c.BaseEngine().Execute(q.Parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans.Result.Sorted(), base.Sorted()) {
			t.Errorf("query %d diverges:\n%s", i, q.Text)
		}
	}
	if !sawValues {
		t.Error("no VALUES clauses generated at ValuesProb=0.5")
	}
}

func TestGenerateDefaults(t *testing.T) {
	g, f := fixture(t)
	w, err := Generate(g, f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 20 {
		t.Errorf("default size = %d", len(w.Queries))
	}
}
