package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sofos/internal/facet"
	"sofos/internal/sparql"
)

// Save writes the workload as a text file: one SPARQL query per block,
// blocks separated by a line containing only "---". The format round-trips
// through Load, so generated workloads can be archived and replayed.
func (w *Workload) Save(out io.Writer) error {
	bw := bufio.NewWriter(out)
	for i, q := range w.Queries {
		if i > 0 {
			if _, err := bw.WriteString("\n---\n"); err != nil {
				return fmt.Errorf("workload: writing separator: %w", err)
			}
		}
		if _, err := bw.WriteString(q.Text); err != nil {
			return fmt.Errorf("workload: writing query %d: %w", i, err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("workload: writing query %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads a workload file (queries separated by "---" lines), parses and
// validates every query against the facet, and recomputes the dimension
// masks. Queries that do not target the facet are still loaded — they will
// simply fall back to the base graph when answered — but unparseable ones
// are an error.
func Load(in io.Reader, f *facet.Facet) (*Workload, error) {
	w, err := LoadQueries(in)
	if err != nil {
		return nil, err
	}
	w.Facet = f
	for i, q := range w.Queries {
		w.Queries[i] = FromQuery(f, q.Parsed)
	}
	return w, nil
}

// LoadQueries reads a workload file without binding it to a facet: queries
// are parsed for validity but the dimension masks are left empty. This is
// all HTTP replay needs — it only sends the query text, and the serving
// side owns the facet — so clients can skip building the dataset locally.
func LoadQueries(in io.Reader) (*Workload, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("workload: reading: %w", err)
	}
	w := &Workload{}
	for i, block := range splitBlocks(string(data)) {
		q, err := sparql.Parse(block)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		w.Queries = append(w.Queries, Query{Parsed: q, Text: q.String()})
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: file contains no queries")
	}
	return w, nil
}

// FromQuery wraps a parsed query as a workload entry, deriving the dimension
// masks from its GROUP BY and FILTER clauses.
func FromQuery(f *facet.Facet, q *sparql.Query) Query {
	var groupMask, filterMask facet.Mask
	for _, v := range q.GroupBy {
		if i := f.DimIndex(v); i >= 0 {
			groupMask |= 1 << i
		}
	}
	for _, fe := range q.Where.Filters {
		for _, v := range sparql.ExprVars(fe) {
			if i := f.DimIndex(v); i >= 0 {
				filterMask |= 1 << i
			}
		}
	}
	for _, d := range q.Where.Values {
		if i := f.DimIndex(d.Var); i >= 0 {
			filterMask |= 1 << i
		}
	}
	return Query{
		Parsed:     q,
		Text:       q.String(),
		GroupMask:  groupMask,
		FilterMask: filterMask,
	}
}

// splitBlocks splits the file on lines containing only "---", dropping
// empty blocks.
func splitBlocks(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if b := strings.TrimSpace(cur.String()); b != "" {
			out = append(out, b)
		}
		cur.Reset()
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) == "---" {
			flush()
			continue
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	flush()
	return out
}
