// Package obs is the observability substrate: a dependency-free
// Prometheus-text-format metric registry, pooled per-query trace spans, and
// a bounded ring of recent query records shaped for the future online
// view-selection loop.
//
// The package imports nothing outside the standard library so every layer
// (persist, engine, server) can hold metric handles without import cycles.
// Every handle method is nil-receiver safe: un-instrumented paths
// (-obs=off, direct library use) pay a single nil check and no allocation.
package obs

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric series. Label values
// must be low-cardinality (view IDs, endpoint paths, outcome enums) — never
// query text or user input.
type Label struct {
	Key   string
	Value string
}

// LatencyBuckets are the default histogram bounds for request and operation
// latencies, in seconds: 100µs to 10s, roughly log-spaced.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are dropped (counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Observations are lock-free; each
// falls into the first bucket whose upper bound is >= the value (Prometheus
// `le` semantics), or the implicit +Inf bucket.
type Histogram struct {
	upper  []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // CounterFunc/GaugeFunc
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	buckets []float64
	funcs   bool // series backed by callbacks

	mu    sync.Mutex
	order []*series
	byKey map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Handles are deduplicated by (name, label set): asking
// for the same series twice returns the same handle. A nil *Registry
// returns nil handles everywhere, so a disabled registry costs nothing.
type Registry struct {
	mu         sync.Mutex
	order      []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64, funcs bool) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic("obs: metric " + name + " re-registered as " + typ + ", was " + f.typ)
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, buckets: buckets, funcs: funcs,
		byKey: make(map[string]*series),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

func (f *family) series(labels []Label) (*series, bool) {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s, false
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s, true
}

// Counter returns the counter series for name + labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "counter", nil, false)
	s, fresh := f.series(labels)
	if fresh {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge returns the gauge series for name + labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "gauge", nil, false)
	s, fresh := f.series(labels)
	if fresh {
		s.g = new(Gauge)
	}
	return s.g
}

// Histogram returns the histogram series for name + labels. buckets are
// ascending upper bounds (the +Inf bucket is implicit); nil means
// LatencyBuckets. All series of one family share the first registration's
// buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	f := r.family(name, help, "histogram", buckets, false)
	s, fresh := f.series(labels)
	if fresh {
		s.h = &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	return s.h
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for sources that already keep their own monotonic atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.family(name, help, "counter", nil, true)
	if s, fresh := f.series(labels); fresh {
		s.fn = fn
	}
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.family(name, help, "gauge", nil, true)
	if s, fresh := f.series(labels); fresh {
		s.fn = fn
	}
}

// OnCollect registers a hook run at the start of every scrape, before
// rendering — the place to refresh gauges whose label sets are dynamic
// (e.g. per-view series that appear as views are materialized).
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4). Collector hooks run
// first; rendering reads only atomics and short-held registry locks, so a
// scrape never blocks queries or updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cols := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range cols {
		fn()
	}
	r.mu.Lock()
	fams := append([]*family{}, r.order...)
	r.mu.Unlock()
	var b bytes.Buffer
	for _, f := range fams {
		f.write(&b)
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Handler serves WritePrometheus over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(b *bytes.Buffer) {
	f.mu.Lock()
	ss := append([]*series{}, f.order...)
	f.mu.Unlock()
	if len(ss) == 0 {
		return
	}
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')
	for _, s := range ss {
		if f.typ == "histogram" {
			writeHistogram(b, f.name, s.labels, s.h)
			continue
		}
		var v float64
		switch {
		case s.fn != nil:
			v = s.fn()
		case s.c != nil:
			v = float64(s.c.Value())
		case s.g != nil:
			v = s.g.Value()
		}
		writeSample(b, f.name, s.labels, nil, v)
	}
}

func writeHistogram(b *bytes.Buffer, name string, labels []Label, h *Histogram) {
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		le := Label{"le", formatFloat(upper)}
		writeSample(b, name+"_bucket", labels, &le, float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	le := Label{"le", "+Inf"}
	writeSample(b, name+"_bucket", labels, &le, float64(cum))
	writeSample(b, name+"_sum", labels, nil, math.Float64frombits(h.sum.Load()))
	writeSample(b, name+"_count", labels, nil, float64(cum))
}

func writeSample(b *bytes.Buffer, name string, labels []Label, extra *Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extra != nil {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, *extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeLabel(b *bytes.Buffer, l Label) {
	b.WriteString(l.Key)
	b.WriteString(`="`)
	for _, r := range l.Value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
