package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Prometheus text-format grammar ---

// Exposition format, version 0.0.4: each non-comment line is
// `name{labels} value`, labels are `key="escaped"` pairs, and every sample
// line for a family follows its # HELP / # TYPE pair.
var (
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)
	helpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func checkGrammar(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpLine.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			if !typeLine.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		default:
			if !sampleLine.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
			}
		}
	}
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sofos_test_total", "test counter", Label{"outcome", "view_hit"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters are monotonic
	r.Gauge("sofos_test_gauge", "test gauge").Set(2.5)
	text := render(t, r)
	checkGrammar(t, text)
	for _, want := range []string{
		"# HELP sofos_test_total test counter\n",
		"# TYPE sofos_test_total counter\n",
		`sofos_test_total{outcome="view_hit"} 3` + "\n",
		"# TYPE sofos_test_gauge gauge\n",
		"sofos_test_gauge 2.5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestHandleDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sofos_dedup_total", "h", Label{"k", "v"})
	b := r.Counter("sofos_dedup_total", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	other := r.Counter("sofos_dedup_total", "h", Label{"k", "w"})
	if a == other {
		t.Fatal("different label values must be distinct series")
	}
	a.Inc()
	text := render(t, r)
	if !strings.Contains(text, `sofos_dedup_total{k="v"} 1`) ||
		!strings.Contains(text, `sofos_dedup_total{k="w"} 0`) {
		t.Fatalf("unexpected render:\n%s", text)
	}
	if strings.Count(text, "# TYPE sofos_dedup_total") != 1 {
		t.Fatal("one family must render one TYPE header")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sofos_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.01)  // le is inclusive: still 0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(5)     // +Inf only
	text := render(t, r)
	checkGrammar(t, text)
	for _, want := range []string{
		`sofos_lat_seconds_bucket{le="0.01"} 2`,
		`sofos_lat_seconds_bucket{le="0.1"} 3`,
		`sofos_lat_seconds_bucket{le="1"} 3`,
		`sofos_lat_seconds_bucket{le="+Inf"} 4`,
		`sofos_lat_seconds_sum 5.065`,
		`sofos_lat_seconds_count 4`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestHistogramLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sofos_h_seconds", "h", []float64{1}, Label{"endpoint", "/query"}).Observe(0.5)
	r.Histogram("sofos_h_seconds", "h", []float64{1}, Label{"endpoint", "/update"}).Observe(2)
	text := render(t, r)
	checkGrammar(t, text)
	for _, want := range []string{
		`sofos_h_seconds_bucket{endpoint="/query",le="1"} 1`,
		`sofos_h_seconds_bucket{endpoint="/query",le="+Inf"} 1`,
		`sofos_h_seconds_bucket{endpoint="/update",le="1"} 0`,
		`sofos_h_seconds_bucket{endpoint="/update",le="+Inf"} 1`,
		`sofos_h_seconds_count{endpoint="/update"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestFuncsAndCollectors(t *testing.T) {
	r := NewRegistry()
	var hits int64 = 41
	r.CounterFunc("sofos_fn_total", "fn counter", func() float64 { return float64(hits) })
	collected := false
	r.OnCollect(func() {
		collected = true
		r.Gauge("sofos_dyn_gauge", "dynamic", Label{"view", "v0"}).Set(7)
	})
	hits++
	text := render(t, r)
	checkGrammar(t, text)
	if !collected {
		t.Fatal("collector hook did not run before render")
	}
	if !strings.Contains(text, "sofos_fn_total 42\n") {
		t.Errorf("CounterFunc not read at scrape time:\n%s", text)
	}
	if !strings.Contains(text, `sofos_dyn_gauge{view="v0"} 7`+"\n") {
		t.Errorf("collector-registered gauge missing:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("sofos_esc", "has \\ and\nnewline", Label{"q", "a\"b\\c\nd"}).Set(1)
	text := render(t, r)
	checkGrammar(t, text)
	if !strings.Contains(text, `# HELP sofos_esc has \\ and\nnewline`+"\n") {
		t.Errorf("help not escaped:\n%s", text)
	}
	if !strings.Contains(text, `sofos_esc{q="a\"b\\c\nd"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", text)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", "x").Inc()
	r.Gauge("x", "x").Set(1)
	r.Histogram("x", "x", nil).Observe(1)
	r.CounterFunc("x", "x", func() float64 { return 0 })
	r.GaugeFunc("x", "x", func() float64 { return 0 })
	r.OnCollect(func() {})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	sp := tr.Span("root")
	sp.Attr("k", "v")
	sp.Child("child").End()
	sp.End()
	if got := tr.Finish(); got != nil {
		t.Fatalf("nil trace Finish = %v", got)
	}
	var ring *Ring
	ring.Add(QueryRecord{})
	if ring.Snapshot(10) != nil || ring.Total() != 0 {
		t.Fatal("nil ring must be inert")
	}
}

func TestConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sofos_conc_total", "c")
	h := r.Histogram("sofos_conc_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				render(t, r)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

// --- Trace ---

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("abc123")
	if tr.ID() != "abc123" {
		t.Fatalf("ID = %q", tr.ID())
	}
	root := tr.Span("query")
	exec := root.Child("execute")
	exec.AttrInt("workers", 4)
	p0 := exec.Child("partition")
	p0.End()
	exec.End()
	root.Attr("outcome", "view_hit")
	root.End()
	spans := tr.Finish()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "query" || spans[0].Parent != -1 {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[1].Name != "execute" || spans[1].Parent != 0 {
		t.Fatalf("exec span = %+v", spans[1])
	}
	if spans[2].Name != "partition" || spans[2].Parent != 1 {
		t.Fatalf("partition span = %+v", spans[2])
	}
	for i, sp := range spans {
		if sp.End < sp.Start {
			t.Fatalf("span %d not closed: %+v", i, sp)
		}
	}
	if spans[1].Attrs[0] != (Attr{"workers", "4"}) {
		t.Fatalf("attrs = %+v", spans[1].Attrs)
	}
	if spans[0].Attrs[0] != (Attr{"outcome", "view_hit"}) {
		t.Fatalf("root attrs = %+v", spans[0].Attrs)
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.Span("run")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child("partition")
			sp.AttrInt("rows", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Finish()
	if len(spans) != 9 {
		t.Fatalf("got %d spans, want 9", len(spans))
	}
	for _, sp := range spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("partition parented to %d", sp.Parent)
		}
	}
}

func TestTracePoolReuseDoesNotAlias(t *testing.T) {
	tr := NewTrace("one")
	sp := tr.Span("a")
	sp.Attr("k", "v")
	sp.End()
	first := tr.Finish()
	tr2 := NewTrace("two")
	sp2 := tr2.Span("b")
	sp2.Attr("k2", "v2")
	sp2.End()
	tr2.Finish()
	if first[0].Name != "a" || first[0].Attrs[0].Key != "k" {
		t.Fatalf("finished spans mutated by pool reuse: %+v", first[0])
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad or duplicate id %q", id)
		}
		seen[id] = true
	}
}

// --- Ring ---

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(QueryRecord{TraceID: string(rune('a' + i)), Start: time.Now()})
	}
	got := r.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if got[i].TraceID != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, got[i].TraceID, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	if limited := r.Snapshot(2); len(limited) != 2 || limited[0].TraceID != "e" {
		t.Fatalf("limited snapshot = %+v", limited)
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 300; i++ {
		r.Add(QueryRecord{})
	}
	if got := len(r.Snapshot(0)); got != 256 {
		t.Fatalf("default capacity retained %d, want 256", got)
	}
}
