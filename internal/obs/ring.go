package obs

import (
	"sync"
	"time"
)

// Rewrite outcomes. Every answered query is classified with exactly one:
// the result cache served a rendered body (cache_hit), a materialized view
// matched the query's facet mask exactly (view_hit), a finer view was
// re-aggregated (partial_rollup), the base graph was scanned (full_scan),
// or the query failed (error). The same strings label the
// sofos_query_total metric and the Outcome field of ring records, so trace
// counts and counters reconcile exactly.
const (
	OutcomeCacheHit      = "cache_hit"
	OutcomeViewHit       = "view_hit"
	OutcomePartialRollup = "partial_rollup"
	OutcomeFullScan      = "full_scan"
	OutcomeError         = "error"
)

// QueryRecord is one completed query as retained in the debug ring —
// deliberately shaped as the observation stream the online view-selection
// loop will consume: what was asked, how it was answered, and what it cost.
type QueryRecord struct {
	TraceID    string
	Query      string
	Outcome    string // one of the Outcome* constants
	View       string // chosen view ID, if a view answered
	Reason     string // rewriter reason (why base, why this view)
	Generation int64  // catalog generation pinned for the answer
	Start      time.Time
	Elapsed    time.Duration
	Rows       int
	Slow       bool
	Err        string
	Spans      []Span
}

// Ring is a bounded, mutex-protected buffer of recent query records.
// Add overwrites the oldest entry once full; Snapshot copies out without
// blocking writers for longer than the copy. A nil *Ring drops records.
type Ring struct {
	mu    sync.Mutex
	buf   []QueryRecord
	next  int
	size  int
	total uint64
}

// NewRing returns a ring holding up to capacity records (default 256 when
// capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	return &Ring{buf: make([]QueryRecord, capacity)}
}

// Add appends one record, evicting the oldest when full.
func (r *Ring) Add(rec QueryRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns up to limit records, newest first (limit <= 0 means
// all retained).
func (r *Ring) Snapshot(limit int) []QueryRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.size
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]QueryRecord, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.next-1-i+len(r.buf))%len(r.buf)]
	}
	return out
}

// Total returns the number of records ever added (including evicted ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
