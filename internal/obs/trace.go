package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed step of a query lifecycle. Start and End are monotonic
// offsets from the trace start; Parent is the index of the enclosing span
// in the trace's span list, or -1 for roots. End is -1 while the span is
// open.
type Span struct {
	Name   string
	Parent int
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Trace collects the span tree of one query. Spans append under a mutex
// because execution partitions record from multiple goroutines; the buffer
// is pooled so the steady-state hot path allocates nothing for the spans
// themselves. All methods are nil-receiver safe — a nil *Trace is the
// disabled-tracing fast path.
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	spans []Span
}

var tracePool = sync.Pool{
	New: func() any { return &Trace{spans: make([]Span, 0, 32)} },
}

// NewTrace takes a trace from the pool, stamped with id and a monotonic
// start clock. Pair with Finish to return the buffer.
func NewTrace(id string) *Trace {
	t := tracePool.Get().(*Trace)
	t.id = id
	t.start = time.Now()
	t.spans = t.spans[:0]
	return t
}

// NewTraceID returns a 16-hex-digit random trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the wall-clock instant the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Finish copies the recorded spans out and returns the trace to the pool.
// The caller must not use t afterwards.
func (t *Trace) Finish() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	tracePool.Put(t)
	return out
}

func (t *Trace) newSpan(name string, parent int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	off := time.Since(t.start)
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: off, End: -1})
	t.mu.Unlock()
	return SpanHandle{t: t, i: i}
}

// Span opens a root-level span.
func (t *Trace) Span(name string) SpanHandle { return t.newSpan(name, -1) }

// SpanHandle addresses one span in a trace. The zero value is a no-op
// handle, so code holding a handle never needs to check for disabled
// tracing.
type SpanHandle struct {
	t *Trace
	i int
}

// Child opens a span nested under h.
func (h SpanHandle) Child(name string) SpanHandle {
	if h.t == nil {
		return SpanHandle{}
	}
	return h.t.newSpan(name, h.i)
}

// End closes the span at the current monotonic offset.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	off := time.Since(h.t.start)
	h.t.mu.Lock()
	h.t.spans[h.i].End = off
	h.t.mu.Unlock()
}

// Attr annotates the span with a key/value pair.
func (h SpanHandle) Attr(key, value string) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.i]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	h.t.mu.Unlock()
}

// AttrInt annotates the span with an integer value.
func (h SpanHandle) AttrInt(key string, v int64) {
	h.Attr(key, strconv.FormatInt(v, 10))
}
