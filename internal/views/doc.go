// Package views implements view computation and materialization (§3.1 of
// the SOFOS paper). A view's contents are computed either directly from the
// base graph G or by rolling up an already-materialized finer view; they
// are then encoded back into RDF as blank nodes carrying the aggregation
// values — a generalization of the MARVEL encoding — producing the
// expanded graph G+.
//
// The Catalog is the package's center: it owns G+ (a clone of G plus every
// materialized view's encoding), tracks which views of a facet are
// materialized, and routes each materialization through the cheapest
// source (base computation or ancestor roll-up). Batch operations
// (MaterializeAll, RefreshAllParallel) compute independent views on a
// bounded worker pool in cover-order waves and serialize only the G+
// encoding step.
//
// Maintenance: ApplyUpdate (and the Insert/Delete shorthands) mutates G,
// mirrors into G+, and captures the batch's effective delta (store.Delta)
// into a per-catalog log, turning materialized views stale (the memoized
// Stale/StaleViews compare each record's base version against
// Graph.Version). Refresh brings a view up to date by the cheapest sound
// path: for self-maintainable facets (COUNT/SUM, AVG via the stored
// (Sum, Count) companions, MIN/MAX under insertion) whose staleness window
// the delta log covers, it evaluates the defining query on the delta only
// and applies per-group deltas in place — O(|ΔG|), with group births and
// deaths decided by per-group contribution counts (Group.N) — falling back
// to a full recompute exactly when a delete touches a MIN/MAX extremum or
// the pattern/log is ineligible (see incremental.go and MaintenanceMode).
// PlanRefresh/CommitRefresh split refresh into a read-only compute phase
// and a short mutation phase so a serving layer can refresh concurrently
// with query traffic. Generation counts every committed catalog mutation
// and, with ViewSetHash, gives caches an exact invalidation key.
package views
