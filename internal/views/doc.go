// Package views implements view computation and materialization (§3.1 of
// the SOFOS paper). A view's contents are computed either directly from the
// base graph G or by rolling up an already-materialized finer view; they
// are then encoded back into RDF as blank nodes carrying the aggregation
// values — a generalization of the MARVEL encoding — producing the
// expanded graph G+.
//
// The Catalog is the package's center: it owns G+ (a clone of G plus every
// materialized view's encoding), tracks which views of a facet are
// materialized, and routes each materialization through the cheapest
// source (base computation or ancestor roll-up). Batch operations
// (MaterializeAll, RefreshAllParallel) compute independent views on a
// bounded worker pool in cover-order waves and serialize only the G+
// encoding step.
//
// Maintenance: Insert and Delete mutate G and mirror into G+, turning
// materialized views stale (Stale/StaleViews compare each record's base
// version against Graph.Version). Refresh recomputes a view and applies
// the minimal encoding diff to G+; PlanRefresh/CommitRefresh split that
// into a read-only compute phase and a short mutation phase so a serving
// layer can refresh concurrently with query traffic. Generation counts
// every committed catalog mutation and, with ViewSetHash, gives caches an
// exact invalidation key.
package views
