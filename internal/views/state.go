package views

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// Catalog state serialization: the durable half of a checkpoint. A graph
// snapshot alone (store.Save) restores G but not which views were
// materialized, their computed groups, or their staleness bookkeeping —
// without those a restart would re-run selection and re-materialize every
// view from scratch. SaveState captures exactly that catalog state in a
// versioned binary format; RestoreCatalog rebuilds a warm catalog from it,
// re-encoding the stored groups into G+ (content-keyed blank labels make the
// encoding bit-identical to the pre-crash one).
//
// Layout (integers varint/uvarint, strings length-prefixed):
//
//	magic "SOFOSCAT1" (9 bytes)
//	generation
//	viewCount
//	  per view (ascending mask order):
//	    mask, baseVersion, triples (integrity check), elapsedNS
//	    maint: lastPath, lastCostNS, deltaSize
//	    data: source, computeTimeNS, groupCount
//	      per group: keyLen, key values, agg value, sumBits, countBits, n
//
// Values are a bound byte followed, when bound, by the term (kind byte plus
// value/datatype/lang strings). The delta log is deliberately not persisted:
// replayed WAL batches repopulate it, and a view stale across a restart
// simply takes the full-recompute refresh path once.
const catalogStateMagic = "SOFOSCAT1"

// stateStringLimit bounds any single decoded string; corrupt lengths must
// fail on the read, not allocate unboundedly.
const stateStringLimit = 1 << 24

// stateWriter serializes catalog state primitives.
type stateWriter struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *stateWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.bw.Write(w.buf[:n])
}

func (w *stateWriter) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.bw.Write(w.buf[:n])
}

func (w *stateWriter) string(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

func (w *stateWriter) byte(b byte) {
	if w.err == nil {
		w.err = w.bw.WriteByte(b)
	}
}

func (w *stateWriter) term(t rdf.Term) {
	w.byte(byte(t.Kind))
	w.string(t.Value)
	w.string(t.Datatype)
	w.string(t.Lang)
}

func (w *stateWriter) value(v algebra.Value) {
	if !v.Bound {
		w.byte(0)
		return
	}
	w.byte(1)
	w.term(v.Term)
}

// stateReader deserializes catalog state primitives.
type stateReader struct {
	br *bufio.Reader
}

func (r *stateReader) uvarint() (uint64, error) { return binary.ReadUvarint(r.br) }
func (r *stateReader) varint() (int64, error)   { return binary.ReadVarint(r.br) }

func (r *stateReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > stateStringLimit {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *stateReader) term() (rdf.Term, error) {
	var t rdf.Term
	kind, err := r.br.ReadByte()
	if err != nil {
		return t, err
	}
	if kind > byte(rdf.KindLiteral) {
		return t, fmt.Errorf("invalid term kind %d", kind)
	}
	t.Kind = rdf.TermKind(kind)
	if t.Value, err = r.string(); err != nil {
		return t, err
	}
	if t.Datatype, err = r.string(); err != nil {
		return t, err
	}
	if t.Lang, err = r.string(); err != nil {
		return t, err
	}
	return t, nil
}

func (r *stateReader) value() (algebra.Value, error) {
	bound, err := r.br.ReadByte()
	if err != nil {
		return algebra.Unbound, err
	}
	switch bound {
	case 0:
		return algebra.Unbound, nil
	case 1:
		t, err := r.term()
		if err != nil {
			return algebra.Unbound, err
		}
		return algebra.Bind(t), nil
	default:
		return algebra.Unbound, fmt.Errorf("invalid value bound flag %d", bound)
	}
}

func (r *stateReader) float() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.br, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (w *stateWriter) float(f float64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	_, w.err = w.bw.Write(b[:])
}

// SaveState writes the catalog's materialization state — generation counter
// and, per materialized view, its computed groups and staleness bookkeeping —
// in the versioned binary checkpoint format. Callers must not run catalog
// mutations concurrently (the serving layer holds its read lock, which
// excludes writers).
func (c *Catalog) SaveState(out io.Writer) error {
	w := &stateWriter{bw: bufio.NewWriterSize(out, 1<<16)}
	if _, err := w.bw.WriteString(catalogStateMagic); err != nil {
		return fmt.Errorf("views: writing catalog state header: %w", err)
	}
	w.varint(c.generation.Load())
	mats := c.Materialized()
	w.uvarint(uint64(len(mats)))
	for _, m := range mats {
		w.uvarint(uint64(m.Data.View.Mask))
		w.varint(m.baseVersion)
		w.uvarint(uint64(m.Triples))
		w.varint(int64(m.Elapsed))
		w.string(m.Maint.LastPath)
		w.varint(int64(m.Maint.LastCost))
		w.uvarint(uint64(m.Maint.DeltaSize))
		w.string(m.Data.Source)
		w.varint(int64(m.Data.ComputeTime))
		w.uvarint(uint64(len(m.Data.Groups)))
		for _, g := range m.Data.Groups {
			w.uvarint(uint64(len(g.Key)))
			for _, kv := range g.Key {
				w.value(kv)
			}
			w.value(g.Agg)
			w.float(g.Sum)
			w.float(g.Count)
			w.varint(g.N)
		}
	}
	if w.err != nil {
		return fmt.Errorf("views: writing catalog state: %w", w.err)
	}
	return w.bw.Flush()
}

// RestoreCatalog rebuilds a warm catalog from saved state: the base graph
// (already snapshot-loaded, with its version restored), the facet, and the
// state written by SaveState. Every persisted view's groups are re-encoded
// into a fresh G+ — bit-identical to the pre-checkpoint encoding, since group
// blank labels are content-keyed — and its staleness bookkeeping (baseVersion,
// maintenance record) is reinstated, so no view is rematerialized from its
// defining query. Corrupt input returns an error, never panics.
func RestoreCatalog(base *store.Graph, f *facet.Facet, opts engine.Options, in io.Reader) (*Catalog, error) {
	r := &stateReader{br: bufio.NewReaderSize(in, 1<<16)}
	magic := make([]byte, len(catalogStateMagic))
	if _, err := io.ReadFull(r.br, magic); err != nil {
		return nil, fmt.Errorf("views: reading catalog state header: %w", err)
	}
	if string(magic) != catalogStateMagic {
		return nil, fmt.Errorf("views: bad catalog state magic %q", magic)
	}
	gen, err := r.varint()
	if err != nil {
		return nil, fmt.Errorf("views: reading catalog generation: %w", err)
	}
	nviews, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("views: reading view count: %w", err)
	}
	if nviews > uint64(f.FullMask())+1 {
		return nil, fmt.Errorf("views: state has %d views but facet %s has only %d lattice nodes",
			nviews, f.Name, f.FullMask()+1)
	}
	c := NewCatalogWithOptions(base, f, opts)
	for i := uint64(0); i < nviews; i++ {
		m, err := readMaterialized(r, f)
		if err != nil {
			return nil, fmt.Errorf("views: reading view %d: %w", i, err)
		}
		mask := m.Data.View.Mask
		if _, dup := c.mats[mask]; dup {
			return nil, fmt.Errorf("views: duplicate view %s in state", m.Data.View)
		}
		triples, err := Encode(m.Data)
		if err != nil {
			return nil, fmt.Errorf("views: re-encoding %s: %w", m.Data.View, err)
		}
		if len(triples) != m.Triples {
			return nil, fmt.Errorf("views: %s re-encodes to %d triples, state recorded %d",
				m.Data.View, len(triples), m.Triples)
		}
		if _, err := c.expanded.LoadTriples(triples); err != nil {
			return nil, fmt.Errorf("views: loading %s into G+: %w", m.Data.View, err)
		}
		var bytes int64
		for _, t := range triples {
			bytes += tripleBytes(t)
		}
		st := ComputeStats(m.Data)
		m.Nodes = st.Nodes
		m.Bytes = bytes
		m.Maint.Mode = c.maintMode.String()
		c.mats[mask] = m
	}
	c.expanded.Compact()
	c.generation.Store(gen)
	return c, nil
}

// readMaterialized decodes one view's record. The facet resolves the mask to
// a concrete view; the maintenance Mode and encoding statistics are
// recomputed by the caller rather than trusted from the input.
func readMaterialized(r *stateReader, f *facet.Facet) (*Materialized, error) {
	mask, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mask: %w", err)
	}
	if mask > uint64(f.FullMask()) {
		return nil, fmt.Errorf("mask %#x outside facet lattice (full mask %#x)", mask, f.FullMask())
	}
	v := f.View(facet.Mask(mask))
	m := &Materialized{}
	if m.baseVersion, err = r.varint(); err != nil {
		return nil, fmt.Errorf("base version: %w", err)
	}
	triples, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("triples: %w", err)
	}
	m.Triples = int(triples)
	elapsed, err := r.varint()
	if err != nil {
		return nil, fmt.Errorf("elapsed: %w", err)
	}
	m.Elapsed = time.Duration(elapsed)
	if m.Maint.LastPath, err = r.string(); err != nil {
		return nil, fmt.Errorf("maint path: %w", err)
	}
	lastCost, err := r.varint()
	if err != nil {
		return nil, fmt.Errorf("maint cost: %w", err)
	}
	m.Maint.LastCost = time.Duration(lastCost)
	deltaSize, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("maint delta size: %w", err)
	}
	m.Maint.DeltaSize = int(deltaSize)
	data := &Data{View: v}
	if data.Source, err = r.string(); err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	computeTime, err := r.varint()
	if err != nil {
		return nil, fmt.Errorf("compute time: %w", err)
	}
	data.ComputeTime = time.Duration(computeTime)
	ngroups, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("group count: %w", err)
	}
	dims := len(v.Dims())
	capHint := ngroups
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	data.Groups = make([]Group, 0, capHint)
	for gi := uint64(0); gi < ngroups; gi++ {
		g, err := readGroup(r, dims)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", gi, err)
		}
		data.Groups = append(data.Groups, g)
	}
	m.Data = data
	return m, nil
}

// readGroup decodes one group, validating its key arity against the view.
func readGroup(r *stateReader, dims int) (Group, error) {
	var g Group
	keyLen, err := r.uvarint()
	if err != nil {
		return g, fmt.Errorf("key length: %w", err)
	}
	if keyLen != uint64(dims) {
		return g, fmt.Errorf("key has %d values for %d dims", keyLen, dims)
	}
	g.Key = make([]algebra.Value, dims)
	for i := range g.Key {
		if g.Key[i], err = r.value(); err != nil {
			return g, fmt.Errorf("key value %d: %w", i, err)
		}
	}
	if g.Agg, err = r.value(); err != nil {
		return g, fmt.Errorf("aggregate: %w", err)
	}
	if g.Sum, err = r.float(); err != nil {
		return g, fmt.Errorf("sum: %w", err)
	}
	if g.Count, err = r.float(); err != nil {
		return g, fmt.Errorf("count: %w", err)
	}
	if g.N, err = r.varint(); err != nil {
		return g, fmt.Errorf("contribution count: %w", err)
	}
	return g, nil
}

// SetGeneration forwards the mutation counter — WAL replay uses it after
// re-applying a durably logged batch, and an MVCC writer transaction uses it
// to normalize its fork's intermediate bumps to the single published
// generation. Never lower the counter on a live (published) catalog: result
// caches key on it never repeating. The stale memo is dropped because its
// key embeds the generation: a rewind on an unpublished fork could otherwise
// collide with a memo taken at an intermediate state under the same number.
func (c *Catalog) SetGeneration(gen int64) {
	c.generation.Store(gen)
	c.staleMemo.Store(nil)
}
