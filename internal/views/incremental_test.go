package views

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// observation builds the four triples of one (country, lang, year, pop)
// observation in the popGraph vocabulary.
func observation(id, country, lang string, year int, pop int64) []rdf.Triple {
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	obs := ex(id)
	return []rdf.Triple{
		{S: obs, P: ex("country"), O: rdf.NewLiteral(country)},
		{S: obs, P: ex("lang"), O: rdf.NewLiteral(lang)},
		{S: obs, P: ex("year"), O: rdf.NewYear(year)},
		{S: obs, P: ex("pop"), O: rdf.NewInteger(pop)},
	}
}

// canonGroups canonicalizes view contents for bit-exact comparison: every
// field of every group — key terms, the aggregate term including datatype,
// the AVG (Sum, Count) companions, and the contribution count — keyed on the
// binary group key so group order does not matter.
func canonGroups(d *Data) map[string]Group {
	out := make(map[string]Group, len(d.Groups))
	for _, g := range d.Groups {
		out[binaryGroupKey(g.Key)] = Group{Agg: g.Agg, Sum: g.Sum, Count: g.Count, N: g.N}
	}
	return out
}

// assertBitIdentical requires two view contents to agree exactly.
func assertBitIdentical(t *testing.T, label string, inc, full *Data) {
	t.Helper()
	ci, cf := canonGroups(inc), canonGroups(full)
	if !reflect.DeepEqual(ci, cf) {
		t.Fatalf("%s: incremental groups != full groups\nincremental: %v\nfull:        %v", label, ci, cf)
	}
}

// TestIncrementalRefreshMatchesFull is the differential property test of the
// maintenance subsystem: two catalogs over identical graphs receive the same
// random insert/delete batches (group births and deaths included); one
// refreshes through the incremental delta path, the other is forced down the
// full recompute path. After every round the view contents must be
// bit-identical — same keys, same aggregate terms, same (Sum, Count)
// companions, same contribution counts — and the two expanded graphs G+
// must hold exactly the same triples.
func TestIncrementalRefreshMatchesFull(t *testing.T) {
	for _, agg := range []string{"SUM", "COUNT", "MIN", "MAX", "AVG"} {
		t.Run(agg, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(agg)*31 + 7)))
			f := popFacet(t, agg)
			gInc := popGraph(t, 91, 3, 3, 2)
			gFull := gInc.Clone()
			ci := NewCatalog(gInc, f)
			cf := NewCatalog(gFull, f)
			cf.SetIncrementalMaintenance(false)
			v := f.View(facet.MaskFromBits(0, 1)) // per (country, lang)
			for _, c := range []*Catalog{ci, cf} {
				if _, err := c.Materialize(v); err != nil {
					t.Fatal(err)
				}
			}
			incRuns := 0
			for round := 0; round < 14; round++ {
				var ins, del []rdf.Triple
				for i := 0; i < rng.Intn(4); i++ {
					// Mix of existing groups and brand-new ones (births).
					ins = append(ins, observation(
						fmt.Sprintf("p%d_%d", round, i),
						fmt.Sprintf("C%d", rng.Intn(5)),
						fmt.Sprintf("L%d", rng.Intn(5)),
						2015+rng.Intn(3),
						int64(rng.Intn(900)+1))...)
				}
				all := gInc.Triples()
				for i := 0; i < rng.Intn(3) && len(all) > 0; i++ {
					victim := all[rng.Intn(len(all))]
					if rng.Intn(2) == 0 {
						// Delete one triple: the observation loses a required
						// pattern, so its whole solution row disappears.
						del = append(del, victim)
					} else {
						// Delete the whole observation — the path to group
						// deaths once a group's last observation goes.
						for _, tr := range all {
							if tr.S == victim.S {
								del = append(del, tr)
							}
						}
					}
				}
				if len(ins) == 0 && len(del) == 0 {
					continue
				}
				di, err := ci.ApplyUpdate(ins, del)
				if err != nil {
					t.Fatal(err)
				}
				df, err := cf.ApplyUpdate(ins, del)
				if err != nil {
					t.Fatal(err)
				}
				if di.Len() != df.Len() {
					t.Fatalf("round %d: catalogs saw different deltas (%d vs %d)", round, di.Len(), df.Len())
				}
				mi, err := ci.Refresh(v)
				if err != nil {
					t.Fatalf("round %d: incremental refresh: %v", round, err)
				}
				mf, err := cf.Refresh(v)
				if err != nil {
					t.Fatalf("round %d: full refresh: %v", round, err)
				}
				if mf.Maint.LastPath == "incremental" {
					t.Fatalf("round %d: disabled catalog took the incremental path", round)
				}
				if mi.Maint.LastPath == "incremental" {
					incRuns++
				} else if di.Len() > 0 && (agg == "SUM" || agg == "COUNT" || agg == "AVG") {
					// Self-maintainable-both facets must never fall back on
					// this workload (numeric measures, covered delta log).
					t.Fatalf("round %d: %s refresh fell back to %q", round, agg, mi.Maint.LastPath)
				}
				label := fmt.Sprintf("%s round %d", agg, round)
				assertBitIdentical(t, label, mi.Data, mf.Data)
				// The encodings in G+ must coincide triple for triple.
				ti, tf := ci.Expanded().SortedTriples(), cf.Expanded().SortedTriples()
				if !reflect.DeepEqual(ti, tf) {
					t.Fatalf("%s: G+ diverged (%d vs %d triples)", label, len(ti), len(tf))
				}
				// And both must equal a from-scratch computation.
				direct, err := Compute(cf.BaseEngine(), v)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, label+" (vs direct)", mi.Data, direct)
			}
			if incRuns == 0 {
				t.Fatal("incremental path never ran")
			}
		})
	}
}

func TestIncrementalRefreshRecordsPath(t *testing.T) {
	g := popGraph(t, 41, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0))
	m, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "initial" || m.Maint.Mode != "self-maintainable-both" {
		t.Fatalf("initial Maint = %+v", m.Maint)
	}
	if _, err := c.ApplyUpdate(observation("obsN", "C9", "L0", 2015, 5), nil); err != nil {
		t.Fatal(err)
	}
	m, err = c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "incremental" {
		t.Fatalf("LastPath = %q, want incremental", m.Maint.LastPath)
	}
	if m.Maint.DeltaSize != 4 {
		t.Fatalf("DeltaSize = %d, want 4", m.Maint.DeltaSize)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "after insert", m.Data, direct)
}

// TestMinMaxExtremumDeleteFallsBack pins the one case the issue carves out:
// deleting a MIN group's stored extremum cannot be maintained incrementally
// and must recompute in full — and still produce correct contents.
func TestMinMaxExtremumDeleteFallsBack(t *testing.T) {
	g := popGraph(t, 42, 3, 2, 2)
	f := popFacet(t, "MIN")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0))
	m, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	// Find the pop triple carrying the apex group's minimum value.
	var victim rdf.Triple
	found := false
	for _, tr := range g.Triples() {
		if tr.P.Value != "http://ex.org/pop" {
			continue
		}
		for _, grp := range m.Data.Groups {
			if grp.Agg.Bound && grp.Agg.Term == tr.O {
				victim, found = tr, true
			}
		}
	}
	if !found {
		t.Fatal("no extremum-carrying triple found")
	}
	if _, err := c.ApplyUpdate(nil, []rdf.Triple{victim}); err != nil {
		t.Fatal(err)
	}
	m, err = c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "full" {
		t.Fatalf("extremum delete took path %q, want full", m.Maint.LastPath)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "after extremum delete", m.Data, direct)
}

// TestMinMaxNonExtremumDeleteStaysIncremental: deleting a value strictly
// worse than the stored extremum applies incrementally.
func TestMinMaxNonExtremumDeleteStaysIncremental(t *testing.T) {
	g := popGraph(t, 47, 1, 1, 1)
	f := popFacet(t, "MIN")
	c := NewCatalog(g, f)
	v := f.View(0) // apex
	// Two extra observations in the lone group: min 1 and a larger 999.
	big := observation("obsBig", "C0", "L0", 2015, 999)
	if _, err := c.ApplyUpdate(append(observation("obsSmall", "C0", "L0", 2015, 1), big...), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyUpdate(nil, big); err != nil {
		t.Fatal(err)
	}
	m, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "incremental" {
		t.Fatalf("non-extremum delete took path %q, want incremental", m.Maint.LastPath)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "after non-extremum delete", m.Data, direct)
}

func TestMaintenanceModeClassification(t *testing.T) {
	for _, tc := range []struct {
		agg  string
		want MaintenanceMode
	}{
		{"SUM", MaintainBoth}, {"COUNT", MaintainBoth}, {"AVG", MaintainBoth},
		{"MIN", MaintainInserts}, {"MAX", MaintainInserts},
	} {
		f := popFacet(t, tc.agg)
		if got := maintenanceMode(f); got != tc.want {
			t.Errorf("%s: mode = %v, want %v", tc.agg, got, tc.want)
		}
	}
	// A pattern with a FILTER cannot be delta-evaluated by substitution.
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?country (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:pop ?pop .
  FILTER (?pop > 10)
} GROUP BY ?country`)
	f, err := facet.FromQuery("filtered", q)
	if err != nil {
		t.Fatal(err)
	}
	if got := maintenanceMode(f); got != MaintainRecompute {
		t.Errorf("filtered facet: mode = %v, want recompute-only", got)
	}
}

// TestDeltaLogGapForcesFullRefresh: a base-graph mutation that bypasses the
// catalog leaves a hole in the delta log, so the next refresh must detect
// the gap and recompute rather than replay an incomplete delta.
func TestDeltaLogGapForcesFullRefresh(t *testing.T) {
	g := popGraph(t, 43, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0))
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	// Mutate the base graph directly: version moves, no delta is captured.
	for _, tr := range observation("obsGap", "C0", "L0", 2015, 77) {
		g.MustAdd(tr)
	}
	if !c.Stale(v.Mask) {
		t.Fatal("view not stale after direct base mutation")
	}
	m, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "full" {
		t.Fatalf("refresh over a log gap took path %q, want full", m.Maint.LastPath)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "after gap refresh", m.Data, direct)
}

func TestApplyUpdateSameBatchCancels(t *testing.T) {
	g := popGraph(t, 44, 2, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(0)
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	obs := observation("obsTmp", "C0", "L0", 2015, 3)
	d, err := c.ApplyUpdate(obs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("insert+delete of the same batch left delta %d", d.Len())
	}
	// The version interval moved, so the view is formally stale — but the
	// recorded empty segment lets refresh replay it for free.
	if !c.Stale(v.Mask) {
		t.Fatal("view should be version-stale after the cancelling batch")
	}
	m, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Maint.LastPath != "incremental" || m.Maint.DeltaSize != 0 {
		t.Fatalf("cancelling batch refresh = %+v, want zero-delta incremental", m.Maint)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "after cancelling batch", m.Data, direct)
}

func TestDeltaLogSinceCoalesces(t *testing.T) {
	tr := func(i int) rdf.Triple {
		return rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", i)),
			P: rdf.NewIRI("http://ex.org/p"),
			O: rdf.NewInteger(int64(i)),
		}
	}
	var l deltaLog
	l.record(store.Delta{Inserted: []rdf.Triple{tr(1)}, FromVersion: 0, ToVersion: 1})
	l.record(store.Delta{Deleted: []rdf.Triple{tr(1)}, FromVersion: 1, ToVersion: 2})
	l.record(store.Delta{Inserted: []rdf.Triple{tr(2)}, Deleted: []rdf.Triple{tr(3)}, FromVersion: 2, ToVersion: 4})
	ins, del, ok := l.since(0, 4)
	if !ok {
		t.Fatal("log should cover 0..4")
	}
	if len(ins) != 1 || ins[0] != tr(2) {
		t.Errorf("net inserts = %v (insert-then-delete must cancel)", ins)
	}
	if len(del) != 1 || del[0] != tr(3) {
		t.Errorf("net deletes = %v", del)
	}
	if _, _, ok := l.since(1, 4); !ok {
		t.Error("mid-log window should be coverable")
	}
	if _, _, ok := l.since(3, 4); ok {
		t.Error("a version inside a segment must not be coverable")
	}
	// A gap restarts the log.
	l.record(store.Delta{Inserted: []rdf.Triple{tr(9)}, FromVersion: 9, ToVersion: 10})
	if _, _, ok := l.since(0, 10); ok {
		t.Error("window across a gap must not be coverable")
	}
	if _, _, ok := l.since(9, 10); !ok {
		t.Error("post-gap window should be coverable")
	}
}

func TestDeltaLogPrune(t *testing.T) {
	tr := func(i int) rdf.Triple {
		return rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", i)),
			P: rdf.NewIRI("http://ex.org/p"),
			O: rdf.NewInteger(int64(i)),
		}
	}
	var l deltaLog
	for i := 0; i < 10; i++ {
		l.record(store.Delta{Inserted: []rdf.Triple{tr(i)}, FromVersion: int64(i), ToVersion: int64(i + 1)})
	}
	l.prune(5)
	if _, _, ok := l.since(5, 10); !ok {
		t.Error("window after the pruned prefix should survive")
	}
	if _, _, ok := l.since(4, 10); ok {
		t.Error("pruned window must not be coverable")
	}
	if l.triples != 5 {
		t.Errorf("accounted triples = %d, want 5", l.triples)
	}
}

// TestStaleMemo exercises the memoized stale set across every invalidation
// source: catalog mutations (generation) and direct base writes (version).
func TestStaleMemo(t *testing.T) {
	g := popGraph(t, 45, 3, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0))
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	if len(c.StaleViews()) != 0 || c.Stale(v.Mask) {
		t.Fatal("fresh view reported stale")
	}
	if _, err := c.Insert(observation("obsM", "C0", "L0", 2015, 9)[0]); err != nil {
		t.Fatal(err)
	}
	if !c.Stale(v.Mask) || len(c.StaleViews()) != 1 {
		t.Fatal("catalog insert did not invalidate the memo")
	}
	if _, err := c.Refresh(v); err != nil {
		t.Fatal(err)
	}
	if c.Stale(v.Mask) || len(c.StaleViews()) != 0 {
		t.Fatal("refresh did not invalidate the memo")
	}
	// Direct base write: generation unchanged, version moves.
	g.MustAdd(observation("obsM2", "C1", "L1", 2015, 9)[0])
	if !c.Stale(v.Mask) {
		t.Fatal("direct base write did not invalidate the memo")
	}
}

// TestIncrementalGroupLabelStability: an incremental refresh must leave
// untouched groups' blank nodes in place — the diff applied to G+ is
// proportional to the changed groups, not to |V|.
func TestIncrementalGroupLabelStability(t *testing.T) {
	g := popGraph(t, 46, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0, 1))
	m, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Encode(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Touch exactly one group.
	if _, err := c.ApplyUpdate(observation("obsOne", "C0", "L1", 2015, 13), nil); err != nil {
		t.Fatal(err)
	}
	m, err = c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Encode(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	beforeSet := make(map[rdf.Triple]bool, len(before))
	for _, tr := range before {
		beforeSet[tr] = true
	}
	changed := 0
	for _, tr := range after {
		if !beforeSet[tr] {
			changed++
		}
	}
	// Only the touched group's aggregate triple should differ.
	if changed > 2 {
		t.Errorf("%d encoding triples changed for a one-group delta", changed)
	}
}
