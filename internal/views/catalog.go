package views

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// algebraFormat renders a float as its canonical numeric literal.
func algebraFormat(f float64) rdf.Term { return algebra.FormatFloat(f) }

// SOFOS vocabulary for the G+ encoding of materialized views.
const (
	NS         = "http://sofos.ics.forth.gr/ns#"
	PredInView = NS + "inView" // group blank node -> view IRI
	PredAgg    = NS + "agg"    // group blank node -> aggregate value
	PredSum    = NS + "aggSum" // AVG only: partial sum
	PredCount  = NS + "aggCount"
)

// DimPredicate returns the predicate IRI attaching a dimension value to a
// group blank node.
func DimPredicate(dim string) string { return NS + "d_" + dim }

// Maintenance records how a materialization is kept consistent with the
// base graph and which refresh path last ran — the per-view bookkeeping the
// server's /stats endpoint reports.
type Maintenance struct {
	// Mode is the facet's maintainability classification — see
	// MaintenanceMode: "self-maintainable-both", "self-maintainable-insert",
	// or "recompute-only".
	Mode string
	// LastPath is how the record was last produced: "initial" (first
	// materialization), "incremental" (delta application), or "full"
	// (recompute + encoding diff).
	LastPath string
	// LastCost is the duration of the last refresh (zero until one runs).
	LastCost time.Duration
	// DeltaSize is |ΔG| replayed by the last incremental refresh.
	DeltaSize int
}

// Materialized records one view materialized into G+.
type Materialized struct {
	Data    *Data
	Triples int           // triples added to G+
	Nodes   int           // distinct nodes in the encoding
	Bytes   int64         // estimated encoding bytes
	Elapsed time.Duration // total materialization time (compute + encode)
	Maint   Maintenance   // maintenance mode and last-refresh bookkeeping

	// baseVersion is the base graph's version at (re)materialization time,
	// used for staleness detection (see Catalog.Stale).
	baseVersion int64

	// keyIdx lazily indexes Data.Groups by binary group key for the
	// incremental maintenance path. Records are replaced wholesale on
	// refresh, so the index is built at most once per record; the Once makes
	// concurrent read-side planners safe.
	keyIdxOnce sync.Once
	keyIdx     map[string]int
}

// groupIndex returns the record's binary-key → group-position index,
// building it on first use.
func (m *Materialized) groupIndex() map[string]int {
	m.keyIdxOnce.Do(func() {
		idx := make(map[string]int, len(m.Data.Groups))
		for i := range m.Data.Groups {
			idx[binaryGroupKey(m.Data.Groups[i].Key)] = i
		}
		m.keyIdx = idx
	})
	return m.keyIdx
}

// View is a convenience accessor.
func (m *Materialized) View() facet.View { return m.Data.View }

// BaseVersion returns the base graph's version at the view's last
// (re)materialization — the anchor for measuring staleness distance
// (current graph version minus BaseVersion) in stats and metrics.
func (m *Materialized) BaseVersion() int64 { return m.baseVersion }

// Catalog manages the expanded graph G+ for one facet: the base graph plus
// the encodings of every currently materialized view. It implements the
// offline module's "view materialization" half.
type Catalog struct {
	facet    *facet.Facet
	base     *store.Graph
	expanded *store.Graph
	baseEng  *engine.Engine
	expEng   *engine.Engine
	engOpts  engine.Options // options the engines were built with
	mats     map[facet.Mask]*Materialized

	// generation counts committed catalog mutations: base-graph inserts and
	// deletes, materializations, drops, resets, and refreshes. Two reads that
	// observe the same generation observed the same catalog state, so the
	// counter is the invalidation key for any result cache layered on top
	// (see internal/server). Atomic so monitoring reads never race writers.
	generation atomic.Int64

	// log retains the effective deltas of committed update batches so stale
	// views can refresh by replaying exactly the batches they missed — the
	// O(|ΔG|) maintenance path of incremental.go.
	log deltaLog

	// maintMode is the facet's maintainability classification, fixed at
	// catalog construction (it depends only on the facet's pattern and
	// aggregate).
	maintMode MaintenanceMode

	// noIncremental forces every refresh down the full-recompute path;
	// benchmarks and ablations flip it via SetIncrementalMaintenance.
	noIncremental bool

	// staleMemo caches the stale-view scan for one (generation, base
	// version) state — see Catalog.staleNow.
	staleMemo atomic.Pointer[staleState]
}

// NewCatalog clones base into a fresh expanded graph G+.
func NewCatalog(base *store.Graph, f *facet.Facet) *Catalog {
	return NewCatalogWithOptions(base, f, engine.Options{})
}

// NewCatalogWithOptions is NewCatalog with explicit engine options, so a
// caller can bound (or disable) parallel query execution on both the base
// and expanded engines.
func NewCatalogWithOptions(base *store.Graph, f *facet.Facet, opts engine.Options) *Catalog {
	expanded := base.Clone()
	return &Catalog{
		facet:     f,
		base:      base,
		expanded:  expanded,
		baseEng:   engine.NewWithOptions(base, opts),
		expEng:    engine.NewWithOptions(expanded, opts),
		engOpts:   opts,
		mats:      make(map[facet.Mask]*Materialized),
		maintMode: maintenanceMode(f),
	}
}

// Fork returns a writable copy-on-write successor of the catalog for MVCC
// commit chains: both graphs are forked (immutable runs and dictionaries
// shared, delta overlays copied), the materialization records are carried by
// pointer — they are immutable once committed and replaced wholesale on
// refresh, which also preserves the pointer-identity stale-plan check in
// CommitRefresh across the fork — and the delta log is copied so the fork's
// maintenance window evolves independently. The receiver must be treated as
// frozen once published; all further mutation happens on the fork.
func (c *Catalog) Fork() *Catalog {
	nb := c.base.Fork()
	ne := c.expanded.Fork()
	nc := &Catalog{
		facet:         c.facet,
		base:          nb,
		expanded:      ne,
		baseEng:       engine.NewWithOptions(nb, c.engOpts),
		expEng:        engine.NewWithOptions(ne, c.engOpts),
		engOpts:       c.engOpts,
		mats:          make(map[facet.Mask]*Materialized, len(c.mats)),
		log:           c.log.fork(),
		maintMode:     c.maintMode,
		noIncremental: c.noIncremental,
	}
	maps.Copy(nc.mats, c.mats)
	nc.generation.Store(c.generation.Load())
	return nc
}

// Facet returns the catalog's facet.
func (c *Catalog) Facet() *facet.Facet { return c.facet }

// Generation returns the catalog mutation counter. It increases on every
// committed change that can alter a query answer — Insert, Delete,
// Materialize, Drop, Reset, Refresh — and never repeats within one catalog's
// lifetime, so (query, generation) identifies a unique answer.
func (c *Catalog) Generation() int64 { return c.generation.Load() }

// bump records one committed mutation.
func (c *Catalog) bump() { c.generation.Add(1) }

// ViewSetHash returns an order-independent hash of the materialized view
// set. Unlike Generation it is stable across mutations that do not change
// which views are materialized, letting caches distinguish "same views,
// newer data" from "different views". Callers must not race it with
// catalog mutations.
func (c *Catalog) ViewSetHash() uint64 {
	ids := make([]string, 0, len(c.mats))
	for _, m := range c.mats {
		ids = append(ids, m.Data.View.ID())
	}
	sort.Strings(ids)
	h := fnv.New64a()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// EngineOptions returns the options the catalog's engines were built with.
func (c *Catalog) EngineOptions() engine.Options { return c.engOpts }

// Base returns the original graph G.
func (c *Catalog) Base() *store.Graph { return c.base }

// Expanded returns the expanded graph G+.
func (c *Catalog) Expanded() *store.Graph { return c.expanded }

// BaseEngine returns an engine over G.
func (c *Catalog) BaseEngine() *engine.Engine { return c.baseEng }

// ExpandedEngine returns an engine over G+.
func (c *Catalog) ExpandedEngine() *engine.Engine { return c.expEng }

// Has reports whether the view is materialized.
func (c *Catalog) Has(m facet.Mask) bool {
	_, ok := c.mats[m]
	return ok
}

// Get returns the materialization record of a view, if present.
func (c *Catalog) Get(m facet.Mask) (*Materialized, bool) {
	mat, ok := c.mats[m]
	return mat, ok
}

// Materialized returns all materialized views ordered by mask.
func (c *Catalog) Materialized() []*Materialized {
	out := make([]*Materialized, 0, len(c.mats))
	for _, m := range c.mats {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Data.View.Mask < out[j].Data.View.Mask
	})
	return out
}

// MaterializedViews returns the views currently materialized, by mask order.
func (c *Catalog) MaterializedViews() []facet.View {
	mats := c.Materialized()
	out := make([]facet.View, len(mats))
	for i, m := range mats {
		out[i] = m.Data.View
	}
	return out
}

// bestSource picks the cheapest way to compute v: the materialized strict
// ancestor with the fewest groups (roll-up), or nil to compute from base.
func (c *Catalog) bestSource(v facet.View) *Materialized {
	var best *Materialized
	for _, m := range c.mats {
		if m.Data.View.Mask == v.Mask || !m.Data.View.Covers(v) {
			continue
		}
		if best == nil || m.Data.NumGroups() < best.Data.NumGroups() {
			best = m
		}
	}
	return best
}

// Materialize computes the view (rolling up from a materialized ancestor
// when possible) and encodes it into G+. Re-materializing an existing view
// is a no-op returning the existing record.
func (c *Catalog) Materialize(v facet.View) (*Materialized, error) {
	if v.Facet != c.facet {
		return nil, fmt.Errorf("views: view %s belongs to a different facet", v)
	}
	if m, ok := c.mats[v.Mask]; ok {
		return m, nil
	}
	start := time.Now()
	baseVersion := c.base.Version()
	var data *Data
	var err error
	if src := c.bestSource(v); src != nil {
		data, err = RollUp(src.Data, v)
		// The roll-up reflects the ancestor's base version; if the ancestor
		// is stale, the new view is born stale too.
		baseVersion = src.baseVersion
	} else {
		data, err = Compute(c.baseEng, v)
	}
	if err != nil {
		return nil, err
	}
	return c.materializeData(data, start, baseVersion)
}

// MaterializeData encodes precomputed view data into G+. The start time, if
// non-zero, anchors the Elapsed measurement (otherwise only encoding time is
// counted). The data is assumed to reflect the current base graph; callers
// that computed it against an earlier version (plan/commit pipelines,
// roll-ups from possibly-stale ancestors) go through materializeData with an
// explicit version instead.
func (c *Catalog) MaterializeData(data *Data, start time.Time) (*Materialized, error) {
	return c.materializeData(data, start, c.base.Version())
}

// materializeData is MaterializeData with an explicit base graph version to
// record for staleness tracking: the version the contents were computed
// against, which lags c.base.Version() when the base advanced after the
// compute phase (see CommitMaterialize) or when the data rolled up from a
// stale ancestor.
func (c *Catalog) materializeData(data *Data, start time.Time, baseVersion int64) (*Materialized, error) {
	if start.IsZero() {
		start = time.Now()
	}
	if m, ok := c.mats[data.View.Mask]; ok {
		return m, nil
	}
	triples, err := Encode(data)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, t := range triples {
		bytes += tripleBytes(t)
	}
	// Bulk-load the encoding into G+ in one batch: a single lock acquisition
	// and sorted-run merge instead of per-triple index maintenance.
	if _, err := c.expanded.LoadTriples(triples); err != nil {
		return nil, fmt.Errorf("views: encoding %s: %w", data.View, err)
	}
	st := ComputeStats(data)
	m := &Materialized{
		Data:        data,
		Triples:     len(triples),
		Nodes:       st.Nodes,
		Bytes:       bytes,
		Elapsed:     time.Since(start),
		Maint:       Maintenance{Mode: c.maintMode.String(), LastPath: "initial"},
		baseVersion: baseVersion,
	}
	c.mats[data.View.Mask] = m
	c.bump()
	return m, nil
}

// groupEncoder renders groups of one view as their G+ encoding, with the
// per-view constant terms resolved once. Both the full Encode pass and the
// incremental path's per-group diffs go through it, so the two cannot drift.
type groupEncoder struct {
	view    facet.View
	dims    []string
	dimPs   []rdf.Term
	viewIRI rdf.Term
	inView  rdf.Term
	aggP    rdf.Term
	sumP    rdf.Term
	countP  rdf.Term
	isAvg   bool
}

func newGroupEncoder(v facet.View) *groupEncoder {
	e := &groupEncoder{
		view:    v,
		dims:    v.Dims(),
		viewIRI: rdf.NewIRI(v.IRI()),
		inView:  rdf.NewIRI(PredInView),
		aggP:    rdf.NewIRI(PredAgg),
		sumP:    rdf.NewIRI(PredSum),
		countP:  rdf.NewIRI(PredCount),
		isAvg:   v.Facet.Agg == sparql.AggAvg,
	}
	for _, d := range e.dims {
		e.dimPs = append(e.dimPs, rdf.NewIRI(DimPredicate(d)))
	}
	return e
}

// groupLabel derives the group's blank-node label from its key content:
// refreshes that keep a group's key keep its blank node, so an encoding diff
// touches only the groups whose values actually changed. (The seed's
// positional labels relabeled every group after a deleted one, producing
// O(|V|) churn for a one-group change.) The label is a 128-bit FNV of the
// canonical key bytes — collisions would merge two groups' encodings, so the
// hash is sized to make them negligible.
func (e *groupEncoder) groupLabel(key []algebra.Value) string {
	h := fnv.New128a()
	h.Write([]byte(binaryGroupKey(key)))
	var buf [16]byte
	return "g_" + e.view.Facet.Name + "_" + e.view.ID() + "_" + hex.EncodeToString(h.Sum(buf[:0]))
}

// encode renders one group's triples.
func (e *groupEncoder) encode(g Group) ([]rdf.Triple, error) {
	if len(g.Key) != len(e.dims) {
		return nil, fmt.Errorf("views: group of %s has %d key values for %d dims", e.view, len(g.Key), len(e.dims))
	}
	b := rdf.NewBlank(e.groupLabel(g.Key))
	out := make([]rdf.Triple, 0, 4+len(e.dims))
	out = append(out, rdf.Triple{S: b, P: e.inView, O: e.viewIRI})
	for j, kv := range g.Key {
		if !kv.Bound {
			continue
		}
		out = append(out, rdf.Triple{S: b, P: e.dimPs[j], O: kv.Term})
	}
	if g.Agg.Bound {
		out = append(out, rdf.Triple{S: b, P: e.aggP, O: g.Agg.Term})
	}
	if e.isAvg {
		out = append(out, rdf.Triple{S: b, P: e.sumP, O: algebraFormat(g.Sum)})
		out = append(out, rdf.Triple{S: b, P: e.countP, O: algebraFormat(g.Count)})
	}
	return out, nil
}

// Encode renders view data as the blank-node RDF encoding added to G+:
//
//	_:g  sofos:inView   <view IRI> .
//	_:g  sofos:d_<dim>  <dimension value> .   (per bound dimension)
//	_:g  sofos:agg      "<aggregate>" .
//	_:g  sofos:aggSum / sofos:aggCount ...    (AVG facets only)
//
// Group blank-node labels are content-keyed (see groupEncoder.groupLabel),
// so a group's encoding is stable across refreshes while its key survives.
func Encode(data *Data) ([]rdf.Triple, error) {
	e := newGroupEncoder(data.View)
	var out []rdf.Triple
	for i, g := range data.Groups {
		ts, err := e.encode(g)
		if err != nil {
			return nil, fmt.Errorf("views: group %d: %w", i, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// tripleBytes estimates the stored size of one encoded triple, the unit the
// catalog's Bytes accounting uses.
func tripleBytes(t rdf.Triple) int64 {
	return int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + 12)
}

// Drop removes a materialized view's triples from G+, reporting whether the
// view was present. The tombstones are merged out immediately: a dropped
// view can leave a large sub-threshold delta overlay that every subsequent
// scan and estimate would otherwise have to filter through.
func (c *Catalog) Drop(v facet.View) bool {
	if !c.drop(v) {
		return false
	}
	c.expanded.Compact()
	return true
}

// drop removes the view's triples without compacting, so multi-view drops
// can batch one compaction at the end.
func (c *Catalog) drop(v facet.View) bool {
	m, ok := c.mats[v.Mask]
	if !ok {
		return false
	}
	if triples, err := Encode(m.Data); err == nil {
		c.expanded.RemoveTriples(triples)
	}
	delete(c.mats, v.Mask)
	c.bump()
	return true
}

// Reset drops every materialized view, restoring G+ to the base contents,
// with a single run compaction at the end.
func (c *Catalog) Reset() {
	for _, m := range c.Materialized() {
		c.drop(m.Data.View)
	}
	c.expanded.Compact()
}

// StorageAmplification is |G+| / |G| in triples, the quantity panel ③ of the
// demo contrasts against query time.
func (c *Catalog) StorageAmplification() float64 {
	if c.base.Len() == 0 {
		return 1
	}
	return float64(c.expanded.Len()) / float64(c.base.Len())
}

// AddedTriples is the total number of materialized triples in G+.
func (c *Catalog) AddedTriples() int { return c.expanded.Len() - c.base.Len() }
