package views

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// algebraFormat renders a float as its canonical numeric literal.
func algebraFormat(f float64) rdf.Term { return algebra.FormatFloat(f) }

// SOFOS vocabulary for the G+ encoding of materialized views.
const (
	NS         = "http://sofos.ics.forth.gr/ns#"
	PredInView = NS + "inView" // group blank node -> view IRI
	PredAgg    = NS + "agg"    // group blank node -> aggregate value
	PredSum    = NS + "aggSum" // AVG only: partial sum
	PredCount  = NS + "aggCount"
)

// DimPredicate returns the predicate IRI attaching a dimension value to a
// group blank node.
func DimPredicate(dim string) string { return NS + "d_" + dim }

// Materialized records one view materialized into G+.
type Materialized struct {
	Data    *Data
	Triples int           // triples added to G+
	Nodes   int           // distinct nodes in the encoding
	Bytes   int64         // estimated encoding bytes
	Elapsed time.Duration // total materialization time (compute + encode)

	// baseVersion is the base graph's version at (re)materialization time,
	// used for staleness detection (see Catalog.Stale).
	baseVersion int64
}

// View is a convenience accessor.
func (m *Materialized) View() facet.View { return m.Data.View }

// Catalog manages the expanded graph G+ for one facet: the base graph plus
// the encodings of every currently materialized view. It implements the
// offline module's "view materialization" half.
type Catalog struct {
	facet    *facet.Facet
	base     *store.Graph
	expanded *store.Graph
	baseEng  *engine.Engine
	expEng   *engine.Engine
	engOpts  engine.Options // options the engines were built with
	mats     map[facet.Mask]*Materialized

	// generation counts committed catalog mutations: base-graph inserts and
	// deletes, materializations, drops, resets, and refreshes. Two reads that
	// observe the same generation observed the same catalog state, so the
	// counter is the invalidation key for any result cache layered on top
	// (see internal/server). Atomic so monitoring reads never race writers.
	generation atomic.Int64
}

// NewCatalog clones base into a fresh expanded graph G+.
func NewCatalog(base *store.Graph, f *facet.Facet) *Catalog {
	return NewCatalogWithOptions(base, f, engine.Options{})
}

// NewCatalogWithOptions is NewCatalog with explicit engine options, so a
// caller can bound (or disable) parallel query execution on both the base
// and expanded engines.
func NewCatalogWithOptions(base *store.Graph, f *facet.Facet, opts engine.Options) *Catalog {
	expanded := base.Clone()
	return &Catalog{
		facet:    f,
		base:     base,
		expanded: expanded,
		baseEng:  engine.NewWithOptions(base, opts),
		expEng:   engine.NewWithOptions(expanded, opts),
		engOpts:  opts,
		mats:     make(map[facet.Mask]*Materialized),
	}
}

// Facet returns the catalog's facet.
func (c *Catalog) Facet() *facet.Facet { return c.facet }

// Generation returns the catalog mutation counter. It increases on every
// committed change that can alter a query answer — Insert, Delete,
// Materialize, Drop, Reset, Refresh — and never repeats within one catalog's
// lifetime, so (query, generation) identifies a unique answer.
func (c *Catalog) Generation() int64 { return c.generation.Load() }

// bump records one committed mutation.
func (c *Catalog) bump() { c.generation.Add(1) }

// ViewSetHash returns an order-independent hash of the materialized view
// set. Unlike Generation it is stable across mutations that do not change
// which views are materialized, letting caches distinguish "same views,
// newer data" from "different views". Callers must not race it with
// catalog mutations.
func (c *Catalog) ViewSetHash() uint64 {
	ids := make([]string, 0, len(c.mats))
	for _, m := range c.mats {
		ids = append(ids, m.Data.View.ID())
	}
	sort.Strings(ids)
	h := fnv.New64a()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// EngineOptions returns the options the catalog's engines were built with.
func (c *Catalog) EngineOptions() engine.Options { return c.engOpts }

// Base returns the original graph G.
func (c *Catalog) Base() *store.Graph { return c.base }

// Expanded returns the expanded graph G+.
func (c *Catalog) Expanded() *store.Graph { return c.expanded }

// BaseEngine returns an engine over G.
func (c *Catalog) BaseEngine() *engine.Engine { return c.baseEng }

// ExpandedEngine returns an engine over G+.
func (c *Catalog) ExpandedEngine() *engine.Engine { return c.expEng }

// Has reports whether the view is materialized.
func (c *Catalog) Has(m facet.Mask) bool {
	_, ok := c.mats[m]
	return ok
}

// Get returns the materialization record of a view, if present.
func (c *Catalog) Get(m facet.Mask) (*Materialized, bool) {
	mat, ok := c.mats[m]
	return mat, ok
}

// Materialized returns all materialized views ordered by mask.
func (c *Catalog) Materialized() []*Materialized {
	out := make([]*Materialized, 0, len(c.mats))
	for _, m := range c.mats {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Data.View.Mask < out[j].Data.View.Mask
	})
	return out
}

// MaterializedViews returns the views currently materialized, by mask order.
func (c *Catalog) MaterializedViews() []facet.View {
	mats := c.Materialized()
	out := make([]facet.View, len(mats))
	for i, m := range mats {
		out[i] = m.Data.View
	}
	return out
}

// bestSource picks the cheapest way to compute v: the materialized strict
// ancestor with the fewest groups (roll-up), or nil to compute from base.
func (c *Catalog) bestSource(v facet.View) *Materialized {
	var best *Materialized
	for _, m := range c.mats {
		if m.Data.View.Mask == v.Mask || !m.Data.View.Covers(v) {
			continue
		}
		if best == nil || m.Data.NumGroups() < best.Data.NumGroups() {
			best = m
		}
	}
	return best
}

// Materialize computes the view (rolling up from a materialized ancestor
// when possible) and encodes it into G+. Re-materializing an existing view
// is a no-op returning the existing record.
func (c *Catalog) Materialize(v facet.View) (*Materialized, error) {
	if v.Facet != c.facet {
		return nil, fmt.Errorf("views: view %s belongs to a different facet", v)
	}
	if m, ok := c.mats[v.Mask]; ok {
		return m, nil
	}
	start := time.Now()
	baseVersion := c.base.Version()
	var data *Data
	var err error
	if src := c.bestSource(v); src != nil {
		data, err = RollUp(src.Data, v)
		// The roll-up reflects the ancestor's base version; if the ancestor
		// is stale, the new view is born stale too.
		baseVersion = src.baseVersion
	} else {
		data, err = Compute(c.baseEng, v)
	}
	if err != nil {
		return nil, err
	}
	return c.materializeData(data, start, baseVersion)
}

// MaterializeData encodes precomputed view data into G+. The start time, if
// non-zero, anchors the Elapsed measurement (otherwise only encoding time is
// counted). The data is assumed to reflect the current base graph; callers
// that computed it against an earlier version (plan/commit pipelines,
// roll-ups from possibly-stale ancestors) go through materializeData with an
// explicit version instead.
func (c *Catalog) MaterializeData(data *Data, start time.Time) (*Materialized, error) {
	return c.materializeData(data, start, c.base.Version())
}

// materializeData is MaterializeData with an explicit base graph version to
// record for staleness tracking: the version the contents were computed
// against, which lags c.base.Version() when the base advanced after the
// compute phase (see CommitMaterialize) or when the data rolled up from a
// stale ancestor.
func (c *Catalog) materializeData(data *Data, start time.Time, baseVersion int64) (*Materialized, error) {
	if start.IsZero() {
		start = time.Now()
	}
	if m, ok := c.mats[data.View.Mask]; ok {
		return m, nil
	}
	triples, err := Encode(data)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, t := range triples {
		bytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + 12)
	}
	// Bulk-load the encoding into G+ in one batch: a single lock acquisition
	// and sorted-run merge instead of per-triple index maintenance.
	if _, err := c.expanded.LoadTriples(triples); err != nil {
		return nil, fmt.Errorf("views: encoding %s: %w", data.View, err)
	}
	st := ComputeStats(data)
	m := &Materialized{
		Data:        data,
		Triples:     len(triples),
		Nodes:       st.Nodes,
		Bytes:       bytes,
		Elapsed:     time.Since(start),
		baseVersion: baseVersion,
	}
	c.mats[data.View.Mask] = m
	c.bump()
	return m, nil
}

// Encode renders view data as the blank-node RDF encoding added to G+:
//
//	_:g  sofos:inView   <view IRI> .
//	_:g  sofos:d_<dim>  <dimension value> .   (per bound dimension)
//	_:g  sofos:agg      "<aggregate>" .
//	_:g  sofos:aggSum / sofos:aggCount ...    (AVG facets only)
func Encode(data *Data) ([]rdf.Triple, error) {
	v := data.View
	dims := v.Dims()
	viewIRI := rdf.NewIRI(v.IRI())
	inView := rdf.NewIRI(PredInView)
	aggP := rdf.NewIRI(PredAgg)
	sumP := rdf.NewIRI(PredSum)
	countP := rdf.NewIRI(PredCount)
	isAvg := v.Facet.Agg == sparql.AggAvg
	var out []rdf.Triple
	for i, g := range data.Groups {
		if len(g.Key) != len(dims) {
			return nil, fmt.Errorf("views: group %d of %s has %d key values for %d dims", i, v, len(g.Key), len(dims))
		}
		b := rdf.NewBlank("g_" + v.Facet.Name + "_" + v.ID() + "_" + strconv.Itoa(i))
		out = append(out, rdf.Triple{S: b, P: inView, O: viewIRI})
		for j, kv := range g.Key {
			if !kv.Bound {
				continue
			}
			out = append(out, rdf.Triple{S: b, P: rdf.NewIRI(DimPredicate(dims[j])), O: kv.Term})
		}
		if g.Agg.Bound {
			out = append(out, rdf.Triple{S: b, P: aggP, O: g.Agg.Term})
		}
		if isAvg {
			out = append(out, rdf.Triple{S: b, P: sumP, O: algebraFormat(g.Sum)})
			out = append(out, rdf.Triple{S: b, P: countP, O: algebraFormat(g.Count)})
		}
	}
	return out, nil
}

// Drop removes a materialized view's triples from G+, reporting whether the
// view was present. The tombstones are merged out immediately: a dropped
// view can leave a large sub-threshold delta overlay that every subsequent
// scan and estimate would otherwise have to filter through.
func (c *Catalog) Drop(v facet.View) bool {
	if !c.drop(v) {
		return false
	}
	c.expanded.Compact()
	return true
}

// drop removes the view's triples without compacting, so multi-view drops
// can batch one compaction at the end.
func (c *Catalog) drop(v facet.View) bool {
	m, ok := c.mats[v.Mask]
	if !ok {
		return false
	}
	if triples, err := Encode(m.Data); err == nil {
		c.expanded.RemoveTriples(triples)
	}
	delete(c.mats, v.Mask)
	c.bump()
	return true
}

// Reset drops every materialized view, restoring G+ to the base contents,
// with a single run compaction at the end.
func (c *Catalog) Reset() {
	for _, m := range c.Materialized() {
		c.drop(m.Data.View)
	}
	c.expanded.Compact()
}

// StorageAmplification is |G+| / |G| in triples, the quantity panel ③ of the
// demo contrasts against query time.
func (c *Catalog) StorageAmplification() float64 {
	if c.base.Len() == 0 {
		return 1
	}
	return float64(c.expanded.Len()) / float64(c.base.Len())
}

// AddedTriples is the total number of materialized triples in G+.
func (c *Catalog) AddedTriples() int { return c.expanded.Len() - c.base.Len() }
