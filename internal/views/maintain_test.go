package views

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
)

func TestInsertMirrorsIntoExpanded(t *testing.T) {
	g := popGraph(t, 21, 2, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	tr := rdf.Triple{
		S: rdf.NewIRI("http://ex.org/obsNew"),
		P: rdf.NewIRI("http://ex.org/country"),
		O: rdf.NewLiteral("CX"),
	}
	added, err := c.Insert(tr)
	if err != nil || !added {
		t.Fatalf("Insert = %v, %v", added, err)
	}
	if !c.Base().Contains(tr) || !c.Expanded().Contains(tr) {
		t.Error("insert not mirrored")
	}
	// Duplicate insert is a no-op in both graphs.
	added, err = c.Insert(tr)
	if err != nil || added {
		t.Errorf("duplicate Insert = %v, %v", added, err)
	}
	if !c.Delete(tr) {
		t.Fatal("Delete = false")
	}
	if c.Base().Contains(tr) || c.Expanded().Contains(tr) {
		t.Error("delete not mirrored")
	}
	if c.Delete(tr) {
		t.Error("second Delete = true")
	}
	// Invalid triples are rejected.
	if _, err := c.Insert(rdf.Triple{S: rdf.NewLiteral("x"), P: tr.P, O: tr.O}); err == nil {
		t.Error("invalid triple accepted")
	}
}

// addObservation inserts a full observation (4 triples) through the catalog.
func addObservation(t *testing.T, c *Catalog, id, country, lang string, year int, pop int64) {
	t.Helper()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	obs := ex(id)
	for _, tr := range []rdf.Triple{
		{S: obs, P: ex("country"), O: rdf.NewLiteral(country)},
		{S: obs, P: ex("lang"), O: rdf.NewLiteral(lang)},
		{S: obs, P: ex("year"), O: rdf.NewYear(year)},
		{S: obs, P: ex("pop"), O: rdf.NewInteger(pop)},
	} {
		if _, err := c.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStalenessLifecycle(t *testing.T) {
	g := popGraph(t, 22, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0))
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	if c.Stale(v.Mask) {
		t.Error("freshly materialized view is stale")
	}
	if c.Stale(facet.MaskFromBits(1)) {
		t.Error("unmaterialized view reported stale")
	}
	addObservation(t, c, "obsX", "C99", "L0", 2015, 500)
	if !c.Stale(v.Mask) {
		t.Error("view not stale after base mutation")
	}
	stale := c.StaleViews()
	if len(stale) != 1 || stale[0].Mask != v.Mask {
		t.Errorf("StaleViews = %v", stale)
	}
	if _, err := c.Refresh(v); err != nil {
		t.Fatal(err)
	}
	if c.Stale(v.Mask) {
		t.Error("view stale after refresh")
	}
}

func TestRefreshProducesCorrectAnswers(t *testing.T) {
	g := popGraph(t, 23, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(0)) // per-country
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	// Mutate: new country and extra population for an existing one.
	addObservation(t, c, "obsA", "CNEW", "L0", 2016, 1234)
	addObservation(t, c, "obsB", "C0", "L1", 2016, 777)

	refreshed, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	// The refreshed contents must equal a from-scratch computation.
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGroups(t, v, direct, refreshed.Data)

	// And the G+ encoding must match: exactly the fresh triples present.
	want, err := Encode(refreshed.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range want {
		if !c.Expanded().Contains(tr) {
			t.Errorf("G+ missing refreshed triple %s", tr)
		}
	}
	if got := c.Expanded().Len() - c.Base().Len(); got != len(want) {
		t.Errorf("G+ has %d view triples, want %d", got, len(want))
	}
}

func TestRefreshHandlesDeletes(t *testing.T) {
	g := popGraph(t, 24, 3, 2, 1)
	f := popFacet(t, "COUNT")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(1)) // per-lang
	if _, err := c.Materialize(v); err != nil {
		t.Fatal(err)
	}
	// Remove every triple of one observation.
	var victim rdf.Term
	c.Base().Match(rdf.NoID, rdf.NoID, rdf.NoID, func(s, _, _ rdf.ID) bool {
		victim = c.Base().Dict().Term(s)
		return false
	})
	var toDelete []rdf.Triple
	for _, tr := range c.Base().Triples() {
		if tr.S == victim {
			toDelete = append(toDelete, tr)
		}
	}
	if len(toDelete) == 0 {
		t.Fatal("no observation found")
	}
	for _, tr := range toDelete {
		if !c.Delete(tr) {
			t.Fatalf("Delete(%s) = false", tr)
		}
	}
	refreshed, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGroups(t, v, direct, refreshed.Data)
}

func TestRefreshAll(t *testing.T) {
	g := popGraph(t, 25, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	for _, mask := range []facet.Mask{0, facet.MaskFromBits(0), facet.MaskFromBits(1, 2)} {
		if _, err := c.Materialize(f.View(mask)); err != nil {
			t.Fatal(err)
		}
	}
	addObservation(t, c, "obsZ", "C1", "L1", 2015, 42)
	if got := len(c.StaleViews()); got != 3 {
		t.Fatalf("stale views = %d", got)
	}
	n, err := c.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(c.StaleViews()) != 0 {
		t.Errorf("RefreshAll refreshed %d, stale after = %d", n, len(c.StaleViews()))
	}
	// Second call is a no-op.
	n, err = c.RefreshAll()
	if err != nil || n != 0 {
		t.Errorf("second RefreshAll = %d, %v", n, err)
	}
}

func TestRefreshUnmaterializedFails(t *testing.T) {
	g := popGraph(t, 26, 2, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	if _, err := c.Refresh(f.View(0)); err == nil {
		t.Error("refresh of unmaterialized view accepted")
	}
}

func TestRefreshFreshViewNoOp(t *testing.T) {
	g := popGraph(t, 27, 2, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(0)
	m1, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Refresh(v)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("refresh of fresh view rebuilt it")
	}
}

// TestRefreshEquivalenceProperty: after random batches of inserts and
// deletes, refresh always converges G+'s view encoding to the from-scratch
// computation, for every aggregate.
func TestRefreshEquivalenceProperty(t *testing.T) {
	for _, agg := range []string{"SUM", "COUNT", "MIN", "MAX", "AVG"} {
		t.Run(agg, func(t *testing.T) {
			rng := rand.New(rand.NewSource(28))
			g := popGraph(t, 29, 3, 3, 2)
			f := popFacet(t, agg)
			c := NewCatalog(g, f)
			v := f.View(facet.MaskFromBits(0, 1))
			if _, err := c.Materialize(v); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 5; round++ {
				// Random inserts.
				for i := 0; i < 3; i++ {
					addObservation(t, c,
						fmt.Sprintf("robs%d_%d", round, i),
						fmt.Sprintf("C%d", rng.Intn(5)),
						fmt.Sprintf("L%d", rng.Intn(4)),
						2015+rng.Intn(3),
						int64(rng.Intn(500)+1))
				}
				// Random delete of one existing triple group.
				all := c.Base().Triples()
				if len(all) > 0 {
					c.Delete(all[rng.Intn(len(all))])
				}
				refreshed, err := c.Refresh(v)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := Compute(c.BaseEngine(), v)
				if err != nil {
					t.Fatal(err)
				}
				assertSameGroups(t, v, direct, refreshed.Data)
				// Rewriting through the refreshed view must match base.
				q := v.AnalyticalQuery()
				viaBase, err := c.BaseEngine().Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				_ = viaBase
				if !reflect.DeepEqual(groupKeys(direct), groupKeys(refreshed.Data)) {
					t.Fatal("group keys diverged")
				}
			}
		})
	}
}

// groupKeys canonicalizes group keys for set comparison.
func groupKeys(d *Data) map[string]bool {
	out := make(map[string]bool, len(d.Groups))
	for _, g := range d.Groups {
		k := ""
		for _, kv := range g.Key {
			k += kv.String() + "|"
		}
		out[k] = true
	}
	return out
}
