package views

import (
	"fmt"
	"sync"
	"time"

	"sofos/internal/engine"
	"sofos/internal/facet"
)

// Parallel offline-module operations. View contents are computed read-only —
// either against the base graph (the store supports lock-free snapshot
// scans) or by rolling up an already-materialized ancestor's immutable Data —
// so independent lattice views can be computed concurrently with zero
// coordination. Only the encoding into G+ mutates the expanded graph, and
// that stays serial, batched between waves.

// MaterializeAll materializes every listed view, computing independent view
// contents on a bounded pool of up to workers goroutines. The batch is
// processed in waves: a view that a finer batch member covers waits for that
// ancestor's wave, so the cheap roll-up path of Materialize is preserved
// (e.g. the full view computes first, its children then roll up from it in
// parallel). Records are returned in input order; already-materialized views
// return their existing records, and duplicates resolve to one record.
func (c *Catalog) MaterializeAll(vs []facet.View, workers int) ([]*Materialized, error) {
	if workers < 1 {
		workers = 1
	}
	var pending []facet.View
	seen := make(map[facet.Mask]bool, len(vs))
	for _, v := range vs {
		if v.Facet != c.facet {
			return nil, fmt.Errorf("views: view %s belongs to a different facet", v)
		}
		if seen[v.Mask] || c.Has(v.Mask) {
			continue
		}
		seen[v.Mask] = true
		pending = append(pending, v)
	}
	for len(pending) > 0 {
		wave, rest := nextWave(pending)
		if err := c.materializeWave(wave, workers); err != nil {
			return nil, err
		}
		pending = rest
	}
	out := make([]*Materialized, len(vs))
	for i, v := range vs {
		m, ok := c.mats[v.Mask]
		if !ok {
			return nil, fmt.Errorf("views: %s missing after batch materialization", v)
		}
		out[i] = m
	}
	return out, nil
}

// nextWave splits pending views into those computable now (not covered by a
// finer pending view) and the rest, preserving input order. Covers is a
// strict partial order over distinct masks, so the wave is never empty.
func nextWave(pending []facet.View) (wave, rest []facet.View) {
	for _, v := range pending {
		covered := false
		for _, u := range pending {
			if u.Mask != v.Mask && u.Covers(v) {
				covered = true
				break
			}
		}
		if covered {
			rest = append(rest, v)
		} else {
			wave = append(wave, v)
		}
	}
	return wave, rest
}

// waveEngine builds the base-graph engine a compute pool of the given size
// uses: the catalog's worker budget is divided between the pool and each
// query, so a batch never multiplies the two levels of parallelism into
// workers² goroutines. A pool of one view keeps full intra-query
// parallelism; a full-width pool runs each query serially.
func (c *Catalog) waveEngine(total, pool int) *engine.Engine {
	if pool <= 1 {
		return c.baseEng
	}
	opts := c.engOpts
	opts.Workers = max(1, total/pool)
	return engine.NewWithOptions(c.base, opts)
}

// waveResult is one view's computed contents plus its compute start time
// (the anchor for the record's Elapsed measurement).
type waveResult struct {
	data  *Data
	start time.Time
	err   error
}

// computeWave runs compute(eng, i, v) for every view on a bounded worker
// pool and returns the per-view results. The index lets callers capture
// side results (e.g. incremental refresh plans) into pre-sized slices
// without locking — each slot is written by exactly one worker. The catalog
// must not be mutated while the pool drains; callers apply mutations
// serially afterwards.
func (c *Catalog) computeWave(vs []facet.View, workers int,
	compute func(*engine.Engine, int, facet.View) (*Data, error)) []waveResult {
	results := make([]waveResult, len(vs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	pool := min(workers, len(vs))
	eng := c.waveEngine(workers, pool)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i].start = time.Now()
				results[i].data, results[i].err = compute(eng, i, vs[i])
			}
		}()
	}
	for i := range vs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// resolveSources picks each view's roll-up source exactly once, returning
// the per-mask sources and the base graph version each view's contents will
// reflect: the source's baseVersion for roll-ups (they differ from the
// current version only when the source is stale), the current version for
// base computations. bestSource breaks NumGroups ties by map iteration
// order, so the caller must reuse this single resolution for both the
// compute and the version record — resolving twice could roll up from one
// ancestor while recording another's version.
func (c *Catalog) resolveSources(vs []facet.View) (map[facet.Mask]*Materialized, []int64) {
	baseVersion := c.base.Version()
	srcs := make(map[facet.Mask]*Materialized, len(vs))
	versions := make([]int64, len(vs))
	for i, v := range vs {
		versions[i] = baseVersion
		if src := c.bestSource(v); src != nil {
			srcs[v.Mask] = src
			versions[i] = src.baseVersion
		}
	}
	return srcs, versions
}

// materializeWave computes one wave's view contents in parallel, then
// encodes them into G+ serially in wave order.
func (c *Catalog) materializeWave(wave []facet.View, workers int) error {
	// Wave members never cover each other, so committing earlier members in
	// the loop below cannot change a later member's resolved source. The
	// srcs map is read-only inside the pool, so sharing it needs no locking.
	srcs, versions := c.resolveSources(wave)
	results := c.computeWave(wave, workers, func(eng *engine.Engine, _ int, v facet.View) (*Data, error) {
		if src := srcs[v.Mask]; src != nil {
			return RollUp(src.Data, v)
		}
		return Compute(eng, v)
	})
	for i := range wave {
		if results[i].err != nil {
			return results[i].err
		}
		if _, err := c.materializeData(results[i].data, results[i].start, versions[i]); err != nil {
			return err
		}
	}
	return nil
}

// MaterializePlan holds computed view contents ready to be encoded into
// G+. Like RefreshPlan, producing it only reads the catalog; committing it
// is the sole mutation.
type MaterializePlan struct {
	views  []facet.View
	data   []*Data
	starts []time.Time
	// versions records, per view, the base graph version its contents
	// reflect: the plan-time base version, or — when rolled up from a
	// materialized ancestor — that ancestor's baseVersion. Recording it
	// (rather than the commit-time version) keeps a view correctly marked
	// stale when the base advances between planning and commit.
	versions []int64
}

// Len returns the number of views the plan materializes.
func (p *MaterializePlan) Len() int { return len(p.views) }

// PlanMaterialize computes contents for every listed view not already
// materialized, on up to workers goroutines, without mutating the catalog.
// Each view computes from its cheapest committed source — a materialized
// ancestor roll-up or the base graph; unlike MaterializeAll it does not
// roll up from batch siblings, since nothing is encoded until commit.
// Returns nil when every listed view is already materialized. The caller
// must not run catalog mutations concurrently with planning.
func (c *Catalog) PlanMaterialize(vs []facet.View, workers int) (*MaterializePlan, error) {
	if workers < 1 {
		workers = 1
	}
	var pending []facet.View
	seen := make(map[facet.Mask]bool, len(vs))
	for _, v := range vs {
		if v.Facet != c.facet {
			return nil, fmt.Errorf("views: view %s belongs to a different facet", v)
		}
		if seen[v.Mask] || c.Has(v.Mask) {
			continue
		}
		seen[v.Mask] = true
		pending = append(pending, v)
	}
	if len(pending) == 0 {
		return nil, nil
	}
	plan := &MaterializePlan{views: pending}
	srcs, versions := c.resolveSources(pending)
	plan.versions = versions
	results := c.computeWave(pending, workers, func(eng *engine.Engine, _ int, v facet.View) (*Data, error) {
		if src := srcs[v.Mask]; src != nil {
			return RollUp(src.Data, v)
		}
		return Compute(eng, v)
	})
	for i, v := range pending {
		if results[i].err != nil {
			return nil, fmt.Errorf("views: computing %s: %w", v, results[i].err)
		}
		plan.data = append(plan.data, results[i].data)
		plan.starts = append(plan.starts, results[i].start)
	}
	return plan, nil
}

// CommitMaterialize encodes planned contents into G+ serially, returning
// the records in plan order. Committing a nil plan is a no-op. A view
// materialized since planning keeps its existing record (materializeData
// is idempotent per mask). Each record carries the plan-time base version,
// so a base-graph write that landed between planning and commit leaves the
// new views marked stale rather than serving pre-write contents as fresh.
func (c *Catalog) CommitMaterialize(p *MaterializePlan) ([]*Materialized, error) {
	if p == nil {
		return nil, nil
	}
	out := make([]*Materialized, 0, len(p.views))
	for i := range p.views {
		m, err := c.materializeData(p.data[i], p.starts[i], p.versions[i])
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// refreshOp is one view's planned refresh: either a delta application
// (inc != nil) or a full recompute (full != nil).
type refreshOp struct {
	inc   *incrementalPlan
	full  *Data
	start time.Time
}

// RefreshPlan holds, for every view that was stale at plan time, either an
// incremental delta application or freshly recomputed contents, ready to be
// committed. Producing the plan only reads the catalog (the compute phase);
// applying it is the sole mutation, so a serving layer can plan concurrently
// with query traffic and serialize just the short CommitRefresh step
// against it.
type RefreshPlan struct {
	views       []facet.View
	ops         []refreshOp
	baseVersion int64 // base graph version full-recompute contents reflect
}

// Len returns the number of views the plan refreshes.
func (p *RefreshPlan) Len() int { return len(p.views) }

// Incremental returns how many of the plan's views take the delta path —
// exposed so serving layers can report which maintenance path ran.
func (p *RefreshPlan) Incremental() int {
	n := 0
	for i := range p.ops {
		if p.ops[i].inc != nil {
			n++
		}
	}
	return n
}

// PlanRefresh prepares every stale view's refresh on up to workers
// goroutines without mutating the catalog: views whose staleness window the
// delta log covers (and whose facet is self-maintainable) get an O(|ΔG|)
// incremental plan, the rest are recomputed from the base graph. It returns
// nil when nothing is stale. The caller must not run catalog mutations
// concurrently with planning (the compute pool reads the materialization
// map, the delta log, and the base graph).
func (c *Catalog) PlanRefresh(workers int) (*RefreshPlan, error) {
	if workers < 1 {
		workers = 1
	}
	stale := c.StaleViews()
	if len(stale) == 0 {
		return nil, nil
	}
	mats := make([]*Materialized, len(stale))
	for i, v := range stale {
		mats[i] = c.mats[v.Mask]
	}
	incs := make([]*incrementalPlan, len(stale))
	results := c.computeWave(stale, workers, func(eng *engine.Engine, i int, v facet.View) (*Data, error) {
		inc, err := c.planIncremental(v, mats[i], eng)
		if err != nil {
			return nil, err
		}
		if inc != nil {
			incs[i] = inc
			return nil, nil
		}
		return Compute(eng, v)
	})
	plan := &RefreshPlan{views: stale, ops: make([]refreshOp, len(stale)), baseVersion: c.base.Version()}
	for i, v := range stale {
		if results[i].err != nil {
			return nil, fmt.Errorf("views: recomputing %s: %w", v, results[i].err)
		}
		plan.ops[i] = refreshOp{inc: incs[i], full: results[i].data, start: results[i].start}
	}
	return plan, nil
}

// CommitRefresh applies a plan serially — incremental group deltas or full
// encoding diffs — returning how many views were refreshed. Committing a
// nil plan is a no-op. A view dropped since planning is skipped; a view
// whose record changed since an incremental plan was made is skipped too
// (it stays stale for the next cycle), since its deltas were computed
// against the old contents.
func (c *Catalog) CommitRefresh(p *RefreshPlan) (int, error) {
	if p == nil {
		return 0, nil
	}
	n := 0
	for i, v := range p.views {
		op := p.ops[i]
		if op.inc != nil {
			_, ok, err := c.commitIncremental(v, op.inc, op.start)
			if err != nil {
				return n, err
			}
			if ok {
				n++
			}
			continue
		}
		if !c.Has(v.Mask) {
			continue
		}
		if _, err := c.applyRefresh(v, op.full, op.start, p.baseVersion); err != nil {
			return n, err
		}
		n++
	}
	c.log.prune(c.minBaseVersion())
	return n, nil
}

// RefreshAllParallel refreshes every stale view, recomputing their contents
// on up to workers goroutines and applying the encoding diffs to G+ serially.
// It returns how many views were refreshed.
func (c *Catalog) RefreshAllParallel(workers int) (int, error) {
	plan, err := c.PlanRefresh(workers)
	if err != nil {
		return 0, err
	}
	return c.CommitRefresh(plan)
}
