package views

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// popGraph builds a population graph with countries × languages × years.
func popGraph(t testing.TB, seed int64, countries, langs, years int) *store.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < countries; ci++ {
		for li := 0; li < langs; li++ {
			if ci%langs == li && ci%2 == 0 {
				continue // leave some holes so group counts differ per view
			}
			for yi := 0; yi < years; yi++ {
				obs := ex(fmt.Sprintf("obs_%d_%d_%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2015 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(1000) + 1))})
			}
		}
	}
	return g
}

// popFacet builds the matching facet with the given aggregate.
func popFacet(t testing.TB, agg string) *facet.Facet {
	t.Helper()
	q := sparql.MustParse(fmt.Sprintf(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (%s(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`, agg))
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestComputeTopView(t *testing.T) {
	g := popGraph(t, 1, 4, 3, 2)
	f := popFacet(t, "SUM")
	eng := engine.New(g)
	d, err := Compute(eng, f.View(f.FullMask()))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGroups() == 0 {
		t.Fatal("no groups computed")
	}
	if d.Source != "base" {
		t.Errorf("source = %q", d.Source)
	}
	for _, grp := range d.Groups {
		if len(grp.Key) != 3 || !grp.Agg.Bound {
			t.Fatalf("malformed group %+v", grp)
		}
	}
}

func TestComputeApexEqualsTotalSum(t *testing.T) {
	g := popGraph(t, 2, 3, 2, 2)
	f := popFacet(t, "SUM")
	eng := engine.New(g)
	apex, err := Compute(eng, f.View(0))
	if err != nil {
		t.Fatal(err)
	}
	if apex.NumGroups() != 1 {
		t.Fatalf("apex groups = %d", apex.NumGroups())
	}
	// Cross-check against a direct query.
	res, err := eng.ExecuteString(`PREFIX ex: <http://ex.org/>
SELECT (SUM(?pop) AS ?t) WHERE { ?o ex:country ?c . ?o ex:lang ?l . ?o ex:year ?y . ?o ex:pop ?pop . }`)
	if err != nil {
		t.Fatal(err)
	}
	if apex.Groups[0].Agg.Term.Value != res.Rows[0][0].Term.Value {
		t.Errorf("apex = %s, direct = %s", apex.Groups[0].Agg.Term.Value, res.Rows[0][0].Term.Value)
	}
}

// TestRollUpEquivalence is the core roll-up correctness property: for every
// aggregate and every pair (parent, child), rolling up the parent's data
// produces exactly the child view computed from the base graph.
func TestRollUpEquivalence(t *testing.T) {
	g := popGraph(t, 3, 4, 3, 3)
	for _, agg := range []string{"SUM", "COUNT", "MIN", "MAX", "AVG"} {
		t.Run(agg, func(t *testing.T) {
			f := popFacet(t, agg)
			eng := engine.New(g)
			l, err := facet.NewLattice(f)
			if err != nil {
				t.Fatal(err)
			}
			top, err := Compute(eng, l.Top())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range l.Views() {
				direct, err := Compute(eng, v)
				if err != nil {
					t.Fatalf("compute %s: %v", v, err)
				}
				rolled, err := RollUp(top, v)
				if err != nil {
					t.Fatalf("rollup %s: %v", v, err)
				}
				if !strings.HasPrefix(rolled.Source, "rollup:") {
					t.Errorf("rolled source = %q", rolled.Source)
				}
				assertSameGroups(t, v, direct, rolled)
			}
		})
	}
}

// assertSameGroups compares group multisets by canonical key.
func assertSameGroups(t *testing.T, v facet.View, a, b *Data) {
	t.Helper()
	canon := func(d *Data) map[string]string {
		out := make(map[string]string, len(d.Groups))
		for _, g := range d.Groups {
			var kb strings.Builder
			for _, kv := range g.Key {
				kb.WriteString(kv.String())
				kb.WriteByte('|')
			}
			val := g.Agg.String()
			if v.Facet.Agg == sparql.AggAvg && g.Agg.Bound {
				// Compare AVG numerically to tolerate formatting variance.
				val = fmt.Sprintf("%.9g", g.Sum/g.Count)
			}
			out[kb.String()] = val
		}
		return out
	}
	ca, cb := canon(a), canon(b)
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("view %s: direct %v != rolled %v", v, ca, cb)
	}
}

func TestRollUpRejectsNonCover(t *testing.T) {
	g := popGraph(t, 4, 2, 2, 2)
	f := popFacet(t, "SUM")
	eng := engine.New(g)
	child, err := Compute(eng, f.View(facet.MaskFromBits(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RollUp(child, f.View(facet.MaskFromBits(0, 1))); err == nil {
		t.Error("roll-up from non-covering view accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := popGraph(t, 5, 3, 2, 2)
	f := popFacet(t, "SUM")
	eng := engine.New(g)
	v := f.View(facet.MaskFromBits(0, 1))
	d, err := Compute(eng, v)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(d)
	if st.Groups != d.NumGroups() {
		t.Errorf("Groups = %d, want %d", st.Groups, d.NumGroups())
	}
	// Encoding: per group 1 inView + 2 dims + 1 agg.
	want := d.NumGroups() * 4
	if st.Triples != want {
		t.Errorf("Triples = %d, want %d", st.Triples, want)
	}
	if st.Nodes <= d.NumGroups() {
		t.Errorf("Nodes = %d suspiciously small", st.Nodes)
	}
}

func TestEncodeShape(t *testing.T) {
	g := popGraph(t, 6, 2, 2, 1)
	f := popFacet(t, "SUM")
	eng := engine.New(g)
	v := f.View(facet.MaskFromBits(1)) // lang only
	d, err := Compute(eng, v)
	if err != nil {
		t.Fatal(err)
	}
	triples, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	perGroup := 3 // inView + d_lang + agg
	if len(triples) != d.NumGroups()*perGroup {
		t.Fatalf("encoded %d triples for %d groups", len(triples), d.NumGroups())
	}
	inView, dims, aggs := 0, 0, 0
	for _, tr := range triples {
		if !tr.S.IsBlank() {
			t.Errorf("non-blank group subject %s", tr.S)
		}
		switch tr.P.Value {
		case PredInView:
			inView++
			if tr.O.Value != v.IRI() {
				t.Errorf("inView object = %s", tr.O)
			}
		case DimPredicate("lang"):
			dims++
		case PredAgg:
			aggs++
			if !tr.O.IsNumeric() {
				t.Errorf("agg object not numeric: %s", tr.O)
			}
		default:
			t.Errorf("unexpected predicate %s", tr.P)
		}
	}
	if inView != d.NumGroups() || dims != d.NumGroups() || aggs != d.NumGroups() {
		t.Errorf("counts inView=%d dims=%d aggs=%d", inView, dims, aggs)
	}
}

func TestEncodeAvgCarriesSumCount(t *testing.T) {
	g := popGraph(t, 7, 2, 2, 1)
	f := popFacet(t, "AVG")
	eng := engine.New(g)
	d, err := Compute(eng, f.View(facet.MaskFromBits(0)))
	if err != nil {
		t.Fatal(err)
	}
	triples, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	sums, counts := 0, 0
	for _, tr := range triples {
		switch tr.P.Value {
		case PredSum:
			sums++
		case PredCount:
			counts++
		}
	}
	if sums != d.NumGroups() || counts != d.NumGroups() {
		t.Errorf("AVG encoding sums=%d counts=%d groups=%d", sums, counts, d.NumGroups())
	}
}

func TestCatalogMaterializeAndDrop(t *testing.T) {
	g := popGraph(t, 8, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	baseLen := g.Len()
	if c.Expanded().Len() != baseLen {
		t.Fatal("expanded not a clone of base")
	}
	v := f.View(facet.MaskFromBits(0, 1))
	m, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	if m.Triples == 0 || m.Nodes == 0 || m.Bytes == 0 {
		t.Errorf("materialized stats = %+v", m)
	}
	if c.Expanded().Len() != baseLen+m.Triples {
		t.Errorf("G+ size = %d, want %d", c.Expanded().Len(), baseLen+m.Triples)
	}
	if g.Len() != baseLen {
		t.Error("materialization mutated the base graph")
	}
	if !c.Has(v.Mask) || len(c.Materialized()) != 1 || len(c.MaterializedViews()) != 1 {
		t.Error("catalog bookkeeping wrong")
	}
	if got, ok := c.Get(v.Mask); !ok || got != m {
		t.Error("Get returned wrong record")
	}
	// Re-materializing is a no-op.
	m2, err := c.Materialize(v)
	if err != nil || m2 != m {
		t.Errorf("re-materialize = %v, %v", m2, err)
	}
	if c.Expanded().Len() != baseLen+m.Triples {
		t.Error("re-materialize duplicated triples")
	}
	// Drop restores G+.
	if !c.Drop(v) {
		t.Fatal("Drop = false")
	}
	if c.Drop(v) {
		t.Error("second Drop = true")
	}
	if c.Expanded().Len() != baseLen {
		t.Errorf("G+ after drop = %d, want %d", c.Expanded().Len(), baseLen)
	}
	if c.StorageAmplification() != 1.0 {
		t.Errorf("amplification after drop = %f", c.StorageAmplification())
	}
}

func TestCatalogRollUpPath(t *testing.T) {
	g := popGraph(t, 9, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	top, err := c.Materialize(f.View(f.FullMask()))
	if err != nil {
		t.Fatal(err)
	}
	if top.Data.Source != "base" {
		t.Errorf("top source = %q", top.Data.Source)
	}
	child, err := c.Materialize(f.View(facet.MaskFromBits(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(child.Data.Source, "rollup:") {
		t.Errorf("child source = %q, want rollup", child.Data.Source)
	}
	// The rolled-up contents must match a direct base computation.
	direct, err := Compute(c.BaseEngine(), f.View(facet.MaskFromBits(0)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameGroups(t, child.Data.View, direct, child.Data)
}

func TestCatalogBestSourcePrefersFewestGroups(t *testing.T) {
	g := popGraph(t, 10, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	// Materialize two ancestors of {0}: the full view and {0,1}.
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	mid, err := c.Materialize(f.View(facet.MaskFromBits(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	child, err := c.Materialize(f.View(facet.MaskFromBits(0)))
	if err != nil {
		t.Fatal(err)
	}
	if child.Data.Source != "rollup:"+mid.View().ID() && child.Data.Source != "rollup:country+lang" {
		t.Errorf("child source = %q, want roll-up from the smaller ancestor", child.Data.Source)
	}
}

func TestCatalogStorageAmplification(t *testing.T) {
	g := popGraph(t, 11, 3, 2, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	if c.StorageAmplification() != 1.0 {
		t.Errorf("initial amplification = %f", c.StorageAmplification())
	}
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	if c.StorageAmplification() <= 1.0 {
		t.Errorf("amplification after materialize = %f", c.StorageAmplification())
	}
	if c.AddedTriples() <= 0 {
		t.Errorf("AddedTriples = %d", c.AddedTriples())
	}
	c.Reset()
	if c.StorageAmplification() != 1.0 || len(c.Materialized()) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCatalogRejectsForeignView(t *testing.T) {
	g := popGraph(t, 12, 2, 2, 1)
	f := popFacet(t, "SUM")
	other := popFacet(t, "COUNT")
	c := NewCatalog(g, f)
	if _, err := c.Materialize(other.View(0)); err == nil {
		t.Error("foreign facet view accepted")
	}
}

func TestMaterializeDataZeroStart(t *testing.T) {
	g := popGraph(t, 13, 2, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	d, err := Compute(c.BaseEngine(), f.View(0))
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.MaterializeData(d, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed < 0 {
		t.Error("negative elapsed")
	}
}

func TestEncodeMismatchedKey(t *testing.T) {
	f := popFacet(t, "SUM")
	d := &Data{View: f.View(facet.MaskFromBits(0, 1)), Groups: []Group{{}}}
	if _, err := Encode(d); err == nil {
		t.Error("mismatched key length accepted")
	}
}

func TestViewDataQueriedThroughExpandedGraph(t *testing.T) {
	// After materialization, the encoding is reachable via SPARQL on G+ —
	// the property the online module's rewriting relies on.
	g := popGraph(t, 14, 3, 2, 1)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(facet.MaskFromBits(1))
	m, err := c.Materialize(v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.ExpandedEngine().ExecuteString(fmt.Sprintf(`
SELECT ?lang ?val WHERE {
  ?g <%s> <%s> .
  ?g <%s> ?lang .
  ?g <%s> ?val .
}`, PredInView, v.IRI(), DimPredicate("lang"), PredAgg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != m.Data.NumGroups() {
		t.Errorf("queried %d groups, materialized %d", len(res.Rows), m.Data.NumGroups())
	}
}
