package views

import (
	"bytes"
	"reflect"
	"testing"

	"sofos/internal/engine"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// saveRestore round-trips a catalog through SaveState/RestoreCatalog over a
// snapshot-loaded copy of its base graph — exactly what checkpoint recovery
// does.
func saveRestore(t *testing.T, c *Catalog) *Catalog {
	t.Helper()
	var graphBuf, stateBuf bytes.Buffer
	if err := c.base.Save(&graphBuf); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveState(&stateBuf); err != nil {
		t.Fatal(err)
	}
	g, err := store.Load(&graphBuf)
	if err != nil {
		t.Fatal(err)
	}
	g.SetVersion(c.base.Version())
	restored, err := RestoreCatalog(g, c.facet, engine.Options{}, &stateBuf)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestCatalogStateRoundTrip(t *testing.T) {
	for _, agg := range []string{"SUM", "AVG", "MIN", "COUNT"} {
		t.Run(agg, func(t *testing.T) {
			g := popGraph(t, 3, 4, 3, 2)
			f := popFacet(t, agg)
			c := NewCatalog(g, f)
			full := f.View(f.FullMask())
			country, err := f.ViewByDims("country")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Materialize(full); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Materialize(country); err != nil {
				t.Fatal(err)
			}
			// One refresh so maintenance bookkeeping is non-trivial, then one
			// more update so a stale view crosses the checkpoint.
			ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
			obs := func(n string, pop int64) []rdf.Triple {
				return []rdf.Triple{
					{S: ex(n), P: ex("country"), O: rdf.NewLiteral("C0")},
					{S: ex(n), P: ex("lang"), O: rdf.NewLiteral("L1")},
					{S: ex(n), P: ex("year"), O: rdf.NewYear(2015)},
					{S: ex(n), P: ex("pop"), O: rdf.NewInteger(pop)},
				}
			}
			if _, err := c.ApplyUpdate(obs("st_a", 41), nil); err != nil {
				t.Fatal(err)
			}
			if _, err := c.RefreshAll(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.ApplyUpdate(obs("st_b", 7), nil); err != nil {
				t.Fatal(err)
			}

			restored := saveRestore(t, c)

			if got, want := restored.Generation(), c.Generation(); got != want {
				t.Fatalf("generation = %d, want %d", got, want)
			}
			if got, want := restored.ViewSetHash(), c.ViewSetHash(); got != want {
				t.Fatalf("view-set hash = %x, want %x", got, want)
			}
			wantMats := c.Materialized()
			gotMats := restored.Materialized()
			if len(gotMats) != len(wantMats) {
				t.Fatalf("restored %d views, want %d", len(gotMats), len(wantMats))
			}
			for i, want := range wantMats {
				got := gotMats[i]
				if got.Data.View.Mask != want.Data.View.Mask {
					t.Fatalf("view %d mask %v, want %v", i, got.Data.View.Mask, want.Data.View.Mask)
				}
				if !reflect.DeepEqual(got.Data.Groups, want.Data.Groups) {
					t.Fatalf("view %s groups differ after restore", want.Data.View)
				}
				if got.Triples != want.Triples || got.Nodes != want.Nodes || got.Bytes != want.Bytes {
					t.Fatalf("view %s stats: got (%d,%d,%d), want (%d,%d,%d)", want.Data.View,
						got.Triples, got.Nodes, got.Bytes, want.Triples, want.Nodes, want.Bytes)
				}
				if got.baseVersion != want.baseVersion {
					t.Fatalf("view %s baseVersion %d, want %d", want.Data.View, got.baseVersion, want.baseVersion)
				}
				if got.Maint.LastPath != want.Maint.LastPath || got.Maint.Mode != want.Maint.Mode {
					t.Fatalf("view %s maint: got %+v, want %+v", want.Data.View, got.Maint, want.Maint)
				}
				if restored.Stale(want.Data.View.Mask) != c.Stale(want.Data.View.Mask) {
					t.Fatalf("view %s staleness flipped across restore", want.Data.View)
				}
			}
			// The expanded graph G+ must be bit-identical: content-keyed blank
			// labels make the re-encoding deterministic.
			if !reflect.DeepEqual(restored.Expanded().SortedTriples(), c.Expanded().SortedTriples()) {
				t.Fatal("G+ differs after restore")
			}
		})
	}
}

// TestRestoredCatalogMaintains proves a restored catalog keeps working:
// updates apply, the delta log repopulates, and the incremental refresh path
// runs — the property recovery relies on when it replays WAL batches.
func TestRestoredCatalogMaintains(t *testing.T) {
	g := popGraph(t, 5, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	full := f.View(f.FullMask())
	if _, err := c.Materialize(full); err != nil {
		t.Fatal(err)
	}
	restored := saveRestore(t, c)
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	ins := []rdf.Triple{
		{S: ex("rm_a"), P: ex("country"), O: rdf.NewLiteral("C1")},
		{S: ex("rm_a"), P: ex("lang"), O: rdf.NewLiteral("L0")},
		{S: ex("rm_a"), P: ex("year"), O: rdf.NewYear(2016)},
		{S: ex("rm_a"), P: ex("pop"), O: rdf.NewInteger(13)},
	}
	if _, err := restored.ApplyUpdate(ins, nil); err != nil {
		t.Fatal(err)
	}
	mat, err := restored.Refresh(full)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Maint.LastPath != "incremental" {
		t.Fatalf("refresh path after restore = %q, want incremental", mat.Maint.LastPath)
	}
	// Cross-check against a full recompute.
	fresh, err := Compute(engine.New(restored.Base()), full)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(mat.Data, fresh) {
		t.Fatal("incrementally refreshed restored view diverges from recompute")
	}
}

// groupsEqual compares two view contents as key→(agg, N) maps (order-free).
func groupsEqual(a, b *Data) bool {
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	am := make(map[string]Group, len(a.Groups))
	for _, g := range a.Groups {
		am[binaryGroupKey(g.Key)] = g
	}
	for _, g := range b.Groups {
		o, ok := am[binaryGroupKey(g.Key)]
		if !ok || o.Agg != g.Agg || o.N != g.N {
			return false
		}
	}
	return true
}

// TestCatalogStateCorruption truncates and bit-flips a serialized state and
// asserts RestoreCatalog errors instead of panicking.
func TestCatalogStateCorruption(t *testing.T) {
	g := popGraph(t, 7, 3, 2, 2)
	f := popFacet(t, "AVG")
	c := NewCatalog(g, f)
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := RestoreCatalog(g.Clone(), f, engine.Options{}, bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d restored successfully", cut)
		}
	}
	for off := 0; off < len(raw); off += 11 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x20
		// Flips may still decode to a structurally valid state; the contract
		// is no panic and no silent crash, which the call itself verifies.
		_, _ = RestoreCatalog(g.Clone(), f, engine.Options{}, bytes.NewReader(mut))
	}
}
