package views

import (
	"fmt"
	"strings"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
)

// Group is one aggregated result of a view: the dimension-value key and the
// aggregate value. For AVG facets Sum and Count carry the exact roll-up
// state; for other aggregates they are zero.
type Group struct {
	Key        []algebra.Value // values of the view's kept dims, in view order
	Agg        algebra.Value   // the facet aggregate for this group
	Sum, Count float64         // AVG only: exact partial sums

	// N is the group's contribution count: the number of solutions of the
	// view's defining pattern that fall into this group (a hidden COUNT(*)
	// companion Compute evaluates alongside the facet aggregate). The
	// incremental maintenance path tracks it through insert and delete
	// deltas — a group dies exactly when N reaches zero, which no stored
	// aggregate alone can reveal under deletion.
	N int64
}

// RowsAlias is the hidden COUNT(*) companion column Compute appends to every
// view-defining query to populate Group.N.
const RowsAlias = "__rows"

// Data is the computed content of one view, independent of its RDF encoding.
type Data struct {
	View        facet.View
	Groups      []Group
	ComputeTime time.Duration
	Source      string // "base" or "rollup:<parent view id>"
}

// NumGroups is |Vi(G)|, the paper's "number of aggregated values" quantity.
func (d *Data) NumGroups() int { return len(d.Groups) }

// Compute evaluates the view's defining query on the engine's graph, with a
// hidden COUNT(*) companion column so every group carries its contribution
// count (see Group.N).
func Compute(eng *engine.Engine, v facet.View) (*Data, error) {
	start := time.Now()
	q := v.Query()
	q.Select = append(q.Select, sparql.SelectItem{Var: RowsAlias, Agg: sparql.AggCount})
	rowsCol := len(q.Select) - 1
	res, err := eng.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("views: computing %s: %w", v, err)
	}
	nd := len(v.Dims())
	d := &Data{View: v, Source: "base"}
	isAvg := v.Facet.Agg == sparql.AggAvg
	for _, row := range res.Rows {
		g := Group{Key: append([]algebra.Value(nil), row[:nd]...), Agg: row[nd]}
		if isAvg {
			// Columns nd+1, nd+2 are the SUM and COUNT companions added by
			// facet.View.Query for AVG facets.
			if row[nd+1].Bound {
				g.Sum, _ = algebra.NumericValue(row[nd+1].Term)
			}
			if row[nd+2].Bound {
				g.Count, _ = algebra.NumericValue(row[nd+2].Term)
			}
		}
		if row[rowsCol].Bound {
			if n, ok := algebra.NumericValue(row[rowsCol].Term); ok {
				g.N = int64(n)
			}
		}
		d.Groups = append(d.Groups, g)
	}
	d.ComputeTime = time.Since(start)
	return d, nil
}

// RollUp computes a coarser view from an already-computed finer one. The
// target must be covered by parent.View. This is exact for SUM, COUNT, MIN,
// MAX directly and for AVG via the carried (Sum, Count) pairs.
func RollUp(parent *Data, target facet.View) (*Data, error) {
	if !parent.View.Covers(target) {
		return nil, fmt.Errorf("views: %s does not cover %s", parent.View, target)
	}
	start := time.Now()
	parentDims := parent.View.Dims()
	targetDims := target.Dims()
	// Positions of target dims within the parent's key.
	proj := make([]int, len(targetDims))
	for i, d := range targetDims {
		proj[i] = -1
		for j, pd := range parentDims {
			if pd == d {
				proj[i] = j
				break
			}
		}
		if proj[i] < 0 {
			return nil, fmt.Errorf("views: dimension ?%s missing from parent %s", d, parent.View)
		}
	}
	agg := target.Facet.Agg
	type acc struct {
		key        []algebra.Value
		aggTerm    rdf.Term
		aggBound   bool
		sum, count float64
		rows       int64
		poisoned   bool
	}
	byKey := make(map[string]*acc)
	var order []string
	var kb strings.Builder
	for _, g := range parent.Groups {
		kb.Reset()
		key := make([]algebra.Value, len(proj))
		for i, j := range proj {
			key[i] = g.Key[j]
			kb.WriteString(key[i].String())
			kb.WriteByte('\x00')
		}
		ks := kb.String()
		a, ok := byKey[ks]
		if !ok {
			a = &acc{key: key}
			byKey[ks] = a
			order = append(order, ks)
		}
		a.rows += g.N
		if a.poisoned {
			continue
		}
		switch agg {
		case sparql.AggAvg:
			a.sum += g.Sum
			a.count += g.Count
		default:
			if !g.Agg.Bound {
				a.poisoned = true
				continue
			}
			if !a.aggBound {
				a.aggTerm = g.Agg.Term
				a.aggBound = true
				continue
			}
			merged, err := algebra.MergeAggregates(agg, a.aggTerm, g.Agg.Term)
			if err != nil {
				a.poisoned = true
				continue
			}
			a.aggTerm = merged
		}
	}
	out := &Data{View: target, Source: "rollup:" + parent.View.ID()}
	for _, ks := range order {
		a := byKey[ks]
		g := Group{Key: a.key, N: a.rows}
		switch {
		case a.poisoned:
			g.Agg = algebra.Unbound
		case agg == sparql.AggAvg:
			g.Sum, g.Count = a.sum, a.count
			if a.count > 0 {
				g.Agg = algebra.Bind(algebra.FormatFloat(a.sum / a.count))
			}
		case a.aggBound:
			g.Agg = algebra.Bind(a.aggTerm)
		}
		out.Groups = append(out.Groups, g)
	}
	out.ComputeTime = time.Since(start)
	return out, nil
}

// Stats summarizes a view's size in the three quantities the paper's cost
// models use, computed from the encoding the materializer would produce.
type Stats struct {
	Groups  int // |Vi(G)|: number of aggregated values
	Triples int // |G_Vi|: triples of the view's RDF encoding
	Nodes   int // |Ii ∪ Bi ∪ Li|: distinct nodes in the encoding
}

// ComputeStats derives encoding statistics from view data without touching
// a graph.
func ComputeStats(d *Data) Stats {
	isAvg := d.View.Facet.Agg == sparql.AggAvg
	st := Stats{Groups: len(d.Groups)}
	nodes := make(map[string]struct{})
	nodes["iri:"+d.View.IRI()] = struct{}{}
	for i, g := range d.Groups {
		// One blank node per group.
		nodes[fmt.Sprintf("b:%d", i)] = struct{}{}
		st.Triples++ // inView triple
		for _, kv := range g.Key {
			if kv.Bound {
				st.Triples++
				nodes[kv.String()] = struct{}{}
			}
		}
		if g.Agg.Bound {
			st.Triples++
			nodes[g.Agg.String()] = struct{}{}
		}
		if isAvg {
			st.Triples += 2
			nodes[algebra.FormatFloat(g.Sum).String()+"^s"] = struct{}{}
			nodes[algebra.FormatFloat(g.Count).String()+"^c"] = struct{}{}
		}
	}
	st.Nodes = len(nodes)
	return st
}
