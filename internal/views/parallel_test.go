package views

import (
	"fmt"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// latticeViews lists every view of the facet's lattice, finest first so the
// batch exercises the roll-up wave ordering.
func latticeViews(f *facet.Facet) []facet.View {
	var out []facet.View
	for m := int(f.FullMask()); m >= 0; m-- {
		out = append(out, f.View(facet.Mask(m)))
	}
	return out
}

// TestMaterializeAllMatchesSerial materializes the whole lattice via the
// parallel batch path and via serial Materialize calls, asserting identical
// view contents, G+ triples, and roll-up sourcing for the children.
func TestMaterializeAllMatchesSerial(t *testing.T) {
	g := popGraph(t, 3, 5, 4, 3)
	f := popFacet(t, "AVG") // AVG exercises the (Sum, Count) roll-up state
	vs := latticeViews(f)

	serial := NewCatalog(g.Clone(), f)
	for _, v := range vs {
		if _, err := serial.Materialize(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		par := NewCatalog(g.Clone(), f)
		mats, err := par.MaterializeAll(vs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(mats) != len(vs) {
			t.Fatalf("workers=%d: %d records for %d views", workers, len(mats), len(vs))
		}
		for i, v := range vs {
			want, _ := serial.Get(v.Mask)
			got := mats[i]
			if !reflect.DeepEqual(got.Data.Groups, want.Data.Groups) {
				t.Errorf("workers=%d: view %s groups differ from serial", workers, v)
			}
			if v.Mask != f.FullMask() && got.Data.Source == "base" {
				t.Errorf("workers=%d: view %s computed from base, expected roll-up", workers, v)
			}
		}
		if par.Expanded().Len() != serial.Expanded().Len() {
			t.Errorf("workers=%d: |G+| = %d, serial %d",
				workers, par.Expanded().Len(), serial.Expanded().Len())
		}
	}
}

// TestMaterializeAllDuplicatesAndExisting covers dedup and already-present
// views in one batch.
func TestMaterializeAllDuplicatesAndExisting(t *testing.T) {
	g := popGraph(t, 4, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	top := f.View(f.FullMask())
	if _, err := c.Materialize(top); err != nil {
		t.Fatal(err)
	}
	child := f.View(facet.MaskFromBits(0))
	mats, err := c.MaterializeAll([]facet.View{top, child, child, top}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 4 || mats[0] != mats[3] || mats[1] != mats[2] {
		t.Errorf("batch records not shared across duplicates")
	}
}

// TestCommitMaterializeAfterWriteMarksStale covers the plan/commit window:
// a base-graph write that lands between PlanMaterialize and
// CommitMaterialize must leave the just-committed views marked stale, since
// their contents were computed against the pre-write base. (Serving them as
// fresh would let the rewriter answer from pre-write data forever.)
func TestCommitMaterializeAfterWriteMarksStale(t *testing.T) {
	g := popGraph(t, 6, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(f.FullMask())
	plan, err := c.PlanMaterialize([]facet.View{v}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A write sneaks in between planning and commit.
	addObservation(t, c, "midwindow", "C77", "L0", 2017, 999)
	if _, err := c.CommitMaterialize(plan); err != nil {
		t.Fatal(err)
	}
	if !c.Stale(v.Mask) {
		t.Fatal("view committed from a pre-write plan is marked fresh")
	}
	// Refresh converges it to the post-write base.
	if _, err := c.Refresh(v); err != nil {
		t.Fatal(err)
	}
	if c.Stale(v.Mask) {
		t.Error("view still stale after refresh")
	}
	direct, err := Compute(c.BaseEngine(), v)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.Get(v.Mask)
	assertSameGroups(t, v, direct, m.Data)
}

// TestCommitMaterializeNoInterveningWriteIsFresh is the happy-path
// counterpart: with no write in the plan/commit window the views commit
// fresh.
func TestCommitMaterializeNoInterveningWriteIsFresh(t *testing.T) {
	g := popGraph(t, 7, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	v := f.View(f.FullMask())
	plan, err := c.PlanMaterialize([]facet.View{v}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CommitMaterialize(plan); err != nil {
		t.Fatal(err)
	}
	if c.Stale(v.Mask) {
		t.Error("view committed with no intervening write is marked stale")
	}
}

// TestMaterializeRollUpFromStaleAncestorIsStale: materializing a view by
// rolling up a stale ancestor yields stale-at-birth contents, and the record
// must say so.
func TestMaterializeRollUpFromStaleAncestorIsStale(t *testing.T) {
	g := popGraph(t, 8, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	top := f.View(f.FullMask())
	if _, err := c.Materialize(top); err != nil {
		t.Fatal(err)
	}
	addObservation(t, c, "staler", "C88", "L1", 2018, 111)
	if !c.Stale(top.Mask) {
		t.Fatal("ancestor not stale after base mutation")
	}
	child := f.View(facet.MaskFromBits(0))
	m, err := c.Materialize(child) // rolls up from the stale top view
	if err != nil {
		t.Fatal(err)
	}
	if m.Data.Source == "base" {
		t.Skip("child computed from base, roll-up path not exercised")
	}
	if !c.Stale(child.Mask) {
		t.Error("view rolled up from a stale ancestor is marked fresh")
	}
}

// TestMaterializeTieBreakConsistency: when two covering ancestors tie on
// NumGroups — one fresh, one stale — the roll-up source and the recorded
// baseVersion must come from the same ancestor (bestSource breaks ties by
// map iteration order, so resolving twice could mix them). The observable
// invariant: a view committed as fresh must hold exactly the from-scratch
// contents. Repeated across independent catalogs to exercise both orders.
func TestMaterializeTieBreakConsistency(t *testing.T) {
	f := popFacet(t, "SUM")
	a := f.View(facet.MaskFromBits(0, 1)) // country+lang
	b := f.View(facet.MaskFromBits(0, 2)) // country+year
	child := f.View(facet.MaskFromBits(0))
	for round := 0; round < 12; round++ {
		c := NewCatalog(store.NewGraph(), f)
		// Dense 2x2x2 grid: country+lang and country+year both have 4 groups.
		for ci := 0; ci < 2; ci++ {
			for li := 0; li < 2; li++ {
				for yi := 0; yi < 2; yi++ {
					addObservation(t, c, fmt.Sprintf("tie%d_%d_%d_%d", round, ci, li, yi),
						fmt.Sprintf("C%d", ci), fmt.Sprintf("L%d", li), 2015+yi, int64(10+ci+li+yi))
				}
			}
		}
		for _, v := range []facet.View{a, b} {
			if _, err := c.Materialize(v); err != nil {
				t.Fatal(err)
			}
		}
		// A write to an existing group stales both ancestors without changing
		// their group counts; refreshing only one leaves a fresh/stale pair
		// still tied on NumGroups.
		addObservation(t, c, fmt.Sprintf("tiefresh%d", round), "C0", "L0", 2015, 1000)
		if _, err := c.Refresh(a); err != nil {
			t.Fatal(err)
		}
		ma, _ := c.Get(a.Mask)
		mb, _ := c.Get(b.Mask)
		if c.Stale(a.Mask) || !c.Stale(b.Mask) || ma.Data.NumGroups() != mb.Data.NumGroups() {
			t.Fatalf("fixture broken: staleA=%v staleB=%v groups %d vs %d",
				c.Stale(a.Mask), c.Stale(b.Mask), ma.Data.NumGroups(), mb.Data.NumGroups())
		}
		plan, err := c.PlanMaterialize([]facet.View{child}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.CommitMaterialize(plan); err != nil {
			t.Fatal(err)
		}
		if !c.Stale(child.Mask) {
			// Committed as fresh: the contents must really be fresh.
			direct, err := Compute(c.BaseEngine(), child)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := c.Get(child.Mask)
			assertSameGroups(t, child, direct, m.Data)
		}
	}
}

// TestRefreshAllParallelMatchesSerial mutates the base, then refreshes the
// stale lattice with 1 and 4 workers against independent clones, asserting
// identical results.
func TestRefreshAllParallelMatchesSerial(t *testing.T) {
	f := popFacet(t, "SUM")
	build := func() *Catalog {
		c := NewCatalog(popGraph(t, 5, 4, 3, 2), f)
		if _, err := c.MaterializeAll(latticeViews(f), 2); err != nil {
			t.Fatal(err)
		}
		return c
	}
	mutate := func(c *Catalog) {
		ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
		for i := 0; i < 5; i++ {
			obs := ex(fmt.Sprintf("fresh%d", i))
			for _, tr := range []rdf.Triple{
				{S: obs, P: ex("country"), O: rdf.NewLiteral("C99")},
				{S: obs, P: ex("lang"), O: rdf.NewLiteral("L99")},
				{S: obs, P: ex("year"), O: rdf.NewYear(2030)},
				{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(100 + i))},
			} {
				if _, err := c.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	want := build()
	mutate(want)
	if n, err := want.RefreshAll(); err != nil || n == 0 {
		t.Fatalf("serial refresh: n=%d err=%v", n, err)
	}
	got := build()
	mutate(got)
	if n, err := got.RefreshAllParallel(4); err != nil || n == 0 {
		t.Fatalf("parallel refresh: n=%d err=%v", n, err)
	}
	if got.Expanded().Len() != want.Expanded().Len() {
		t.Errorf("parallel refresh |G+| = %d, serial %d", got.Expanded().Len(), want.Expanded().Len())
	}
	for _, v := range latticeViews(f) {
		gm, _ := got.Get(v.Mask)
		wm, _ := want.Get(v.Mask)
		if !reflect.DeepEqual(gm.Data.Groups, wm.Data.Groups) {
			t.Errorf("view %s groups differ after parallel refresh", v)
		}
	}
}
