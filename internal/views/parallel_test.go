package views

import (
	"fmt"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
)

// latticeViews lists every view of the facet's lattice, finest first so the
// batch exercises the roll-up wave ordering.
func latticeViews(f *facet.Facet) []facet.View {
	var out []facet.View
	for m := int(f.FullMask()); m >= 0; m-- {
		out = append(out, f.View(facet.Mask(m)))
	}
	return out
}

// TestMaterializeAllMatchesSerial materializes the whole lattice via the
// parallel batch path and via serial Materialize calls, asserting identical
// view contents, G+ triples, and roll-up sourcing for the children.
func TestMaterializeAllMatchesSerial(t *testing.T) {
	g := popGraph(t, 3, 5, 4, 3)
	f := popFacet(t, "AVG") // AVG exercises the (Sum, Count) roll-up state
	vs := latticeViews(f)

	serial := NewCatalog(g.Clone(), f)
	for _, v := range vs {
		if _, err := serial.Materialize(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		par := NewCatalog(g.Clone(), f)
		mats, err := par.MaterializeAll(vs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(mats) != len(vs) {
			t.Fatalf("workers=%d: %d records for %d views", workers, len(mats), len(vs))
		}
		for i, v := range vs {
			want, _ := serial.Get(v.Mask)
			got := mats[i]
			if !reflect.DeepEqual(got.Data.Groups, want.Data.Groups) {
				t.Errorf("workers=%d: view %s groups differ from serial", workers, v)
			}
			if v.Mask != f.FullMask() && got.Data.Source == "base" {
				t.Errorf("workers=%d: view %s computed from base, expected roll-up", workers, v)
			}
		}
		if par.Expanded().Len() != serial.Expanded().Len() {
			t.Errorf("workers=%d: |G+| = %d, serial %d",
				workers, par.Expanded().Len(), serial.Expanded().Len())
		}
	}
}

// TestMaterializeAllDuplicatesAndExisting covers dedup and already-present
// views in one batch.
func TestMaterializeAllDuplicatesAndExisting(t *testing.T) {
	g := popGraph(t, 4, 4, 3, 2)
	f := popFacet(t, "SUM")
	c := NewCatalog(g, f)
	top := f.View(f.FullMask())
	if _, err := c.Materialize(top); err != nil {
		t.Fatal(err)
	}
	child := f.View(facet.MaskFromBits(0))
	mats, err := c.MaterializeAll([]facet.View{top, child, child, top}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 4 || mats[0] != mats[3] || mats[1] != mats[2] {
		t.Errorf("batch records not shared across duplicates")
	}
}

// TestRefreshAllParallelMatchesSerial mutates the base, then refreshes the
// stale lattice with 1 and 4 workers against independent clones, asserting
// identical results.
func TestRefreshAllParallelMatchesSerial(t *testing.T) {
	f := popFacet(t, "SUM")
	build := func() *Catalog {
		c := NewCatalog(popGraph(t, 5, 4, 3, 2), f)
		if _, err := c.MaterializeAll(latticeViews(f), 2); err != nil {
			t.Fatal(err)
		}
		return c
	}
	mutate := func(c *Catalog) {
		ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
		for i := 0; i < 5; i++ {
			obs := ex(fmt.Sprintf("fresh%d", i))
			for _, tr := range []rdf.Triple{
				{S: obs, P: ex("country"), O: rdf.NewLiteral("C99")},
				{S: obs, P: ex("lang"), O: rdf.NewLiteral("L99")},
				{S: obs, P: ex("year"), O: rdf.NewYear(2030)},
				{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(100 + i))},
			} {
				if _, err := c.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	want := build()
	mutate(want)
	if n, err := want.RefreshAll(); err != nil || n == 0 {
		t.Fatalf("serial refresh: n=%d err=%v", n, err)
	}
	got := build()
	mutate(got)
	if n, err := got.RefreshAllParallel(4); err != nil || n == 0 {
		t.Fatalf("parallel refresh: n=%d err=%v", n, err)
	}
	if got.Expanded().Len() != want.Expanded().Len() {
		t.Errorf("parallel refresh |G+| = %d, serial %d", got.Expanded().Len(), want.Expanded().Len())
	}
	for _, v := range latticeViews(f) {
		gm, _ := got.Get(v.Mask)
		wm, _ := want.Get(v.Mask)
		if !reflect.DeepEqual(gm.Data.Groups, wm.Data.Groups) {
			t.Errorf("view %s groups differ after parallel refresh", v)
		}
	}
}
