package views

import (
	"fmt"
	"strings"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// Incremental delta maintenance: the O(|ΔG|) refresh path.
//
// A committed update batch's effective delta (store.Delta, captured by
// Graph.Apply) is retained in a per-catalog log. When a stale view refreshes,
// instead of re-evaluating its defining query over the whole base graph, the
// catalog evaluates the query *on the delta only* — the classic delta-join:
// every (delta triple, triple pattern) pair that unifies seeds the remaining
// pattern, substituted, against the graph, so the work is proportional to the
// data incident to ΔG, never to |G|. The gained and lost solutions become
// per-group deltas applied in place to the stored Data: COUNT/SUM adjust
// directly, AVG adjusts through its stored (Sum, Count) companions, MIN/MAX
// merge insert-side candidates and fall back to a full recompute exactly when
// a delete touches a group's stored extremum. Per-group contribution counts
// (Group.N) decide group births and deaths.
//
// Insert-side solutions are those of G_new that use at least one inserted
// triple, evaluated directly against the current base graph. Delete-side
// solutions are those of G_old that use at least one deleted triple; they are
// enumerated against the overlay G_new ∪ Δ⁻ (store.Graph.OverlayWith — shares
// the sorted runs, costs O(|Δ|)) and filtered to groundings that avoid Δ⁺,
// which is exactly membership in G_old = (G_new ∖ Δ⁺) ∪ Δ⁻.

// MaintenanceMode classifies how a facet's materialized views can be kept
// consistent under base-graph updates.
type MaintenanceMode int

const (
	// MaintainRecompute: the defining pattern or aggregate admits no delta
	// application (OPTIONAL/UNION/FILTER/VALUES patterns, unknown
	// aggregates); every refresh recomputes from the base graph.
	MaintainRecompute MaintenanceMode = iota
	// MaintainInserts: self-maintainable under insertion only (MIN/MAX).
	// Deletes still apply incrementally unless one touches a group's stored
	// extremum, which forces a full recompute of the view.
	MaintainInserts
	// MaintainBoth: self-maintainable under insertion and deletion —
	// COUNT, SUM, and AVG via the stored (Sum, Count) companions.
	MaintainBoth
)

// String renders the classification as /stats reports it.
func (m MaintenanceMode) String() string {
	switch m {
	case MaintainBoth:
		return "self-maintainable-both"
	case MaintainInserts:
		return "self-maintainable-insert"
	default:
		return "recompute-only"
	}
}

// maintenanceMode classifies a facet. The seeded delta evaluation
// substitutes bindings into a plain basic graph pattern; filters, optionals,
// unions and inline data would need substitution into expression trees and
// left-join deltas, so such facets stay on the recompute path. (Facet
// aggregates are never COUNT DISTINCT — the facet fragment has no distinct
// flag — so COUNT here is always the retractable plain count.)
func maintenanceMode(f *facet.Facet) MaintenanceMode {
	p := &f.Pattern
	if len(p.Optionals) > 0 || len(p.Unions) > 0 || len(p.Filters) > 0 || len(p.Values) > 0 {
		return MaintainRecompute
	}
	switch f.Agg {
	case sparql.AggCount, sparql.AggSum, sparql.AggAvg:
		return MaintainBoth
	case sparql.AggMin, sparql.AggMax:
		return MaintainInserts
	default:
		return MaintainRecompute
	}
}

// MaintenanceMode returns the catalog facet's maintainability classification.
func (c *Catalog) MaintenanceMode() MaintenanceMode { return c.maintMode }

// SetIncrementalMaintenance enables or disables the incremental refresh
// path (enabled by default). Disabling forces every refresh down the full
// recompute-and-diff path; benchmarks use it as the ablation baseline.
// Callers must not race it with refreshes.
func (c *Catalog) SetIncrementalMaintenance(enabled bool) { c.noIncremental = !enabled }

// binaryGroupKey renders a group key as canonical bytes: the map key the
// incremental path indexes Data.Groups by, and the input of the stable
// blank-node labels of the G+ encoding.
func binaryGroupKey(key []algebra.Value) string {
	var b strings.Builder
	for _, kv := range key {
		if !kv.Bound {
			b.WriteByte(0xfe)
			continue
		}
		b.WriteByte(byte(kv.Term.Kind))
		b.WriteString(kv.Term.Value)
		b.WriteByte(0)
		b.WriteString(kv.Term.Datatype)
		b.WriteByte(0)
		b.WriteString(kv.Term.Lang)
		b.WriteByte(0)
	}
	return b.String()
}

// --- delta log ---

// maxDeltaLogTriples caps the retained log. Beyond it the oldest segments
// are dropped and views older than the remaining window fall back to a full
// recompute — at that delta size the seeded joins stop being cheaper anyway.
const maxDeltaLogTriples = 1 << 16

// deltaLog retains the effective deltas of committed update batches, each
// tagged with the base-version interval it spans. Contiguous segments
// chained end to end reconstruct ΔG between any retained version and the
// present, which is exactly what a stale view needs to refresh by replay.
type deltaLog struct {
	segs    []store.Delta
	triples int
}

// record appends one committed batch. A gap in the version chain means a
// mutation bypassed delta capture (e.g. a direct base-graph write), so
// nothing older than the new batch can be replayed and the log restarts.
func (l *deltaLog) record(d store.Delta) {
	if d.FromVersion == d.ToVersion {
		return // nothing moved; no segment needed
	}
	if n := len(l.segs); n > 0 && l.segs[n-1].ToVersion != d.FromVersion {
		l.segs, l.triples = nil, 0
	}
	l.segs = append(l.segs, d)
	l.triples += d.Len()
}

// fork returns an independent copy of the log for a forked catalog. The
// segment slice is copied; the Delta values inside are immutable after
// record (refreshes only read them), so their triple slices are shared.
func (l *deltaLog) fork() deltaLog {
	return deltaLog{segs: append([]store.Delta(nil), l.segs...), triples: l.triples}
}

// prune drops segments no materialized view needs anymore (ToVersion ≤
// minVersion) and enforces the size cap from the oldest end.
func (l *deltaLog) prune(minVersion int64) {
	i := 0
	for i < len(l.segs) && l.segs[i].ToVersion <= minVersion {
		l.triples -= l.segs[i].Len()
		i++
	}
	for i < len(l.segs) && l.triples > maxDeltaLogTriples {
		l.triples -= l.segs[i].Len()
		i++
	}
	if i > 0 {
		l.segs = append([]store.Delta(nil), l.segs[i:]...)
	}
}

// since returns the net ΔG between base versions from and to, coalescing
// insert-then-delete (and delete-then-reinsert) pairs across batches, in
// first-touch order so replay is deterministic. ok is false when the log
// does not cover the interval — the caller then recomputes in full.
func (l *deltaLog) since(from, to int64) (ins, del []rdf.Triple, ok bool) {
	if from == to {
		return nil, nil, true
	}
	start := -1
	for i := range l.segs {
		if l.segs[i].FromVersion == from {
			start = i
			break
		}
	}
	if start < 0 || l.segs[len(l.segs)-1].ToVersion != to {
		return nil, nil, false
	}
	sign := make(map[rdf.Triple]int8)
	var order []rdf.Triple
	for _, s := range l.segs[start:] {
		for _, t := range s.Inserted {
			if v, seen := sign[t]; seen {
				if v == -1 {
					sign[t] = 0 // deleted earlier in the window: net unchanged
				} else {
					sign[t] = 1
				}
			} else {
				sign[t] = 1
				order = append(order, t)
			}
		}
		for _, t := range s.Deleted {
			if v, seen := sign[t]; seen {
				if v == 1 {
					sign[t] = 0 // inserted earlier in the window: net unchanged
				} else {
					sign[t] = -1
				}
			} else {
				sign[t] = -1
				order = append(order, t)
			}
		}
	}
	for _, t := range order {
		switch sign[t] {
		case 1:
			ins = append(ins, t)
		case -1:
			del = append(del, t)
		}
	}
	return ins, del, true
}

// --- delta-join evaluation ---

// deltaRow is one solution of the view's defining pattern gained or lost by
// the replayed delta, projected to what maintenance needs: the group key in
// view order, the measure value, and the grounded pattern triples (for the
// delete-side G_old membership filter). key is the canonical full variable
// binding the seeded enumeration dedupes on — one solution may be discovered
// from several delta seeds.
type deltaRow struct {
	key     string
	dims    []algebra.Value
	measure algebra.Value
	ground  []rdf.Triple
}

// unify matches a delta triple against one triple pattern, returning the
// variable bindings (consistent across repeated variables) or false.
func unify(tp sparql.TriplePattern, t rdf.Triple) (map[string]rdf.Term, bool) {
	theta := make(map[string]rdf.Term, 3)
	bind := func(pt sparql.PatternTerm, term rdf.Term) bool {
		if !pt.IsVar {
			return pt.Term == term
		}
		if prev, ok := theta[pt.Var]; ok {
			return prev == term
		}
		theta[pt.Var] = term
		return true
	}
	if !bind(tp.S, t.S) || !bind(tp.P, t.P) || !bind(tp.O, t.O) {
		return nil, false
	}
	return theta, true
}

// substitutePattern replaces bound variables with constants.
func substitutePattern(tp sparql.TriplePattern, theta map[string]rdf.Term) sparql.TriplePattern {
	sub := func(pt sparql.PatternTerm) sparql.PatternTerm {
		if pt.IsVar {
			if t, ok := theta[pt.Var]; ok {
				return sparql.Constant(t)
			}
		}
		return pt
	}
	return sparql.TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
}

// seedSolutions evaluates the pattern with the seed's bindings substituted:
// the remaining triple patterns run against eng's graph and each solution is
// returned as a full variable binding (theta plus the solved free variables).
func seedSolutions(eng *engine.Engine, pats []sparql.TriplePattern, seedIdx int, theta map[string]rdf.Term) ([]map[string]rdf.Term, error) {
	rest := make([]sparql.TriplePattern, 0, len(pats)-1)
	seen := make(map[string]bool)
	var free []string
	for j, tp := range pats {
		if j == seedIdx {
			continue
		}
		stp := substitutePattern(tp, theta)
		rest = append(rest, stp)
		for _, v := range stp.Vars() {
			if !seen[v] {
				seen[v] = true
				free = append(free, v)
			}
		}
	}
	if len(free) == 0 {
		// Fully ground remainder: the solution exists iff every grounded
		// pattern is present.
		for _, tp := range rest {
			if !eng.Graph().Contains(rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term}) {
				return nil, nil
			}
		}
		b := make(map[string]rdf.Term, len(theta))
		for k, v := range theta {
			b[k] = v
		}
		return []map[string]rdf.Term{b}, nil
	}
	q := &sparql.Query{Where: sparql.GroupPattern{Triples: rest}, Limit: -1}
	for _, v := range free {
		q.Select = append(q.Select, sparql.SelectItem{Var: v})
	}
	res, err := eng.Execute(q)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]rdf.Term, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]rdf.Term, len(theta)+len(free))
		for k, v := range theta {
			b[k] = v
		}
		complete := true
		for ci, v := range free {
			if !row[ci].Bound {
				complete = false // unreachable for BGPs; defensive
				break
			}
			b[v] = row[ci].Term
		}
		if complete {
			out = append(out, b)
		}
	}
	return out, nil
}

// bindingKey canonicalizes a full binding over the pattern's variables.
func bindingKey(vars []string, b map[string]rdf.Term) string {
	var sb strings.Builder
	for _, v := range vars {
		t := b[v]
		sb.WriteByte(byte(t.Kind))
		sb.WriteString(t.Value)
		sb.WriteByte(0)
		sb.WriteString(t.Datatype)
		sb.WriteByte(0)
		sb.WriteString(t.Lang)
		sb.WriteByte(0)
	}
	return sb.String()
}

// groundTriple instantiates one pattern under a full binding.
func groundTriple(tp sparql.TriplePattern, b map[string]rdf.Term) rdf.Triple {
	g := func(pt sparql.PatternTerm) rdf.Term {
		if pt.IsVar {
			return b[pt.Var]
		}
		return pt.Term
	}
	return rdf.Triple{S: g(tp.S), P: g(tp.P), O: g(tp.O)}
}

// deltaSolutions enumerates the solutions of the view's defining pattern
// that use at least one delta triple, deduplicated on the full binding: for
// every (delta triple, pattern) pair that unifies, the substituted remainder
// runs against eng's graph. Cost is proportional to the data incident to the
// delta, never to |G|.
func deltaSolutions(eng *engine.Engine, f *facet.Facet, dims []string, delta []rdf.Triple) ([]deltaRow, error) {
	pats := f.Pattern.Triples
	allVars := f.Pattern.Vars()
	dedup := make(map[string]bool)
	var out []deltaRow
	for _, dt := range delta {
		for i, tp := range pats {
			theta, ok := unify(tp, dt)
			if !ok {
				continue
			}
			sols, err := seedSolutions(eng, pats, i, theta)
			if err != nil {
				return nil, err
			}
			for _, b := range sols {
				key := bindingKey(allVars, b)
				if dedup[key] {
					continue
				}
				dedup[key] = true
				r := deltaRow{key: key}
				for _, d := range dims {
					r.dims = append(r.dims, algebra.Bind(b[d]))
				}
				if f.Measure != "" {
					if t, ok := b[f.Measure]; ok {
						r.measure = algebra.Bind(t)
					}
				}
				for _, p := range pats {
					r.ground = append(r.ground, groundTriple(p, b))
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// --- group delta application ---

// groupDelta accumulates one group's gained and lost measure values.
type groupDelta struct {
	key        []algebra.Value
	ins, del   []algebra.Value
	insN, delN int
}

// encodingDiff is the exact G+ mutation an incremental refresh commits.
type encodingDiff struct {
	add, remove []rdf.Triple
}

// applyDelta folds one group's delta into its stored aggregate state,
// reporting false when exact application is impossible (poisoned group,
// non-numeric measure, MIN/MAX extremum deletion, ambiguous MIN/MAX tie) —
// the caller then falls back to a full recompute of the view. The
// arithmetic goes through the algebra retraction entry points so the two
// layers cannot drift: COUNT merges through algebra.MergeDelta, SUM seeds a
// Retractor accumulator with the stored total and Adds/Unadds the delta
// values, and AVG adjusts its stored (Sum, Count) companions — the exact
// case MergeDelta's contract delegates to the companions.
func applyDelta(agg sparql.AggKind, g Group, d *groupDelta, existing bool) (Group, bool) {
	g.N += int64(d.insN - d.delN)
	num := func(v algebra.Value) (float64, bool) {
		if !v.Bound {
			return 0, false
		}
		return algebra.NumericValue(v.Term)
	}
	switch agg {
	case sparql.AggCount:
		cur := rdf.NewInteger(0)
		if g.Agg.Bound {
			cur = g.Agg.Term
		} else if existing {
			return g, false // COUNT results are always bound; state is inconsistent
		}
		// Counts are integral, so MergeDelta's FormatFloat output is exactly
		// the accumulator's NewInteger rendering.
		cur, err := algebra.MergeDelta(agg, cur, rdf.NewInteger(int64(d.insN)), false)
		if err != nil {
			return g, false
		}
		cur, err = algebra.MergeDelta(agg, cur, rdf.NewInteger(int64(d.delN)), true)
		if err != nil {
			return g, false
		}
		if f, ok := algebra.NumericValue(cur); !ok || f < 0 {
			return g, false
		}
		g.Agg = algebra.Bind(cur)
	case sparql.AggSum:
		if existing && !g.Agg.Bound {
			return g, false // poisoned by a non-numeric measure: not maintainable
		}
		// Seed a retractable accumulator with the stored total, then replay
		// the delta: adds for gained rows, retractions for lost ones. A
		// non-numeric value poisons the accumulator (unbound result), which
		// reports as non-maintainable below.
		acc := algebra.NewAccumulator(sparql.SelectItem{Var: facet.AggAlias, Agg: agg, AggVar: "v"}).(algebra.Retractor)
		if g.Agg.Bound {
			acc.Add(g.Agg)
		}
		for _, v := range d.ins {
			acc.Add(v)
		}
		for _, v := range d.del {
			acc.Unadd(v)
		}
		res := acc.Result()
		if !res.Bound {
			return g, false
		}
		g.Agg = res
	case sparql.AggAvg:
		if existing && !g.Agg.Bound {
			return g, false // poisoned (live BGP groups always have Count > 0)
		}
		sum, cnt := g.Sum, g.Count
		for _, v := range d.ins {
			f, ok := num(v)
			if !ok {
				return g, false
			}
			sum += f
			cnt++
		}
		for _, v := range d.del {
			f, ok := num(v)
			if !ok {
				return g, false
			}
			sum -= f
			cnt--
		}
		if cnt < 0 {
			return g, false
		}
		g.Sum, g.Count = sum, cnt
		if cnt > 0 {
			g.Agg = algebra.Bind(algebra.FormatFloat(sum / cnt))
		} else {
			g.Agg = algebra.Unbound
		}
	case sparql.AggMin, sparql.AggMax:
		min := agg == sparql.AggMin
		best := g.Agg
		for _, dv := range d.del {
			if !best.Bound || !dv.Bound {
				return g, false
			}
			cmp := algebra.AggCompare(dv.Term, best.Term)
			// A deleted value at or beyond the stored extremum may *be* the
			// extremum occurrence: only the group's full multiset can tell.
			if (min && cmp <= 0) || (!min && cmp >= 0) {
				return g, false
			}
		}
		for _, iv := range d.ins {
			if !iv.Bound {
				continue // mirror minMaxAcc: unbound inputs are ignored
			}
			if !best.Bound {
				best = iv
				continue
			}
			cmp := algebra.AggCompare(iv.Term, best.Term)
			if cmp == 0 && iv.Term != best.Term {
				// Distinct terms tying under AggCompare: which one a full
				// recompute keeps depends on scan order, so stay bit-exact by
				// recomputing.
				return g, false
			}
			if (min && cmp < 0) || (!min && cmp > 0) {
				best = iv
			}
		}
		g.Agg = best
	default:
		return g, false
	}
	return g, true
}

// applyGroupDeltas applies the gained and lost solutions to a copy of the
// stored view contents: births, in-place updates, and deaths, plus the exact
// G+ encoding diff (content-keyed blank labels keep untouched groups'
// triples in place). ok is false when any group needs a full recompute.
func applyGroupDeltas(v facet.View, mat *Materialized, insRows, delRows []deltaRow) (*Data, *encodingDiff, bool, error) {
	old := mat.Data
	agg := v.Facet.Agg
	deltas := make(map[string]*groupDelta)
	var order []string
	collect := func(rows []deltaRow, insert bool) {
		for _, r := range rows {
			k := binaryGroupKey(r.dims)
			d, ok := deltas[k]
			if !ok {
				d = &groupDelta{key: r.dims}
				deltas[k] = d
				order = append(order, k)
			}
			if insert {
				d.ins = append(d.ins, r.measure)
				d.insN++
			} else {
				d.del = append(d.del, r.measure)
				d.delN++
			}
		}
	}
	collect(insRows, true)
	collect(delRows, false)

	// The record's cached binary-key index (built once per record, not per
	// refresh) locates each delta's group.
	idx := mat.groupIndex()
	newGroups := append([]Group(nil), old.Groups...)
	dead := make(map[int]bool)
	encChanged := make(map[int]bool)
	var born []Group
	for _, k := range order {
		d := deltas[k]
		i, exists := idx[k]
		if !exists {
			if d.delN > 0 {
				return nil, nil, false, nil // deleting from an unknown group: state and log disagree
			}
			g, ok := applyDelta(agg, Group{Key: d.key}, d, false)
			if !ok {
				return nil, nil, false, nil
			}
			if g.N > 0 {
				born = append(born, g)
			}
			continue
		}
		g, ok := applyDelta(agg, newGroups[i], d, true)
		if !ok || g.N < 0 {
			return nil, nil, false, nil
		}
		if g.N == 0 {
			dead[i] = true
			continue
		}
		prev := newGroups[i]
		if g.Agg != prev.Agg || g.Sum != prev.Sum || g.Count != prev.Count {
			encChanged[i] = true
		}
		newGroups[i] = g
	}

	// Render the exact encoding diff: only changed, dead, and born groups.
	enc := newGroupEncoder(v)
	diff := &encodingDiff{}
	for i := range newGroups {
		switch {
		case dead[i]:
			ts, err := enc.encode(old.Groups[i])
			if err != nil {
				return nil, nil, false, err
			}
			diff.remove = append(diff.remove, ts...)
		case encChanged[i]:
			oldTs, err := enc.encode(old.Groups[i])
			if err != nil {
				return nil, nil, false, err
			}
			newTs, err := enc.encode(newGroups[i])
			if err != nil {
				return nil, nil, false, err
			}
			oldSet := make(map[rdf.Triple]bool, len(oldTs))
			for _, t := range oldTs {
				oldSet[t] = true
			}
			for _, t := range newTs {
				if oldSet[t] {
					delete(oldSet, t)
				} else {
					diff.add = append(diff.add, t)
				}
			}
			for _, t := range oldTs {
				if oldSet[t] {
					diff.remove = append(diff.remove, t)
				}
			}
		}
	}
	for _, g := range born {
		ts, err := enc.encode(g)
		if err != nil {
			return nil, nil, false, err
		}
		diff.add = append(diff.add, ts...)
	}

	final := make([]Group, 0, len(newGroups)-len(dead)+len(born))
	for i, g := range newGroups {
		if !dead[i] {
			final = append(final, g)
		}
	}
	final = append(final, born...)
	return &Data{View: v, Groups: final, Source: "incremental"}, diff, true, nil
}

// --- plan / commit ---

// incrementalPlan is one view's planned delta application, produced on the
// read path (PlanRefresh) and committed under the writer.
type incrementalPlan struct {
	oldMat    *Materialized // the record the deltas were computed against
	data      *Data         // refreshed contents
	diff      *encodingDiff // exact G+ mutation
	deltaSize int           // |ΔG| replayed
	toVersion int64         // base version the contents reflect
}

// planIncremental attempts the delta-application path for one stale view.
// It returns nil (with no error) when the view is ineligible — recompute-only
// facet, incremental maintenance disabled, the delta log does not cover the
// view's staleness window — or when application hit a fallback condition
// (MIN/MAX extremum delete, poisoned group, non-numeric measure). The caller
// then recomputes in full. Read-only: callers must not run catalog mutations
// concurrently.
func (c *Catalog) planIncremental(v facet.View, mat *Materialized, eng *engine.Engine) (*incrementalPlan, error) {
	if c.noIncremental || c.maintMode == MaintainRecompute || mat == nil {
		return nil, nil
	}
	to := c.base.Version()
	ins, del, ok := c.log.since(mat.baseVersion, to)
	if !ok {
		return nil, nil
	}
	dims := v.Dims()
	insRows, err := deltaSolutions(eng, c.facet, dims, ins)
	if err != nil {
		return nil, fmt.Errorf("views: delta-evaluating %s (inserts): %w", v, err)
	}
	var delRows []deltaRow
	if len(del) > 0 {
		// Delete-side solutions held in G_old: enumerate over G ∪ Δ⁻ and keep
		// groundings that avoid Δ⁺. Seeded joins are selective, so the overlay
		// engine runs serially.
		overlay := c.base.OverlayWith(del)
		oeng := engine.NewWithOptions(overlay, engine.Options{Workers: 1, NaiveOrder: c.engOpts.NaiveOrder})
		delRows, err = deltaSolutions(oeng, c.facet, dims, del)
		if err != nil {
			return nil, fmt.Errorf("views: delta-evaluating %s (deletes): %w", v, err)
		}
		if len(ins) > 0 {
			insSet := make(map[rdf.Triple]bool, len(ins))
			for _, t := range ins {
				insSet[t] = true
			}
			kept := delRows[:0]
			for _, r := range delRows {
				usesIns := false
				for _, gt := range r.ground {
					if insSet[gt] {
						usesIns = true
						break
					}
				}
				if !usesIns {
					kept = append(kept, r)
				}
			}
			delRows = kept
		}
	}
	data, diff, ok, err := applyGroupDeltas(v, mat, insRows, delRows)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &incrementalPlan{
		oldMat:    mat,
		data:      data,
		diff:      diff,
		deltaSize: len(ins) + len(del),
		toVersion: to,
	}, nil
}

// commitIncremental applies a planned delta refresh to G+ and swaps the new
// record in. It reports false (committing nothing) when the view's record
// changed since planning — the view stays stale and the next refresh cycle
// picks it up — so a stale plan can never clobber newer state.
func (c *Catalog) commitIncremental(v facet.View, p *incrementalPlan, start time.Time) (*Materialized, bool, error) {
	mat, ok := c.mats[v.Mask]
	if !ok || mat != p.oldMat {
		return nil, false, nil
	}
	// Small diffs go through the graph's delta overlay (Apply), not the
	// bulk-merge LoadTriples path: the whole point is to avoid O(|G+|) work.
	if _, err := c.expanded.Apply(p.diff.add, p.diff.remove); err != nil {
		return nil, false, fmt.Errorf("views: applying incremental refresh of %s: %w", v, err)
	}
	bytes := mat.Bytes
	for _, t := range p.diff.add {
		bytes += tripleBytes(t)
	}
	for _, t := range p.diff.remove {
		bytes -= tripleBytes(t)
	}
	st := ComputeStats(p.data)
	p.data.ComputeTime = time.Since(start)
	updated := &Materialized{
		Data:    p.data,
		Triples: mat.Triples + len(p.diff.add) - len(p.diff.remove),
		Nodes:   st.Nodes,
		Bytes:   bytes,
		Elapsed: time.Since(start),
		Maint: Maintenance{
			Mode:      c.maintMode.String(),
			LastPath:  "incremental",
			LastCost:  time.Since(start),
			DeltaSize: p.deltaSize,
		},
		baseVersion: p.toVersion,
	}
	c.mats[v.Mask] = updated
	c.bump()
	return updated, true, nil
}
