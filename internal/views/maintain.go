package views

import (
	"fmt"
	"time"

	"sofos/internal/facet"
	"sofos/internal/rdf"
)

// Maintenance: materialized views become stale when the base graph changes.
// The catalog tracks the base graph's version at materialization time and
// supports refresh — recomputing a view and applying the minimal diff of its
// encoding to G+. This implements the "view maintenance" extension that
// MARVEL and the SOFOS demo leave as an offline rebuild, done here without
// rebuilding G+ from scratch.

// Insert adds a triple to the base graph and mirrors it into G+ so the two
// stay consistent; materialized views become stale (see Stale).
func (c *Catalog) Insert(t rdf.Triple) (bool, error) {
	added, err := c.base.Add(t)
	if err != nil {
		return false, fmt.Errorf("views: inserting into base: %w", err)
	}
	if added {
		if _, err := c.expanded.Add(t); err != nil {
			return false, fmt.Errorf("views: mirroring insert into G+: %w", err)
		}
		c.bump()
	}
	return added, nil
}

// Delete removes a triple from the base graph and from G+.
func (c *Catalog) Delete(t rdf.Triple) bool {
	removed := c.base.Remove(t)
	if removed {
		c.expanded.Remove(t)
		c.bump()
	}
	return removed
}

// Stale reports whether a materialized view was computed against an older
// version of the base graph.
func (c *Catalog) Stale(m facet.Mask) bool {
	mat, ok := c.mats[m]
	if !ok {
		return false
	}
	return mat.baseVersion != c.base.Version()
}

// StaleViews lists the currently stale materialized views.
func (c *Catalog) StaleViews() []facet.View {
	var out []facet.View
	for _, mat := range c.Materialized() {
		if c.Stale(mat.View().Mask) {
			out = append(out, mat.View())
		}
	}
	return out
}

// Refresh recomputes a stale view from the current base graph and applies
// the encoding diff to G+: removed groups' triples are deleted, new ones
// added, unchanged ones left in place. Refreshing a fresh view is a no-op.
func (c *Catalog) Refresh(v facet.View) (*Materialized, error) {
	mat, ok := c.mats[v.Mask]
	if !ok {
		return nil, fmt.Errorf("views: view %s is not materialized", v)
	}
	if !c.Stale(v.Mask) {
		return mat, nil
	}
	start := time.Now()
	baseVersion := c.base.Version()
	fresh, err := Compute(c.baseEng, v)
	if err != nil {
		return nil, fmt.Errorf("views: recomputing %s: %w", v, err)
	}
	return c.applyRefresh(v, fresh, start, baseVersion)
}

// applyRefresh swaps freshly computed view contents in for the current
// materialization, applying the encoding diff to G+. The compute phase is
// separated out so PlanRefresh/CommitRefresh can recompute many views
// concurrently (or off the write path entirely) and serialize only this
// mutation step. baseVersion is the base graph's version the fresh contents
// were computed against; recording it (rather than the commit-time version)
// keeps a view correctly marked stale when the base advanced mid-refresh.
func (c *Catalog) applyRefresh(v facet.View, fresh *Data, start time.Time, baseVersion int64) (*Materialized, error) {
	mat, ok := c.mats[v.Mask]
	if !ok {
		return nil, fmt.Errorf("views: view %s is not materialized", v)
	}
	oldTriples, err := Encode(mat.Data)
	if err != nil {
		return nil, err
	}
	newTriples, err := Encode(fresh)
	if err != nil {
		return nil, err
	}
	// Diff by triple value. Group blank-node labels are positional, so a
	// shifted group would produce spurious churn; the diff still yields a
	// correct G+ because both sides are applied as sets.
	oldSet := make(map[rdf.Triple]struct{}, len(oldTriples))
	for _, t := range oldTriples {
		oldSet[t] = struct{}{}
	}
	var toAdd []rdf.Triple
	var bytes int64
	for _, t := range newTriples {
		if _, ok := oldSet[t]; ok {
			delete(oldSet, t) // kept in place; whatever remains is removed
		} else {
			toAdd = append(toAdd, t)
		}
		bytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + 12)
	}
	// Apply the diff to G+ as two batches so the sorted runs merge once per
	// direction instead of once per triple.
	if _, err := c.expanded.LoadTriples(toAdd); err != nil {
		return nil, fmt.Errorf("views: refreshing %s: %w", v, err)
	}
	toRemove := make([]rdf.Triple, 0, len(oldSet))
	for t := range oldSet {
		toRemove = append(toRemove, t)
	}
	if len(toRemove) > 0 {
		c.expanded.RemoveTriples(toRemove)
		// Merge the tombstones out so subsequent scans pay no delta filter
		// (same reasoning as Catalog.Drop).
		c.expanded.Compact()
	}
	st := ComputeStats(fresh)
	updated := &Materialized{
		Data:        fresh,
		Triples:     len(newTriples),
		Nodes:       st.Nodes,
		Bytes:       bytes,
		Elapsed:     time.Since(start),
		baseVersion: baseVersion,
	}
	c.mats[v.Mask] = updated
	c.bump()
	return updated, nil
}

// RefreshAll refreshes every stale view serially, returning how many were
// refreshed. See RefreshAllParallel for the multi-worker variant.
func (c *Catalog) RefreshAll() (int, error) { return c.RefreshAllParallel(1) }
