package views

import (
	"fmt"
	"time"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// Maintenance: materialized views become stale when the base graph changes.
// The catalog tracks the base graph's version at materialization time,
// retains the effective delta of every committed update batch (the delta
// log of incremental.go), and refreshes stale views either by replaying the
// missed deltas in O(|ΔG|) — the self-maintainable path — or by recomputing
// from the base graph and applying the minimal encoding diff to G+.

// ApplyUpdate commits one batched update — inserts first, then deletes —
// through the catalog: the base graph and G+ stay consistent, materialized
// views turn stale, and the batch's effective delta ΔG is captured into the
// maintenance log so the next refresh can apply it without a full scan.
// Inserts are validated up front; an error means nothing was applied.
func (c *Catalog) ApplyUpdate(inserts, deletes []rdf.Triple) (store.Delta, error) {
	d, err := c.base.Apply(inserts, deletes)
	if err != nil {
		return store.Delta{}, fmt.Errorf("views: applying update to base: %w", err)
	}
	if d.FromVersion == d.ToVersion {
		return d, nil // true no-op: nothing moved, views stay fresh
	}
	// An empty delta whose version interval moved (a batch that inserted and
	// deleted the same triples) still gets recorded: the log chain stays
	// contiguous, and the next refresh replays it for free.
	if _, err := c.expanded.Apply(d.Inserted, d.Deleted); err != nil {
		return d, fmt.Errorf("views: mirroring update into G+: %w", err)
	}
	c.log.record(d)
	c.log.prune(c.minBaseVersion())
	if !d.Empty() {
		c.bump()
	}
	return d, nil
}

// minBaseVersion is the oldest base version any materialized view still
// reflects — deltas at or before it can never be replayed again.
func (c *Catalog) minBaseVersion() int64 {
	min := c.base.Version()
	for _, m := range c.mats {
		if m.baseVersion < min {
			min = m.baseVersion
		}
	}
	return min
}

// Insert adds a triple to the base graph and mirrors it into G+ so the two
// stay consistent; materialized views become stale (see Stale) and the
// insertion joins the maintenance delta log.
func (c *Catalog) Insert(t rdf.Triple) (bool, error) {
	d, err := c.ApplyUpdate([]rdf.Triple{t}, nil)
	if err != nil {
		return false, err
	}
	return len(d.Inserted) == 1, nil
}

// Delete removes a triple from the base graph and from G+.
func (c *Catalog) Delete(t rdf.Triple) bool {
	d, err := c.ApplyUpdate(nil, []rdf.Triple{t})
	return err == nil && len(d.Deleted) == 1
}

// staleState memoizes the stale-view scan for one catalog state, keyed on
// (generation, base version): /stats and refresh planning no longer rescan
// every materialized view — each scan re-reading the base version under its
// lock — on every call.
type staleState struct {
	generation  int64
	baseVersion int64
	views       []facet.View
	masks       map[facet.Mask]bool
}

// staleNow returns the memoized stale set, rebuilding it only after the
// catalog state moved. Concurrent readers may rebuild redundantly; they
// store identical values. Callers must not mutate the returned state.
func (c *Catalog) staleNow() *staleState {
	gen, bv := c.generation.Load(), c.base.Version()
	if s := c.staleMemo.Load(); s != nil && s.generation == gen && s.baseVersion == bv {
		return s
	}
	s := &staleState{generation: gen, baseVersion: bv, masks: make(map[facet.Mask]bool)}
	for _, mat := range c.Materialized() {
		if mat.baseVersion != bv {
			s.views = append(s.views, mat.View())
			s.masks[mat.View().Mask] = true
		}
	}
	c.staleMemo.Store(s)
	return s
}

// Stale reports whether a materialized view was computed against an older
// version of the base graph.
func (c *Catalog) Stale(m facet.Mask) bool {
	return c.staleNow().masks[m]
}

// StaleViews lists the currently stale materialized views. The returned
// slice is shared with the memo; callers must not mutate it.
func (c *Catalog) StaleViews() []facet.View {
	return c.staleNow().views
}

// Refresh brings a stale view up to date. When the facet is
// self-maintainable and the delta log covers the view's staleness window, it
// replays the missed ΔG directly onto the stored groups (O(|ΔG|)); otherwise
// it recomputes from the current base graph and applies the encoding diff to
// G+. Refreshing a fresh view is a no-op. The path taken is recorded in the
// record's Maint field.
func (c *Catalog) Refresh(v facet.View) (*Materialized, error) {
	mat, ok := c.mats[v.Mask]
	if !ok {
		return nil, fmt.Errorf("views: view %s is not materialized", v)
	}
	if !c.Stale(v.Mask) {
		return mat, nil
	}
	start := time.Now()
	inc, err := c.planIncremental(v, mat, c.baseEng)
	if err != nil {
		return nil, err
	}
	if inc != nil {
		if m, ok, err := c.commitIncremental(v, inc, start); err != nil {
			return nil, err
		} else if ok {
			return m, nil
		}
	}
	baseVersion := c.base.Version()
	fresh, err := Compute(c.baseEng, v)
	if err != nil {
		return nil, fmt.Errorf("views: recomputing %s: %w", v, err)
	}
	return c.applyRefresh(v, fresh, start, baseVersion)
}

// applyRefresh swaps freshly computed view contents in for the current
// materialization, applying the encoding diff to G+ — the full-recompute
// refresh path. The compute phase is separated out so
// PlanRefresh/CommitRefresh can recompute many views concurrently (or off
// the write path entirely) and serialize only this mutation step.
// baseVersion is the base graph's version the fresh contents were computed
// against; recording it (rather than the commit-time version) keeps a view
// correctly marked stale when the base advanced mid-refresh.
func (c *Catalog) applyRefresh(v facet.View, fresh *Data, start time.Time, baseVersion int64) (*Materialized, error) {
	mat, ok := c.mats[v.Mask]
	if !ok {
		return nil, fmt.Errorf("views: view %s is not materialized", v)
	}
	oldTriples, err := Encode(mat.Data)
	if err != nil {
		return nil, err
	}
	newTriples, err := Encode(fresh)
	if err != nil {
		return nil, err
	}
	// Diff by triple value: group blank labels are content-keyed, so only
	// groups whose key or value actually changed contribute to the diff.
	oldSet := make(map[rdf.Triple]struct{}, len(oldTriples))
	for _, t := range oldTriples {
		oldSet[t] = struct{}{}
	}
	var toAdd []rdf.Triple
	var bytes int64
	for _, t := range newTriples {
		if _, ok := oldSet[t]; ok {
			delete(oldSet, t) // kept in place; whatever remains is removed
		} else {
			toAdd = append(toAdd, t)
		}
		bytes += tripleBytes(t)
	}
	// Apply the diff to G+ as two batches so the sorted runs merge once per
	// direction instead of once per triple.
	if _, err := c.expanded.LoadTriples(toAdd); err != nil {
		return nil, fmt.Errorf("views: refreshing %s: %w", v, err)
	}
	toRemove := make([]rdf.Triple, 0, len(oldSet))
	for t := range oldSet {
		toRemove = append(toRemove, t)
	}
	if len(toRemove) > 0 {
		c.expanded.RemoveTriples(toRemove)
		// Merge the tombstones out so subsequent scans pay no delta filter
		// (same reasoning as Catalog.Drop).
		c.expanded.Compact()
	}
	st := ComputeStats(fresh)
	updated := &Materialized{
		Data:    fresh,
		Triples: len(newTriples),
		Nodes:   st.Nodes,
		Bytes:   bytes,
		Elapsed: time.Since(start),
		Maint: Maintenance{
			Mode:     c.maintMode.String(),
			LastPath: "full",
			LastCost: time.Since(start),
		},
		baseVersion: baseVersion,
	}
	c.mats[v.Mask] = updated
	c.bump()
	return updated, nil
}

// RefreshAll refreshes every stale view serially, returning how many were
// refreshed. See RefreshAllParallel for the multi-worker variant.
func (c *Catalog) RefreshAll() (int, error) { return c.RefreshAllParallel(1) }
