package sparql

import (
	"strings"
	"testing"

	"sofos/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`SELECT ?s ?o WHERE { ?s <http://p> ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 || q.Select[0].Var != "s" || q.Select[1].Var != "o" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Where.Triples) != 1 {
		t.Fatalf("Triples = %v", q.Where.Triples)
	}
	tp := q.Where.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "s" || tp.P.IsVar || tp.P.Term.Value != "http://p" || !tp.O.IsVar {
		t.Errorf("triple = %v", tp)
	}
	if q.Limit != -1 || q.Offset != 0 || q.Distinct {
		t.Errorf("modifiers wrong: %+v", q)
	}
}

func TestParseAnalyticalQuery(t *testing.T) {
	src := `PREFIX ex: <http://ex.org/>
SELECT ?country (SUM(?pop) AS ?total) WHERE {
  ?c ex:name ?country .
  ?c ex:population ?pop .
  ?c ex:language ?lang .
  FILTER (?lang = "French")
} GROUP BY ?country ORDER BY DESC(?total) LIMIT 10`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("Select = %v", q.Select)
	}
	agg := q.Select[1]
	if agg.Agg != AggSum || agg.AggVar != "pop" || agg.Var != "total" {
		t.Errorf("aggregate item = %+v", agg)
	}
	if len(q.Where.Triples) != 3 || len(q.Where.Filters) != 1 {
		t.Errorf("pattern = %+v", q.Where)
	}
	if q.Where.Triples[0].P.Term.Value != "http://ex.org/name" {
		t.Errorf("prefix expansion = %v", q.Where.Triples[0].P)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "country" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "total" {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("Limit = %d", q.Limit)
	}
	if !q.HasAggregates() || len(q.Aggregates()) != 1 {
		t.Error("aggregate helpers wrong")
	}
}

func TestParseAllAggregates(t *testing.T) {
	for _, agg := range []string{"SUM", "AVG", "COUNT", "MAX", "MIN"} {
		src := `SELECT ?x (` + agg + `(?u) AS ?a) WHERE { ?x <http://p> ?u . } GROUP BY ?x`
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse %s: %v", agg, err)
		}
		want, _ := ParseAggKind(agg)
		if q.Select[1].Agg != want {
			t.Errorf("agg = %v, want %v", q.Select[1].Agg, want)
		}
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	q, err := Parse(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Select[0].Agg != AggCount || q.Select[0].AggVar != "" {
		t.Errorf("COUNT(*) = %+v", q.Select[0])
	}
	q, err = Parse(`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Select[0].AggDistinct || q.Select[0].AggVar != "s" {
		t.Errorf("COUNT(DISTINCT ?s) = %+v", q.Select[0])
	}
	if _, err := Parse(`SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o . }`); err == nil {
		t.Error("SUM(*) accepted")
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 3 {
		t.Errorf("SELECT * expanded to %v", q.Select)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q, err := Parse(`PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:p ?a, ?b ; ex:q ?c ; a ex:T . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where.Triples) != 4 {
		t.Fatalf("triples = %v", q.Where.Triples)
	}
	if q.Where.Triples[3].P.Term.Value != rdf.RDFType {
		t.Errorf("`a` predicate = %v", q.Where.Triples[3].P)
	}
}

func TestParseOptional(t *testing.T) {
	q, err := Parse(`SELECT ?s ?l WHERE {
  ?s <http://p> ?o .
  OPTIONAL { ?s <http://label> ?l . }
}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where.Optionals) != 1 || len(q.Where.Optionals[0].Triples) != 1 {
		t.Errorf("optionals = %+v", q.Where.Optionals)
	}
	// Nested OPTIONAL rejected.
	_, err = Parse(`SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r . OPTIONAL { ?s ?t ?u . } } }`)
	if err == nil {
		t.Error("nested OPTIONAL accepted")
	}
}

func TestParseFilterExpressions(t *testing.T) {
	src := `SELECT ?x WHERE {
  ?x <http://p> ?v .
  FILTER (?v > 5 && ?v <= 100 || !(?v = 7))
  FILTER (REGEX(STR(?x), "abc"))
  FILTER (BOUND(?v) && ISLITERAL(?v) && ABS(?v - 3) < 2.5)
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Where.Filters) != 3 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
	// Top of first filter must be OR (lowest precedence).
	be, ok := q.Where.Filters[0].(*BinaryExpr)
	if !ok || be.Op != OpOr {
		t.Errorf("filter 0 top = %v", q.Where.Filters[0])
	}
	vars := ExprVars(q.Where.Filters[0])
	if len(vars) != 1 || vars[0] != "v" {
		t.Errorf("filter vars = %v", vars)
	}
}

func TestParseHaving(t *testing.T) {
	q, err := Parse(`SELECT ?x (COUNT(?u) AS ?n) WHERE { ?x <http://p> ?u . } GROUP BY ?x HAVING (?n > 2)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Having == nil {
		t.Fatal("Having = nil")
	}
	if _, err := Parse(`SELECT ?x WHERE { ?x <http://p> ?u . } HAVING (?x > 2)`); err == nil {
		t.Error("HAVING without grouping accepted")
	}
}

func TestParseLiteralForms(t *testing.T) {
	src := `PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE {
  ?s <http://a> "plain" .
  ?s <http://b> "tagged"@en .
  ?s <http://c> "5"^^xsd:integer .
  ?s <http://d> 42 .
  ?s <http://e> 3.5 .
  ?s <http://f> true .
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	objs := q.Where.Triples
	if objs[1].O.Term.Lang != "en" {
		t.Errorf("lang literal = %v", objs[1].O.Term)
	}
	if objs[2].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("typed literal = %v", objs[2].O.Term)
	}
	if objs[3].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("numeric shorthand = %v", objs[3].O.Term)
	}
	if objs[4].O.Term.Datatype != rdf.XSDDecimal {
		t.Errorf("decimal shorthand = %v", objs[4].O.Term)
	}
	if objs[5].O.Term.Datatype != rdf.XSDBoolean {
		t.Errorf("boolean shorthand = %v", objs[5].O.Term)
	}
}

func TestParseValidationErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"group by unknown var", `SELECT ?x WHERE { ?x ?p ?o . } GROUP BY ?zzz`},
		{"select unknown var", `SELECT ?zzz WHERE { ?x ?p ?o . }`},
		{"plain var with agg ungrouped", `SELECT ?x (SUM(?o) AS ?s) WHERE { ?x ?p ?o . }`},
		{"agg over unknown var", `SELECT (SUM(?zzz) AS ?s) WHERE { ?x ?p ?o . }`},
		{"order by unbound", `SELECT ?x WHERE { ?x ?p ?o . } ORDER BY ?qqq`},
		{"literal subject", `SELECT ?p WHERE { "lit" ?p ?o . }`},
		{"literal predicate", `SELECT ?s WHERE { ?s "lit" ?o . }`},
		{"blank predicate", `SELECT ?s WHERE { ?s _:b ?o . }`},
		{"missing where", `SELECT ?x { ?x ?p ?o . }`},
		{"undeclared prefix", `SELECT ?x WHERE { ?x ex:p ?o . }`},
		{"empty group by", `SELECT ?x WHERE { ?x ?p ?o . } GROUP BY`},
		{"trailing junk", `SELECT ?x WHERE { ?x ?p ?o . } LIMIT 5 WHERE`},
		{"unterminated group", `SELECT ?x WHERE { ?x ?p ?o .`},
		{"agg missing AS", `SELECT (SUM(?o) ?s) WHERE { ?x ?p ?o . }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT ?x\nWHERE { ?x ?p }")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	sources := []string{
		`SELECT ?s ?o WHERE { ?s <http://p> ?o . }`,
		`PREFIX ex: <http://ex.org/>
SELECT ?c (SUM(?pop) AS ?total) WHERE { ?x ex:name ?c . ?x ex:pop ?pop . FILTER (?pop > 1000) } GROUP BY ?c ORDER BY DESC(?total) LIMIT 5`,
		`SELECT DISTINCT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s <http://l> ?lab . } } OFFSET 2`,
		`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o . }`,
		`SELECT ?x (AVG(?v) AS ?a) WHERE { ?x <http://p> ?v . } GROUP BY ?x HAVING (?a >= 2)`,
	}
	for _, src := range sources {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of %q: %v", text, err)
		}
		if q2.String() != text {
			t.Errorf("String not a fixpoint:\n%s\nvs\n%s", text, q2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse(`not a query`)
}

func TestGroupPatternVarsAndClone(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?r . } }`)
	vars := q.Where.Vars()
	if len(vars) != 3 || vars[0] != "s" || vars[1] != "o" || vars[2] != "r" {
		t.Errorf("Vars = %v", vars)
	}
	c := q.Where.Clone()
	c.Triples[0].S = Variable("mutated")
	if q.Where.Triples[0].S.Var != "s" {
		t.Error("Clone shares triple slice")
	}
	c.Optionals[0].Triples[0].S = Variable("mutated2")
	if q.Where.Optionals[0].Triples[0].S.Var != "s" {
		t.Error("Clone shares optional triples")
	}
}

func TestParseAggKindErrors(t *testing.T) {
	if _, err := ParseAggKind("MEDIAN"); err == nil {
		t.Error("unknown aggregate accepted")
	}
	if k, err := ParseAggKind("count"); err != nil || k != AggCount {
		t.Errorf("lowercase aggregate: %v %v", k, err)
	}
	if AggNone.String() != "" || AggSum.String() != "SUM" {
		t.Error("AggKind.String wrong")
	}
	if !strings.Contains(AggKind(42).String(), "42") {
		t.Error("unknown AggKind.String wrong")
	}
}

func TestSelectItemString(t *testing.T) {
	cases := []struct {
		item SelectItem
		want string
	}{
		{SelectItem{Var: "x"}, "?x"},
		{SelectItem{Var: "n", Agg: AggCount}, "(COUNT(*) AS ?n)"},
		{SelectItem{Var: "n", Agg: AggCount, AggVar: "s", AggDistinct: true}, "(COUNT(DISTINCT ?s) AS ?n)"},
		{SelectItem{Var: "t", Agg: AggSum, AggVar: "pop"}, "(SUM(?pop) AS ?t)"},
	}
	for _, tc := range cases {
		if got := tc.item.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestExprHelpers(t *testing.T) {
	e := Eq("x", rdf.NewInteger(5))
	if e.String() != `(?x = "5"^^<http://www.w3.org/2001/XMLSchema#integer>)` {
		t.Errorf("Eq String = %q", e.String())
	}
	if And() != nil {
		t.Error("And() should be nil")
	}
	single := And(e)
	if single != e {
		t.Error("And(e) should be e")
	}
	both := And(e, Eq("y", rdf.NewInteger(6)))
	be, ok := both.(*BinaryExpr)
	if !ok || be.Op != OpAnd {
		t.Errorf("And(a,b) = %v", both)
	}
	if got := And(nil, e, nil); got != e {
		t.Error("And should skip nils")
	}
}
