package sparql

import (
	"fmt"
	"sort"
	"strings"

	"sofos/internal/rdf"
)

// AggKind enumerates the aggregation expressions the paper supports:
// {SUM, AVG, COUNT, MAX, MIN}.
type AggKind int

// Aggregate kinds. AggNone marks a plain (non-aggregated) select item.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SPARQL spelling of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// ParseAggKind maps a spelling to its AggKind.
func ParseAggKind(s string) (AggKind, error) {
	switch strings.ToUpper(s) {
	case "COUNT":
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return AggNone, fmt.Errorf("sparql: unknown aggregate %q", s)
	}
}

// PatternTerm is one component of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	IsVar bool
	Var   string   // when IsVar
	Term  rdf.Term // when !IsVar
}

// Variable builds a variable pattern term.
func Variable(name string) PatternTerm { return PatternTerm{IsVar: true, Var: name} }

// Constant builds a concrete pattern term.
func Constant(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// String renders the pattern term in SPARQL syntax.
func (pt PatternTerm) String() string {
	if pt.IsVar {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// TriplePattern is one triple pattern in a basic graph pattern.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the triple pattern.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Vars returns the variable names in the pattern, in S,P,O order without
// duplicates.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// InlineData is a single-variable VALUES clause: `VALUES ?v { t1 t2 ... }`,
// restricting ?v to the listed terms. The variable must also occur in a
// triple pattern (enforced by Query.Validate), which keeps execution within
// the dictionary-encoded engine.
type InlineData struct {
	Var   string
	Terms []rdf.Term
}

// String renders the clause.
func (d InlineData) String() string {
	var b strings.Builder
	b.WriteString("VALUES ?")
	b.WriteString(d.Var)
	b.WriteString(" {")
	for _, t := range d.Terms {
		b.WriteByte(' ')
		b.WriteString(t.String())
	}
	b.WriteString(" }")
	return b.String()
}

// GroupPattern is a graph pattern: a basic graph pattern (conjunctive triple
// patterns) plus FILTER constraints, VALUES clauses, and OPTIONAL
// sub-patterns — or, when Unions is non-empty, a top-level alternation
// `{A} UNION {B} UNION ...` of plain groups (the SOFOS fragment does not
// nest unions inside joins).
type GroupPattern struct {
	Triples   []TriplePattern
	Filters   []Expr
	Values    []InlineData
	Optionals []GroupPattern
	Unions    []GroupPattern // alternation branches; exclusive with the above
}

// IsUnion reports whether the pattern is an alternation.
func (g *GroupPattern) IsUnion() bool { return len(g.Unions) > 0 }

// Vars returns all variables appearing in triple patterns of the group,
// including nested optionals, in first-appearance order.
func (g *GroupPattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, tp := range g.Triples {
		add(tp.Vars())
	}
	for i := range g.Optionals {
		add(g.Optionals[i].Vars())
	}
	for i := range g.Unions {
		add(g.Unions[i].Vars())
	}
	return out
}

// Clone deep-copies the pattern (expressions are immutable and shared).
func (g *GroupPattern) Clone() GroupPattern {
	c := GroupPattern{
		Triples: append([]TriplePattern(nil), g.Triples...),
		Filters: append([]Expr(nil), g.Filters...),
		Values:  append([]InlineData(nil), g.Values...),
	}
	for i := range g.Optionals {
		c.Optionals = append(c.Optionals, g.Optionals[i].Clone())
	}
	for i := range g.Unions {
		c.Unions = append(c.Unions, g.Unions[i].Clone())
	}
	return c
}

// SelectItem is one projection of a SELECT clause: a plain variable or an
// aggregate expression bound to an alias, e.g. (SUM(?pop) AS ?total).
type SelectItem struct {
	Var         string  // plain variable name, or alias when Agg != AggNone
	Agg         AggKind // AggNone for plain variables
	AggVar      string  // the aggregated variable; "" means COUNT(*)
	AggDistinct bool    // COUNT(DISTINCT ?x)
}

// String renders the select item.
func (si SelectItem) String() string {
	if si.Agg == AggNone {
		return "?" + si.Var
	}
	inner := "*"
	if si.AggVar != "" {
		inner = "?" + si.AggVar
	}
	if si.AggDistinct {
		inner = "DISTINCT " + inner
	}
	return fmt.Sprintf("(%s(%s) AS ?%s)", si.Agg, inner, si.Var)
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Var  string
	Desc bool
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	Prefixes map[string]string
	Select   []SelectItem
	Distinct bool
	Where    GroupPattern
	GroupBy  []string
	Having   Expr // nil when absent
	OrderBy  []OrderCond
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// HasAggregates reports whether any select item aggregates.
func (q *Query) HasAggregates() bool {
	for _, si := range q.Select {
		if si.Agg != AggNone {
			return true
		}
	}
	return false
}

// Aggregates returns the aggregate select items.
func (q *Query) Aggregates() []SelectItem {
	var out []SelectItem
	for _, si := range q.Select {
		if si.Agg != AggNone {
			out = append(out, si)
		}
	}
	return out
}

// Validate performs semantic checks: aggregate/group-by consistency and
// variable scoping.
func (q *Query) Validate() error {
	if len(q.Select) == 0 {
		return fmt.Errorf("sparql: empty SELECT clause")
	}
	patternVars := map[string]bool{}
	for _, v := range q.Where.Vars() {
		patternVars[v] = true
	}
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		if !patternVars[v] {
			return fmt.Errorf("sparql: GROUP BY variable ?%s does not occur in the pattern", v)
		}
		grouped[v] = true
	}
	hasAgg := q.HasAggregates()
	for _, si := range q.Select {
		if si.Agg == AggNone {
			if !patternVars[si.Var] {
				return fmt.Errorf("sparql: selected variable ?%s does not occur in the pattern", si.Var)
			}
			if (hasAgg || len(q.GroupBy) > 0) && !grouped[si.Var] {
				return fmt.Errorf("sparql: variable ?%s selected outside aggregate without GROUP BY", si.Var)
			}
		} else {
			if si.AggVar != "" && !patternVars[si.AggVar] {
				return fmt.Errorf("sparql: aggregated variable ?%s does not occur in the pattern", si.AggVar)
			}
			if si.Agg != AggCount && si.AggVar == "" {
				return fmt.Errorf("sparql: %s(*) is only valid for COUNT", si.Agg)
			}
		}
	}
	if q.Having != nil && !hasAgg && len(q.GroupBy) == 0 {
		return fmt.Errorf("sparql: HAVING requires grouping or aggregation")
	}
	for _, oc := range q.OrderBy {
		found := patternVars[oc.Var]
		for _, si := range q.Select {
			if si.Var == oc.Var {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("sparql: ORDER BY variable ?%s is not bound", oc.Var)
		}
	}
	return validateValues(&q.Where, patternVars)
}

// validateValues checks every VALUES clause: non-empty term list and a
// variable that also occurs in a triple pattern (the engine joins inline
// data against pattern bindings, so a VALUES-only variable has no home).
func validateValues(g *GroupPattern, patternVars map[string]bool) error {
	for _, d := range g.Values {
		if len(d.Terms) == 0 {
			return fmt.Errorf("sparql: VALUES ?%s has no terms", d.Var)
		}
		if !patternVars[d.Var] {
			return fmt.Errorf("sparql: VALUES variable ?%s does not occur in a triple pattern", d.Var)
		}
	}
	for i := range g.Unions {
		if err := validateValues(&g.Unions[i], patternVars); err != nil {
			return err
		}
	}
	for i := range g.Optionals {
		if len(g.Optionals[i].Values) > 0 {
			return fmt.Errorf("sparql: VALUES inside OPTIONAL is not supported in the SOFOS fragment")
		}
	}
	return nil
}

// String reconstructs a canonical SPARQL text for the query. The output is
// re-parsable and is used for logging, the CLI, and golden tests.
func (q *Query) String() string {
	var b strings.Builder
	labels := make([]string, 0, len(q.Prefixes))
	for l := range q.Prefixes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "PREFIX %s: <%s>\n", l, q.Prefixes[l])
	}
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, si := range q.Select {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(si.String())
	}
	b.WriteString(" WHERE {\n")
	writeGroupBody(&b, &q.Where, "  ")
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" ?")
			b.WriteString(v)
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING (")
		b.WriteString(q.Having.String())
		b.WriteString(")")
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, oc := range q.OrderBy {
			if oc.Desc {
				b.WriteString(" DESC(?")
				b.WriteString(oc.Var)
				b.WriteString(")")
			} else {
				b.WriteString(" ?")
				b.WriteString(oc.Var)
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

// writeGroupBody renders the triples, filters, and optionals of a group.
func writeGroupBody(b *strings.Builder, g *GroupPattern, indent string) {
	for _, tp := range g.Triples {
		b.WriteString(indent)
		b.WriteString(tp.String())
		b.WriteByte('\n')
	}
	for _, f := range g.Filters {
		b.WriteString(indent)
		b.WriteString("FILTER (")
		b.WriteString(f.String())
		b.WriteString(")\n")
	}
	for _, d := range g.Values {
		b.WriteString(indent)
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for i := range g.Optionals {
		b.WriteString(indent)
		b.WriteString("OPTIONAL {\n")
		writeGroupBody(b, &g.Optionals[i], indent+"  ")
		b.WriteString(indent)
		b.WriteString("}\n")
	}
	for i := range g.Unions {
		if i > 0 {
			b.WriteString(indent)
			b.WriteString("UNION\n")
		}
		b.WriteString(indent)
		b.WriteString("{\n")
		writeGroupBody(b, &g.Unions[i], indent+"  ")
		b.WriteString(indent)
		b.WriteString("}\n")
	}
}
