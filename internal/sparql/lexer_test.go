package sparql

import (
	"strings"
	"testing"
)

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasicQuery(t *testing.T) {
	toks, err := Tokenize(`SELECT ?x WHERE { ?x <http://p> "v" . }`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{TokKeyword, TokVar, TokKeyword, TokLBrace, TokVar, TokIRI, TokString, TokDot, TokRBrace, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Text != "x" {
		t.Errorf("var text = %q", toks[1].Text)
	}
	if toks[5].Text != "http://p" {
		t.Errorf("iri text = %q", toks[5].Text)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(`= != < > <= >= && || ! + - / *`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{TokEq, TokNeq, TokLt, TokGt, TokLe, TokGe, TokAnd, TokOr, TokBang, TokPlus, TokMinus, TokSlash, TokStar, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeLtVsIRI(t *testing.T) {
	// `?x < 5` must lex '<' as an operator, not the start of an IRI.
	toks, err := Tokenize(`?x < 5`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokLt {
		t.Errorf("token 1 = %v, want <", toks[1].Kind)
	}
	// `<http://x>` is an IRI even in an expression context.
	toks, err = Tokenize(`?x = <http://x>`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[2].Kind != TokIRI || toks[2].Text != "http://x" {
		t.Errorf("token 2 = %v %q", toks[2].Kind, toks[2].Text)
	}
	// `<5` with no closing '>' falls back to the operator.
	toks, err = Tokenize(`?x <5`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokLt || toks[2].Kind != TokNumber {
		t.Errorf("tokens = %v", kinds(toks))
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize(`select Where fIlTeR group BY`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	wantText := []string{"SELECT", "WHERE", "FILTER", "GROUP", "BY"}
	for i, w := range wantText {
		if toks[i].Kind != TokKeyword || toks[i].Text != w {
			t.Errorf("token %d = %v %q, want keyword %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestTokenizeStringsAndTags(t *testing.T) {
	toks, err := Tokenize(`"hello" "fr"@fr "5"^^<http://dt> 'single'`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{TokString, TokString, TokAt, TokString, TokDTyp, TokIRI, TokString, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if toks[2].Text != "fr" {
		t.Errorf("lang tag = %q", toks[2].Text)
	}
	if toks[6].Text != "single" {
		t.Errorf("single-quoted = %q", toks[6].Text)
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	toks, err := Tokenize(`"a\nb\t\"c\\"`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Text != "a\nb\t\"c\\" {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, err := Tokenize(`42 3.25 1e5 2.5E-3`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	wantText := []string{"42", "3.25", "1e5", "2.5E-3"}
	for i, w := range wantText {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("token %d = %v %q, want number %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestTokenizePNamesAndBlank(t *testing.T) {
	toks, err := Tokenize(`ex:name :local _:b1`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Kind != TokPName || toks[0].Text != "ex:name" {
		t.Errorf("token 0 = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokPName || toks[1].Text != ":local" {
		t.Errorf("token 1 = %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[2].Kind != TokBlank || toks[2].Text != "b1" {
		t.Errorf("token 2 = %v %q", toks[2].Kind, toks[2].Text)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("SELECT # comment here\n?x")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if len(toks) != 3 || toks[1].Kind != TokVar {
		t.Errorf("tokens = %v", kinds(toks))
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`?x & ?y`,
		`?x | ?y`,
		`@`,
		`^x`,
		`~`,
		`?`,
		`_:`,
		`"bad\qescape"`,
		`unknownword`,
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Tokenize("SELECT ?x\n  ~")
	if err == nil {
		t.Fatal("want error")
	}
	le, ok := err.(*LexError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Line != 2 {
		t.Errorf("line = %d, want 2", le.Line)
	}
	if !strings.Contains(le.Error(), "lex error") {
		t.Errorf("Error() = %q", le.Error())
	}
}

func TestTokenKindString(t *testing.T) {
	if TokVar.String() != "variable" || TokEOF.String() != "EOF" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(TokenKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}
