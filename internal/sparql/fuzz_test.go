package sparql

import "testing"

// FuzzParse checks the SPARQL parser never panics and that String() of a
// parsed query is a re-parsable fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s ?p ?o . }`,
		`SELECT * WHERE { ?s ?p ?o . }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x (SUM(?v) AS ?t) WHERE { ?x ex:v ?v . FILTER (?v > 3 && ?v < 10) } GROUP BY ?x HAVING (?t >= 5) ORDER BY DESC(?t) LIMIT 3 OFFSET 1`,
		`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r . } }`,
		`SELECT ?c WHERE { { ?c <http://a> ?o . } UNION { ?c <http://b> ?o . } }`,
		`SELECT ?x WHERE { ?x <http://p> "s"@en . FILTER (REGEX(STR(?x), "a", "i")) }`,
		``,
		`SELECT`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\noriginal: %q\nrendered: %s", err, src, text)
		}
		if q2.String() != text {
			t.Fatalf("String() not a fixpoint:\n%s\nvs\n%s", text, q2.String())
		}
	})
}
