package sparql

import (
	"fmt"
	"strings"

	"sofos/internal/rdf"
)

// Expr is a FILTER/HAVING expression node. Expressions are immutable after
// construction and safe to share between queries.
type Expr interface {
	fmt.Stringer
	// Vars appends the variables referenced by the expression to dst.
	Vars(dst []string) []string
	exprNode()
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

func (e *VarExpr) String() string             { return "?" + e.Name }
func (e *VarExpr) Vars(dst []string) []string { return append(dst, e.Name) }
func (e *VarExpr) exprNode()                  {}

// TermExpr is a constant RDF term.
type TermExpr struct{ Term rdf.Term }

func (e *TermExpr) String() string             { return e.Term.String() }
func (e *TermExpr) Vars(dst []string) []string { return dst }
func (e *TermExpr) exprNode()                  {}

// BinaryOp enumerates binary operators in precedence groups.
type BinaryOp int

// Binary operators.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the operator spelling.
func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "||"
	case OpAnd:
		return "&&"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op.String() + " " + e.Right.String() + ")"
}

func (e *BinaryExpr) Vars(dst []string) []string {
	return e.Right.Vars(e.Left.Vars(dst))
}
func (e *BinaryExpr) exprNode() {}

// UnaryExpr applies logical negation or arithmetic minus.
type UnaryExpr struct {
	Op   rune // '!' or '-'
	Expr Expr
}

func (e *UnaryExpr) String() string             { return string(e.Op) + e.Expr.String() }
func (e *UnaryExpr) Vars(dst []string) []string { return e.Expr.Vars(dst) }
func (e *UnaryExpr) exprNode()                  {}

// CallExpr invokes a builtin function: REGEX, STR, LANG, DATATYPE, BOUND,
// ABS, ISIRI, ISBLANK, ISLITERAL, ISNUMERIC.
type CallExpr struct {
	Func string // uppercase
	Args []Expr
}

func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Func + "(" + strings.Join(parts, ", ") + ")"
}

func (e *CallExpr) Vars(dst []string) []string {
	for _, a := range e.Args {
		dst = a.Vars(dst)
	}
	return dst
}
func (e *CallExpr) exprNode() {}

// ExprVars returns the distinct variables referenced by the expression.
func ExprVars(e Expr) []string {
	raw := e.Vars(nil)
	seen := map[string]bool{}
	var out []string
	for _, v := range raw {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Eq builds an equality comparison between a variable and a constant term —
// the common FILTER shape produced by the workload generator.
func Eq(varName string, t rdf.Term) Expr {
	return &BinaryExpr{Op: OpEq, Left: &VarExpr{Name: varName}, Right: &TermExpr{Term: t}}
}

// And conjoins expressions; nil inputs are skipped and a single input is
// returned unchanged.
func And(es ...Expr) Expr {
	var acc Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if acc == nil {
			acc = e
			continue
		}
		acc = &BinaryExpr{Op: OpAnd, Left: acc, Right: e}
	}
	return acc
}
