package sparql

import (
	"fmt"
	"strings"

	"sofos/internal/rdf"
)

// ParseError reports a syntax or semantic error with the offending token.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sparql: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a SPARQL SELECT query in the SOFOS fragment and validates it.
func Parse(src string) (*Query, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: make(map[string]string)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query known to be valid at compile time (facet
// definitions, test fixtures); it panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []Token
	pos      int
	prefixes map[string]string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// accept consumes the current token if it matches kind (and text, when text
// is non-empty), reporting whether it did.
func (p *parser) accept(kind TokenKind, text string) bool {
	t := p.cur()
	if t.Kind != kind {
		return false
	}
	if text != "" && t.Text != text {
		return false
	}
	p.pos++
	return true
}

// expect consumes a token of the given kind/text or fails.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := kind.String()
		if text != "" {
			want = fmt.Sprintf("%q", text)
		}
		return Token{}, p.errf("expected %s, got %s %q", want, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

// parseQuery parses: prologue SELECT ... WHERE {...} solution-modifiers EOF.
func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Prefixes: p.prefixes, Limit: -1}
	for p.cur().Kind == TokKeyword && (p.cur().Text == "PREFIX" || p.cur().Text == "BASE") {
		if err := p.parsePrologueDecl(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "DISTINCT") {
		q.Distinct = true
	}
	if err := p.parseSelectItems(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "WHERE"); err != nil {
		return nil, err
	}
	where, err := p.parseGroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = *where
	if err := p.parseModifiers(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEOF, ""); err != nil {
		return nil, err
	}
	// SELECT * expands to all pattern variables.
	if len(q.Select) == 1 && q.Select[0].Var == "*" {
		q.Select = q.Select[:0]
		for _, v := range q.Where.Vars() {
			q.Select = append(q.Select, SelectItem{Var: v})
		}
		if len(q.Select) == 0 {
			return nil, p.errf("SELECT * with no variables in pattern")
		}
	}
	return q, nil
}

// parsePrologueDecl parses PREFIX/BASE declarations.
func (p *parser) parsePrologueDecl() error {
	kw := p.next().Text
	switch kw {
	case "PREFIX":
		name, err := p.expect(TokPName, "")
		if err != nil {
			return err
		}
		if !strings.HasSuffix(name.Text, ":") && strings.Count(name.Text, ":") != 1 {
			return p.errf("malformed prefix name %q", name.Text)
		}
		label := strings.TrimSuffix(name.Text, ":")
		if i := strings.IndexByte(label, ':'); i >= 0 {
			label = label[:i]
		}
		iri, err := p.expect(TokIRI, "")
		if err != nil {
			return err
		}
		p.prefixes[label] = iri.Text
		return nil
	case "BASE":
		if _, err := p.expect(TokIRI, ""); err != nil {
			return err
		}
		return nil
	default:
		return p.errf("unexpected prologue keyword %s", kw)
	}
}

// parseSelectItems parses the projection list: `*`, variables, and
// (AGG(...) AS ?alias) expressions.
func (p *parser) parseSelectItems(q *Query) error {
	if p.accept(TokStar, "") {
		q.Select = append(q.Select, SelectItem{Var: "*"})
		return nil
	}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokVar:
			p.next()
			q.Select = append(q.Select, SelectItem{Var: t.Text})
		case t.Kind == TokLParen:
			item, err := p.parseAggSelect()
			if err != nil {
				return err
			}
			q.Select = append(q.Select, *item)
		default:
			if len(q.Select) == 0 {
				return p.errf("expected variable or aggregate in SELECT, got %s %q", t.Kind, t.Text)
			}
			return nil
		}
	}
}

// parseAggSelect parses `( AGG ( [DISTINCT] ?v | * ) AS ?alias )`.
func (p *parser) parseAggSelect() (*SelectItem, error) {
	if _, err := p.expect(TokLParen, ""); err != nil {
		return nil, err
	}
	kw, err := p.expect(TokKeyword, "")
	if err != nil {
		return nil, err
	}
	agg, err := ParseAggKind(kw.Text)
	if err != nil {
		return nil, p.errf("expected aggregate function, got %q", kw.Text)
	}
	if _, err := p.expect(TokLParen, ""); err != nil {
		return nil, err
	}
	item := &SelectItem{Agg: agg}
	if p.accept(TokKeyword, "DISTINCT") {
		item.AggDistinct = true
	}
	switch {
	case p.accept(TokStar, ""):
		if agg != AggCount {
			return nil, p.errf("%s(*) is only valid for COUNT", agg)
		}
	default:
		v, err := p.expect(TokVar, "")
		if err != nil {
			return nil, err
		}
		item.AggVar = v.Text
	}
	if _, err := p.expect(TokRParen, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	alias, err := p.expect(TokVar, "")
	if err != nil {
		return nil, err
	}
	item.Var = alias.Text
	if _, err := p.expect(TokRParen, ""); err != nil {
		return nil, err
	}
	return item, nil
}

// parseGroupPattern parses `{ triples/filters/optionals }`.
func (p *parser) parseGroupPattern() (*GroupPattern, error) {
	if _, err := p.expect(TokLBrace, ""); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokRBrace:
			p.next()
			return g, nil
		case t.Kind == TokEOF:
			return nil, p.errf("unexpected EOF inside group pattern")
		case t.Kind == TokKeyword && t.Text == "FILTER":
			p.next()
			if _, err := p.expect(TokLParen, ""); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, ""); err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
			p.accept(TokDot, "") // optional dot after FILTER
		case t.Kind == TokKeyword && t.Text == "VALUES":
			p.next()
			v, err := p.expect(TokVar, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLBrace, ""); err != nil {
				return nil, err
			}
			data := InlineData{Var: v.Text}
			for p.cur().Kind != TokRBrace {
				if p.cur().Kind == TokEOF {
					return nil, p.errf("unexpected EOF inside VALUES")
				}
				pt, err := p.parsePatternTerm(true)
				if err != nil {
					return nil, err
				}
				if pt.IsVar {
					return nil, p.errf("variables are not allowed inside VALUES")
				}
				data.Terms = append(data.Terms, pt.Term)
			}
			p.next() // '}'
			g.Values = append(g.Values, data)
			p.accept(TokDot, "")
		case t.Kind == TokKeyword && t.Text == "OPTIONAL":
			p.next()
			sub, err := p.parseGroupPattern()
			if err != nil {
				return nil, err
			}
			if len(sub.Optionals) > 0 {
				return nil, p.errf("nested OPTIONAL is not supported in the SOFOS fragment")
			}
			if sub.IsUnion() {
				return nil, p.errf("UNION inside OPTIONAL is not supported in the SOFOS fragment")
			}
			g.Optionals = append(g.Optionals, *sub)
			p.accept(TokDot, "")
		case t.Kind == TokLBrace:
			// `{A} UNION {B} ...` — must be the group's only content.
			if len(g.Triples) > 0 || len(g.Filters) > 0 || len(g.Optionals) > 0 || g.IsUnion() {
				return nil, p.errf("UNION must be the only element of its group in the SOFOS fragment")
			}
			for {
				branch, err := p.parseGroupPattern()
				if err != nil {
					return nil, err
				}
				if branch.IsUnion() {
					return nil, p.errf("nested UNION is not supported in the SOFOS fragment")
				}
				g.Unions = append(g.Unions, *branch)
				if !p.accept(TokKeyword, "UNION") {
					break
				}
				if p.cur().Kind != TokLBrace {
					return nil, p.errf("expected '{' after UNION, got %s %q", p.cur().Kind, p.cur().Text)
				}
			}
			if len(g.Unions) < 2 {
				return nil, p.errf("UNION requires at least two branches")
			}
		default:
			if err := p.parseTriplesSameSubject(g); err != nil {
				return nil, err
			}
		}
	}
}

// parseTriplesSameSubject parses `subject verb obj (, obj)* (; verb obj...)* .`
func (p *parser) parseTriplesSameSubject(g *GroupPattern) error {
	subj, err := p.parsePatternTerm(false)
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseVerb()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parsePatternTerm(true)
			if err != nil {
				return err
			}
			g.Triples = append(g.Triples, TriplePattern{S: subj, P: pred, O: obj})
			if !p.accept(TokComma, "") {
				break
			}
		}
		if p.accept(TokSemi, "") {
			// Trailing ';' before '.' or '}' is allowed.
			if p.cur().Kind == TokDot || p.cur().Kind == TokRBrace {
				break
			}
			continue
		}
		break
	}
	// Terminating dot is optional before '}'.
	if !p.accept(TokDot, "") && p.cur().Kind != TokRBrace {
		return p.errf("expected '.' or '}' after triple pattern, got %s %q", p.cur().Kind, p.cur().Text)
	}
	return nil
}

// parseVerb parses a predicate position: variable, IRI, pname, or `a`.
func (p *parser) parseVerb() (PatternTerm, error) {
	t := p.cur()
	if t.Kind == TokKeyword && t.Text == "A" {
		p.next()
		return Constant(rdf.NewIRI(rdf.RDFType)), nil
	}
	pt, err := p.parsePatternTerm(false)
	if err != nil {
		return PatternTerm{}, err
	}
	if !pt.IsVar && pt.Term.Kind != rdf.KindIRI {
		return PatternTerm{}, p.errf("predicate must be a variable or IRI")
	}
	return pt, nil
}

// parsePatternTerm parses a term in a triple pattern. Literals are only
// permitted when allowLiteral is set (object position).
func (p *parser) parsePatternTerm(allowLiteral bool) (PatternTerm, error) {
	t := p.cur()
	switch t.Kind {
	case TokVar:
		p.next()
		return Variable(t.Text), nil
	case TokIRI:
		p.next()
		return Constant(rdf.NewIRI(t.Text)), nil
	case TokPName:
		p.next()
		iri, err := p.expandPName(t.Text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Constant(rdf.NewIRI(iri)), nil
	case TokBlank:
		p.next()
		return Constant(rdf.NewBlank(t.Text)), nil
	case TokString:
		if !allowLiteral {
			return PatternTerm{}, p.errf("literal not allowed here")
		}
		p.next()
		term, err := p.finishLiteral(t.Text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Constant(term), nil
	case TokNumber:
		if !allowLiteral {
			return PatternTerm{}, p.errf("literal not allowed here")
		}
		p.next()
		return Constant(numberTerm(t.Text)), nil
	case TokKeyword:
		if t.Text == "TRUE" || t.Text == "FALSE" {
			if !allowLiteral {
				return PatternTerm{}, p.errf("literal not allowed here")
			}
			p.next()
			return Constant(rdf.NewBoolean(t.Text == "TRUE")), nil
		}
	}
	return PatternTerm{}, p.errf("expected term, got %s %q", t.Kind, t.Text)
}

// finishLiteral attaches a following @lang or ^^datatype to a string token.
func (p *parser) finishLiteral(lex string) (rdf.Term, error) {
	t := p.cur()
	switch t.Kind {
	case TokAt:
		p.next()
		return rdf.NewLangLiteral(lex, t.Text), nil
	case TokDTyp:
		p.next()
		dt := p.cur()
		switch dt.Kind {
		case TokIRI:
			p.next()
			return rdf.NewTypedLiteral(lex, dt.Text), nil
		case TokPName:
			p.next()
			iri, err := p.expandPName(dt.Text)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewTypedLiteral(lex, iri), nil
		default:
			return rdf.Term{}, p.errf("expected datatype IRI after ^^")
		}
	}
	return rdf.NewLiteral(lex), nil
}

// numberTerm classifies a numeric token into the appropriate XSD literal.
func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, "eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	if strings.ContainsRune(text, '.') {
		return rdf.NewTypedLiteral(text, rdf.XSDDecimal)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

// expandPName resolves prefix:local against declared prefixes.
func (p *parser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", pname)
	}
	ns, ok := p.prefixes[pname[:i]]
	if !ok {
		return "", p.errf("undeclared prefix %q", pname[:i])
	}
	return ns + pname[i+1:], nil
}

// parseModifiers parses GROUP BY, HAVING, ORDER BY, LIMIT, OFFSET.
func (p *parser) parseModifiers(q *Query) error {
	for {
		t := p.cur()
		if t.Kind != TokKeyword {
			return nil
		}
		switch t.Text {
		case "GROUP":
			p.next()
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return err
			}
			for p.cur().Kind == TokVar {
				q.GroupBy = append(q.GroupBy, p.next().Text)
			}
			if len(q.GroupBy) == 0 {
				return p.errf("GROUP BY requires at least one variable")
			}
		case "HAVING":
			p.next()
			if _, err := p.expect(TokLParen, ""); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if _, err := p.expect(TokRParen, ""); err != nil {
				return err
			}
			q.Having = e
		case "ORDER":
			p.next()
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return err
			}
			for {
				t := p.cur()
				if t.Kind == TokVar {
					p.next()
					q.OrderBy = append(q.OrderBy, OrderCond{Var: t.Text})
					continue
				}
				if t.Kind == TokKeyword && (t.Text == "ASC" || t.Text == "DESC") {
					p.next()
					if _, err := p.expect(TokLParen, ""); err != nil {
						return err
					}
					v, err := p.expect(TokVar, "")
					if err != nil {
						return err
					}
					if _, err := p.expect(TokRParen, ""); err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderCond{Var: v.Text, Desc: t.Text == "DESC"})
					continue
				}
				break
			}
			if len(q.OrderBy) == 0 {
				return p.errf("ORDER BY requires at least one condition")
			}
		case "LIMIT":
			p.next()
			n, err := p.expect(TokNumber, "")
			if err != nil {
				return err
			}
			q.Limit = atoiSafe(n.Text)
		case "OFFSET":
			p.next()
			n, err := p.expect(TokNumber, "")
			if err != nil {
				return err
			}
			q.Offset = atoiSafe(n.Text)
		default:
			return p.errf("unexpected keyword %s after WHERE clause", t.Text)
		}
	}
}

// atoiSafe converts a numeric token (already validated by the lexer) to int,
// truncating decimals.
func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokOr, "") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.accept(TokAnd, "") {
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

// comparisonOps maps comparison token kinds to operators.
var comparisonOps = map[TokenKind]BinaryOp{
	TokEq: OpEq, TokNeq: OpNeq, TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := comparisonOps[p.cur().Kind]; ok {
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokPlus:
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpAdd, Left: left, Right: right}
		case TokMinus:
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpSub, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokStar:
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpMul, Left: left, Right: right}
		case TokSlash:
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: OpDiv, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokBang:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '!', Expr: e}, nil
	case TokMinus:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: '-', Expr: e}, nil
	}
	return p.parsePrimary()
}

// builtinArity maps supported builtins to their argument counts.
var builtinArity = map[string]int{
	"REGEX": 2, "STR": 1, "LANG": 1, "DATATYPE": 1, "BOUND": 1, "ABS": 1,
	"ISIRI": 1, "ISBLANK": 1, "ISLITERAL": 1, "ISNUMERIC": 1,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokVar:
		p.next()
		return &VarExpr{Name: t.Text}, nil
	case TokNumber:
		p.next()
		return &TermExpr{Term: numberTerm(t.Text)}, nil
	case TokString:
		p.next()
		term, err := p.finishLiteral(t.Text)
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: term}, nil
	case TokIRI:
		p.next()
		return &TermExpr{Term: rdf.NewIRI(t.Text)}, nil
	case TokPName:
		p.next()
		iri, err := p.expandPName(t.Text)
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: rdf.NewIRI(iri)}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE", "FALSE":
			p.next()
			return &TermExpr{Term: rdf.NewBoolean(t.Text == "TRUE")}, nil
		}
		if arity, ok := builtinArity[t.Text]; ok {
			p.next()
			if _, err := p.expect(TokLParen, ""); err != nil {
				return nil, err
			}
			call := &CallExpr{Func: t.Text}
			for i := 0; i < arity; i++ {
				if i > 0 {
					if _, err := p.expect(TokComma, ""); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			// REGEX accepts an optional flags argument.
			if t.Text == "REGEX" && p.accept(TokComma, "") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			if _, err := p.expect(TokRParen, ""); err != nil {
				return nil, err
			}
			return call, nil
		}
	}
	return nil, p.errf("expected expression, got %s %q", t.Kind, t.Text)
}
