// Package sparql implements the lexer, abstract syntax tree, and parser for
// the SPARQL fragment SOFOS needs: SELECT queries with basic graph patterns,
// FILTER constraints, OPTIONAL blocks, GROUP BY with the aggregates
// {SUM, AVG, COUNT, MAX, MIN}, HAVING, ORDER BY, DISTINCT, LIMIT and OFFSET.
// This is exactly the query form of §3 of the paper:
//
//	SELECT ?x ... agg(?u) WHERE P [FILTER ...] GROUP BY ?x ...
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokKeyword
	TokVar    // ?name or $name
	TokIRI    // <...>
	TokPName  // prefix:local or prefix:
	TokBlank  // _:label
	TokString // "..." with optional @lang or ^^type attached by the parser
	TokNumber // integer/decimal/double
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokDot    // .
	TokSemi   // ;
	TokComma  // ,
	TokStar   // *
	TokEq     // =
	TokNeq    // !=
	TokLt     // <  (disambiguated from IRI by lookahead)
	TokGt     // >
	TokLe     // <=
	TokGe     // >=
	TokAnd    // &&
	TokOr     // ||
	TokBang   // !
	TokPlus   // +
	TokMinus  // -
	TokSlash  // /
	TokAt     // @lang (attached to preceding string by parser)
	TokDTyp   // ^^
)

// String names the token kind for diagnostics.
func (k TokenKind) String() string {
	names := map[TokenKind]string{
		TokEOF: "EOF", TokKeyword: "keyword", TokVar: "variable", TokIRI: "IRI",
		TokPName: "prefixed name", TokBlank: "blank node", TokString: "string",
		TokNumber: "number", TokLBrace: "{", TokRBrace: "}", TokLParen: "(",
		TokRParen: ")", TokDot: ".", TokSemi: ";", TokComma: ",", TokStar: "*",
		TokEq: "=", TokNeq: "!=", TokLt: "<", TokGt: ">", TokLe: "<=",
		TokGe: ">=", TokAnd: "&&", TokOr: "||", TokBang: "!", TokPlus: "+",
		TokMinus: "-", TokSlash: "/", TokAt: "@", TokDTyp: "^^",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with position information.
type Token struct {
	Kind      TokenKind
	Text      string // normalized text: keyword uppercased, IRI without <>, var without ?/$
	Line, Col int
}

// keywords recognized case-insensitively. Aggregate names are keywords too.
var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "FILTER": true, "OPTIONAL": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "DISTINCT": true,
	"PREFIX": true, "BASE": true, "AS": true, "A": true,
	"SUM": true, "AVG": true, "COUNT": true, "MAX": true, "MIN": true,
	"REGEX": true, "STR": true, "LANG": true, "DATATYPE": true,
	"BOUND": true, "ABS": true, "ISIRI": true, "ISBLANK": true,
	"ISLITERAL": true, "ISNUMERIC": true, "TRUE": true, "FALSE": true,
	"UNION": true, "VALUES": true, "IN": true, "NOT": true,
}

// LexError is a lexical error with position.
type LexError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *LexError) Error() string {
	return fmt.Sprintf("sparql: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes a SPARQL query string.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize scans the whole input. The returned slice always ends with an
// EOF token on success.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &LexError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// Next scans and returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	mk := func(k TokenKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if lx.pos >= len(lx.src) {
		return mk(TokEOF, ""), nil
	}
	r := lx.peek()
	switch {
	case r == '?' || r == '$':
		lx.advance()
		name := lx.scanName()
		if name == "" {
			return Token{}, lx.errf("empty variable name")
		}
		return mk(TokVar, name), nil
	case r == '<':
		// '<' begins an IRI if the contents look like one; otherwise it is
		// the less-than operator. SPARQL grammar resolves this by context;
		// we use the practical rule: an IRI has no whitespace before '>'.
		if iri, ok := lx.tryIRI(); ok {
			return mk(TokIRI, iri), nil
		}
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokLe, "<="), nil
		}
		return mk(TokLt, "<"), nil
	case r == '"' || r == '\'':
		s, err := lx.scanString(r)
		if err != nil {
			return Token{}, err
		}
		return mk(TokString, s), nil
	case r == '_' && lx.peekAt(1) == ':':
		lx.advance()
		lx.advance()
		name := lx.scanName()
		if name == "" {
			return Token{}, lx.errf("empty blank node label")
		}
		return mk(TokBlank, name), nil
	case unicode.IsDigit(r):
		return mk(TokNumber, lx.scanNumber()), nil
	case r == '{':
		lx.advance()
		return mk(TokLBrace, "{"), nil
	case r == '}':
		lx.advance()
		return mk(TokRBrace, "}"), nil
	case r == '(':
		lx.advance()
		return mk(TokLParen, "("), nil
	case r == ')':
		lx.advance()
		return mk(TokRParen, ")"), nil
	case r == '.':
		// Could be a decimal like .5 — not supported; always a dot.
		lx.advance()
		return mk(TokDot, "."), nil
	case r == ';':
		lx.advance()
		return mk(TokSemi, ";"), nil
	case r == ',':
		lx.advance()
		return mk(TokComma, ","), nil
	case r == '*':
		lx.advance()
		return mk(TokStar, "*"), nil
	case r == '=':
		lx.advance()
		return mk(TokEq, "="), nil
	case r == '!':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokNeq, "!="), nil
		}
		return mk(TokBang, "!"), nil
	case r == '>':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokGe, ">="), nil
		}
		return mk(TokGt, ">"), nil
	case r == '&':
		lx.advance()
		if lx.peek() != '&' {
			return Token{}, lx.errf("expected '&&'")
		}
		lx.advance()
		return mk(TokAnd, "&&"), nil
	case r == '|':
		lx.advance()
		if lx.peek() != '|' {
			return Token{}, lx.errf("expected '||'")
		}
		lx.advance()
		return mk(TokOr, "||"), nil
	case r == '+':
		lx.advance()
		return mk(TokPlus, "+"), nil
	case r == '-':
		lx.advance()
		return mk(TokMinus, "-"), nil
	case r == '/':
		lx.advance()
		return mk(TokSlash, "/"), nil
	case r == '@':
		lx.advance()
		tag := lx.scanLangTag()
		if tag == "" {
			return Token{}, lx.errf("empty language tag")
		}
		return mk(TokAt, tag), nil
	case r == '^':
		lx.advance()
		if lx.peek() != '^' {
			return Token{}, lx.errf("expected '^^'")
		}
		lx.advance()
		return mk(TokDTyp, "^^"), nil
	case unicode.IsLetter(r):
		word := lx.scanName()
		if lx.peek() == ':' {
			lx.advance()
			local := lx.scanName()
			return mk(TokPName, word+":"+local), nil
		}
		up := strings.ToUpper(word)
		if keywords[up] {
			return mk(TokKeyword, up), nil
		}
		return Token{}, lx.errf("unknown identifier %q", word)
	case r == ':':
		// Default-prefix pname, e.g. :local
		lx.advance()
		local := lx.scanName()
		return mk(TokPName, ":"+local), nil
	default:
		return Token{}, lx.errf("unexpected character %q", r)
	}
}

// skipSpaceAndComments consumes whitespace and # comments.
func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if r == '#' {
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		if !unicode.IsSpace(r) {
			return
		}
		lx.advance()
	}
}

// scanName scans letters, digits, underscores, and hyphens/dots inside.
func (lx *Lexer) scanName() string {
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(lx.advance())
			continue
		}
		// Dots and hyphens allowed mid-name but not trailing (a trailing dot
		// is the triple terminator).
		if (r == '-' || r == '.') && b.Len() > 0 {
			nr := lx.peekAt(1)
			if unicode.IsLetter(nr) || unicode.IsDigit(nr) || nr == '_' {
				b.WriteRune(lx.advance())
				continue
			}
		}
		break
	}
	return b.String()
}

// scanLangTag scans letters, digits and hyphens.
func (lx *Lexer) scanLangTag() string {
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' {
			b.WriteRune(lx.advance())
			continue
		}
		break
	}
	return b.String()
}

// scanNumber scans an integer/decimal/double lexical form.
func (lx *Lexer) scanNumber() string {
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if unicode.IsDigit(r) {
			b.WriteRune(lx.advance())
			continue
		}
		if r == '.' && unicode.IsDigit(lx.peekAt(1)) {
			b.WriteRune(lx.advance())
			continue
		}
		if (r == 'e' || r == 'E') && (unicode.IsDigit(lx.peekAt(1)) ||
			((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && unicode.IsDigit(lx.peekAt(2)))) {
			b.WriteRune(lx.advance()) // e
			if lx.peek() == '+' || lx.peek() == '-' {
				b.WriteRune(lx.advance())
			}
			continue
		}
		break
	}
	return b.String()
}

// tryIRI attempts to scan <...> as an IRI. It only commits when a '>' is
// found before any whitespace; otherwise the lexer state is restored and
// false is returned (the '<' is then the comparison operator).
func (lx *Lexer) tryIRI() (string, bool) {
	save, saveLine, saveCol := lx.pos, lx.line, lx.col
	lx.advance() // '<'
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if r == '>' {
			lx.advance()
			return b.String(), true
		}
		if unicode.IsSpace(r) || r == '<' {
			break
		}
		b.WriteRune(lx.advance())
	}
	lx.pos, lx.line, lx.col = save, saveLine, saveCol
	return "", false
}

// scanString scans a quoted string with escapes, using quote as delimiter.
func (lx *Lexer) scanString(quote rune) (string, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return "", lx.errf("unterminated string")
		}
		r := lx.advance()
		if r == quote {
			return b.String(), nil
		}
		if r == '\\' {
			if lx.pos >= len(lx.src) {
				return "", lx.errf("dangling escape in string")
			}
			e := lx.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteRune(e)
			default:
				return "", lx.errf("unknown escape \\%c", e)
			}
			continue
		}
		b.WriteRune(r)
	}
}
