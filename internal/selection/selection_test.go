package selection

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sofos/internal/cost"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// fixture builds a graph, lattice, and provider.
func fixture(t testing.TB) (*store.Graph, *facet.Lattice, *cost.Provider) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < 8; ci++ {
		for li := 0; li < 5; li++ {
			for yi := 0; yi < 3; yi++ {
				if (ci*li+yi)%6 == 0 {
					continue
				}
				obs := ex(fmt.Sprintf("o%d_%d_%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2017 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(900) + 100))})
			}
		}
	}
	q := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`)
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	l, err := facet.NewLattice(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cost.NewProvider(g, l)
	if err != nil {
		t.Fatal(err)
	}
	return g, l, p
}

func TestGreedyBasics(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	sel, err := Greedy(l, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 3 {
		t.Fatalf("selected %d views, want 3", len(sel.Views))
	}
	if sel.Model != m.Name() {
		t.Errorf("model = %q", sel.Model)
	}
	// No duplicates.
	seen := map[facet.Mask]bool{}
	for _, v := range sel.Views {
		if seen[v.Mask] {
			t.Errorf("duplicate selection %v", v)
		}
		seen[v.Mask] = true
	}
	// Benefits are recorded and non-increasing (greedy marginal gains).
	if len(sel.Benefits) != 3 {
		t.Fatalf("benefits = %v", sel.Benefits)
	}
	for i := 1; i < len(sel.Benefits); i++ {
		if sel.Benefits[i] > sel.Benefits[i-1]+1e-9 {
			t.Errorf("benefit increased: %v", sel.Benefits)
		}
	}
	// Selection helpers.
	if !sel.Contains(sel.Views[0].Mask) || sel.Contains(facet.Mask(0xFFF)) {
		t.Error("Contains wrong")
	}
	if len(sel.Masks()) != 3 {
		t.Error("Masks wrong")
	}
}

func TestGreedyImprovesTotalCost(t *testing.T) {
	_, l, p := fixture(t)
	for _, m := range []cost.Model{
		&cost.TriplesModel{Provider: p},
		&cost.AggValuesModel{Provider: p},
		&cost.NodesModel{Provider: p},
	} {
		empty := TotalCost(l, m, nil)
		prev := empty
		for k := 1; k <= 4; k++ {
			sel, err := Greedy(l, m, k)
			if err != nil {
				t.Fatal(err)
			}
			if sel.TotalCost > prev+1e-9 {
				t.Errorf("%s k=%d: total cost rose from %f to %f", m.Name(), k, prev, sel.TotalCost)
			}
			prev = sel.TotalCost
		}
		if prev >= empty {
			t.Errorf("%s: greedy selection never improved on no-views (%f vs %f)", m.Name(), prev, empty)
		}
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	_, l, p := fixture(t)
	sel, err := Greedy(l, &cost.AggValuesModel{Provider: p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 0 {
		t.Errorf("views = %v", sel.Views)
	}
	if _, err := Greedy(l, &cost.AggValuesModel{Provider: p}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestGreedyBudgetAboveLatticeSize(t *testing.T) {
	_, l, p := fixture(t)
	sel, err := Greedy(l, &cost.AggValuesModel{Provider: p}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) > l.Size() {
		t.Errorf("selected %d views from a lattice of %d", len(sel.Views), l.Size())
	}
}

func TestGreedyStopsWhenNoBenefit(t *testing.T) {
	_, l, _ := fixture(t)
	// A user model with only one finite-cost view: after picking it no
	// candidate has positive benefit.
	um := cost.NewUserSelection("one", []facet.View{l.Top()})
	sel, err := Greedy(l, um, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 1 || sel.Views[0].Mask != l.Top().Mask {
		t.Errorf("views = %v", sel.Views)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.NodesModel{Provider: p}
	a, _ := Greedy(l, m, 3)
	b, _ := Greedy(l, m, 3)
	if fmt.Sprint(a.Masks()) != fmt.Sprint(b.Masks()) {
		t.Errorf("greedy not deterministic: %v vs %v", a.Masks(), b.Masks())
	}
}

func TestGreedyUserSelectionPicksExactlyChosen(t *testing.T) {
	_, l, _ := fixture(t)
	chosen := []facet.View{
		l.Facet.View(facet.MaskFromBits(0)),
		l.Facet.View(facet.MaskFromBits(1, 2)),
	}
	sel, err := Greedy(l, cost.NewUserSelection("user", chosen), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 2 {
		t.Fatalf("views = %v", sel.Views)
	}
	for _, v := range chosen {
		if !sel.Contains(v.Mask) {
			t.Errorf("chosen view %v not selected", v)
		}
	}
}

func TestRandomModelSelectionsVaryWithSeed(t *testing.T) {
	_, l, _ := fixture(t)
	sels := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		sel, err := Greedy(l, &cost.RandomModel{Seed: seed}, 2)
		if err != nil {
			t.Fatal(err)
		}
		sels[fmt.Sprint(sel.Masks())] = true
	}
	if len(sels) < 3 {
		t.Errorf("random selections collapsed: %v", sels)
	}
}

func TestTotalCostMonotoneInSelection(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	s1 := []facet.View{l.Top()}
	s2 := []facet.View{l.Top(), l.Facet.View(facet.MaskFromBits(0))}
	if TotalCost(l, m, s2) > TotalCost(l, m, s1)+1e-9 {
		t.Error("adding a view increased total cost")
	}
	if TotalCost(l, m, nil) != m.BaseCost()*float64(l.Size()) {
		t.Error("empty selection cost wrong")
	}
}

func TestGreedyMemory(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	sizeOf := func(v facet.View) int64 { return p.MustStats(v.Mask).Bytes }
	// Generous budget: selects multiple views.
	big, err := GreedyMemory(l, m, 1<<30, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Views) == 0 {
		t.Fatal("no views under generous budget")
	}
	// Tiny budget: nothing fits.
	small, err := GreedyMemory(l, m, 1, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Views) != 0 {
		t.Errorf("views under 1-byte budget: %v", small.Views)
	}
	// Budget respected.
	var mid int64
	for _, v := range big.Views[:1] {
		mid += sizeOf(v)
	}
	midSel, err := GreedyMemory(l, m, mid, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	var used int64
	for _, v := range midSel.Views {
		used += sizeOf(v)
	}
	if used > mid {
		t.Errorf("budget %d exceeded: %d", mid, used)
	}
	if _, err := GreedyMemory(l, m, -5, sizeOf); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestExhaustiveOptimalBeatsGreedy(t *testing.T) {
	_, l, p := fixture(t)
	for _, m := range []cost.Model{
		&cost.TriplesModel{Provider: p},
		&cost.AggValuesModel{Provider: p},
		&cost.NodesModel{Provider: p},
		&cost.RandomModel{Seed: 3},
	} {
		for k := 1; k <= 2; k++ {
			opt, err := Exhaustive(l, m, k)
			if err != nil {
				t.Fatal(err)
			}
			greedy, err := Greedy(l, m, k)
			if err != nil {
				t.Fatal(err)
			}
			if opt.TotalCost > greedy.TotalCost+1e-9 {
				t.Errorf("%s k=%d: optimal %f worse than greedy %f", m.Name(), k, opt.TotalCost, greedy.TotalCost)
			}
			if len(opt.Views) != k {
				t.Errorf("optimal picked %d views", len(opt.Views))
			}
		}
	}
}

func TestExhaustiveLimits(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	if _, err := Exhaustive(l, m, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Exhaustive(l, m, l.Size()+1); err == nil {
		t.Error("oversized k accepted")
	}
	// k = 0 is the empty selection.
	sel, err := Exhaustive(l, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 0 || sel.TotalCost != TotalCost(l, m, nil) {
		t.Error("k=0 wrong")
	}
}

func TestExhaustiveComboLimit(t *testing.T) {
	// A 16-dimension lattice with k=8 would explode; the guard must refuse.
	dims := make([]string, 10)
	pattern := "?o <http://ex.org/val> ?v .\n"
	sel := ""
	groupBy := ""
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
		pattern += fmt.Sprintf("?o <http://ex.org/p%d> ?d%d .\n", i, i)
		sel += fmt.Sprintf("?d%d ", i)
		groupBy += fmt.Sprintf(" ?d%d", i)
	}
	q := sparql.MustParse("SELECT " + sel + "(SUM(?v) AS ?a) WHERE {\n" + pattern + "} GROUP BY" + groupBy)
	f, err := facet.FromQuery("wide", q)
	if err != nil {
		t.Fatal(err)
	}
	l, err := facet.NewLattice(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(l, &cost.RandomModel{Seed: 1}, 5); err == nil {
		t.Error("combinatorial explosion not guarded")
	}
}

func TestManual(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	chosen := []facet.View{l.Top()}
	sel := Manual(l, m, chosen)
	if sel.Model != "manual" || len(sel.Views) != 1 {
		t.Errorf("manual selection = %+v", sel)
	}
	if sel.TotalCost != TotalCost(l, m, chosen) {
		t.Error("manual total cost wrong")
	}
}

func TestPickBySize(t *testing.T) {
	_, l, p := fixture(t)
	m := &cost.AggValuesModel{Provider: p}
	sel, err := PickBySize(l, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 3 {
		t.Fatalf("picked %d views", len(sel.Views))
	}
	// The apex (1 group) is always the cheapest under aggvalues.
	if sel.Views[0].Mask != 0 {
		t.Errorf("first pick = %v, want apex", sel.Views[0])
	}
	// Picks are the k globally cheapest.
	for _, v := range l.Views() {
		if sel.Contains(v.Mask) {
			continue
		}
		for _, picked := range sel.Views {
			if m.Cost(v) < m.Cost(picked) {
				t.Errorf("unpicked %v cheaper than picked %v", v, picked)
			}
		}
	}
	// PBS is never better than greedy under the same model's objective.
	greedy, err := Greedy(l, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.TotalCost < greedy.TotalCost-1e-9 {
		t.Errorf("PBS beat greedy: %f < %f", sel.TotalCost, greedy.TotalCost)
	}
	// Infinite-cost views are skipped.
	um := cost.NewUserSelection("one", []facet.View{l.Top()})
	one, err := PickBySize(l, um, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Views) != 1 {
		t.Errorf("PBS with one finite view picked %v", one.Views)
	}
	if _, err := PickBySize(l, m, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestGreedyMatchesBruteForceOnTinyLattice(t *testing.T) {
	// For k=1 greedy IS optimal (the first greedy pick maximizes benefit,
	// equivalently minimizes total cost for single-view selections).
	_, l, p := fixture(t)
	m := &cost.NodesModel{Provider: p}
	greedy, err := Greedy(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Exhaustive(l, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(greedy.TotalCost-opt.TotalCost) > 1e-9 {
		t.Errorf("k=1 greedy %f != optimal %f", greedy.TotalCost, opt.TotalCost)
	}
}
