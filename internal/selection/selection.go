// Package selection implements the view-selection algorithms of SOFOS: the
// HRU-style greedy algorithm [Harinarayan, Rajaraman, Ullman 1996] adapted
// to the view lattice of a facet, parameterized by any cost model; a
// memory-budget variant (§3: "this budget can be adapted to regulate the
// space consumption"); and an exhaustive optimum for small budgets, used to
// measure each greedy selection's regret in the hands-on-challenge
// experiment.
package selection

import (
	"fmt"
	"math"
	"sort"

	"sofos/internal/cost"
	"sofos/internal/facet"
)

// Selection is the outcome of a selection run.
type Selection struct {
	Model    string
	Views    []facet.View // in pick order
	Benefits []float64    // greedy benefit at each pick (empty for manual)
	// TotalCost is the objective after selection: the summed cost of
	// answering each lattice view from its cheapest available source.
	TotalCost float64
}

// Masks returns the selected masks in pick order.
func (s *Selection) Masks() []facet.Mask {
	out := make([]facet.Mask, len(s.Views))
	for i, v := range s.Views {
		out[i] = v.Mask
	}
	return out
}

// Contains reports whether the selection includes the mask.
func (s *Selection) Contains(m facet.Mask) bool {
	for _, v := range s.Views {
		if v.Mask == m {
			return true
		}
	}
	return false
}

// TotalCost computes the selection objective for an arbitrary view set:
// Σ over every view W in the lattice of the cost of W's cheapest source —
// the raw graph (BaseCost) or any selected view covering W.
func TotalCost(l *facet.Lattice, m cost.Model, selected []facet.View) float64 {
	total := 0.0
	for _, w := range l.Views() {
		best := m.BaseCost()
		for _, v := range selected {
			if v.Covers(w) {
				if c := m.Cost(v); c < best {
					best = c
				}
			}
		}
		total += best
	}
	return total
}

// Greedy selects up to k views by the HRU greedy rule: at each step pick the
// view whose addition maximizes the total benefit
//
//	B(V, S) = Σ_{W ⊑ V} max(0, costToAnswer_S(W) − C(V))
//
// where costToAnswer starts at BaseCost for every lattice view. Selection
// stops early when no candidate has positive benefit.
func Greedy(l *facet.Lattice, m cost.Model, k int) (*Selection, error) {
	if k < 0 {
		return nil, fmt.Errorf("selection: negative budget %d", k)
	}
	if k > l.Size() {
		k = l.Size()
	}
	costTo := make([]float64, l.Size())
	for i := range costTo {
		costTo[i] = m.BaseCost()
	}
	chosen := make(map[facet.Mask]bool, k)
	sel := &Selection{Model: m.Name()}
	for pick := 0; pick < k; pick++ {
		bestIdx := -1
		bestBenefit := 0.0
		var bestView facet.View
		for _, v := range l.Views() {
			if chosen[v.Mask] {
				continue
			}
			c := m.Cost(v)
			if math.IsInf(c, 1) {
				continue
			}
			benefit := 0.0
			for _, w := range l.Descendants(v) {
				if gain := costTo[w.Mask] - c; gain > 0 {
					benefit += gain
				}
			}
			if bestIdx == -1 || benefit > bestBenefit ||
				(benefit == bestBenefit && v.Mask < bestView.Mask) {
				bestIdx = int(v.Mask)
				bestBenefit = benefit
				bestView = v
			}
		}
		if bestIdx < 0 || bestBenefit <= 0 {
			break // nothing (more) worth materializing under this model
		}
		chosen[bestView.Mask] = true
		sel.Views = append(sel.Views, bestView)
		sel.Benefits = append(sel.Benefits, bestBenefit)
		c := m.Cost(bestView)
		for _, w := range l.Descendants(bestView) {
			if c < costTo[w.Mask] {
				costTo[w.Mask] = c
			}
		}
	}
	sel.TotalCost = TotalCost(l, m, sel.Views)
	return sel, nil
}

// GreedyMemory selects views under a byte budget, maximizing benefit per
// byte (the standard knapsack-style HRU extension). sizeOf reports each
// view's materialized size.
func GreedyMemory(l *facet.Lattice, m cost.Model, budgetBytes int64, sizeOf func(facet.View) int64) (*Selection, error) {
	if budgetBytes < 0 {
		return nil, fmt.Errorf("selection: negative byte budget %d", budgetBytes)
	}
	costTo := make([]float64, l.Size())
	for i := range costTo {
		costTo[i] = m.BaseCost()
	}
	chosen := make(map[facet.Mask]bool)
	remaining := budgetBytes
	sel := &Selection{Model: m.Name() + "+mem"}
	for {
		bestBenefitPerByte := 0.0
		bestBenefit := 0.0
		found := false
		var bestView facet.View
		for _, v := range l.Views() {
			if chosen[v.Mask] {
				continue
			}
			size := sizeOf(v)
			if size <= 0 || size > remaining {
				continue
			}
			c := m.Cost(v)
			if math.IsInf(c, 1) {
				continue
			}
			benefit := 0.0
			for _, w := range l.Descendants(v) {
				if gain := costTo[w.Mask] - c; gain > 0 {
					benefit += gain
				}
			}
			perByte := benefit / float64(size)
			if !found || perByte > bestBenefitPerByte ||
				(perByte == bestBenefitPerByte && v.Mask < bestView.Mask) {
				found = true
				bestBenefitPerByte = perByte
				bestBenefit = benefit
				bestView = v
			}
		}
		if !found || bestBenefit <= 0 {
			break
		}
		chosen[bestView.Mask] = true
		sel.Views = append(sel.Views, bestView)
		sel.Benefits = append(sel.Benefits, bestBenefit)
		remaining -= sizeOf(bestView)
		c := m.Cost(bestView)
		for _, w := range l.Descendants(bestView) {
			if c < costTo[w.Mask] {
				costTo[w.Mask] = c
			}
		}
	}
	sel.TotalCost = TotalCost(l, m, sel.Views)
	return sel, nil
}

// Exhaustive finds the k-subset of the lattice minimizing TotalCost by
// enumerating all C(2^d, k) subsets. Only feasible for small lattices and
// budgets; used as the optimum baseline in the hands-on-challenge
// experiment (E8).
func Exhaustive(l *facet.Lattice, m cost.Model, k int) (*Selection, error) {
	n := l.Size()
	if k < 0 || k > n {
		return nil, fmt.Errorf("selection: budget %d out of range 0..%d", k, n)
	}
	const maxCombos = 2_000_000
	if combos := binomial(n, k); combos > maxCombos {
		return nil, fmt.Errorf("selection: %d subsets exceed the exhaustive limit %d", combos, maxCombos)
	}
	views := l.Views()
	best := math.Inf(1)
	var bestSet []facet.View
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		cur := make([]facet.View, k)
		for i, j := range idx {
			cur[i] = views[j]
		}
		if c := TotalCost(l, m, cur); c < best {
			best = c
			bestSet = cur
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	sort.Slice(bestSet, func(i, j int) bool { return bestSet[i].Mask < bestSet[j].Mask })
	return &Selection{Model: m.Name() + "+optimal", Views: bestSet, TotalCost: best}, nil
}

// binomial computes C(n, k) saturating at math.MaxInt64 / 2.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c > math.MaxInt64/4 {
			return math.MaxInt64 / 2
		}
	}
	return c
}

// Manual wraps an explicit user choice of views as a Selection (demo step
// "User Selected Views").
func Manual(l *facet.Lattice, m cost.Model, chosen []facet.View) *Selection {
	views := append([]facet.View(nil), chosen...)
	return &Selection{
		Model:     "manual",
		Views:     views,
		TotalCost: TotalCost(l, m, views),
	}
}

// PickBySize is the PBS heuristic of Harinarayan et al.: select the k
// cheapest views outright, skipping the benefit computation. PBS matches
// greedy on "size-uniform" lattices but can strand coverage — including it
// makes the greedy-vs-heuristic trade-off measurable.
func PickBySize(l *facet.Lattice, m cost.Model, k int) (*Selection, error) {
	if k < 0 {
		return nil, fmt.Errorf("selection: negative budget %d", k)
	}
	if k > l.Size() {
		k = l.Size()
	}
	views := l.Views()
	sort.SliceStable(views, func(i, j int) bool {
		ci, cj := m.Cost(views[i]), m.Cost(views[j])
		if ci != cj {
			return ci < cj
		}
		return views[i].Mask < views[j].Mask
	})
	var picked []facet.View
	for _, v := range views {
		if len(picked) == k {
			break
		}
		if math.IsInf(m.Cost(v), 1) {
			continue
		}
		picked = append(picked, v)
	}
	return &Selection{
		Model:     m.Name() + "+pbs",
		Views:     picked,
		TotalCost: TotalCost(l, m, picked),
	}, nil
}
