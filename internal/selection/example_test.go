package selection_test

import (
	"fmt"

	"sofos/internal/facet"
	"sofos/internal/selection"
	"sofos/internal/sparql"
)

// levelModel prices a view by how many dimensions it keeps — a stand-in
// for the paper's analytic models, which price views by their measured
// group/triple/node counts.
type levelModel struct{}

func (levelModel) Name() string { return "level" }

// Cost grows with granularity: finer views are more expensive to answer
// from (more groups to scan).
func (levelModel) Cost(v facet.View) float64 { return float64(v.Level() + 1) }

// BaseCost prices answering from the raw graph, which every selection
// competes against.
func (levelModel) BaseCost() float64 { return 100 }

// Example_greedy runs the HRU-style greedy selection over a two-dimension
// lattice: the first pick is the finest view (it alone covers the whole
// lattice, so its total benefit dominates), the second is the apex — the
// cheapest view under this model, worth one extra unit for the queries it
// answers itself.
func Example_greedy() {
	template := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?region ?year (SUM(?amount) AS ?total) WHERE {
  ?s ex:region ?region .
  ?s ex:year ?year .
  ?s ex:amount ?amount .
} GROUP BY ?region ?year`)
	f, err := facet.FromQuery("sales", template)
	if err != nil {
		panic(err)
	}
	lattice, err := facet.NewLattice(f)
	if err != nil {
		panic(err)
	}

	sel, err := selection.Greedy(lattice, levelModel{}, 2)
	if err != nil {
		panic(err)
	}
	for i, v := range sel.Views {
		fmt.Printf("pick %d: %-12s benefit %.0f\n", i+1, v.ID(), sel.Benefits[i])
	}
	fmt.Printf("objective after selection: %.0f\n", sel.TotalCost)

	// Output:
	// pick 1: region+year  benefit 388
	// pick 2: apex         benefit 2
	// objective after selection: 10
}
