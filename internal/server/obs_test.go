package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sofos/internal/api"
	"sofos/internal/obs"
)

// fetchMetrics scrapes /v1/metrics, returning an error instead of failing
// the test — safe to call from the storm test's goroutines.
func fetchMetrics(base string) (string, error) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/v1/metrics returned status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// postJSONErr is postJSON for goroutines: errors are returned, not fatal.
func postJSONErr(url string, in, out any) (int, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// scrapeMetrics fetches /v1/metrics and returns the exposition text.
func scrapeMetrics(t testing.TB, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics returned status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/v1/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// decodeJSON decodes one JSON body.
func decodeJSON(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

// metricValue extracts one sample from an exposition: the value of the first
// line whose name matches and whose label section contains labelSub ("" = any
// labels, including none). Returns 0, false when no line matches.
func metricValue(body, name, labelSub string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue // longer name sharing the prefix
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// outcomeCount reads sofos_query_total for one outcome (0 when unsampled).
func outcomeCount(body, outcome string) float64 {
	v, _ := metricValue(body, "sofos_query_total", `outcome="`+outcome+`"`)
	return v
}

// TestMetricsFamiliesAndOutcomes drives each rewrite outcome through the
// server and asserts the scrape shows the required families with counts that
// reconcile exactly against /v1/debug/queries — the acceptance criterion the
// CI smoke run re-checks end to end.
func TestMetricsFamiliesAndOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize returned status %d", code)
	}

	// country → view hit (stored granularity equals the GROUP BY); apex →
	// partial roll-up (re-aggregated from the finer country view); repeats →
	// cache hits.
	if out := query(t, ts, countryQuery); out.Outcome != obs.OutcomeViewHit {
		t.Fatalf("country query outcome %q, want %q", out.Outcome, obs.OutcomeViewHit)
	}
	if out := query(t, ts, apexQuery); out.Outcome != obs.OutcomePartialRollup {
		t.Fatalf("apex query outcome %q, want %q", out.Outcome, obs.OutcomePartialRollup)
	}
	if out := query(t, ts, countryQuery); out.Outcome != obs.OutcomeViewHit {
		t.Fatalf("cached country query outcome %q, want %q", out.Outcome, obs.OutcomeViewHit)
	}
	query(t, ts, apexQuery)

	body := scrapeMetrics(t, ts)
	for _, family := range []string{
		"sofos_query_total", "sofos_query_seconds", "sofos_http_requests_total",
		"sofos_http_request_seconds", "sofos_cache_hits_total", "sofos_cache_misses_total",
		"sofos_generation", "sofos_graph_version", "sofos_inflight_queries",
		"sofos_goroutines", "sofos_heap_alloc_bytes", "sofos_view_hits_total",
		"sofos_view_groups", "sofos_view_staleness_generations",
		"sofos_checkpoint_age_seconds", "sofos_store_index_bytes",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("scrape is missing family %s", family)
		}
	}

	if got := outcomeCount(body, obs.OutcomeViewHit); got != 1 {
		t.Errorf("view_hit count = %v, want 1", got)
	}
	if got := outcomeCount(body, obs.OutcomePartialRollup); got != 1 {
		t.Errorf("partial_rollup count = %v, want 1", got)
	}
	if got := outcomeCount(body, obs.OutcomeCacheHit); got != 2 {
		t.Errorf("cache_hit count = %v, want 2", got)
	}
	if got := outcomeCount(body, obs.OutcomeFullScan); got != 0 {
		t.Errorf("full_scan count = %v, want 0", got)
	}
	if v, ok := metricValue(body, "sofos_view_hits_total", `view="country"`); !ok || v != 2 {
		t.Errorf("sofos_view_hits_total{view=country} = %v (present %v), want 2", v, ok)
	}
	// Memory-only server: checkpoint age advertises the "none" sentinel.
	if v, _ := metricValue(body, "sofos_checkpoint_age_seconds", ""); v != -1 {
		t.Errorf("memory-only checkpoint age = %v, want -1", v)
	}

	// Every query answered has a ring record, and per-outcome ring counts
	// equal the scraped counters exactly — same label strings, same events.
	var dbg api.DebugQueriesResponse
	if code := getJSON(t, ts.URL+"/v1/debug/queries", &dbg); code != http.StatusOK {
		t.Fatalf("/v1/debug/queries returned status %d", code)
	}
	if dbg.Total != 4 || len(dbg.Entries) != 4 {
		t.Fatalf("debug queries total %d entries %d, want 4/4", dbg.Total, len(dbg.Entries))
	}
	byOutcome := map[string]float64{}
	for _, e := range dbg.Entries {
		byOutcome[e.Outcome]++
		if e.TraceID == "" {
			t.Errorf("ring entry for %q has no trace id", e.Query)
		}
	}
	for _, out := range queryOutcomes {
		if got := outcomeCount(body, out); got != byOutcome[out] {
			t.Errorf("outcome %s: counter %v vs ring %v", out, got, byOutcome[out])
		}
	}
}

// TestQueryTrace asserts the ?trace=1 surface: the span tree in the body,
// the echoed trace id header, caller-supplied id propagation, and that traced
// requests bypass the cache in both directions.
func TestQueryTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Warm the cache with an untraced request.
	query(t, ts, apexQuery)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query?trace=1",
		jsonBody(api.QueryRequest{Query: apexQuery}))
	req.Header.Set(api.HeaderTraceID, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query returned status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderTraceID); got != "cafe0123cafe0123" {
		t.Fatalf("trace id header = %q, want the caller-supplied id", got)
	}
	var out api.QueryResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("traced request was served from the cache")
	}
	if out.TraceID != "cafe0123cafe0123" {
		t.Fatalf("body trace id = %q", out.TraceID)
	}
	if len(out.Trace) == 0 {
		t.Fatal("traced response has no spans")
	}
	names := map[string]bool{}
	for _, sp := range out.Trace {
		names[sp.Name] = true
		if sp.DurUS < 0 {
			t.Errorf("span %s was never closed", sp.Name)
		}
		if sp.Parent >= 0 {
			p := out.Trace[sp.Parent]
			if sp.StartUS < p.StartUS {
				t.Errorf("span %s starts before its parent %s", sp.Name, p.Name)
			}
		}
	}
	for _, want := range []string{"query", "admission.wait", "engine.execute", "engine.compile", "render"} {
		if !names[want] {
			t.Errorf("trace is missing span %q (got %v)", want, names)
		}
	}
	if out.Trace[0].Name != "query" || out.Trace[0].Parent != -1 {
		t.Errorf("first span is %s (parent %d), want the query root", out.Trace[0].Name, out.Trace[0].Parent)
	}

	// The traced body must not have been cached: an untraced repeat is a
	// cache hit of the original untraced body, spanless and trace-id-free.
	repeat := query(t, ts, apexQuery)
	if !repeat.Cached || repeat.TraceID != "" || len(repeat.Trace) != 0 {
		t.Fatalf("untraced repeat: cached=%v trace_id=%q spans=%d, want a clean cached body",
			repeat.Cached, repeat.TraceID, len(repeat.Trace))
	}
}

// TestObsOff asserts the -obs=off surface: queries still work, no trace
// machinery runs, and the observability endpoints answer 503.
func TestObsOff(t *testing.T) {
	_, ts := newTestServer(t, Config{ObsOff: true})

	resp, err := http.Post(ts.URL+"/v1/query?trace=1", "application/json",
		jsonBody(api.QueryRequest{Query: apexQuery}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query with obs off returned status %d", resp.StatusCode)
	}
	if id := resp.Header.Get(api.HeaderTraceID); id != "" {
		t.Fatalf("obs-off response carries trace id %q", id)
	}
	var out api.QueryResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) != 0 || out.TraceID != "" {
		t.Fatal("obs-off response carries trace data")
	}

	var env api.ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/metrics", &env); code != http.StatusServiceUnavailable || env.Error.Code != api.CodeUnavailable {
		t.Fatalf("/v1/metrics with obs off: status %d code %q", code, env.Error.Code)
	}
	if code := getJSON(t, ts.URL+"/v1/debug/queries", &env); code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/debug/queries with obs off: status %d", code)
	}
}

// TestHealthzObservability asserts the /healthz additions: the memory-only
// sentinel for checkpoint age, and live wal_bytes on a durable server (the
// durable case shares the fixture with durability_test).
func TestHealthzObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h api.HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz returned status %d", code)
	}
	if h.CheckpointAgeS != -1 {
		t.Errorf("memory-only checkpoint_age_s = %v, want -1", h.CheckpointAgeS)
	}
	if h.WALBytes != 0 {
		t.Errorf("memory-only wal_bytes = %d, want 0", h.WALBytes)
	}
}

// TestDebugQueriesLimit asserts the ring listing is newest-first and honors
// ?limit.
func TestDebugQueriesLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	query(t, ts, apexQuery)
	query(t, ts, countryQuery)
	var dbg api.DebugQueriesResponse
	if code := getJSON(t, ts.URL+"/v1/debug/queries?limit=1", &dbg); code != http.StatusOK {
		t.Fatalf("debug queries returned status %d", code)
	}
	if dbg.Total != 2 || len(dbg.Entries) != 1 {
		t.Fatalf("total %d entries %d, want total 2, 1 entry", dbg.Total, len(dbg.Entries))
	}
	if dbg.Entries[0].Query != countryQuery {
		t.Fatalf("newest entry is %q, want the country query", dbg.Entries[0].Query)
	}
}

// TestMetricsDuringWriterStorm hammers /v1/metrics and /v1/debug/queries
// while eager multi-statement transactions and queries run full tilt,
// asserting under -race that scrapes always succeed (they must never block
// on the chain writer mutex or the admission semaphore) and that
// sofos_query_total is monotonic across scrapes.
func TestMetricsDuringWriterStorm(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 8})
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize returned status %d", code)
	}

	const writerRounds = 10
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Writer: eager multi-statement transactions, each refreshing the view
	// inside the commit — the heaviest write path the server has.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writerRounds; i++ {
			stmts := []api.UpdateStatement{
				{Insert: fmt.Sprintf("<http://ex.org/storm%d> <http://ex.org/country> \"C0\" .\n<http://ex.org/storm%d> <http://ex.org/lang> \"L0\" .\n<http://ex.org/storm%d> <http://ex.org/year> \"2015\"^^<http://www.w3.org/2001/XMLSchema#gYear> .\n<http://ex.org/storm%d> <http://ex.org/pop> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .", i, i, i, i)},
				{Insert: fmt.Sprintf("<http://ex.org/storm%d_b> <http://ex.org/pop> \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> .", i)},
			}
			var resp api.UpdateResponse
			code, err := postJSONErr(ts.URL+"/v1/update",
				api.UpdateRequest{Statements: stmts, Maintain: "eager"}, &resp)
			if err != nil || code != http.StatusOK {
				report(fmt.Errorf("update round %d: status %d err %v", i, code, err))
				return
			}
		}
	}()

	// Readers: keep queries flowing so counters move while scrapes run.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := apexQuery
				if (i+r)%2 == 1 {
					q = countryQuery
				}
				var out api.QueryResponse
				code, err := postJSONErr(ts.URL+"/v1/query", api.QueryRequest{Query: q}, &out)
				if err != nil || code != http.StatusOK {
					report(fmt.Errorf("query: status %d err %v", code, err))
					return
				}
			}
		}(r)
	}

	// Scrapers: hammer both observability endpoints, checking monotonicity.
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := fetchMetrics(ts.URL)
				if err != nil {
					report(fmt.Errorf("scrape: %w", err))
					return
				}
				total := 0.0
				for _, out := range queryOutcomes {
					total += outcomeCount(body, out)
				}
				if total < last {
					report(fmt.Errorf("sofos_query_total went backwards: %v after %v", total, last))
					return
				}
				last = total
				resp, err := http.Get(ts.URL + "/v1/debug/queries?limit=8")
				if err != nil {
					report(fmt.Errorf("debug queries: %w", err))
					return
				}
				var dbg api.DebugQueriesResponse
				err = decodeJSON(resp.Body, &dbg)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					report(fmt.Errorf("debug queries: status %d err %v", resp.StatusCode, err))
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Quiesced: the counters and the ring agree on the total query count.
	body := scrapeMetrics(t, ts)
	total := 0.0
	for _, out := range queryOutcomes {
		total += outcomeCount(body, out)
	}
	var dbg api.DebugQueriesResponse
	getJSON(t, ts.URL+"/v1/debug/queries", &dbg)
	if float64(dbg.Total) != total {
		t.Errorf("quiesced: ring total %d vs counter total %v", dbg.Total, total)
	}
}
