package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/persist"
)

// Primary side of replication: serve the write-ahead log as a record stream
// (GET /v1/wal), serve the newest checkpoint as a bootstrap archive (GET
// /v1/checkpoint), and track replica progress reports (POST /v1/replica/ack)
// — which is what "ack":"replicas:N" updates wait on.

// Stream pacing: how often the /v1/wal handler re-polls a drained log, and
// how often it emits a heartbeat (primary generation + version) to an idle
// stream so replicas can report zero lag without record traffic.
const (
	walStreamPoll      = 25 * time.Millisecond
	walStreamHeartbeat = 500 * time.Millisecond
)

// replicaTracker follows every replica's applied progress on a primary.
// Progress reports only ever move a replica forward; waiters are woken by a
// broadcast channel that report() closes and replaces.
type replicaTracker struct {
	mu       sync.Mutex
	replicas map[string]*replicaProgress
	bcast    chan struct{}
}

// replicaProgress is one replica's last reported state.
type replicaProgress struct {
	version    int64
	generation int64
	lastSeen   time.Time
}

func newReplicaTracker() *replicaTracker {
	return &replicaTracker{
		replicas: make(map[string]*replicaProgress),
		bcast:    make(chan struct{}),
	}
}

// report records one replica's applied progress (ratcheted — a late or
// duplicate report never moves a replica backwards) and wakes ack waiters.
func (t *replicaTracker) report(id string, version, generation int64) {
	t.mu.Lock()
	p := t.replicas[id]
	if p == nil {
		p = &replicaProgress{}
		t.replicas[id] = p
	}
	if version > p.version {
		p.version = version
	}
	if generation > p.generation {
		p.generation = generation
	}
	p.lastSeen = time.Now()
	close(t.bcast)
	t.bcast = make(chan struct{})
	t.mu.Unlock()
}

// countAtLocked counts replicas whose applied version covers version.
func (t *replicaTracker) countAtLocked(version int64) int {
	n := 0
	for _, p := range t.replicas {
		if p.version >= version {
			n++
		}
	}
	return n
}

// waitFor blocks until n replicas report an applied version >= version,
// returning how many had when it decided. A timeout or canceled request
// returns the count reached plus an error; the batch itself is already
// committed and locally durable either way.
func (t *replicaTracker) waitFor(ctx context.Context, n int, version int64, timeout time.Duration) (int, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		t.mu.Lock()
		got := t.countAtLocked(version)
		ch := t.bcast
		t.mu.Unlock()
		if got >= n {
			return got, nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return got, fmt.Errorf("timed out after %s waiting for %d replica(s) to reach version %d", timeout, n, version)
		case <-ctx.Done():
			return got, fmt.Errorf("request canceled while waiting for replicas: %w", ctx.Err())
		}
	}
}

// snapshot renders tracked replicas for /v1/stats, sorted by ID.
func (t *replicaTracker) snapshot(currentVersion int64) []api.ReplicaInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.ReplicaInfo, 0, len(t.replicas))
	for id, p := range t.replicas {
		lag := currentVersion - p.version
		if lag < 0 {
			lag = 0
		}
		out = append(out, api.ReplicaInfo{
			ID:          id,
			Version:     p.version,
			Generation:  p.generation,
			LagVersions: lag,
			LastSeenMS:  time.Since(p.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleReplicaAck records one replica's progress report.
func (s *Server) handleReplicaAck(w http.ResponseWriter, r *http.Request) {
	if s.role != RolePrimary {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"only a primary accepts replica progress reports")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST a progress report")
		return
	}
	var req api.ReplicaAckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "progress report needs a replica id")
		return
	}
	s.tracker.report(req.ID, req.Version, req.Generation)
	writeJSON(w, http.StatusOK, api.ReplicaAckResponse{OK: true})
}

// handleWALStream serves the replication stream: NDJSON api.WALEvent lines —
// records (the durable payload bytes, bit-exact), heartbeats while idle, and
// a terminal error event when the version chain cannot be continued. The
// "from" parameter is the caller's applied graph version; a caller older
// than the last checkpoint gets 410 Gone and must re-bootstrap from
// /v1/checkpoint, because the records it needs were truncated.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET the stream")
		return
	}
	if s.role != RolePrimary {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"replicas do not serve the replication stream; connect to the primary")
		return
	}
	if s.dur == nil {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"replication requires a durable primary (start with -data-dir)")
		return
	}
	var from int64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad from parameter %q", v)
			return
		}
		from = n
	}
	// Staleness pre-check: everything at or before the last checkpoint's
	// version has been truncated from the log, so a caller behind it can
	// never chain — tell it to re-bootstrap instead of letting the cursor
	// discover the gap record by record.
	if m := s.lastCheckpoint.Load(); m != nil && from < m.GraphVersion {
		httpError(w, http.StatusGone, api.CodeWALTruncated,
			"the log no longer holds versions %d..%d; re-bootstrap from /v1/checkpoint",
			from, m.GraphVersion)
		return
	}
	// A caller ahead of the primary has state this log never produced
	// (a stale primary URL, a wiped data dir): it must also re-bootstrap.
	if v := s.system().GraphVersion(); from > v {
		httpError(w, http.StatusConflict, api.CodeWALGap,
			"from version %d is ahead of the primary's %d; re-bootstrap from /v1/checkpoint", from, v)
		return
	}

	cur := persist.OpenWALCursor(s.dur.Dir.WALDir(), from)
	defer cur.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	beat := func() bool {
		sys := s.system()
		err := enc.Encode(api.WALEvent{
			Heartbeat:  true,
			Generation: sys.Generation(),
			Version:    sys.GraphVersion(),
		})
		flush()
		return err == nil
	}
	if !beat() { // tell the replica where the primary is right away
		return
	}
	lastBeat := time.Now()
	for {
		rec, seq, err := cur.Next()
		switch {
		case err == nil:
			if enc.Encode(api.WALEvent{Seq: seq, Record: rec.Encode()}) != nil {
				return // client gone
			}
			flush()
		case errors.Is(err, persist.ErrWALNoMore):
			select {
			case <-r.Context().Done():
				return
			case <-time.After(walStreamPoll):
			}
			if time.Since(lastBeat) >= walStreamHeartbeat {
				if !beat() {
					return
				}
				lastBeat = time.Now()
			}
		case errors.Is(err, persist.ErrWALGap):
			// A checkpoint truncated segments under the cursor mid-stream.
			_ = enc.Encode(api.WALEvent{Error: &api.Error{Code: api.CodeWALGap, Message: err.Error()}})
			flush()
			return
		default:
			slog.Warn("wal stream to replica failed", "err", err)
			_ = enc.Encode(api.WALEvent{Error: &api.Error{Code: api.CodeInternal, Message: err.Error()}})
			flush()
			return
		}
	}
}

// handleCheckpointArchive streams the newest checkpoint as a tar archive —
// the replica bootstrap path. If a concurrent checkpoint replaces the
// directory between resolving CURRENT and opening the files, the resolve is
// retried once; past the first body byte a failure can only truncate the
// stream (the client's unpack validates completeness).
func (s *Server) handleCheckpointArchive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET the archive")
		return
	}
	if s.role != RolePrimary {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"replicas do not serve bootstrap archives; connect to the primary")
		return
	}
	if s.dur == nil {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"bootstrap archives require a durable primary (start with -data-dir)")
		return
	}
	cw := &countingWriter{w: w}
	for attempt := 0; ; attempt++ {
		cp, err := s.dur.Dir.LatestCheckpoint()
		if err != nil {
			httpError(w, http.StatusInternalServerError, api.CodeInternal, "resolving checkpoint: %v", err)
			return
		}
		if cp == nil {
			httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				"no checkpoint exists yet; try again after the boot checkpoint")
			return
		}
		w.Header().Set("Content-Type", "application/x-tar")
		err = cp.WriteArchive(cw)
		if err == nil {
			return
		}
		if cw.n == 0 && errors.Is(err, os.ErrNotExist) && attempt == 0 {
			continue // checkpoint replaced underneath us; re-resolve
		}
		if cw.n == 0 {
			httpError(w, http.StatusInternalServerError, api.CodeInternal, "archiving checkpoint: %v", err)
		} else {
			slog.Warn("checkpoint archive truncated mid-stream", "err", err)
		}
		return
	}
}

// countingWriter tracks whether any body byte has been written, so the
// archive handler knows if an error envelope is still possible.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// replicationStatsNow renders the /v1/stats replication section for either
// role. Callers hold the read lock.
func (s *Server) replicationStatsNow(sys *core.System) *api.ReplicationStats {
	if s.role == RoleReplica {
		return s.repl.statsNow(sys)
	}
	return &api.ReplicationStats{
		Role:     RolePrimary,
		Replicas: s.tracker.snapshot(sys.GraphVersion()),
	}
}

// replicaLag reports how many generations this server trails its primary
// (0 on a primary).
func (s *Server) replicaLag(sys *core.System) int64 {
	if s.repl == nil {
		return 0
	}
	return s.repl.lag(sys)
}
