package server

import (
	"log/slog"
	"net/http"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/persist"
)

// Durability wires a server to its data directory: the open write-ahead log
// every committed /update batch is appended to before acknowledgement, the
// checkpoint directory, the dataset identity stamped into manifests, and the
// recovery stats of the boot that produced the served system (nil after a
// fresh, non-recovered boot). When Config.Durability is nil the server is
// memory-only — the pre-persistence behavior.
type Durability struct {
	Dir     *persist.Dir
	Log     *persist.Log
	Dataset string
	Scale   int
	Seed    int64

	// Recovery reports what boot-time restore did, surfaced via /stats.
	Recovery *core.RecoveryStats
}

// Checkpoint durably snapshots the published graph and catalog state,
// rotates the WAL, and truncates segments the checkpoint made redundant. It
// holds the chain's writer mutex: queries keep flowing against the published
// snapshot (readers never touch that mutex), writers stall until the
// snapshot is on disk, and two checkpoints never interleave. Serving layers
// call it on the -checkpoint-interval ticker; clients trigger it via POST
// /v1/admin/checkpoint.
func (s *Server) Checkpoint() (*persist.Manifest, error) {
	if s.dur == nil {
		return nil, errNoDurability
	}
	var m *persist.Manifest
	err := s.chain.Exclusive(func(st *core.GenerationState) error {
		var cperr error
		m, cperr = s.checkpointState(st.Sys)
		return cperr
	})
	return m, err
}

// errNoDurability distinguishes "not configured" from checkpoint failures.
var errNoDurability = &noDurabilityError{}

type noDurabilityError struct{}

func (*noDurabilityError) Error() string {
	return "server is memory-only: no data directory configured"
}

// checkpointState is Checkpoint under an already-held chain writer mutex:
// callers either run inside Chain.Exclusive (interval ticker,
// /admin/checkpoint) or inside an open writer transaction (the update path's
// healing and view-change checkpoints, which snapshot the pending fork
// before publishing it — durable before visible). Holding the writer mutex
// is what makes the snapshot sound: no writer can move the state or append
// to the WAL mid-checkpoint, while readers keep answering against the
// published pointer. Rotating the WAL first lets the manifest record exactly
// where replay resumes: every record in older segments is covered by the
// snapshot being written.
func (s *Server) checkpointState(sys *core.System) (*persist.Manifest, error) {
	seq, err := s.dur.Log.Rotate()
	if err != nil {
		return nil, err
	}
	// When the graph still matches the paged snapshot it was restored from
	// (read-mostly serving between checkpoints), the checkpoint hard-links
	// that file instead of re-serializing every run.
	src := persist.SnapshotSource{Write: sys.Graph.Save}
	src.LinkPath, _ = sys.Graph.PagedSource()
	cp, err := s.dur.Dir.WriteCheckpointFrom(persist.Manifest{
		Dataset:      s.dur.Dataset,
		Scale:        s.dur.Scale,
		Seed:         s.dur.Seed,
		GraphVersion: sys.GraphVersion(),
		Generation:   sys.Generation(),
		WALSeq:       seq,
		BaseTriples:  sys.Graph.Len(),
		Views:        len(sys.Catalog.Materialized()),
		CreatedUnix:  time.Now().Unix(),
	}, src, sys.Catalog.SaveState)
	if err != nil {
		return nil, err
	}
	// The freshly published snapshot is a faithful paged image of the current
	// content; future unchanged checkpoints can link it in turn. (When the
	// graph was serialized with a non-block codec the file is v1 and linking
	// never applies — AdoptPagedSource is still harmless, PagedSource only
	// matters for files Save wrote in paged form.)
	if sys.Graph.CodecName() == "block" {
		sys.Graph.AdoptPagedSource(cp.GraphPath())
	}
	if _, err := s.dur.Log.TruncateBefore(seq); err != nil {
		// The checkpoint is complete and correct; stale segments only cost
		// disk until the next truncation succeeds.
		slog.Warn("checkpoint written but wal truncation failed",
			"checkpoint_seq", cp.Manifest.Sequence, "err", err)
	}
	s.lastCheckpoint.Store(&cp.Manifest)
	s.checkpoints.Add(1)
	return &cp.Manifest, nil
}

// persistViewChange checkpoints a catalog mutation that the WAL does not
// capture — view-set changes and manual refreshes — before it is published.
// Updates are replayed from the log; everything else becomes durable by
// snapshotting the pending state inside the writer transaction that produced
// it, so a crash at any point recovers a state the client was actually told
// about, and a state that failed to persist is never published at all. It
// reports whether the caller may publish and acknowledge; on failure it has
// already written the error response, and the caller aborts the transaction
// (nothing applied — the snapshot-chain advantage over the in-place model,
// which could only warn that the live change would not survive a restart).
func (s *Server) persistViewChange(w http.ResponseWriter, action string, sys *core.System) bool {
	if s.dur == nil {
		return true
	}
	if _, err := s.checkpointState(sys); err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal,
			"%s failed to reach a checkpoint: %v; the change was rolled back (nothing applied)",
			action, err)
		return false
	}
	return true
}

// handleAdminCheckpoint triggers a checkpoint on demand.
func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST to checkpoint")
		return
	}
	start := time.Now()
	m, err := s.Checkpoint()
	if err == errNoDurability {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "%v (start with -data-dir)", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "checkpoint failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.CheckpointResponse{
		Manifest:  m,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// persistStatsNow snapshots the durability section, or nil when memory-only.
func (s *Server) persistStatsNow() *api.PersistStats {
	if s.dur == nil {
		return nil
	}
	ps := &api.PersistStats{
		DataDir:     s.dur.Dir.Path(),
		WAL:         s.dur.Log.Stats(),
		WALGap:      s.walGap.Load(),
		Checkpoints: s.checkpoints.Load(),
		Recovery:    s.dur.Recovery,
	}
	if m := s.lastCheckpoint.Load(); m != nil {
		ps.LastCheckpointSeq = m.Sequence
		ps.LastCheckpointGeneration = m.Generation
	}
	return ps
}
