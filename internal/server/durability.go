package server

import (
	"log"
	"net/http"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/persist"
)

// Durability wires a server to its data directory: the open write-ahead log
// every committed /update batch is appended to before acknowledgement, the
// checkpoint directory, the dataset identity stamped into manifests, and the
// recovery stats of the boot that produced the served system (nil after a
// fresh, non-recovered boot). When Config.Durability is nil the server is
// memory-only — the pre-persistence behavior.
type Durability struct {
	Dir     *persist.Dir
	Log     *persist.Log
	Dataset string
	Scale   int
	Seed    int64

	// Recovery reports what boot-time restore did, surfaced via /stats.
	Recovery *core.RecoveryStats
}

// Checkpoint durably snapshots the current graph and catalog state, rotates
// the WAL, and truncates segments the checkpoint made redundant. It runs on
// the read side of the server's lock: queries keep flowing, writers stall
// until the snapshot is on disk. Serving layers call it on the
// -checkpoint-interval ticker; clients trigger it via POST /v1/admin/checkpoint.
func (s *Server) Checkpoint() (*persist.Manifest, error) {
	if s.dur == nil {
		return nil, errNoDurability
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkpointLocked()
}

// errNoDurability distinguishes "not configured" from checkpoint failures.
var errNoDurability = &noDurabilityError{}

type noDurabilityError struct{}

func (*noDurabilityError) Error() string {
	return "server is memory-only: no data directory configured"
}

// checkpointLocked is Checkpoint under an already-held s.mu (either side —
// what matters is that no writer can move the state mid-snapshot). cpMu
// additionally serializes checkpoint writers against each other: two
// read-side callers (interval ticker, /admin/checkpoint) would otherwise
// race WriteCheckpoint's sequence numbering and tmp-dir paths. Rotating the
// WAL first lets the manifest record exactly where replay resumes: every
// record in older segments is covered by the snapshot being written.
func (s *Server) checkpointLocked() (*persist.Manifest, error) {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	sys := s.system()
	seq, err := s.dur.Log.Rotate()
	if err != nil {
		return nil, err
	}
	// When the graph still matches the paged snapshot it was restored from
	// (read-mostly serving between checkpoints), the checkpoint hard-links
	// that file instead of re-serializing every run.
	src := persist.SnapshotSource{Write: sys.Graph.Save}
	src.LinkPath, _ = sys.Graph.PagedSource()
	cp, err := s.dur.Dir.WriteCheckpointFrom(persist.Manifest{
		Dataset:      s.dur.Dataset,
		Scale:        s.dur.Scale,
		Seed:         s.dur.Seed,
		GraphVersion: sys.GraphVersion(),
		Generation:   sys.Generation(),
		WALSeq:       seq,
		BaseTriples:  sys.Graph.Len(),
		Views:        len(sys.Catalog.Materialized()),
		CreatedUnix:  time.Now().Unix(),
	}, src, sys.Catalog.SaveState)
	if err != nil {
		return nil, err
	}
	// The freshly published snapshot is a faithful paged image of the current
	// content; future unchanged checkpoints can link it in turn. (When the
	// graph was serialized with a non-block codec the file is v1 and linking
	// never applies — AdoptPagedSource is still harmless, PagedSource only
	// matters for files Save wrote in paged form.)
	if sys.Graph.CodecName() == "block" {
		sys.Graph.AdoptPagedSource(cp.GraphPath())
	}
	if _, err := s.dur.Log.TruncateBefore(seq); err != nil {
		// The checkpoint is complete and correct; stale segments only cost
		// disk until the next truncation succeeds.
		log.Printf("sofos-serve: checkpoint %d written but wal truncation failed: %v", cp.Manifest.Sequence, err)
	}
	s.lastCheckpoint.Store(&cp.Manifest)
	s.checkpoints.Add(1)
	return &cp.Manifest, nil
}

// persistViewChange checkpoints after a committed catalog mutation that the
// WAL does not capture — view-set changes and manual refreshes. Updates are
// replayed from the log; everything else becomes durable by snapshotting the
// state it produced, so a crash at any point recovers a state the client was
// actually told about. Callers hold the write lock. It reports whether the
// caller may acknowledge; on failure it has already written the error
// response (the mutation is committed in memory but would not survive a
// restart — the client must know).
func (s *Server) persistViewChange(w http.ResponseWriter, action string) bool {
	if s.dur == nil {
		return true
	}
	if _, err := s.checkpointLocked(); err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal,
			"%s applied but checkpointing it failed: %v; the change is live but will not survive a restart until a checkpoint succeeds",
			action, err)
		return false
	}
	return true
}

// handleAdminCheckpoint triggers a checkpoint on demand.
func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST to checkpoint")
		return
	}
	start := time.Now()
	m, err := s.Checkpoint()
	if err == errNoDurability {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "%v (start with -data-dir)", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "checkpoint failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.CheckpointResponse{
		Manifest:  m,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// persistStatsNow snapshots the durability section, or nil when memory-only.
func (s *Server) persistStatsNow() *api.PersistStats {
	if s.dur == nil {
		return nil
	}
	ps := &api.PersistStats{
		DataDir:     s.dur.Dir.Path(),
		WAL:         s.dur.Log.Stats(),
		WALGap:      s.walGap.Load(),
		Checkpoints: s.checkpoints.Load(),
		Recovery:    s.dur.Recovery,
	}
	if m := s.lastCheckpoint.Load(); m != nil {
		ps.LastCheckpointSeq = m.Sequence
		ps.LastCheckpointGeneration = m.Generation
	}
	return ps
}
