package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a sharded LRU over rendered query responses. Keys embed the
// catalog generation and view-set hash (see Server.cacheKey), so a write
// never serves a stale entry: it bumps the generation, every later lookup
// uses a new key, and the orphaned entries age out of the LRU naturally.
// Sharding keeps the per-lookup critical section off the contended path when
// many clients replay the same hot workload.
type resultCache struct {
	shards []cacheShard
	mask   uint64 // len(shards)-1; len is a power of two

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheShard is one LRU segment: a keyed list in recency order.
type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
	cap   int
}

// cacheEntry stores the fully rendered JSON body of a cached answer (with
// the cached flag already set), so a hit is one byte-slice write — no
// re-execution and no re-encoding.
type cacheEntry struct {
	key  string
	body []byte
}

// numCacheShards is fixed at a small power of two: enough to spread lock
// contention across CPUs without fragmenting tiny caches.
const numCacheShards = 16

// newResultCache builds a cache holding up to capacity entries in total.
// A capacity below numCacheShards still grants each shard one slot.
func newResultCache(capacity int) *resultCache {
	per := capacity / numCacheShards
	if per < 1 {
		per = 1
	}
	c := &resultCache{shards: make([]cacheShard, numCacheShards), mask: numCacheShards - 1}
	for i := range c.shards {
		c.shards[i] = cacheShard{ll: list.New(), items: make(map[string]*list.Element), cap: per}
	}
	return c
}

// fnv-1a constants, inlined so shard selection allocates nothing on the
// per-request hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (c *resultCache) shard(key string) *cacheShard {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return &c.shards[h&c.mask]
}

// get returns the cached body for key, promoting it to most recent and
// counting a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	body, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return body, ok
}

// recheck is get for the second lookup of one request (after admission):
// a hit still counts, but a miss was already counted by the fast path.
func (c *resultCache) recheck(key string) ([]byte, bool) {
	body, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	}
	return body, ok
}

func (c *resultCache) lookup(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts (or refreshes) an entry, evicting the least recent on overflow.
func (c *resultCache) put(key string, body []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len returns the live entry count across shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats reports cache effectiveness for /stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{
		Entries:   c.len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
