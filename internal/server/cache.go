package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sofos/internal/api"
)

// resultCache is a sharded LRU over rendered query responses. Keys embed the
// catalog generation and view-set hash (see Server.cacheKey), so a write
// never serves a stale entry: it bumps the generation, every later lookup
// uses a new key, and the orphaned entries age out of the LRU naturally.
// Sharding keeps the per-lookup critical section off the contended path when
// many clients replay the same hot workload.
type resultCache struct {
	shards []cacheShard
	mask   uint64 // len(shards)-1; len is a power of two

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheShard is one LRU segment: a keyed list in recency order. Entries are
// bounded by count (cap) and, when byteCap > 0, by the total rendered bytes
// they hold — bodies are fully rendered []byte, so charging len(body)
// against the budget is exact.
type cacheShard struct {
	mu      sync.Mutex
	ll      *list.List // front = most recent; values are *cacheEntry
	items   map[string]*list.Element
	cap     int
	byteCap int64 // 0 = no byte budget
	bytes   int64 // rendered bytes currently held
}

// cacheEntry stores the fully rendered JSON body of a cached answer (with
// the cached flag already set), so a hit is one byte-slice write — no
// re-execution and no re-encoding.
type cacheEntry struct {
	key  string
	body []byte
}

// numCacheShards is fixed at a small power of two: enough to spread lock
// contention across CPUs without fragmenting tiny caches.
const numCacheShards = 16

// newResultCache builds a cache holding up to capacity entries in total,
// charging rendered body sizes against maxBytes when it is positive (0
// keeps the entry-count bound only). A capacity below numCacheShards still
// grants each shard one slot.
func newResultCache(capacity int, maxBytes int64) *resultCache {
	per := capacity / numCacheShards
	if per < 1 {
		per = 1
	}
	bytesPer := maxBytes / numCacheShards
	if maxBytes > 0 && bytesPer < 1 {
		bytesPer = 1
	}
	c := &resultCache{shards: make([]cacheShard, numCacheShards), mask: numCacheShards - 1}
	for i := range c.shards {
		c.shards[i] = cacheShard{ll: list.New(), items: make(map[string]*list.Element), cap: per, byteCap: bytesPer}
	}
	return c
}

// fnv-1a constants, inlined so shard selection allocates nothing on the
// per-request hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (c *resultCache) shard(key string) *cacheShard {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return &c.shards[h&c.mask]
}

// get returns the cached body for key, promoting it to most recent and
// counting a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	body, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return body, ok
}

// recheck is get for the second lookup of one request (after admission):
// a hit still counts, but a miss was already counted by the fast path.
func (c *resultCache) recheck(key string) ([]byte, bool) {
	body, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	}
	return body, ok
}

func (c *resultCache) lookup(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts (or refreshes) an entry, evicting least-recent entries while
// the shard overflows its entry count or byte budget.
func (c *resultCache) put(key string, body []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body})
		s.bytes += int64(len(body))
	}
	// At least one entry always stays resident, so a single body larger than
	// the shard budget is still served (and evicted by the next insert).
	for s.ll.Len() > s.cap || (s.byteCap > 0 && s.bytes > s.byteCap && s.ll.Len() > 1) {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		s.bytes -= int64(len(e.body))
		delete(s.items, e.key)
		c.evictions.Add(1)
	}
}

// usage returns the live entry count and rendered bytes across shards.
func (c *resultCache) usage() (entries int, bytes int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += s.ll.Len()
		bytes += s.bytes
		s.mu.Unlock()
	}
	return entries, bytes
}

// stats reports cache effectiveness and memory footprint for /stats.
func (c *resultCache) stats() api.CacheStats {
	entries, bytes := c.usage()
	var maxBytes int64
	for i := range c.shards {
		maxBytes += c.shards[i].byteCap
	}
	return api.CacheStats{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  maxBytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
