// Package server exposes a SOFOS system over HTTP: the online module as a
// concurrent analytics service. Four endpoints cover the demo's live loop —
// /query answers analytical queries through the rewriter (so materialized
// views are used transparently), /update applies batched inserts and
// deletes, /views lists and manages materializations, and /stats reports
// serving and cache health.
//
// Concurrency model: queries share the read side of one RWMutex and execute
// against the store's lock-free snapshot iterators, so readers never block
// each other; all catalog mutations (updates, materialize/drop/reset,
// refresh commits) serialize on the write side, so every answer is
// consistent with exactly one catalog generation. View refresh recomputes
// contents on the read side (PlanRefresh) and only takes the write lock for
// the short diff-apply step (CommitRefresh), keeping the service available
// during maintenance. A global semaphore bounds concurrently executing
// queries (admission control), and a sharded LRU result cache keyed on
// (normalized query, catalog generation, view-set hash) serves repeated
// queries without re-execution while never returning a stale answer.
//
// Durability (optional, Config.Durability): committed /update batches are
// appended to a write-ahead log inside the write critical section before
// the response is sent, catalog mutations the log does not capture write a
// checkpoint before acknowledging, and /admin/checkpoint snapshots on
// demand — see internal/persist and durability.go.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sofos/internal/core"
	"sofos/internal/persist"
	"sofos/internal/rewrite"
	"sofos/internal/sparql"
)

// Config tunes a Server; the zero value is the production default.
type Config struct {
	// MaxConcurrent bounds queries executing at once (admission control).
	// Further requests queue until a slot frees. 0 means 2×GOMAXPROCS.
	MaxConcurrent int

	// MaxWorkers caps the per-request intra-query parallelism a client may
	// ask for via the "workers" field. 0 means the system's worker count.
	MaxWorkers int

	// CacheEntries is the result cache capacity in entries. 0 means 4096;
	// negative disables caching.
	CacheEntries int

	// CacheBytes bounds the total rendered bytes the result cache may hold
	// (bodies are stored fully rendered, so sizes are exact). 0 means no
	// byte budget — the entry-count bound alone, today's default behavior.
	CacheBytes int64

	// SelectionSeed seeds cost models for POST /views materialize-by-model
	// actions, so runtime selections reproduce the startup-time ones made
	// with the same seed. 0 means 1.
	SelectionSeed int64

	// Durability, when non-nil, makes the server durable: every committed
	// /update batch is appended to the write-ahead log before it is
	// acknowledged, catalog mutations outside the update path checkpoint the
	// state they produce, and POST /admin/checkpoint is served. Nil keeps
	// the server memory-only.
	Durability *Durability
}

// withDefaults resolves zero fields.
func (c Config) withDefaults(sys *core.System) Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = sys.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.SelectionSeed == 0 {
		c.SelectionSeed = 1
	}
	return c
}

// Server serves one SOFOS system over HTTP. Create with New, mount via
// Handler.
type Server struct {
	sys *core.System
	cfg Config

	// mu orders queries against catalog mutations: every answer is computed
	// entirely within one read-side critical section, so it reflects exactly
	// one catalog generation; every mutation holds the write side.
	mu sync.RWMutex

	cache *resultCache  // nil when disabled
	sem   chan struct{} // admission semaphore, capacity MaxConcurrent

	// keyPrefix memoizes the "<generation>|<view-set hash>|" cache-key
	// prefix so the hot read path does not rebuild the view-set hash on
	// every request; it is recomputed only after the generation moves.
	keyPrefix atomic.Value // of prefixState

	mux     *http.ServeMux
	started time.Time

	queries atomic.Int64 // /query requests answered (including cache hits)
	updates atomic.Int64 // /update batches applied

	// dur is the durability wiring (nil = memory-only); lastCheckpoint and
	// checkpoints track checkpoint activity for /stats. Atomics because the
	// interval checkpointer and /admin/checkpoint can both write them.
	// cpMu serializes checkpoint writers against each other: checkpoints run
	// on the read side of mu, so the interval ticker and /admin/checkpoint
	// could otherwise interleave inside one checkpoint sequence number.
	// walGap records that a committed batch failed to reach the WAL and no
	// healing checkpoint has succeeded yet; further updates are refused
	// until one does (see handleUpdate).
	dur            *Durability
	cpMu           sync.Mutex
	lastCheckpoint atomic.Pointer[persist.Manifest]
	checkpoints    atomic.Int64
	walGap         atomic.Bool
}

// New wraps a system in a server with the given configuration.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults(sys)
	s := &Server{
		sys:     sys,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
		started: time.Now(),
		dur:     cfg.Durability,
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/views", s.handleViews)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/admin/checkpoint", s.handleAdminCheckpoint)
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the served system (for tests and embedding callers).
func (s *Server) System() *core.System { return s.sys }

// prefixState is one memoized cache-key prefix (see Server.keyPrefix).
type prefixState struct {
	generation int64
	prefix     string
}

// cacheKey builds the result-cache key for a query under the current
// catalog state. Callers must hold s.mu (either side): the generation and
// view-set hash must belong to the same state the answer is computed in —
// which also means the generation cannot move mid-call, so concurrent
// readers memoizing the same prefix store identical values.
func (s *Server) cacheKey(norm string) string {
	gen := s.sys.Generation()
	if p, ok := s.keyPrefix.Load().(prefixState); ok && p.generation == gen {
		return p.prefix + norm
	}
	prefix := strconv.FormatInt(gen, 10) + "|" +
		strconv.FormatUint(s.sys.ViewSetHash(), 16) + "|"
	s.keyPrefix.Store(prefixState{generation: gen, prefix: prefix})
	return prefix + norm
}

// queryRequest is the /query request body. GET requests pass the query in
// the "q" parameter and workers in "workers" instead.
type queryRequest struct {
	Query   string `json:"query"`
	Workers int    `json:"workers,omitempty"` // intra-query parallelism cap
}

// queryResponse is the /query response body. Rows are rendered terms in
// SELECT order. Cached responses re-serve a previous execution's rows;
// ElapsedUS then reports the original execution time.
type queryResponse struct {
	Vars       []string   `json:"vars"`
	Rows       [][]string `json:"rows"`
	Via        string     `json:"via"`              // answering view ID or "base"
	Reason     string     `json:"reason,omitempty"` // base fallback reason
	Generation int64      `json:"generation"`       // catalog generation answered at
	Cached     bool       `json:"cached"`
	ElapsedUS  int64      `json:"elapsed_us"`
}

// handleQuery answers one analytical query, consulting the result cache
// first. Admission: cache hits bypass the semaphore (they execute nothing);
// misses wait for an execution slot.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		if ws := r.URL.Query().Get("workers"); ws != "" {
			n, err := strconv.Atoi(ws)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad workers parameter %q", ws)
				return
			}
			req.Workers = n
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET ?q= or POST a JSON body")
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "empty query")
		return
	}
	q, err := sparql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}
	norm := rewrite.CacheKey(q)

	// Fast path: serve from the cache under the read lock (the key must be
	// computed in the same state the entry was stored under).
	if s.cache != nil {
		s.mu.RLock()
		body, ok := s.cache.get(s.cacheKey(norm))
		s.mu.RUnlock()
		if ok {
			s.queries.Add(1)
			writeCachedBody(w, body)
			return
		}
	}

	// Admission control: occupy an execution slot before taking the read
	// lock, so queued queries do not hold the lock and block writers.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "request canceled while queued")
		return
	}

	workers := req.Workers
	if workers <= 0 || workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	var key string
	if s.cache != nil {
		key = s.cacheKey(norm) // state may have advanced since the fast path
		if body, ok := s.cache.recheck(key); ok {
			s.queries.Add(1)
			writeCachedBody(w, body)
			return
		}
	}
	ans, err := s.sys.AnswerWithWorkers(q, workers)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "execution error: %v", err)
		return
	}
	resp := &queryResponse{
		Vars:       ans.Result.Vars,
		Rows:       renderRows(ans),
		Via:        ans.ViaLabel(),
		Reason:     ans.Reason,
		Generation: s.sys.Generation(),
		ElapsedUS:  ans.Elapsed.Microseconds(),
	}
	if s.cache != nil {
		// Render the cached variant once at insert time; hits serve the
		// bytes verbatim instead of re-encoding the rows per request.
		resp.Cached = true
		if body, err := json.Marshal(resp); err == nil {
			s.cache.put(key, body)
		}
		resp.Cached = false
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// renderRows renders result values as strings in SELECT order.
func renderRows(ans *rewrite.Answer) [][]string {
	rows := make([][]string, len(ans.Result.Rows))
	for i, row := range ans.Result.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		rows[i] = cells
	}
	return rows
}

// writeCachedBody serves a pre-rendered cached response body.
func writeCachedBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// errorResponse is the JSON body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-stream; the
	// client sees a truncated body and re-requests.
	_ = json.NewEncoder(w).Encode(v)
}
