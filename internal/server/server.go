// Package server exposes a SOFOS system over HTTP: the online module as a
// concurrent analytics service. The versioned /v1 route tree covers the live
// loop — /v1/query answers analytical queries through the rewriter (so
// materialized views are used transparently), /v1/update applies batched
// inserts and deletes, /v1/views lists and manages materializations, and
// /v1/stats reports serving and cache health. The legacy unversioned paths
// remain as thin aliases that serve identical bodies plus a Deprecation
// header naming the successor. Request and response bodies are the typed
// structs of internal/api; every non-200 response is the uniform
// {"error":{"code","message"}} envelope, and every response carries an
// X-Sofos-Generation header so clients can track the catalog generation they
// have observed.
//
// Concurrency model (snapshot-chain MVCC): the server publishes immutable
// generations through core.Chain — an atomic pointer to a
// {system, generation, view-set hash, cache-key prefix} snapshot. A query
// loads the pointer once and answers entirely against that snapshot, so
// readers are wait-free: they never take a lock, never block each other,
// and never block behind a writer, even mid-refresh. Writers (updates,
// materialize/drop/reset, refresh commits, replica apply) serialize on the
// chain's writer mutex — which readers never touch — prepare the next
// generation on a copy-on-write fork sharing every immutable run with the
// published snapshot, and publish it with a single atomic store. Every
// answer is therefore consistent with exactly one committed generation.
// A global semaphore bounds concurrently executing queries (admission
// control), and a sharded LRU result cache keyed on (normalized query,
// catalog generation, view-set hash) serves repeated queries without
// re-execution while never returning a stale answer.
//
// Durability (optional, Config.Durability): committed /v1/update batches are
// appended to a write-ahead log inside the write critical section before
// the response is sent, catalog mutations the log does not capture write a
// checkpoint before acknowledging, and /v1/admin/checkpoint snapshots on
// demand — see internal/persist and durability.go.
//
// Replication (optional): a durable primary serves its log as an NDJSON
// stream on GET /v1/wal and its newest checkpoint as a tar archive on GET
// /v1/checkpoint; replicas (Config.Replica) bootstrap from the archive, tail
// the stream through the same incremental maintenance path recovery takes,
// reject writes, and report applied progress back via POST /v1/replica/ack —
// which is what /v1/update acknowledgement levels ("ack":"replicas:N") wait
// on. See replication.go (primary side) and replica.go (replica side).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/obs"
	"sofos/internal/persist"
	"sofos/internal/rewrite"
	"sofos/internal/sparql"
)

// Server roles, advertised in /v1/stats and /healthz.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// Config tunes a Server; the zero value is the production default.
type Config struct {
	// MaxConcurrent bounds queries executing at once (admission control).
	// Further requests queue until a slot frees. 0 means 2×GOMAXPROCS.
	MaxConcurrent int

	// MaxWorkers caps the per-request intra-query parallelism a client may
	// ask for via the "workers" field. 0 means the system's worker count.
	MaxWorkers int

	// CacheEntries is the result cache capacity in entries. 0 means 4096;
	// negative disables caching.
	CacheEntries int

	// CacheBytes bounds the total rendered bytes the result cache may hold
	// (bodies are stored fully rendered, so sizes are exact). 0 means no
	// byte budget — the entry-count bound alone, today's default behavior.
	CacheBytes int64

	// SelectionSeed seeds cost models for POST /views materialize-by-model
	// actions, so runtime selections reproduce the startup-time ones made
	// with the same seed. 0 means 1.
	SelectionSeed int64

	// Durability, when non-nil, makes the server durable: every committed
	// /update batch is appended to the write-ahead log before it is
	// acknowledged, catalog mutations outside the update path checkpoint the
	// state they produce, and POST /admin/checkpoint is served. Nil keeps
	// the server memory-only.
	Durability *Durability

	// AckTimeout bounds how long an update with "ack":"replicas:N" waits for
	// N replicas to report the batch applied before giving up with a
	// replication_timeout error (the batch is committed and locally durable
	// either way). 0 means 10s.
	AckTimeout time.Duration

	// ReadWait bounds how long a replica holds a query whose
	// X-Sofos-Min-Generation is ahead of the applied state before
	// redirecting the client to the primary. 0 means 2s.
	ReadWait time.Duration

	// Replica, when non-nil, puts the server in read-replica mode: it
	// rejects writes, tails the primary's /v1/wal stream (StartReplication),
	// and reports applied progress back. Durability is ignored for replicas —
	// they re-bootstrap from the primary's checkpoint instead of local disk.
	Replica *ReplicaOptions

	// ObsOff disables observability entirely: no tracing, no metrics, no
	// query ring; /v1/metrics and /v1/debug/queries answer 503. The default
	// (false) keeps it on — the instrumented hot path is within noise of
	// off (see BenchmarkTracedQueryOverhead).
	ObsOff bool

	// SlowQueryMS promotes queries at least this slow to the structured log
	// (and marks them in /v1/debug/queries). 0 means 500ms; negative
	// disables promotion while keeping tracing on.
	SlowQueryMS int

	// TraceRing is the capacity of the recent-query ring behind
	// /v1/debug/queries. 0 means 256.
	TraceRing int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults(sys *core.System) Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = sys.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.SelectionSeed == 0 {
		c.SelectionSeed = 1
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.ReadWait <= 0 {
		c.ReadWait = 2 * time.Second
	}
	if c.SlowQueryMS == 0 {
		c.SlowQueryMS = 500
	}
	if c.Replica != nil {
		// Replicas hold no local durable state: their data directory is the
		// primary's, reached through bootstrap archives and the WAL stream.
		c.Durability = nil
	}
	return c
}

// Server serves one SOFOS system over HTTP. Create with New, mount via
// Handler.
type Server struct {
	// chain is the MVCC snapshot chain. Handlers load the published
	// generation once per request and answer against it without any lock;
	// mutations run as chain transactions (fork, mutate, publish) under the
	// chain's writer mutex, which readers never acquire. On a replica the
	// apply loop is the only writer, and a re-bootstrap resets the chain to
	// the freshly restored system.
	chain *core.Chain
	cfg   Config
	role  string

	cache *resultCache  // nil when disabled
	sem   chan struct{} // admission semaphore, capacity MaxConcurrent

	mux     *http.ServeMux
	started time.Time

	queries atomic.Int64 // /query requests answered (including cache hits)
	updates atomic.Int64 // /update batches applied

	// dur is the durability wiring (nil = memory-only); lastCheckpoint and
	// checkpoints track checkpoint activity for /stats. Atomics because the
	// interval checkpointer and /admin/checkpoint can both write them.
	// Checkpoint writers serialize on the chain's writer mutex (see
	// Checkpoint), so two checkpoints never interleave inside one sequence
	// number and a snapshot never races a WAL append.
	// walGap records that a committed batch failed to reach the WAL and no
	// healing checkpoint has succeeded yet; further updates are refused
	// until one does (see commitUpdate).
	dur            *Durability
	lastCheckpoint atomic.Pointer[persist.Manifest]
	checkpoints    atomic.Int64
	walGap         atomic.Bool

	// tracker follows replica progress on a primary (nil on replicas);
	// repl is the apply-loop state on a replica (nil on primaries).
	tracker *replicaTracker
	repl    *replicaRuntime

	// obs is the observability state (metrics registry, trace ring, slow
	// threshold); nil when Config.ObsOff.
	obs *serverObs
}

// New wraps a system in a server with the given configuration.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults(sys)
	s := &Server{
		chain:   core.NewChain(sys),
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
		started: time.Now(),
		dur:     cfg.Durability,
	}
	if cfg.Replica != nil {
		s.role = RoleReplica
		s.repl = newReplicaRuntime(cfg.Replica)
	} else {
		s.role = RolePrimary
		s.tracker = newReplicaTracker()
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	if !cfg.ObsOff {
		s.obs = newServerObs(s, cfg)
	}
	// The versioned route tree, with the legacy unversioned paths kept as
	// thin deprecated aliases onto the same handlers. Both spellings share
	// one instrumented handler, so the endpoint metric label is always the
	// canonical path.
	for path, h := range map[string]http.HandlerFunc{
		"/query":            s.handleQuery,
		"/update":           s.handleUpdate,
		"/views":            s.handleViews,
		"/stats":            s.handleStats,
		"/healthz":          s.handleHealthz,
		"/admin/checkpoint": s.handleAdminCheckpoint,
	} {
		h = s.instrument(path, h)
		s.mux.HandleFunc(api.Prefix+path, h)
		s.mux.HandleFunc(path, deprecatedAlias(path, h))
	}
	// Replication and observability endpoints exist only under /v1 — they
	// postdate the legacy surface.
	s.mux.HandleFunc(api.Prefix+"/wal", s.instrument("/wal", s.handleWALStream))
	s.mux.HandleFunc(api.Prefix+"/checkpoint", s.instrument("/checkpoint", s.handleCheckpointArchive))
	s.mux.HandleFunc(api.Prefix+"/replica/ack", s.instrument("/replica/ack", s.handleReplicaAck))
	s.mux.HandleFunc(api.Prefix+"/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc(api.Prefix+"/debug/queries", s.instrument("/debug/queries", s.handleDebugQueries))
	return s
}

// deprecatedAlias wraps a /v1 handler for its legacy unversioned path:
// identical behavior plus headers telling the client where to migrate.
func deprecatedAlias(path string, h http.HandlerFunc) http.HandlerFunc {
	successor := api.Prefix + path
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.HeaderDeprecation, "true")
		w.Header().Set("Link", link)
		h(w, r)
	}
}

// Handler returns the HTTP handler serving all endpoints. Every response is
// stamped with the X-Sofos-Generation header (see genWriter).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mux.ServeHTTP(&genWriter{ResponseWriter: w, srv: s}, r)
	})
}

// genWriter stamps the catalog generation onto the response at header-flush
// time — after the handler finished its critical section, so the advertised
// generation is at least the one the body was computed at (the counter only
// moves forward). It forwards Flush so the /v1/wal stream can push lines
// through any buffering layers.
type genWriter struct {
	http.ResponseWriter
	srv   *Server
	wrote bool
}

func (w *genWriter) WriteHeader(status int) {
	if !w.wrote {
		w.wrote = true
		w.Header().Set(api.HeaderGeneration,
			strconv.FormatInt(w.srv.chain.Load().Generation, 10))
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *genWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

func (w *genWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// system returns the currently published system. Handlers that need a
// single consistent state pin s.chain.Load() once instead and use its Sys
// throughout; this accessor is for one-shot reads (progress reports,
// liveness) where the freshest published pointer is what's wanted.
func (s *Server) system() *core.System { return s.chain.Load().Sys }

// System returns the served system (for tests and embedding callers).
func (s *Server) System() *core.System { return s.system() }

// Chain exposes the MVCC snapshot chain (for tests and embedding callers).
func (s *Server) Chain() *core.Chain { return s.chain }

// Role returns RolePrimary or RoleReplica.
func (s *Server) Role() string { return s.role }

// handleQuery answers one analytical query, consulting the result cache
// first. Admission: cache hits bypass the semaphore (they execute nothing);
// misses wait for an execution slot. On a replica, a request whose
// X-Sofos-Min-Generation is ahead of the applied state first waits briefly
// for the replication stream and then redirects to the primary, preserving
// read-your-writes for clients that funnel writes there.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		if ws := r.URL.Query().Get("workers"); ws != "" {
			n, err := strconv.Atoi(ws)
			if err != nil {
				httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad workers parameter %q", ws)
				return
			}
			req.Workers = n
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET ?q= or POST a JSON body")
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "empty query")
		return
	}
	q, err := sparql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeParseError, "parse error: %v", err)
		return
	}
	norm := rewrite.CacheKey(q)

	if s.role == RoleReplica && !s.gateMinGeneration(w, r) {
		return
	}

	// Tracing: every query gets a trace id — caller-supplied via the
	// X-Sofos-Trace-Id header or freshly generated — echoed back on the
	// response so clients correlate across primary and replica. ?trace=1
	// additionally returns the span tree in the body; such a request
	// bypasses the cache entirely (cached bodies carry no spans, and a
	// traced body must not be served to untraced requests).
	var (
		tr        *obs.Trace
		root      obs.SpanHandle
		wantTrace bool
	)
	if s.obs != nil {
		id := r.Header.Get(api.HeaderTraceID)
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(api.HeaderTraceID, id)
		wantTrace = r.URL.Query().Get("trace") == "1"
		tr = obs.NewTrace(id)
		root = tr.Span("query")
	}

	// Fast path: serve from the cache against the published generation. The
	// key embeds the generation and view-set hash, so an entry stored under
	// an older state simply misses — no lock needed for correctness.
	if s.cache != nil && !wantTrace {
		st := s.chain.Load()
		probe := root.Child("cache.probe")
		body, ok := s.cache.get(st.CacheKeyPrefix + norm)
		probe.Attr("result", cacheResult(ok))
		probe.End()
		if ok {
			s.queries.Add(1)
			if s.obs != nil {
				s.obs.finishQuery(tr, root, obs.QueryRecord{
					TraceID:    tr.ID(),
					Query:      req.Query,
					Outcome:    obs.OutcomeCacheHit,
					Generation: st.Generation,
				}, false)
			}
			writeCachedBody(w, body)
			return
		}
	}

	// Admission control: occupy an execution slot before taking the read
	// lock, so queued queries do not hold the lock and block writers.
	admit := root.Child("admission.wait")
	select {
	case s.sem <- struct{}{}:
		admit.End()
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		admit.End()
		if s.obs != nil {
			s.obs.finishQuery(tr, root, obs.QueryRecord{
				TraceID: tr.ID(),
				Query:   req.Query,
				Outcome: obs.OutcomeError,
				Err:     "request canceled while queued",
			}, false)
		}
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable, "request canceled while queued")
		return
	}

	workers := req.Workers
	if workers <= 0 || workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}

	// Pin one published generation and answer entirely against it: the
	// snapshot is immutable, so no lock is held while executing, and a
	// writer publishing mid-query never perturbs this answer.
	st := s.chain.Load()
	root.AttrInt("generation", st.Generation)
	var key string
	if s.cache != nil && !wantTrace {
		key = st.CacheKeyPrefix + norm // state may have advanced since the fast path
		recheck := root.Child("cache.recheck")
		body, ok := s.cache.recheck(key)
		recheck.Attr("result", cacheResult(ok))
		recheck.End()
		if ok {
			s.queries.Add(1)
			if s.obs != nil {
				s.obs.finishQuery(tr, root, obs.QueryRecord{
					TraceID:    tr.ID(),
					Query:      req.Query,
					Outcome:    obs.OutcomeCacheHit,
					Generation: st.Generation,
				}, false)
			}
			writeCachedBody(w, body)
			return
		}
	}
	ans, err := st.Sys.AnswerObserved(q, workers, root)
	if err != nil {
		if s.obs != nil {
			s.obs.finishQuery(tr, root, obs.QueryRecord{
				TraceID:    tr.ID(),
				Query:      req.Query,
				Outcome:    obs.OutcomeError,
				Generation: st.Generation,
				Err:        err.Error(),
			}, false)
		}
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "execution error: %v", err)
		return
	}
	render := root.Child("render")
	resp := &api.QueryResponse{
		Vars:       ans.Result.Vars,
		Rows:       renderRows(ans),
		Via:        ans.ViaLabel(),
		Reason:     ans.Reason,
		Outcome:    ans.Outcome,
		Generation: st.Generation,
		ElapsedUS:  ans.Elapsed.Microseconds(),
	}
	render.AttrInt("rows", int64(len(resp.Rows)))
	render.End()
	if s.cache != nil && !wantTrace {
		// Render the cached variant once at insert time; hits serve the
		// bytes verbatim instead of re-encoding the rows per request. The
		// body is cached before any trace fields are attached: the trace id
		// header is the canonical per-request carrier, and span trees are
		// never shared across requests.
		resp.Cached = true
		if body, err := json.Marshal(resp); err == nil {
			s.cache.put(key, body)
		}
		resp.Cached = false
	}
	if s.obs != nil {
		view := ""
		if ans.Via != nil {
			view = ans.Via.View().ID()
		}
		spans := s.obs.finishQuery(tr, root, obs.QueryRecord{
			TraceID:    tr.ID(),
			Query:      req.Query,
			Outcome:    ans.Outcome,
			View:       view,
			Reason:     ans.Reason,
			Generation: st.Generation,
			Rows:       len(resp.Rows),
		}, wantTrace)
		if wantTrace {
			resp.TraceID = tr.ID()
			resp.Trace = spans
		}
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// cacheResult labels a cache probe span's outcome.
func cacheResult(ok bool) string {
	if ok {
		return "hit"
	}
	return "miss"
}

// gateMinGeneration enforces X-Sofos-Min-Generation on a replica: wait up to
// cfg.ReadWait for the apply loop to reach the requested generation, then
// redirect to the primary. Reports whether the request may proceed locally
// (on failure the response has been written).
func (s *Server) gateMinGeneration(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(api.HeaderMinGeneration)
	if h == "" {
		return true
	}
	minGen, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"bad %s header %q", api.HeaderMinGeneration, h)
		return false
	}
	if minGen <= 0 || s.waitForGeneration(r.Context(), minGen, s.cfg.ReadWait) {
		return true
	}
	// Still behind: route the read to the primary, which by construction has
	// every generation it ever advertised.
	if primary := s.repl.primaryURL(); primary != "" {
		http.Redirect(w, r, strings.TrimSuffix(primary, "/")+r.URL.RequestURI(),
			http.StatusTemporaryRedirect)
		return false
	}
	httpError(w, http.StatusServiceUnavailable, api.CodeStaleReplica,
		"replica is at generation %d, behind the requested %d",
		s.system().Generation(), minGen)
	return false
}

// renderRows renders result values as strings in SELECT order.
func renderRows(ans *rewrite.Answer) [][]string {
	rows := make([][]string, len(ans.Result.Rows))
	for i, row := range ans.Result.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		rows[i] = cells
	}
	return rows
}

// writeCachedBody serves a pre-rendered cached response body.
func writeCachedBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// httpError writes the uniform error envelope: a stable machine-readable
// code plus a human-readable message.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: api.Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header are unrecoverable mid-stream; the
	// client sees a truncated body and re-requests.
	_ = json.NewEncoder(w).Encode(v)
}
