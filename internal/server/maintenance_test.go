package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"sofos/internal/api"
)

// insertNT renders one pop observation as N-Triples text.
func insertNT(id string, pop int) string {
	return strings.Join([]string{
		fmt.Sprintf("<http://ex.org/%s> <http://ex.org/country> \"C0\" .", id),
		fmt.Sprintf("<http://ex.org/%s> <http://ex.org/lang> \"L0\" .", id),
		fmt.Sprintf("<http://ex.org/%s> <http://ex.org/year> \"2015\"^^<http://www.w3.org/2001/XMLSchema#gYear> .", id),
		fmt.Sprintf("<http://ex.org/%s> <http://ex.org/pop> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .", id, pop),
	}, "\n")
}

// TestUpdateEagerMaintain: maintain=eager refreshes stale views inside the
// update's critical section — via the incremental path, since the committed
// delta is captured — so the response reports zero remaining stale views
// and the next query sees the fresh aggregate.
func TestUpdateEagerMaintain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize status %d", code)
	}
	var up api.UpdateResponse
	code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: insertNT("obsEager", 1000), Maintain: "eager"}, &up)
	if code != http.StatusOK {
		t.Fatalf("eager update status %d", code)
	}
	if up.Inserted != 4 {
		t.Errorf("inserted = %d, want 4", up.Inserted)
	}
	if up.Refreshed != 1 || up.Stale != 0 {
		t.Errorf("eager update refreshed %d, stale %d; want 1, 0", up.Refreshed, up.Stale)
	}
	if up.Incremental != 1 {
		t.Errorf("incremental = %d, want the delta path to have run", up.Incremental)
	}
	// The refreshed view answers with the new triples folded in.
	r := query(t, ts, countryQuery)
	if r.Via != "country" {
		t.Fatalf("query answered via %q, want the refreshed view", r.Via)
	}
	// /stats reports the per-view maintenance bookkeeping.
	var st api.StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Maintenance != "self-maintainable-both" {
		t.Errorf("maintenance classification = %q", st.Maintenance)
	}
	if len(st.Views) != 1 {
		t.Fatalf("stats views = %+v", st.Views)
	}
	vs := st.Views[0]
	if vs.ID != "country" || vs.Mode != "self-maintainable-both" || vs.LastPath != "incremental" {
		t.Errorf("view maintenance stats = %+v", vs)
	}
	if vs.Stale || vs.LastDeltaSize != 4 {
		t.Errorf("view maintenance stats = %+v, want fresh with delta size 4", vs)
	}
}

func TestUpdateLazyLeavesStale(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize status %d", code)
	}
	var up api.UpdateResponse
	if code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: insertNT("obsLazy", 1), Maintain: "lazy"}, &up); code != http.StatusOK {
		t.Fatalf("lazy update status %d", code)
	}
	if up.Stale != 1 || up.Refreshed != 0 {
		t.Errorf("lazy update stale %d, refreshed %d; want 1, 0", up.Stale, up.Refreshed)
	}
}

func TestUpdateBadMaintainMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out api.ErrorResponse
	code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: insertNT("obsBad", 1), Maintain: "sometimes"}, &out)
	if code != http.StatusBadRequest {
		t.Fatalf("bad maintain mode status %d, want 400", code)
	}
}

// TestCacheByteBudget: bodies charge their rendered size against the
// configured budget; the cache evicts down to it and reports bytes in use.
func TestCacheByteBudget(t *testing.T) {
	// One shard's budget is maxBytes/numCacheShards = 64 bytes.
	c := newResultCache(1<<20, 64*numCacheShards)
	body := make([]byte, 48)
	for i := 0; i < 8*numCacheShards; i++ {
		c.put(fmt.Sprintf("key-%d", i), body)
	}
	st := c.stats()
	if st.Bytes > int64(64*numCacheShards) {
		t.Errorf("cache holds %d bytes, budget is %d", st.Bytes, 64*numCacheShards)
	}
	if st.Evictions == 0 {
		t.Error("expected byte-budget evictions")
	}
	if st.MaxBytes != 64*numCacheShards {
		t.Errorf("MaxBytes = %d", st.MaxBytes)
	}
	// A single body above the shard budget still caches (and is served).
	huge := make([]byte, 1024)
	c.put("huge", huge)
	if got, ok := c.get("huge"); !ok || len(got) != 1024 {
		t.Error("oversized body was not cached")
	}
}

func TestCacheByteAccountingOnReplace(t *testing.T) {
	c := newResultCache(numCacheShards, 0)
	c.put("k", make([]byte, 100))
	c.put("k", make([]byte, 10))
	if _, bytes := c.usage(); bytes != 10 {
		t.Errorf("bytes after replace = %d, want 10", bytes)
	}
}

func TestServerCacheBytesWiredThrough(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20})
	query(t, ts, apexQuery)
	var st api.StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Cache.MaxBytes == 0 {
		t.Error("CacheBytes not wired into the cache")
	}
	if st.Cache.Bytes == 0 {
		t.Error("cached answer reported zero bytes in use")
	}
}
