package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/persist"
)

// newDurableServer builds a fixture server backed by a fresh data directory,
// with the initial checkpoint written — the state sofos-serve boots into.
func newDurableServer(t *testing.T, path string) (*Server, *httptest.Server, *Durability) {
	t.Helper()
	dir, err := persist.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := persist.OpenLog(dir.WALDir(), persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	dur := &Durability{Dir: dir, Log: l, Dataset: "fixture"}
	srv := New(newSystem(t), Config{Durability: dur})
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, dur
}

// recoverServer restores the data directory into a fresh server — the
// restart half of a kill/restart cycle. The facet comes from a throwaway
// fixture system: identical by construction, as a real boot's facet is.
func recoverServer(t *testing.T, path string) (*httptest.Server, *core.RecoveryStats) {
	t.Helper()
	dir, err := persist.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sys, rec, err := core.Restore(dir, newSystem(t).Facet, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := persist.OpenLog(dir.WALDir(), persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := New(sys, Config{Durability: &Durability{Dir: dir, Log: l, Dataset: "fixture", Recovery: rec}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, rec
}

// TestKillRestartServesCommittedState is the crash-recovery contract over
// HTTP: acknowledged /update batches survive a kill (the server object is
// simply abandoned, as SIGKILL leaves no chance to flush anything more than
// each ack already did), unacknowledged ones never appear, and the restarted
// server reports the exact pre-kill generation.
func TestKillRestartServesCommittedState(t *testing.T) {
	path := t.TempDir()
	_, ts, _ := newDurableServer(t, path)

	// Materialize a view (auto-checkpointed), then a mixed workload of
	// eager and lazy acknowledged updates.
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != 200 {
		t.Fatalf("materialize status %d", code)
	}
	var up api.UpdateResponse
	if code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: obsTriples("kr1", 40), Maintain: "eager"}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: obsTriples("kr2", 7)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Delete: obsTriples("kr1", 40), Maintain: "eager"}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}

	var preKill api.StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &preKill); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	preAnswer := query(t, ts, countryQuery)
	if preKill.Persist == nil || preKill.Persist.WAL.Appended != 3 {
		t.Fatalf("persist stats = %+v", preKill.Persist)
	}

	// Kill: no Close, no checkpoint. Restart from the directory.
	ts2, rec := recoverServer(t, path)
	if rec.ReplayedBatches != 3 {
		t.Fatalf("replayed %d batches, want 3", rec.ReplayedBatches)
	}
	var postKill api.StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &postKill); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if postKill.Generation != preKill.Generation {
		t.Fatalf("recovered generation %d, pre-kill %d", postKill.Generation, preKill.Generation)
	}
	if postKill.GraphVersion != preKill.GraphVersion {
		t.Fatalf("recovered graph version %d, pre-kill %d", postKill.GraphVersion, preKill.GraphVersion)
	}
	if postKill.BaseTriples != preKill.BaseTriples || postKill.Materialized != preKill.Materialized {
		t.Fatalf("recovered size (%d triples, %d views), pre-kill (%d, %d)",
			postKill.BaseTriples, postKill.Materialized, preKill.BaseTriples, preKill.Materialized)
	}
	if postKill.StaleViews != preKill.StaleViews {
		t.Fatalf("recovered %d stale views, pre-kill %d", postKill.StaleViews, preKill.StaleViews)
	}
	postAnswer := query(t, ts2, countryQuery)
	if !reflect.DeepEqual(postAnswer.Rows, preAnswer.Rows) {
		t.Fatalf("answers differ across restart:\n got %v\nwant %v", postAnswer.Rows, preAnswer.Rows)
	}
	if postKill.Persist == nil || postKill.Persist.Recovery == nil {
		t.Fatal("recovery stats missing from /stats")
	}
}

// TestTornAckWindow cuts the WAL inside the final record — the crash window
// after the append reached the OS but before (or while) the client was
// acknowledged — and asserts recovery lands exactly on the previous
// committed generation with no fragment of the torn batch.
func TestTornAckWindow(t *testing.T) {
	path := t.TempDir()
	_, ts, _ := newDurableServer(t, path)
	var up api.UpdateResponse
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("ta1", 9)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	committedGen := up.Generation
	committedRows := query(t, ts, countryQuery).Rows
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("ta2", 5)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}

	// Tear the tail of the newest WAL segment mid-record.
	dir, err := persist.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := os.ReadDir(dir.WALDir())
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir.WALDir(), segs[len(segs)-1].Name())
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, rec := recoverServer(t, path)
	if !rec.TornTail || rec.ReplayedBatches != 1 {
		t.Fatalf("recovery stats = %+v, want torn tail with 1 replayed batch", rec)
	}
	var st api.StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Generation != committedGen {
		t.Fatalf("recovered generation %d, want the pre-tear committed %d", st.Generation, committedGen)
	}
	if rows := query(t, ts2, countryQuery).Rows; !reflect.DeepEqual(rows, committedRows) {
		t.Fatalf("recovered answers include torn data:\n got %v\nwant %v", rows, committedRows)
	}
}

func TestAdminCheckpoint(t *testing.T) {
	path := t.TempDir()
	_, ts, _ := newDurableServer(t, path)
	var cp1, cp2 api.CheckpointResponse
	if code := postJSON(t, ts.URL+"/admin/checkpoint", struct{}{}, &cp1); code != 200 {
		t.Fatalf("checkpoint status %d", code)
	}
	var up api.UpdateResponse
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("ck", 3)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if code := postJSON(t, ts.URL+"/admin/checkpoint", struct{}{}, &cp2); code != 200 {
		t.Fatalf("checkpoint status %d", code)
	}
	if cp2.Manifest.Sequence != cp1.Manifest.Sequence+1 {
		t.Fatalf("sequences %d then %d", cp1.Manifest.Sequence, cp2.Manifest.Sequence)
	}
	if cp2.Manifest.Generation != up.Generation {
		t.Fatalf("checkpoint generation %d, want %d", cp2.Manifest.Generation, up.Generation)
	}
	// Checkpointing truncated the replayed prefix: recovery now replays
	// nothing and still lands on the same generation.
	ts2, rec := recoverServer(t, path)
	if rec.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches after a fresh checkpoint", rec.ReplayedBatches)
	}
	var st api.StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Generation != up.Generation {
		t.Fatalf("recovered generation %d, want %d", st.Generation, up.Generation)
	}
}

func TestAdminCheckpointMemoryOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e api.ErrorResponse
	if code := postJSON(t, ts.URL+"/admin/checkpoint", struct{}{}, &e); code != 503 {
		t.Fatalf("memory-only checkpoint status %d (%+v)", code, e)
	}
}

// TestViewChangeCheckpointed proves view-set mutations survive a kill even
// though only /update batches are WAL-logged: the mutating action wrote a
// checkpoint before acknowledging.
func TestViewChangeCheckpointed(t *testing.T) {
	path := t.TempDir()
	_, ts, _ := newDurableServer(t, path)
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "lang+year"}, &act); code != 200 {
		t.Fatalf("materialize status %d", code)
	}
	ts2, _ := recoverServer(t, path)
	var vs api.ViewsResponse
	if code := getJSON(t, ts2.URL+"/views", &vs); code != 200 {
		t.Fatalf("views status %d", code)
	}
	if len(vs.Materialized) != 1 || vs.Materialized[0].ID != "lang+year" {
		t.Fatalf("materializations after restart: %+v", vs.Materialized)
	}
	if vs.Generation != act.Generation {
		t.Fatalf("recovered generation %d, want %d", vs.Generation, act.Generation)
	}
}

// TestWALGapRefusesUpdates forces the append-failure path (by closing the
// log under the server) and asserts the gap discipline: the failing batch's
// 500 names both failures, later updates are refused before applying
// anything, and /stats surfaces the gap.
func TestWALGapRefusesUpdates(t *testing.T) {
	path := t.TempDir()
	_, ts, dur := newDurableServer(t, path)
	// Closing the log makes Append fail and the healing checkpoint fail
	// too (its Rotate needs the same log).
	if err := dur.Log.Close(); err != nil {
		t.Fatal(err)
	}
	var e api.ErrorResponse
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("gap1", 4)}, &e); code != 500 {
		t.Fatalf("append-failure update status %d (%+v)", code, e)
	}
	var st api.StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Persist == nil || !st.Persist.WALGap {
		t.Fatalf("wal gap not surfaced: %+v", st.Persist)
	}
	// The next batch must be refused up front — nothing applied.
	pre := st.BaseTriples
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("gap2", 5)}, &e); code != 503 {
		t.Fatalf("post-gap update status %d (%+v)", code, e)
	}
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 || st.BaseTriples != pre {
		t.Fatalf("refused update still applied: %d -> %d triples", pre, st.BaseTriples)
	}
}

// TestConcurrentCheckpointsSerialize hammers Checkpoint from many
// goroutines; every call must succeed with a distinct sequence and the
// directory must end on a readable latest checkpoint.
func TestConcurrentCheckpointsSerialize(t *testing.T) {
	path := t.TempDir()
	srv, _, dur := newDurableServer(t, path)
	const n = 8
	seqs := make(chan uint64, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			m, err := srv.Checkpoint()
			if err != nil {
				errs <- err
				return
			}
			seqs <- m.Sequence
		}()
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case s := <-seqs:
			if seen[s] {
				t.Fatalf("checkpoint sequence %d issued twice", s)
			}
			seen[s] = true
		}
	}
	cp, err := dur.Dir.LatestCheckpoint()
	if err != nil || cp == nil {
		t.Fatalf("latest checkpoint after the storm: %v, %v", cp, err)
	}
	ts2, rec := recoverServer(t, path)
	if rec.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches", rec.ReplayedBatches)
	}
	var st api.StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
}

// TestNoOpDeltaEagerRefreshSurvivesCrash: an update whose delta is a no-op
// (duplicate insert) can still eagerly refresh views left stale by earlier
// lazy batches — a generation bump with no WAL record. The handler must
// checkpoint it, or the acknowledged generation would regress on restart.
func TestNoOpDeltaEagerRefreshSurvivesCrash(t *testing.T) {
	path := t.TempDir()
	_, ts, _ := newDurableServer(t, path)
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != 200 {
		t.Fatalf("materialize status %d", code)
	}
	var up api.UpdateResponse
	// Lazy batch: view goes stale.
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("ne1", 21)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if up.Stale == 0 {
		t.Fatal("lazy update left no stale views; fixture changed?")
	}
	// Duplicate insert with eager maintenance: no-op delta, real refresh.
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("ne1", 21), Maintain: "eager"}, &up); code != 200 {
		t.Fatalf("no-op eager update status %d", code)
	}
	if up.Inserted != 0 || up.Refreshed == 0 || up.Stale != 0 {
		t.Fatalf("no-op eager response = %+v; want pure refresh", up)
	}
	ts2, _ := recoverServer(t, path)
	var st api.StatsResponse
	if code := getJSON(t, ts2.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Generation != up.Generation {
		t.Fatalf("recovered generation %d, acknowledged %d", st.Generation, up.Generation)
	}
	if st.StaleViews != 0 {
		t.Fatalf("recovered %d stale views; the acknowledged refresh was lost", st.StaleViews)
	}
}
