package server

import (
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"sofos/internal/api"
	"sofos/internal/obs"
)

// serverObs is the server's observability state: the metrics registry behind
// /v1/metrics, the recent-query ring behind /v1/debug/queries, and the
// pre-resolved per-outcome query series so the hot path never touches the
// registry's resolution mutex. Nil when Config.ObsOff — every call site
// guards on s.obs == nil, and the obs handles themselves are nil-safe, so
// the disabled path costs one pointer compare.
type serverObs struct {
	reg  *obs.Registry
	ring *obs.Ring
	slow time.Duration // promote queries at least this slow to the log; 0 = off

	// Per-outcome query series, resolved once at startup. Keyed by the
	// obs.Outcome* constants — the same strings the ring records carry, so
	// /v1/debug/queries outcomes and sofos_query_total reconcile exactly.
	queryTotal   map[string]*obs.Counter
	querySeconds map[string]*obs.Histogram
	slowTotal    *obs.Counter
}

// queryOutcomes is every rewrite-outcome label sofos_query_total can carry.
// Registered eagerly so a scrape before the first query of some outcome
// still shows the family with a zero sample.
var queryOutcomes = []string{
	obs.OutcomeCacheHit,
	obs.OutcomeViewHit,
	obs.OutcomePartialRollup,
	obs.OutcomeFullScan,
	obs.OutcomeError,
}

// newServerObs builds the registry and wires every layer's instruments:
// closure-backed counters over the server's existing atomics, collector
// callbacks that pin one published generation per scrape, and the WAL
// append/fsync hooks on the open log. Scrapes never take the chain writer
// mutex or the admission semaphore — every reading is an atomic load or a
// wait-free chain.Load() — so /v1/metrics can be hammered during a writer
// storm without perturbing serving.
func newServerObs(s *Server, cfg Config) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:          reg,
		ring:         obs.NewRing(cfg.TraceRing),
		slow:         time.Duration(cfg.SlowQueryMS) * time.Millisecond,
		queryTotal:   make(map[string]*obs.Counter, len(queryOutcomes)),
		querySeconds: make(map[string]*obs.Histogram, len(queryOutcomes)),
	}
	for _, out := range queryOutcomes {
		l := obs.Label{Key: "outcome", Value: out}
		o.queryTotal[out] = reg.Counter("sofos_query_total",
			"Queries answered, by rewrite outcome.", l)
		o.querySeconds[out] = reg.Histogram("sofos_query_seconds",
			"Query latency from parse to response, by rewrite outcome.", nil, l)
	}
	o.slowTotal = reg.Counter("sofos_slow_queries_total",
		"Queries at or above the -slow-query-ms threshold.")

	// Serving state: one wait-free chain.Load() per closure call.
	reg.GaugeFunc("sofos_generation",
		"Published catalog generation.",
		func() float64 { return float64(s.chain.Load().Generation) })
	reg.GaugeFunc("sofos_graph_version",
		"Published base-graph version (WAL position).",
		func() float64 { return float64(s.chain.Load().Sys.GraphVersion()) })
	reg.GaugeFunc("sofos_inflight_queries",
		"Queries holding an admission slot right now.",
		func() float64 { return float64(len(s.sem)) })
	reg.CounterFunc("sofos_updates_total",
		"Update transactions committed.",
		func() float64 { return float64(s.updates.Load()) })

	// Result cache, when enabled: the cache's own atomics, read lock-free.
	if s.cache != nil {
		reg.CounterFunc("sofos_cache_hits_total",
			"Result-cache hits.",
			func() float64 { return float64(s.cache.hits.Load()) })
		reg.CounterFunc("sofos_cache_misses_total",
			"Result-cache misses.",
			func() float64 { return float64(s.cache.misses.Load()) })
		reg.CounterFunc("sofos_cache_evictions_total",
			"Result-cache evictions.",
			func() float64 { return float64(s.cache.evictions.Load()) })
		reg.GaugeFunc("sofos_cache_entries",
			"Rendered responses held by the result cache.",
			func() float64 { e, _ := s.cache.usage(); return float64(e) })
		reg.GaugeFunc("sofos_cache_bytes",
			"Rendered bytes held by the result cache.",
			func() float64 { _, b := s.cache.usage(); return float64(b) })
	}

	// Durability: checkpoint age plus the WAL's own instruments. The append
	// histogram and fsync counter are handed to the log here — before any
	// traffic — through its nil-safe hook fields, so persist stays free of
	// server imports.
	reg.CounterFunc("sofos_checkpoints_total",
		"Checkpoints written since boot.",
		func() float64 { return float64(s.checkpoints.Load()) })
	reg.GaugeFunc("sofos_checkpoint_age_seconds",
		"Seconds since the newest checkpoint was written (-1 when none).",
		func() float64 { return s.checkpointAge() })
	if s.dur != nil {
		s.dur.Log.AppendHist = reg.Histogram("sofos_wal_append_seconds",
			"WAL append latency, including sync under -wal-sync=always.", nil)
		s.dur.Log.FsyncCounter = reg.Counter("sofos_wal_fsyncs_total",
			"WAL fsyncs issued.")
		reg.GaugeFunc("sofos_wal_bytes",
			"Bytes appended to the live WAL segments.",
			func() float64 { return float64(s.dur.Log.Stats().Bytes) })
		reg.GaugeFunc("sofos_wal_segments",
			"WAL segments on disk.",
			func() float64 { return float64(s.dur.Log.Stats().Segments) })
	}
	if s.repl != nil {
		reg.GaugeFunc("sofos_replica_lag_generations",
			"Generations this replica trails its primary.",
			func() float64 { return float64(s.replicaLag(s.system())) })
	}

	// Runtime and store gauges set by one collector call per scrape: a single
	// ReadMemStats and a single Graph.MemStats pass feed all of them, against
	// one pinned snapshot.
	goroutines := reg.Gauge("sofos_goroutines", "Live goroutines.")
	heapAlloc := reg.Gauge("sofos_heap_alloc_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).")
	storeMapped := reg.Gauge("sofos_store_mapped_bytes", "Index bytes backed by mmap'd snapshots rather than heap.")
	storeIndex := reg.Gauge("sofos_store_index_bytes", "Heap-resident index bytes across permutations.")
	storeBlocks := reg.Gauge("sofos_store_blocks", "Compressed blocks across permutation runs (0 for the flat codec).")
	storeVerified := reg.Gauge("sofos_store_verified_blocks", "Blocks whose payload CRC has been checked; trails sofos_store_blocks while lazy mmap verification warms.")
	reg.OnCollect(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))

		st := s.chain.Load()
		gm := st.Sys.Graph.MemStats()
		storeMapped.Set(float64(gm.MappedBytes))
		storeIndex.Set(float64(gm.IndexBytes))
		storeBlocks.Set(float64(gm.SPO.Blocks + gm.POS.Blocks + gm.OSP.Blocks))
		storeVerified.Set(float64(gm.SPO.Verified + gm.POS.Verified + gm.OSP.Verified))

		// Per-view gauges against the same pinned snapshot. Cardinality is
		// bounded by the materialized set (a handful of views), and series
		// for dropped views simply stop updating.
		for _, m := range st.Sys.Catalog.Materialized() {
			v := m.View()
			l := obs.Label{Key: "view", Value: v.ID()}
			reg.Gauge("sofos_view_groups",
				"Aggregate groups materialized in the view.", l).Set(float64(m.Data.NumGroups()))
			reg.Gauge("sofos_view_stale",
				"1 when the view's contents trail the base graph, else 0.", l).Set(b2f(st.Sys.Catalog.Stale(v.Mask)))
			reg.Gauge("sofos_view_last_refresh_seconds",
				"Cost of the view's last refresh.", l).Set(m.Maint.LastCost.Seconds())
			reg.Gauge("sofos_view_last_delta_size",
				"|ΔG| the view's last incremental refresh consumed.", l).Set(float64(m.Maint.DeltaSize))
			reg.Gauge("sofos_view_staleness_generations",
				"Graph versions the view's contents trail the published base graph.", l).Set(float64(st.Sys.GraphVersion() - m.BaseVersion()))
		}
	})
	return o
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// checkpointAge is seconds since the newest checkpoint manifest, or -1 when
// the server is memory-only or has not checkpointed yet.
func (s *Server) checkpointAge() float64 {
	if s.dur == nil {
		return -1
	}
	m := s.lastCheckpoint.Load()
	if m == nil {
		return -1
	}
	return time.Since(time.Unix(m.CreatedUnix, 0)).Seconds()
}

// finishQuery closes one query's trace and fans its outcome out to every
// consumer: the outcome attr on the root span, the per-outcome counter and
// latency histogram, the per-view hit counter, the slow-query log, and the
// debug ring. It returns the wire-format span tree when the caller asked for
// ?trace=1, nil otherwise. rec.TraceID/Query/Outcome/View/Reason/Generation/
// Rows/Err are the caller's; Start, Elapsed, Slow, and Spans are filled here.
func (o *serverObs) finishQuery(tr *obs.Trace, root obs.SpanHandle, rec obs.QueryRecord, wantTrace bool) []api.TraceSpan {
	rec.Start = tr.Start()
	rec.Elapsed = time.Since(rec.Start)
	root.Attr("outcome", rec.Outcome)
	root.End()
	rec.Spans = tr.Finish()

	if c := o.queryTotal[rec.Outcome]; c != nil {
		c.Inc()
		o.querySeconds[rec.Outcome].Observe(rec.Elapsed.Seconds())
	}
	if rec.View != "" {
		o.reg.Counter("sofos_view_hits_total",
			"Queries answered from a materialized view (hit or partial roll-up).",
			obs.Label{Key: "view", Value: rec.View}).Inc()
	}
	if o.slow > 0 && rec.Elapsed >= o.slow {
		rec.Slow = true
		o.slowTotal.Inc()
		slog.Warn("slow query",
			"trace_id", rec.TraceID,
			"outcome", rec.Outcome,
			"view", rec.View,
			"generation", rec.Generation,
			"rows", rec.Rows,
			"elapsed", rec.Elapsed.Round(time.Microsecond),
			"query", rec.Query)
	}
	o.ring.Add(rec)
	if !wantTrace {
		return nil
	}
	return toWireSpans(rec.Spans)
}

// toWireSpans converts recorded spans to the JSON wire shape: microsecond
// offsets from the trace start, -1 duration for spans never closed.
func toWireSpans(spans []obs.Span) []api.TraceSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]api.TraceSpan, len(spans))
	for i, sp := range spans {
		ws := api.TraceSpan{
			Name:    sp.Name,
			Parent:  sp.Parent,
			StartUS: sp.Start.Microseconds(),
			DurUS:   -1,
		}
		if sp.End >= 0 {
			ws.DurUS = (sp.End - sp.Start).Microseconds()
		}
		for _, a := range sp.Attrs {
			ws.Attrs = append(ws.Attrs, api.TraceAttr{Key: a.Key, Value: a.Value})
		}
		out[i] = ws
	}
	return out
}

// instrument wraps a handler with per-endpoint request accounting. The
// endpoint label is the canonical /v1 path, shared by its deprecated alias —
// URL cardinality never leaks into label space. No-op when obs is disabled.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.obs == nil {
		return h
	}
	reg := s.obs.reg
	hist := reg.Histogram("sofos_http_request_seconds",
		"Request latency by endpoint.", nil,
		obs.Label{Key: "endpoint", Value: endpoint})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		reg.Counter("sofos_http_requests_total",
			"Requests served, by endpoint and status code.",
			obs.Label{Key: "endpoint", Value: endpoint},
			obs.Label{Key: "code", Value: strconv.Itoa(code)}).Inc()
		hist.ObserveSince(start)
	}
}

// statusWriter records the status code a handler wrote. It forwards Flush so
// the /v1/wal NDJSON stream keeps pushing lines through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"observability is disabled (-obs=off)")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	s.obs.reg.Handler().ServeHTTP(w, r)
}

// handleDebugQueries lists recent query traces from the ring, newest first.
// ?limit=N bounds the listing (default: the whole ring).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			"observability is disabled (-obs=off)")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad limit parameter %q", ls)
			return
		}
		limit = n
	}
	recs := s.obs.ring.Snapshot(limit)
	resp := api.DebugQueriesResponse{
		Total:   s.obs.ring.Total(),
		Entries: make([]api.QueryLogEntry, len(recs)),
	}
	for i, rec := range recs {
		resp.Entries[i] = api.QueryLogEntry{
			TraceID:     rec.TraceID,
			Query:       rec.Query,
			Outcome:     rec.Outcome,
			View:        rec.View,
			Reason:      rec.Reason,
			Generation:  rec.Generation,
			StartUnixUS: rec.Start.UnixMicro(),
			ElapsedUS:   rec.Elapsed.Microseconds(),
			Rows:        rec.Rows,
			Slow:        rec.Slow,
			Error:       rec.Err,
			Spans:       toWireSpans(rec.Spans),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
