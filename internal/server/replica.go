package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sofos/internal/api"
	"sofos/internal/client"
	"sofos/internal/core"
	"sofos/internal/datasets"
	"sofos/internal/facet"
	"sofos/internal/persist"
)

// Replica side of replication. A replica holds no durable state of its own:
// it bootstraps by downloading the primary's newest checkpoint archive,
// restoring it through the same loader a primary restart uses, and then
// tailing GET /v1/wal — every record flows through core.ReplayRecord, the
// incremental O(|ΔG|) maintenance path, landing on the exact generation the
// primary acknowledged the batch at. When the stream reports that the
// replica's resume version was truncated away (the primary checkpointed past
// it while the replica was down), the loop re-bootstraps and swaps the fresh
// system in under the write lock.

// Replica pacing: how often an idle replica re-reports progress (keeps the
// primary's lastSeen and the replica's lag stats fresh), and the reconnect
// backoff bounds for a dropped stream.
const (
	replicaAckInterval = 1 * time.Second
	replicaRetryMin    = 250 * time.Millisecond
	replicaRetryMax    = 5 * time.Second
)

// ReplicaOptions configures read-replica mode (Config.Replica).
type ReplicaOptions struct {
	// Primary is the primary's base URL, e.g. "http://primary:8080".
	Primary string
	// ID identifies this replica in progress reports and the primary's
	// /v1/stats. Empty derives one from the process ID.
	ID string
	// Client is the HTTP client for bootstrap, streaming, and progress
	// reports (nil = http.DefaultClient).
	Client *http.Client
	// ScratchRoot is where bootstrap archives are unpacked before loading
	// (empty = the OS temp dir). Each bootstrap uses a fresh subdirectory,
	// removed once the system is in memory.
	ScratchRoot string
	// Facet resolves the dataset named in a bootstrap manifest to its
	// analytical facet (nil = the built-in datasets registry). Tests inject
	// fixture facets that no registry knows.
	Facet func(dataset string) (*facet.Facet, error)
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.ID == "" {
		o.ID = fmt.Sprintf("replica-%d", os.Getpid())
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Facet == nil {
		o.Facet = func(dataset string) (*facet.Facet, error) {
			spec, ok := datasets.ByName(dataset)
			if !ok {
				return nil, fmt.Errorf("bootstrap checkpoint names unknown dataset %q", dataset)
			}
			return spec.Facet()
		}
	}
	return o
}

// replicaRuntime is a replica server's apply-loop state.
type replicaRuntime struct {
	opts ReplicaOptions
	cl   *client.Client

	applied     atomic.Int64 // WAL records applied since boot
	bootstraps  atomic.Int64 // checkpoint bootstraps (1 = boot only)
	primaryGen  atomic.Int64 // last generation the primary advertised
	primaryVer  atomic.Int64 // last graph version the primary advertised
	lastContact atomic.Int64 // unixnano of the last stream delivery

	// progress is closed and replaced whenever applied state moves, waking
	// min-generation waiters (gateMinGeneration).
	mu       sync.Mutex
	progress chan struct{}
}

func newReplicaRuntime(opts *ReplicaOptions) *replicaRuntime {
	o := opts.withDefaults()
	r := &replicaRuntime{
		opts:     o,
		cl:       client.New(o.Primary, o.Client),
		progress: make(chan struct{}),
	}
	r.bootstraps.Store(1) // the system New was given came from a bootstrap
	return r
}

func (r *replicaRuntime) primaryURL() string { return r.opts.Primary }

// notifyProgress wakes every waiter blocked on applied progress.
func (r *replicaRuntime) notifyProgress() {
	r.mu.Lock()
	close(r.progress)
	r.progress = make(chan struct{})
	r.mu.Unlock()
}

func (r *replicaRuntime) progressChan() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.progress
}

// lag is how many generations the replica trails the primary's last
// advertised state.
func (r *replicaRuntime) lag(sys *core.System) int64 {
	lag := r.primaryGen.Load() - sys.Generation()
	if lag < 0 {
		return 0
	}
	return lag
}

// statsNow renders the replica's /v1/stats replication section.
func (r *replicaRuntime) statsNow(sys *core.System) *api.ReplicationStats {
	rs := &api.ReplicationStats{
		Role:           RoleReplica,
		Primary:        r.opts.Primary,
		AppliedRecords: r.applied.Load(),
		LagGenerations: r.lag(sys),
		Bootstraps:     r.bootstraps.Load(),
	}
	if t := r.lastContact.Load(); t > 0 {
		rs.LastPrimaryContactMS = time.Since(time.Unix(0, t)).Milliseconds()
	}
	return rs
}

// BootstrapReplica builds a replica's system from the primary's newest
// checkpoint: download the archive, unpack it into a scratch data directory,
// and restore through the same loader a primary restart uses (manifest
// validation and facet resolution included). The scratch directory is
// removed once the system is in memory — replicas keep no durable state.
func BootstrapReplica(ctx context.Context, opts ReplicaOptions, workers int) (*core.System, *persist.Manifest, error) {
	opts = opts.withDefaults()
	cl := client.New(opts.Primary, opts.Client)
	body, err := cl.FetchCheckpoint(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("fetching bootstrap checkpoint from %s: %w", opts.Primary, err)
	}
	defer body.Close()
	scratch, err := os.MkdirTemp(opts.ScratchRoot, "sofos-replica-bootstrap-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(scratch)
	dir, man, err := persist.RestoreArchive(body, scratch)
	if err != nil {
		return nil, nil, fmt.Errorf("unpacking bootstrap checkpoint: %w", err)
	}
	f, err := opts.Facet(man.Dataset)
	if err != nil {
		return nil, nil, err
	}
	sys, rec, err := core.Restore(dir, f, core.Options{Workers: workers})
	if err != nil {
		return nil, nil, fmt.Errorf("restoring bootstrap checkpoint: %w", err)
	}
	rec.LogRecovery()
	return sys, man, nil
}

// StartReplication launches the replica's apply loop: tail the primary's WAL
// stream, apply every record, report progress, and re-bootstrap when the
// stream says the replica fell behind the log. It returns immediately; the
// loop runs until ctx is canceled.
func (s *Server) StartReplication(ctx context.Context) error {
	if s.role != RoleReplica {
		return errors.New("server: StartReplication on a non-replica")
	}
	go s.replicationLoop(ctx)
	return nil
}

// replicationLoop reconnects (and re-bootstraps when necessary) until ctx
// ends, backing off on repeated failures.
func (s *Server) replicationLoop(ctx context.Context) {
	backoff := replicaRetryMin
	for ctx.Err() == nil {
		applied, err := s.tailPrimary(ctx)
		if ctx.Err() != nil {
			return
		}
		if applied > 0 {
			backoff = replicaRetryMin
		}
		if needsBootstrap(err) {
			slog.Warn("replica behind the primary's log; re-bootstrapping", "err", err)
			if berr := s.rebootstrap(ctx); berr != nil {
				slog.Error("replica re-bootstrap failed", "err", berr)
			} else {
				backoff = replicaRetryMin
				continue
			}
		} else if err != nil {
			slog.Warn("replica wal stream interrupted", "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > replicaRetryMax {
			backoff = replicaRetryMax
		}
	}
}

// divergenceError marks a streamed record the replica could not chain onto
// its state — only a fresh bootstrap can heal that.
type divergenceError struct{ err error }

func (e *divergenceError) Error() string { return e.err.Error() }
func (e *divergenceError) Unwrap() error { return e.err }

// needsBootstrap reports whether a stream failure means the replica must
// re-bootstrap from a checkpoint rather than just reconnect.
func needsBootstrap(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Err.Code == api.CodeWALTruncated || ae.Err.Code == api.CodeWALGap
	}
	var de *divergenceError
	return errors.As(err, &de)
}

// tailPrimary runs one streaming session: connect at the applied version and
// apply records until the stream ends. Returns how many records it applied
// plus the terminating error.
func (s *Server) tailPrimary(ctx context.Context) (int, error) {
	applied := 0
	lastAck := time.Now()
	err := s.repl.cl.StreamWAL(ctx, s.system().GraphVersion(), func(ev *api.WALEvent) error {
		s.repl.lastContact.Store(time.Now().UnixNano())
		if ev.Heartbeat {
			s.repl.primaryGen.Store(ev.Generation)
			s.repl.primaryVer.Store(ev.Version)
			if time.Since(lastAck) >= replicaAckInterval {
				s.ackProgress(ctx)
				lastAck = time.Now()
			}
			return nil
		}
		rec, err := persist.DecodeRecord(ev.Record)
		if err != nil {
			return fmt.Errorf("decoding streamed record (segment %d): %w", ev.Seq, err)
		}
		// Apply the record as one chain transaction: fork, replay, publish.
		// Replica reads stay wait-free through every apply, exactly as on
		// the primary.
		txn := s.chain.Begin()
		if err = core.ReplayRecord(txn.Sys, rec, nil); err != nil {
			txn.Abort()
			return &divergenceError{err}
		}
		txn.Commit()
		s.repl.primaryGen.Store(rec.Generation)
		s.repl.primaryVer.Store(rec.ToVersion)
		s.repl.applied.Add(1)
		applied++
		s.repl.notifyProgress()
		s.ackProgress(ctx)
		lastAck = time.Now()
		return nil
	})
	return applied, err
}

// ackProgress reports the replica's applied state to the primary. Failures
// are logged, not fatal: the next record or heartbeat retries.
func (s *Server) ackProgress(ctx context.Context) {
	sys := s.system()
	actx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	err := s.repl.cl.Ack(actx, api.ReplicaAckRequest{
		ID:         s.repl.opts.ID,
		Version:    sys.GraphVersion(),
		Generation: sys.Generation(),
	})
	if err != nil && ctx.Err() == nil {
		slog.Warn("replica progress report failed", "err", err)
	}
}

// rebootstrap replaces the served system with a freshly bootstrapped one.
// The chain reset is one atomic publish, so every query sees either the old
// complete state or the new one; the result cache needs no flush because its
// keys embed the generation, which only moved forward.
func (s *Server) rebootstrap(ctx context.Context) error {
	sys, _, err := BootstrapReplica(ctx, s.repl.opts, s.system().Workers)
	if err != nil {
		return err
	}
	s.chain.Reset(sys)
	s.repl.bootstraps.Add(1)
	s.repl.notifyProgress()
	s.ackProgress(ctx)
	return nil
}

// waitForGeneration blocks until the applied generation reaches gen, the
// wait budget runs out, or ctx ends; it reports whether gen was reached.
func (s *Server) waitForGeneration(ctx context.Context, gen int64, wait time.Duration) bool {
	if s.system().Generation() >= gen {
		return true
	}
	if s.repl == nil {
		return false
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		ch := s.repl.progressChan()
		if s.system().Generation() >= gen {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return s.system().Generation() >= gen
		case <-ctx.Done():
			return false
		}
	}
}
