package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
)

// prefix is shared by every test query.
const prefix = "PREFIX ex: <http://ex.org/>\n"

// apexQuery sums the measure over the whole facet population.
const apexQuery = prefix + `SELECT (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
}`

// countryQuery groups the measure by country.
const countryQuery = prefix + `SELECT ?country (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
} GROUP BY ?country`

// newSystem builds the population fixture: observations with country, lang,
// year dimensions and an integer pop measure under a SUM facet.
func newSystem(t testing.TB) *core.System {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < 4; ci++ {
		for li := 0; li < 3; li++ {
			for yi := 0; yi < 2; yi++ {
				obs := ex(fmt.Sprintf("obs%d_%d_%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2015 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(500) + 1))})
			}
		}
	}
	q := sparql.MustParse(prefix + `SELECT ?country ?lang ?year (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`)
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewWithOptions(g, f, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// newTestServer wraps a fixture system in an httptest server.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(newSystem(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// jsonBody marshals v into a request body reader.
func jsonBody(v any) *bytes.Reader {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return bytes.NewReader(b)
}

// postJSON posts v as JSON and decodes the response into out, returning the
// status code.
func postJSON(t testing.TB, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON GETs url and decodes the response, returning the status code.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// query posts a query and requires a 200 answer.
func query(t testing.TB, ts *httptest.Server, q string) api.QueryResponse {
	t.Helper()
	var out api.QueryResponse
	if code := postJSON(t, ts.URL+"/query", api.QueryRequest{Query: q}, &out); code != http.StatusOK {
		t.Fatalf("query returned status %d", code)
	}
	return out
}

// parseNum extracts the numeric lexical value of a rendered literal cell.
// Safe to call off the test goroutine.
func parseNum(cell string) (float64, error) {
	if !strings.HasPrefix(cell, `"`) {
		return 0, fmt.Errorf("cell %q is not a literal", cell)
	}
	end := strings.Index(cell[1:], `"`)
	if end < 0 {
		return 0, fmt.Errorf("cell %q has no closing quote", cell)
	}
	v, err := strconv.ParseFloat(cell[1:1+end], 64)
	if err != nil {
		return 0, fmt.Errorf("cell %q is not numeric: %w", cell, err)
	}
	return v, nil
}

// numCell is parseNum failing the test on malformed cells.
func numCell(t testing.TB, cell string) float64 {
	t.Helper()
	v, err := parseNum(cell)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// obsTriples renders the N-Triples block for one fresh observation.
func obsTriples(id string, pop int) string {
	return fmt.Sprintf(`<http://ex.org/%s> <http://ex.org/country> "C0" .
<http://ex.org/%s> <http://ex.org/lang> "L0" .
<http://ex.org/%s> <http://ex.org/year> "2015"^^<http://www.w3.org/2001/XMLSchema#gYear> .
<http://ex.org/%s> <http://ex.org/pop> "%d"^^<http://www.w3.org/2001/XMLSchema#integer> .
`, id, id, id, id, pop)
}

func TestQueryGetAndPost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := query(t, ts, countryQuery)
	if post.Via != "base" {
		t.Fatalf("expected base answering with no views, got %q", post.Via)
	}
	if len(post.Rows) != 4 {
		t.Fatalf("expected 4 country rows, got %d", len(post.Rows))
	}
	var get api.QueryResponse
	u := ts.URL + "/query?q=" + strings.ReplaceAll(strings.ReplaceAll(countryQuery, "\n", "%0A"), " ", "+")
	if code := getJSON(t, u, &get); code != http.StatusOK {
		t.Fatalf("GET query returned status %d", code)
	}
	// GET hits the entry POST populated: same normalized query, same state.
	if !get.Cached {
		t.Error("expected the GET to be served from cache")
	}
	if fmt.Sprint(get.Rows) != fmt.Sprint(post.Rows) {
		t.Errorf("GET and POST rows differ:\n%v\n%v", get.Rows, post.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var e api.ErrorResponse
	if code := postJSON(t, ts.URL+"/query", api.QueryRequest{Query: "SELECT nonsense"}, &e); code != http.StatusBadRequest {
		t.Errorf("parse error: expected 400, got %d", code)
	}
	if e.Error.Message == "" || e.Error.Code == "" {
		t.Error("parse error: expected an error message")
	}
	if code := postJSON(t, ts.URL+"/query", api.QueryRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty query: expected 400, got %d", code)
	}
	resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty update: expected 400, got %d", resp.StatusCode)
	}
}

// TestCacheFreshnessAfterUpdate is the zero-stale-answers property: a write
// must invalidate every affected cache entry, so a repeated query after an
// update returns the updated answer, not the cached one.
func TestCacheFreshnessAfterUpdate(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	first := query(t, ts, apexQuery)
	if first.Cached {
		t.Fatal("first answer cannot be cached")
	}
	again := query(t, ts, apexQuery)
	if !again.Cached {
		t.Fatal("repeated query should be served from cache")
	}
	sum0 := numCell(t, first.Rows[0][0])

	var up api.UpdateResponse
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("fresh1", 1000)}, &up); code != http.StatusOK {
		t.Fatalf("update returned status %d", code)
	}
	if up.Inserted != 4 {
		t.Fatalf("expected 4 inserted triples, got %d", up.Inserted)
	}

	after := query(t, ts, apexQuery)
	if after.Cached {
		t.Fatal("post-update query must not be served from the stale cache entry")
	}
	if got, want := numCell(t, after.Rows[0][0]), sum0+1000; got != want {
		t.Fatalf("post-update sum = %v, want %v", got, want)
	}
	if after.Generation <= first.Generation {
		t.Fatalf("generation did not advance: %d -> %d", first.Generation, after.Generation)
	}
	cached := query(t, ts, apexQuery)
	if !cached.Cached {
		t.Error("second post-update query should hit the cache")
	}
	if numCell(t, cached.Rows[0][0]) != sum0+1000 {
		t.Error("cached post-update answer is stale")
	}
	st := srv.cache.stats()
	if st.Hits < 2 || st.Misses < 2 {
		t.Errorf("unexpected cache stats: %+v", st)
	}
}

func TestViewsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize returned status %d", code)
	}
	if len(act.Views) != 1 || act.Views[0] != "country" {
		t.Fatalf("materialize acted on %v", act.Views)
	}

	ans := query(t, ts, countryQuery)
	if ans.Via != "country" {
		t.Fatalf("expected the country view to answer, got %q (reason %q)", ans.Via, ans.Reason)
	}

	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: obsTriples("fresh2", 50)}, nil); code != http.StatusOK {
		t.Fatalf("update returned status %d", code)
	}
	var list api.ViewsResponse
	if code := getJSON(t, ts.URL+"/views", &list); code != http.StatusOK {
		t.Fatalf("list returned status %d", code)
	}
	if len(list.Materialized) != 1 || !list.Materialized[0].Stale {
		t.Fatalf("expected one stale view, got %+v", list.Materialized)
	}

	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "refresh"}, &act); code != http.StatusOK {
		t.Fatalf("refresh returned status %d", code)
	}
	if act.Refreshed != 1 {
		t.Fatalf("expected 1 refreshed view, got %d", act.Refreshed)
	}
	// The refreshed view must serve the updated aggregate.
	ans = query(t, ts, countryQuery)
	if ans.Via != "country" {
		t.Fatalf("expected the refreshed view to answer, got %q", ans.Via)
	}

	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "drop", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("drop returned status %d", code)
	}
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "drop", View: "country"}, nil); code != http.StatusNotFound {
		t.Fatalf("double drop: expected 404, got %d", code)
	}
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "reset"}, &act); code != http.StatusOK {
		t.Fatalf("reset returned status %d", code)
	}
}

func TestMaterializeBySelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", Model: "aggvalues", K: 2}, &act); code != http.StatusOK {
		t.Fatalf("materialize by model returned status %d", code)
	}
	if len(act.Views) == 0 {
		t.Fatal("expected the selection to materialize at least one view")
	}
	var list api.ViewsResponse
	getJSON(t, ts.URL+"/views", &list)
	if len(list.Materialized) != len(act.Views) {
		t.Fatalf("listed %d views, acted on %d", len(list.Materialized), len(act.Views))
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	query(t, ts, apexQuery)
	query(t, ts, apexQuery)
	var st api.StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats returned status %d", code)
	}
	if st.Queries != 2 {
		t.Errorf("stats.Queries = %d, want 2", st.Queries)
	}
	if st.BaseTriples == 0 || st.Facet != "pop" || st.Workers != 2 {
		t.Errorf("unexpected stats: %+v", st)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st.Cache)
	}
	var h api.HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || !h.OK {
		t.Errorf("healthz = %+v (status %d)", h, code)
	}
	if h.Role != RolePrimary || h.Generation != st.Generation {
		t.Errorf("healthz role/generation = %+v, want primary at generation %d", h, st.Generation)
	}
}

func TestUpdateDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := numCell(t, query(t, ts, apexQuery).Rows[0][0])
	block := obsTriples("fresh3", 77)
	var up api.UpdateResponse
	postJSON(t, ts.URL+"/update", api.UpdateRequest{Insert: block}, &up)
	if got := numCell(t, query(t, ts, apexQuery).Rows[0][0]); got != before+77 {
		t.Fatalf("after insert sum = %v, want %v", got, before+77)
	}
	if code := postJSON(t, ts.URL+"/update", api.UpdateRequest{Delete: block}, &up); code != http.StatusOK {
		t.Fatalf("delete returned status %d", code)
	}
	if up.Deleted != 4 {
		t.Fatalf("expected 4 deleted triples, got %d", up.Deleted)
	}
	if got := numCell(t, query(t, ts, apexQuery).Rows[0][0]); got != before {
		t.Fatalf("after delete sum = %v, want %v", got, before)
	}
}

// TestUpdateAtomicOnError: /update is documented as all-or-nothing, so a
// batch that fails for any reason — here a parse error in the delete block,
// submitted alongside a perfectly valid insert block — must leave the graph
// untouched: no triples applied, generation unchanged, answers unchanged.
func TestUpdateAtomicOnError(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	before := query(t, ts, apexQuery)
	gen0 := srv.System().Generation()
	triples0 := srv.System().Graph.Len()

	var e api.ErrorResponse
	code := postJSON(t, ts.URL+"/update", api.UpdateRequest{
		Insert: obsTriples("freshAtomic", 500),
		Delete: "<http://ex.org/x> <http://ex.org/y> not-a-term",
	}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("bad batch: expected 400, got %d", code)
	}
	if e.Error.Message == "" || e.Error.Code == "" {
		t.Error("bad batch: expected an error message")
	}
	if got := srv.System().Graph.Len(); got != triples0 {
		t.Errorf("failed batch mutated the graph: %d -> %d triples", triples0, got)
	}
	if got := srv.System().Generation(); got != gen0 {
		t.Errorf("failed batch advanced the generation: %d -> %d", gen0, got)
	}
	after := query(t, ts, apexQuery)
	if numCell(t, after.Rows[0][0]) != numCell(t, before.Rows[0][0]) {
		t.Error("failed batch changed the apex aggregate")
	}
}

// TestCacheDisabled covers the negative-capacity escape hatch.
func TestCacheDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheEntries: -1})
	if srv.cache != nil {
		t.Fatal("cache should be disabled")
	}
	query(t, ts, apexQuery)
	r := query(t, ts, apexQuery)
	if r.Cached {
		t.Fatal("no response can be cached with the cache disabled")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(numCacheShards, 0) // one entry per shard
	for i := 0; i < 10*numCacheShards; i++ {
		c.put(fmt.Sprintf("key-%d", i), []byte("{}"))
	}
	st := c.stats()
	if st.Entries > numCacheShards {
		t.Fatalf("cache holds %d entries, cap is %d", st.Entries, numCacheShards)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
}
