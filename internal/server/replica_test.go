package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sofos/internal/api"
	"sofos/internal/client"
	"sofos/internal/core"
	"sofos/internal/facet"
	"sofos/internal/persist"
)

// fixtureResolver resolves any dataset name to the fixture facet — the
// fixture is not in the datasets registry, so replica bootstraps in these
// tests inject it (cmd/sofos-serve's e2e test covers the registry path).
func fixtureResolver(t testing.TB) func(string) (*facet.Facet, error) {
	f := newSystem(t).Facet
	return func(string) (*facet.Facet, error) { return f, nil }
}

// newReplicaServer bootstraps a replica of the given primary through the
// production path (checkpoint archive download + restore) and starts its
// replication loop.
func newReplicaServer(t *testing.T, primary *httptest.Server, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	opts := &ReplicaOptions{
		Primary: primary.URL,
		ID:      "r-" + t.Name(),
		Facet:   fixtureResolver(t),
	}
	sys, _, err := BootstrapReplica(context.Background(), *opts, 2)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	cfg.Replica = opts
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := srv.StartReplication(ctx); err != nil {
		t.Fatal(err)
	}
	return srv, ts
}

// waitConverged blocks until the replica reaches the primary's exact
// generation and graph version.
func waitConverged(t testing.TB, primary, replica *Server, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		pg, pv := primary.System().Generation(), primary.System().GraphVersion()
		rg, rv := replica.System().Generation(), replica.System().GraphVersion()
		if pg == rg && pv == rv {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: primary gen %d ver %d, replica gen %d ver %d", pg, pv, rg, rv)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertSameAnswers requires bit-identical answers from both servers.
func assertSameAnswers(t testing.TB, primary, replica *httptest.Server, queries ...string) {
	t.Helper()
	for _, q := range queries {
		pa, ra := query(t, primary, q), query(t, replica, q)
		if !reflect.DeepEqual(pa.Vars, ra.Vars) || !reflect.DeepEqual(pa.Rows, ra.Rows) {
			t.Fatalf("answers diverge for %q:\nprimary %v %v\nreplica %v %v", q, pa.Vars, pa.Rows, ra.Vars, ra.Rows)
		}
	}
}

// TestReplicaServesIdenticalAnswers is the tentpole acceptance test: a
// replica bootstrapped from the primary's checkpoint and tailing /v1/wal
// converges to the primary's exact generation and serves bit-identical
// answers after an update-heavy run — including updates committed before the
// replica ever connected (the WAL suffix past the bootstrap checkpoint).
func TestReplicaServesIdenticalAnswers(t *testing.T) {
	psrv, pts, _ := newDurableServer(t, t.TempDir())

	// Committed before the replica exists: must arrive via the WAL tail.
	var up api.UpdateResponse
	if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Insert: obsTriples("pre1", 11)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Insert: obsTriples("pre2", 13), Maintain: "eager"}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}

	rsrv, rts := newReplicaServer(t, pts, Config{})
	if rsrv.Role() != RoleReplica {
		t.Fatalf("role = %q, want replica", rsrv.Role())
	}

	// Committed while the replica is tailing.
	for i := 0; i < 5; i++ {
		maintain := ""
		if i%2 == 0 {
			maintain = "eager"
		}
		if code := postJSON(t, pts.URL+"/update",
			api.UpdateRequest{Insert: obsTriples(fmt.Sprintf("live%d", i), 20+i), Maintain: maintain}, &up); code != 200 {
			t.Fatalf("update status %d", code)
		}
	}
	if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Delete: obsTriples("pre1", 11)}, &up); code != 200 {
		t.Fatalf("delete status %d", code)
	}

	waitConverged(t, psrv, rsrv, 10*time.Second)
	assertSameAnswers(t, pts, rts, countryQuery, apexQuery)

	// The replica advertises its role, generation, and lag.
	var h api.HealthResponse
	if code := getJSON(t, rts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if !h.OK || h.Role != RoleReplica || h.Generation != psrv.System().Generation() || h.ReplicaLag != 0 {
		t.Fatalf("replica healthz = %+v", h)
	}
	var rst api.StatsResponse
	if code := getJSON(t, rts.URL+"/stats", &rst); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if rst.Role != RoleReplica || rst.Replication == nil || rst.Replication.AppliedRecords == 0 ||
		rst.Replication.Primary != pts.URL {
		t.Fatalf("replica stats = %+v / %+v", rst.Role, rst.Replication)
	}

	// The primary's stats list the replica's progress report.
	var pst api.StatsResponse
	if code := getJSON(t, pts.URL+"/stats", &pst); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if pst.Replication == nil || len(pst.Replication.Replicas) != 1 ||
		pst.Replication.Replicas[0].ID != "r-"+t.Name() {
		t.Fatalf("primary replication stats = %+v", pst.Replication)
	}
}

// TestReplicaRejectsWrites pins the read-only contract: every mutating
// endpoint answers 403 with the read_only_replica code.
func TestReplicaRejectsWrites(t *testing.T) {
	_, pts, _ := newDurableServer(t, t.TempDir())
	_, rts := newReplicaServer(t, pts, Config{})

	for _, c := range []struct {
		path string
		body any
	}{
		{"/v1/update", api.UpdateRequest{Insert: obsTriples("w", 1)}},
		{"/v1/views", api.ViewsRequest{Action: "reset"}},
		{"/v1/admin/checkpoint", struct{}{}},
	} {
		var env api.ErrorResponse
		if code := postJSON(t, rts.URL+c.path, c.body, &env); code != http.StatusForbidden {
			t.Errorf("POST %s status %d, want 403", c.path, code)
		} else if env.Error.Code != api.CodeReadOnlyReplica {
			t.Errorf("POST %s error code %q, want %q", c.path, env.Error.Code, api.CodeReadOnlyReplica)
		}
	}
}

// TestUpdateAckReplicas pins "ack":"replicas:1" semantics: with a live
// replica the update is not acknowledged until that replica reports the
// batch applied, so the 200 response already counts it.
func TestUpdateAckReplicas(t *testing.T) {
	psrv, pts, _ := newDurableServer(t, t.TempDir())
	rsrv, _ := newReplicaServer(t, pts, Config{})

	var up api.UpdateResponse
	if code := postJSON(t, pts.URL+"/update",
		api.UpdateRequest{Insert: obsTriples("acked", 9), Ack: "replicas:1"}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if up.Ack != "replicas:1" || up.AckReplicas < 1 {
		t.Fatalf("ack = %q with %d replicas, want replicas:1 with >= 1", up.Ack, up.AckReplicas)
	}
	// The ack means applied: the replica is already at the batch's version.
	if got, want := rsrv.System().GraphVersion(), psrv.System().GraphVersion(); got < want {
		t.Fatalf("acked batch not applied: replica at version %d, primary at %d", got, want)
	}
}

// TestUpdateAckTimesOutWithoutReplicas pins the other half: replicas:N with
// nobody reporting is a 504 replication_timeout, and the batch is still
// committed and durable (the generation moved).
func TestUpdateAckTimesOutWithoutReplicas(t *testing.T) {
	srv, ts := newDurableServerCfg(t, t.TempDir(), Config{AckTimeout: 50 * time.Millisecond})
	before := srv.System().Generation()

	var env api.ErrorResponse
	code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: obsTriples("orphan", 3), Ack: "replicas:1"}, &env)
	if code != http.StatusGatewayTimeout || env.Error.Code != api.CodeReplicationTimeout {
		t.Fatalf("status %d code %q, want 504 %q", code, env.Error.Code, api.CodeReplicationTimeout)
	}
	if got := srv.System().Generation(); got != before+1 {
		t.Fatalf("generation %d after timed-out ack, want %d: the batch must commit anyway", got, before+1)
	}

	var bad api.ErrorResponse
	if code := postJSON(t, ts.URL+"/update",
		api.UpdateRequest{Insert: obsTriples("bad", 3), Ack: "replicas:0"}, &bad); code != http.StatusBadRequest {
		t.Fatalf("ack=replicas:0 status %d, want 400", code)
	}
}

// newDurableServerCfg is newDurableServer with a caller-supplied Config
// (Durability is filled in here).
func newDurableServerCfg(t *testing.T, path string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir, err := persist.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := persist.OpenLog(dir.WALDir(), persist.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cfg.Durability = &Durability{Dir: dir, Log: l, Dataset: "fixture"}
	srv := New(newSystem(t), cfg)
	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestReplicaKillPoints stops a replica at every record boundary around a
// WAL segment rotation, restarts replication from that exact point, and
// requires convergence to the primary's generation with bit-identical
// answers. The partial tail uses the same client + apply path the runtime
// does, so each boundary is a faithful mid-replication kill.
func TestReplicaKillPoints(t *testing.T) {
	psrv, pts, dur := newDurableServer(t, t.TempDir())

	// Four records with a segment rotation in the middle: boundaries 0..4
	// include "just before rotation" (2) and "just after" (3).
	var up api.UpdateResponse
	for i := 0; i < 2; i++ {
		if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Insert: obsTriples(fmt.Sprintf("a%d", i), i+1)}, &up); code != 200 {
			t.Fatalf("update status %d", code)
		}
	}
	if _, err := dur.Log.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Insert: obsTriples(fmt.Sprintf("b%d", i), i+10), Maintain: "eager"}, &up); code != 200 {
			t.Fatalf("update status %d", code)
		}
	}

	resolver := fixtureResolver(t)
	errKilled := errors.New("killed at boundary")
	for k := 0; k <= 4; k++ {
		t.Run(fmt.Sprintf("boundary%d", k), func(t *testing.T) {
			opts := &ReplicaOptions{Primary: pts.URL, ID: fmt.Sprintf("kp-%d", k), Facet: resolver}
			sys, _, err := BootstrapReplica(context.Background(), *opts, 2)
			if err != nil {
				t.Fatal(err)
			}
			// Tail by hand and die after exactly k applied records.
			applied := 0
			cl := client.New(pts.URL, nil)
			err = cl.StreamWAL(context.Background(), sys.GraphVersion(), func(ev *api.WALEvent) error {
				if ev.Heartbeat {
					if applied == k {
						return errKilled // idle at the target boundary: kill now
					}
					return nil
				}
				rec, err := persist.DecodeRecord(ev.Record)
				if err != nil {
					return err
				}
				if err := core.ReplayRecord(sys, rec, nil); err != nil {
					return err
				}
				if applied++; applied == k {
					return errKilled
				}
				return nil
			})
			if !errors.Is(err, errKilled) {
				t.Fatalf("partial tail ended with %v, want the kill sentinel", err)
			}
			if applied != k {
				t.Fatalf("killed after %d records, want %d", applied, k)
			}

			// Restart: wrap the killed state in a server and let the real
			// replication loop resume from the boundary.
			srv := New(sys, Config{Replica: opts})
			rts := httptest.NewServer(srv.Handler())
			defer rts.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := srv.StartReplication(ctx); err != nil {
				t.Fatal(err)
			}
			waitConverged(t, psrv, srv, 10*time.Second)
			assertSameAnswers(t, pts, rts, countryQuery, apexQuery)
		})
	}
}

// TestReplicaStreamVsCheckpointTruncation runs the replication stream
// concurrently with checkpoint-triggered WAL truncation (run under -race in
// CI): rotations and truncations under the cursor must end in convergence —
// via reconnect or re-bootstrap — never divergence.
func TestReplicaStreamVsCheckpointTruncation(t *testing.T) {
	psrv, pts, _ := newDurableServer(t, t.TempDir())
	rsrv, rts := newReplicaServer(t, pts, Config{})

	done := make(chan error, 1)
	go func() {
		var up api.UpdateResponse
		for i := 0; i < 12; i++ {
			if code := postJSON(t, pts.URL+"/update",
				api.UpdateRequest{Insert: obsTriples(fmt.Sprintf("t%d", i), i+1)}, &up); code != 200 {
				done <- fmt.Errorf("update %d status %d", i, code)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if _, err := psrv.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := psrv.Checkpoint(); err != nil { // truncate once more at the end
		t.Fatal(err)
	}
	waitConverged(t, psrv, rsrv, 15*time.Second)
	assertSameAnswers(t, pts, rts, countryQuery, apexQuery)
}

// TestReadYourWrites pins the min-generation gate: a reader that inherited a
// writer's generation floor never sees a replica answer older than its own
// write — the replica waits briefly, then hands the read to the primary.
func TestReadYourWrites(t *testing.T) {
	_, pts, _ := newDurableServer(t, t.TempDir())

	// Bootstrap a replica but never start its replication loop: it is
	// frozen at the bootstrap checkpoint, permanently behind.
	opts := &ReplicaOptions{Primary: pts.URL, ID: "ryw", Facet: fixtureResolver(t)}
	sys, _, err := BootstrapReplica(context.Background(), *opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	rsrv := New(sys, Config{Replica: opts, ReadWait: 50 * time.Millisecond})
	rts := httptest.NewServer(rsrv.Handler())
	defer rts.Close()

	// Write through the primary, carry the generation to a replica reader.
	writer := client.New(pts.URL, nil)
	if _, err := writer.Update(context.Background(), api.UpdateRequest{Insert: obsTriples("ryw", 77)}); err != nil {
		t.Fatal(err)
	}
	want, err := writer.Query(context.Background(), api.QueryRequest{Query: apexQuery})
	if err != nil {
		t.Fatal(err)
	}

	reader := client.New(rts.URL, nil)
	reader.ObserveGeneration(writer.Generation())
	got, err := reader.Query(context.Background(), api.QueryRequest{Query: apexQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("stale read through the gate: got %v, want %v", got.Rows, want.Rows)
	}

	// The redirect is a 307 to the primary when followed by hand.
	req, err := http.NewRequest(http.MethodGet, rts.URL+"/v1/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	q := req.URL.Query()
	q.Set("q", apexQuery)
	req.URL.RawQuery = q.Encode()
	req.Header.Set(api.HeaderMinGeneration, fmt.Sprintf("%d", writer.Generation()))
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("gated read status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("307 without a Location header")
	}

	// A floor the replica already satisfies is served locally.
	local := client.New(rts.URL, nil)
	if _, err := local.Query(context.Background(), api.QueryRequest{Query: apexQuery}); err != nil {
		t.Fatal(err)
	}
}

// TestWALStreamEndpointErrors pins the stream's refusal codes: a resume
// version behind the last checkpoint is 410 wal_truncated, one ahead of the
// primary is 409 wal_gap, and non-durable or replica servers are 503.
func TestWALStreamEndpointErrors(t *testing.T) {
	psrv, pts, _ := newDurableServer(t, t.TempDir())
	var up api.UpdateResponse
	if code := postJSON(t, pts.URL+"/update", api.UpdateRequest{Insert: obsTriples("s", 5)}, &up); code != 200 {
		t.Fatalf("update status %d", code)
	}
	if _, err := psrv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var env api.ErrorResponse
	if code := getJSON(t, pts.URL+"/v1/wal?from=0", &env); code != http.StatusGone || env.Error.Code != api.CodeWALTruncated {
		t.Fatalf("stale from: status %d code %q, want 410 %q", code, env.Error.Code, api.CodeWALTruncated)
	}
	ahead := psrv.System().GraphVersion() + 100
	if code := getJSON(t, fmt.Sprintf("%s/v1/wal?from=%d", pts.URL, ahead), &env); code != http.StatusConflict || env.Error.Code != api.CodeWALGap {
		t.Fatalf("future from: status %d code %q, want 409 %q", code, env.Error.Code, api.CodeWALGap)
	}

	_, mts := newTestServer(t, Config{}) // memory-only: no log to stream
	if code := getJSON(t, mts.URL+"/v1/wal", &env); code != http.StatusServiceUnavailable {
		t.Fatalf("memory-only stream status %d, want 503", code)
	}
	if code := getJSON(t, mts.URL+"/v1/checkpoint", &env); code != http.StatusServiceUnavailable {
		t.Fatalf("memory-only archive status %d, want 503", code)
	}
}
