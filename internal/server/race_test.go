package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"sofos/internal/api"
)

// renderKey flattens a response's rows for bit-identical comparison across
// concurrent observations of the same generation.
func renderKey(rows [][]string) string {
	return fmt.Sprintf("%q", rows)
}

// TestServeWhileRefresh hammers /query from many clients while a writer
// applies update batches and refreshes the materialized views, asserting
// under -race that every response is well-formed and equal to the answer at
// SOME committed catalog state: the returned sum must be one of the prefix
// sums the writer produced (an answer from a not-yet-refreshed view equals
// an earlier committed state, which is still consistent — SOFOS refreshes
// views on demand, not on write).
func TestServeWhileRefresh(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 8})

	// Materialize views so queries are answered through the rewriter and
	// refresh has real work: country answers countryQuery, and the apex
	// roll-up path exercises re-aggregation.
	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize returned status %d", code)
	}

	const rounds = 12
	const popPerRound = 1_000_000 // dwarfs base pops so each state is distinct

	// validSums[i] is the apex sum after i committed update batches. Batches
	// commit atomically under the server's write lock, so no other sums can
	// ever be observed.
	base := numCell(t, query(t, ts, apexQuery).Rows[0][0])
	validSums := make(map[float64]bool, rounds+1)
	sum := base
	validSums[sum] = true
	for i := 0; i < rounds; i++ {
		sum += popPerRound
		validSums[sum] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Readers: alternate the apex and per-country queries until told to stop.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := apexQuery
				if i%2 == 1 {
					q = countryQuery
				}
				resp, err := client.Post(ts.URL+"/query", "application/json",
					jsonBody(api.QueryRequest{Query: q}))
				if err != nil {
					report(fmt.Errorf("reader %d: %v", r, err))
					return
				}
				var out api.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					report(fmt.Errorf("reader %d: malformed JSON: %v", r, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					report(fmt.Errorf("reader %d: status %d", r, resp.StatusCode))
					return
				}
				if q == apexQuery {
					if len(out.Rows) != 1 || len(out.Rows[0]) != 1 {
						report(fmt.Errorf("reader %d: apex shape %v", r, out.Rows))
						return
					}
					got, err := parseNum(out.Rows[0][0])
					if err != nil {
						report(fmt.Errorf("reader %d: %v", r, err))
						return
					}
					if !validSums[got] {
						report(fmt.Errorf("reader %d: sum %v matches no committed catalog state", r, got))
						return
					}
				}
			}
		}(r)
	}

	// Writer: insert a batch, then refresh, every round.
	for i := 0; i < rounds; i++ {
		var up api.UpdateResponse
		if code := postJSON(t, ts.URL+"/update",
			api.UpdateRequest{Insert: obsTriples(fmt.Sprintf("race%d", i), popPerRound)}, &up); code != http.StatusOK {
			t.Fatalf("round %d: update status %d", i, code)
		}
		if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "refresh"}, &act); code != http.StatusOK {
			t.Fatalf("round %d: refresh status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the last refresh the view is fresh: the final answer must be the
	// final sum, served via the materialized view.
	final := query(t, ts, apexQuery)
	if got := numCell(t, final.Rows[0][0]); got != sum {
		t.Fatalf("final sum = %v, want %v", got, sum)
	}
	if final.Via != "country" {
		t.Errorf("final answer came via %q, want the country view", final.Via)
	}
	st := srv.cache.stats()
	if st.Hits+st.Misses == 0 {
		t.Error("cache saw no traffic")
	}
}

// TestMVCCDifferentialUnderEagerStorm is the snapshot-chain differential
// check: readers hammer /query while a writer commits multi-statement
// transactions with maintain=eager — the path where, pre-MVCC, every reader
// stalled behind the refresh inside the write lock. Under -race it asserts
// that every response matches some committed generation exactly:
//
//   - the apex sum equals a whole-transaction prefix sum (each transaction
//     commits two statements atomically, so observing half a transaction's
//     contribution is an atomicity violation), and
//   - two responses carrying the same generation are bit-identical — a
//     generation is immutable once published.
func TestMVCCDifferentialUnderEagerStorm(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 8})

	var act api.ViewsActionResponse
	if code := postJSON(t, ts.URL+"/views", api.ViewsRequest{Action: "materialize", View: "country"}, &act); code != http.StatusOK {
		t.Fatalf("materialize returned status %d", code)
	}

	const rounds = 10
	const popPerStmt = 1_000_000

	// Each transaction carries two statements; only whole-transaction sums
	// are committed states. With maintain=eager the views are fresh at every
	// committed generation, so each generation has exactly one apex answer.
	base := numCell(t, query(t, ts, apexQuery).Rows[0][0])
	validSums := make(map[float64]bool, rounds+1)
	sum := base
	validSums[sum] = true
	for i := 0; i < rounds; i++ {
		sum += 2 * popPerStmt
		validSums[sum] = true
	}

	// byGeneration records the first rows observed for (query, generation);
	// every later observation of the same pair must be identical.
	var genMu sync.Mutex
	byGeneration := make(map[string]string)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := apexQuery
				if i%2 == 1 {
					q = countryQuery
				}
				resp, err := client.Post(ts.URL+"/query", "application/json",
					jsonBody(api.QueryRequest{Query: q}))
				if err != nil {
					report(fmt.Errorf("reader %d: %v", r, err))
					return
				}
				var out api.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					report(fmt.Errorf("reader %d: malformed JSON: %v", r, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					report(fmt.Errorf("reader %d: status %d", r, resp.StatusCode))
					return
				}
				key := fmt.Sprintf("%s@%d", q, out.Generation)
				rk := renderKey(out.Rows)
				genMu.Lock()
				prev, seen := byGeneration[key]
				if !seen {
					byGeneration[key] = rk
				}
				genMu.Unlock()
				if seen && prev != rk {
					report(fmt.Errorf("reader %d: generation %d answered two different bodies:\n%s\n%s",
						r, out.Generation, prev, rk))
					return
				}
				if q == apexQuery {
					got, err := parseNum(out.Rows[0][0])
					if err != nil {
						report(fmt.Errorf("reader %d: %v", r, err))
						return
					}
					if !validSums[got] {
						report(fmt.Errorf("reader %d: sum %v matches no whole-transaction state (partial transaction observed?)", r, got))
						return
					}
				}
			}
		}(r)
	}

	// Writer: two-statement eager transactions. Every commit is one
	// generation bump covering both statements plus the refresh.
	lastGen := int64(0)
	for i := 0; i < rounds; i++ {
		var up api.UpdateResponse
		req := api.UpdateRequest{
			Statements: []api.UpdateStatement{
				{Insert: obsTriples(fmt.Sprintf("mvccA%d", i), popPerStmt)},
				{Insert: obsTriples(fmt.Sprintf("mvccB%d", i), popPerStmt)},
			},
			Maintain: "eager",
		}
		if code := postJSON(t, ts.URL+"/update", req, &up); code != http.StatusOK {
			t.Fatalf("round %d: update status %d", i, code)
		}
		if up.Statements != 2 || up.Inserted != 8 {
			t.Fatalf("round %d: statements %d inserted %d, want 2 and 8", i, up.Statements, up.Inserted)
		}
		if up.Refreshed == 0 || up.Stale != 0 {
			t.Fatalf("round %d: refreshed %d stale %d, want eager maintenance to leave nothing stale", i, up.Refreshed, up.Stale)
		}
		if lastGen != 0 && up.Generation != lastGen+1 {
			t.Fatalf("round %d: generation %d after %d, want exactly one bump per transaction", i, up.Generation, lastGen)
		}
		lastGen = up.Generation
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	final := query(t, ts, apexQuery)
	if got := numCell(t, final.Rows[0][0]); got != sum {
		t.Fatalf("final sum = %v, want %v", got, sum)
	}
	if final.Via != "country" {
		t.Errorf("final answer came via %q, want the country view", final.Via)
	}
}
