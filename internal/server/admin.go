package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/cost"
	"sofos/internal/facet"
	"sofos/internal/persist"
	"sofos/internal/rdf"
)

// handleUpdate applies one batched write through the catalog so base graph
// and G+ stay consistent, materialized views turn stale, and the batch's
// effective delta is captured for incremental maintenance. The whole batch
// commits under one write-lock acquisition, so concurrent queries see either
// none or all of it. The catalog's ApplyUpdate validates the whole insert
// batch before touching anything, so a non-200 response from the apply step
// means nothing was applied. The one exception is maintain=eager: a refresh
// failure returns 500 *after* the batch has committed — the error body
// states what was applied so clients do not re-send it.
//
// Acknowledgement levels: "" or "local" acknowledges once the batch reached
// the write-ahead log (the durability point); "replicas:N" additionally
// waits — after releasing the write lock, so replication itself is never
// stalled by the wait — until N replicas report the batch applied.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST a JSON body")
		return
	}
	var req api.UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.Maintain != "" && req.Maintain != "lazy" && req.Maintain != "eager" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"unknown maintain mode %q (use lazy or eager)", req.Maintain)
		return
	}
	ackN, err := parseAckLevel(req.Ack)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	inserts, err := parseTriples(req.Insert)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeParseError, "insert: %v", err)
		return
	}
	deletes, err := parseTriples(req.Delete)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeParseError, "delete: %v", err)
		return
	}
	if len(inserts) == 0 && len(deletes) == 0 {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "empty update batch")
		return
	}

	resp, toVersion, ok := s.commitUpdate(w, &req, inserts, deletes)
	if !ok {
		return
	}
	if ackN > 0 {
		// The wait runs outside the write lock: replicas catch up by tailing
		// the WAL (file reads) and posting acks, neither of which needs the
		// lock, but queries and further writes must not stall behind us.
		start := time.Now()
		got, waitErr := s.tracker.waitFor(r.Context(), ackN, toVersion, s.cfg.AckTimeout)
		resp.Ack = fmt.Sprintf("replicas:%d", ackN)
		resp.AckReplicas = got
		resp.AckElapsedUS = time.Since(start).Microseconds()
		if waitErr != nil {
			httpError(w, http.StatusGatewayTimeout, api.CodeReplicationTimeout,
				"batch committed and locally durable at generation %d, but only %d of %d replicas acknowledged it: %v",
				resp.Generation, got, ackN, waitErr)
			return
		}
	} else {
		resp.Ack = "local"
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseAckLevel resolves an UpdateRequest.Ack value to the number of replica
// acknowledgements required (0 = local only).
func parseAckLevel(level string) (int, error) {
	switch {
	case level == "" || level == "local":
		return 0, nil
	case strings.HasPrefix(level, "replicas:"):
		n, err := strconv.Atoi(strings.TrimPrefix(level, "replicas:"))
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad ack level %q: replicas:N needs N >= 1", level)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("unknown ack level %q (use local or replicas:N)", level)
	}
}

// commitUpdate is handleUpdate's write critical section: apply the batch,
// run eager maintenance if asked, and reach the local durability point. It
// reports whether the caller may proceed to acknowledgement (on false the
// error response has been written) plus the batch's end version, which is
// what replica acknowledgements are counted against.
func (s *Server) commitUpdate(w http.ResponseWriter, req *api.UpdateRequest, inserts, deletes []rdf.Triple) (*api.UpdateResponse, int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sys := s.system()
	// An earlier batch committed in memory but never reached the WAL: until
	// a checkpoint captures it, logging any further batch would write a
	// version interval recovery cannot chain to (it would replay onto a
	// graph missing the unlogged batch). Heal by checkpointing first, or
	// refuse before applying anything.
	if s.dur != nil && s.walGap.Load() {
		if _, err := s.checkpointLocked(); err != nil {
			httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				"write-ahead log has an unhealed gap and checkpointing failed: %v; update refused (nothing applied)", err)
			return nil, 0, false
		}
		s.walGap.Store(false)
	}
	d, err := sys.Catalog.ApplyUpdate(inserts, deletes)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "applying batch: %v", err)
		return nil, 0, false
	}
	resp := &api.UpdateResponse{Inserted: len(d.Inserted), Deleted: len(d.Deleted)}
	var refreshErr error
	if req.Maintain == "eager" {
		plan, err := sys.Catalog.PlanRefresh(sys.Workers)
		if err != nil {
			refreshErr = fmt.Errorf(
				"batch applied (%d inserted, %d deleted) but eager refresh failed to plan: %v",
				resp.Inserted, resp.Deleted, err)
		} else {
			if plan != nil {
				resp.Incremental = plan.Incremental()
			}
			n, err := sys.Catalog.CommitRefresh(plan)
			if err != nil {
				refreshErr = fmt.Errorf(
					"batch applied (%d inserted, %d deleted) and %d views refreshed, then eager refresh failed: %v",
					resp.Inserted, resp.Deleted, n, err)
			} else {
				resp.Refreshed = n
			}
		}
	}
	// Durability point: the committed batch reaches the write-ahead log —
	// under -wal-sync=always, stable storage — before any acknowledgement,
	// including the post-commit refresh-failure 500s (those tell the client
	// the batch applied, so it must survive a crash too). The recorded
	// generation is the one the client will see; replay reinstates it
	// exactly.
	if s.dur != nil && d.FromVersion != d.ToVersion {
		rec := &persist.Record{
			FromVersion: d.FromVersion,
			ToVersion:   d.ToVersion,
			Generation:  sys.Generation(),
			Eager:       req.Maintain == "eager" && refreshErr == nil,
			Inserts:     d.Inserted,
			Deletes:     d.Deleted,
		}
		if err := s.dur.Log.Append(rec); err != nil {
			// The batch is live but unlogged — a gap every later logged
			// record would be unrecoverable across. A checkpoint heals it:
			// the snapshot captures the batch and rotates the log past the
			// gap, after which the batch IS durable and the ack can proceed.
			if _, cperr := s.checkpointLocked(); cperr != nil {
				s.walGap.Store(true)
				httpError(w, http.StatusInternalServerError, api.CodeInternal,
					"batch committed in memory (%d inserted, %d deleted) but failed to reach the write-ahead log (%v) and the healing checkpoint failed (%v); it will not survive a restart, and further updates are refused until a checkpoint succeeds",
					resp.Inserted, resp.Deleted, err, cperr)
				return nil, 0, false
			}
		}
	}
	if refreshErr != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "%v", refreshErr)
		return nil, 0, false
	}
	// A no-op delta (nothing logged) can still have eagerly refreshed views
	// left stale by earlier lazy batches — a generation bump the WAL does
	// not capture. Snapshot it, as manual /views refreshes do.
	if s.dur != nil && d.FromVersion == d.ToVersion && resp.Refreshed > 0 &&
		!s.persistViewChange(w, "eager refresh") {
		return nil, 0, false
	}
	resp.Stale = len(sys.Catalog.StaleViews())
	resp.Generation = sys.Generation()
	s.updates.Add(1)
	return resp, d.ToVersion, true
}

// rejectReplicaWrite refuses mutations on a read replica, naming the
// primary. It reports whether the response has been written.
func (s *Server) rejectReplicaWrite(w http.ResponseWriter) bool {
	if s.role != RoleReplica {
		return false
	}
	httpError(w, http.StatusForbidden, api.CodeReadOnlyReplica,
		"this server is a read replica; send writes to the primary at %s", s.repl.primaryURL())
	return true
}

// parseTriples parses an N-Triples text block ("" means none).
func parseTriples(text string) ([]rdf.Triple, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	return rdf.NewParser(strings.NewReader(text)).ParseAll()
}

// handleViews lists (GET) or manages (POST) materializations.
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		sys := s.system()
		resp := api.ViewsResponse{
			Facet:        sys.Facet.Name,
			LatticeViews: sys.Lattice.Size(),
			Materialized: []api.ViewInfo{},
			Generation:   sys.Generation(),
		}
		for _, m := range sys.Catalog.Materialized() {
			v := m.View()
			resp.Materialized = append(resp.Materialized, api.ViewInfo{
				ID:      v.ID(),
				Dims:    v.Dims(),
				Groups:  m.Data.NumGroups(),
				Triples: m.Triples,
				Stale:   sys.Catalog.Stale(v.Mask),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		if s.rejectReplicaWrite(w) {
			return
		}
		var req api.ViewsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
			return
		}
		s.handleViewsAction(w, req)
	default:
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET lists views, POST manages them")
	}
}

// handleViewsAction dispatches one POST /views action.
func (s *Server) handleViewsAction(w http.ResponseWriter, req api.ViewsRequest) {
	switch req.Action {
	case "materialize":
		s.actionMaterialize(w, req)
	case "refresh":
		s.actionRefresh(w)
	case "drop":
		v, err := s.resolveView(req.View)
		if err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		sys := s.system()
		if !sys.Catalog.Drop(v) {
			httpError(w, http.StatusNotFound, api.CodeNotFound, "view %s is not materialized", v.ID())
			return
		}
		if !s.persistViewChange(w, "drop") {
			return
		}
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "drop", Views: []string{v.ID()}, Generation: sys.Generation(),
		})
	case "reset":
		s.mu.Lock()
		defer s.mu.Unlock()
		sys := s.system()
		sys.Reset()
		if !s.persistViewChange(w, "reset") {
			return
		}
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "reset", Generation: sys.Generation(),
		})
	default:
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"unknown action %q (use materialize, refresh, drop, reset)", req.Action)
	}
}

// actionMaterialize materializes one named view, or a cost-model selection
// when no view is named. Like refresh, the expensive read-only phases —
// lattice statistics, selection, view-content computation — run under the
// read lock so queries keep flowing; only the G+ encoding takes the write
// lock (Catalog.PlanMaterialize / CommitMaterialize).
func (s *Server) actionMaterialize(w http.ResponseWriter, req api.ViewsRequest) {
	s.mu.RLock()
	sys := s.system()
	targets, err := s.materializeTargets(sys, req)
	if err != nil {
		s.mu.RUnlock()
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	plan, err := sys.Catalog.PlanMaterialize(targets, sys.Workers)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "computing view contents: %v", err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	mats, err := sys.Catalog.CommitMaterialize(plan)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "materializing: %v", err)
		return
	}
	// Report what was actually committed: targets already materialized at
	// plan time are excluded from the plan and must not be listed as acted on.
	resp := api.ViewsActionResponse{Action: "materialize", Generation: sys.Generation()}
	for _, m := range mats {
		resp.Views = append(resp.Views, m.View().ID())
	}
	if len(mats) > 0 && !s.persistViewChange(w, "materialize") {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// materializeTargets resolves a materialize request to concrete views: the
// named view, or a cost-model selection. Read-only; callers hold the read
// lock (System.Provider serializes its own lazy initialization).
func (s *Server) materializeTargets(sys *core.System, req api.ViewsRequest) ([]facet.View, error) {
	if req.View != "" {
		v, err := s.resolveView(req.View)
		if err != nil {
			return nil, err
		}
		return []facet.View{v}, nil
	}
	model := req.Model
	if model == "" {
		model = "aggvalues"
	}
	k := req.K
	if k <= 0 {
		k = 3
	}
	models, err := sys.AnalyticModels(s.cfg.SelectionSeed)
	if err != nil {
		return nil, fmt.Errorf("computing lattice statistics: %w", err)
	}
	var picked cost.Model
	for _, m := range models {
		if m.Name() == model {
			picked = m
			break
		}
	}
	if picked == nil {
		return nil, fmt.Errorf("unknown model %q (use random, triples, aggvalues, or nodes)", model)
	}
	sel, err := sys.SelectViews(picked, k)
	if err != nil {
		return nil, fmt.Errorf("selecting views: %w", err)
	}
	return sel.Views, nil
}

// actionRefresh refreshes stale views: contents are recomputed under the
// read lock (queries keep flowing), only the diff apply takes the write
// lock.
func (s *Server) actionRefresh(w http.ResponseWriter) {
	s.mu.RLock()
	sys := s.system()
	plan, err := sys.Catalog.PlanRefresh(sys.Workers)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "recomputing stale views: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := sys.Catalog.CommitRefresh(plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "applying refresh: %v", err)
		return
	}
	// A manual refresh moves the generation without a WAL record (only
	// /update batches are logged), so snapshot the state it produced.
	if n > 0 && !s.persistViewChange(w, "refresh") {
		return
	}
	writeJSON(w, http.StatusOK, api.ViewsActionResponse{
		Action: "refresh", Refreshed: n, Generation: sys.Generation(),
	})
}

// resolveView maps a view ID ("lang+year" or "apex") to a facet view.
func (s *Server) resolveView(id string) (facet.View, error) {
	f := s.system().Facet
	if id == "apex" {
		return f.View(0), nil
	}
	return f.ViewByDims(strings.Split(id, "+")...)
}

// handleStats reports serving health.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sys := s.system()
	resp := api.StatsResponse{
		UptimeS:         time.Since(s.started).Seconds(),
		Role:            s.role,
		Facet:           sys.Facet.Name,
		Dims:            sys.Facet.Dims,
		BaseTriples:     sys.Graph.Len(),
		ExpandedTriples: sys.Catalog.Expanded().Len(),
		Amplification:   sys.Catalog.StorageAmplification(),
		Materialized:    len(sys.Catalog.Materialized()),
		StaleViews:      len(sys.Catalog.StaleViews()),
		Maintenance:     sys.Catalog.MaintenanceMode().String(),
		Views:           []api.ViewMaintStats{},
		Generation:      sys.Generation(),
		GraphVersion:    sys.GraphVersion(),
		ViewSetHash:     strconv.FormatUint(sys.ViewSetHash(), 16),
		Workers:         sys.Workers,
		MaxConcurrent:   s.cfg.MaxConcurrent,
		InFlight:        len(s.sem),
		Queries:         s.queries.Load(),
		Updates:         s.updates.Load(),
		Store:           sys.Graph.MemStats(),
	}
	for _, m := range sys.Catalog.Materialized() {
		v := m.View()
		resp.Views = append(resp.Views, api.ViewMaintStats{
			ID:            v.ID(),
			Groups:        m.Data.NumGroups(),
			Stale:         sys.Catalog.Stale(v.Mask),
			Mode:          m.Maint.Mode,
			LastPath:      m.Maint.LastPath,
			LastRefreshUS: m.Maint.LastCost.Microseconds(),
			LastDeltaSize: m.Maint.DeltaSize,
		})
	}
	if s.cache != nil {
		resp.Cache = s.cache.stats()
	}
	resp.Persist = s.persistStatsNow()
	resp.Replication = s.replicationStatsNow(sys)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness probe: enough for a load balancer to route
// around a lagging replica without parsing full stats.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sys := s.system()
	writeJSON(w, http.StatusOK, api.HealthResponse{
		OK:         true,
		Role:       s.role,
		Generation: sys.Generation(),
		WALVersion: sys.GraphVersion(),
		ReplicaLag: s.replicaLag(sys),
	})
}
