package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sofos/internal/cost"
	"sofos/internal/facet"
	"sofos/internal/persist"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// updateRequest is the /update request body: N-Triples text blocks to
// insert into and delete from the base graph. The whole batch commits under
// one write-lock acquisition, so concurrent queries see either none or all
// of it. Maintain selects the view-maintenance mode: "" or "lazy" leaves
// stale views for the next refresh; "eager" refreshes them in the same
// critical section — cheap when the catalog's incremental O(|ΔG|) path
// applies, since the committed delta is already captured.
type updateRequest struct {
	Insert   string `json:"insert,omitempty"`   // N-Triples text
	Delete   string `json:"delete,omitempty"`   // N-Triples text
	Maintain string `json:"maintain,omitempty"` // "", "lazy", or "eager"
}

// updateResponse reports what one batch changed.
type updateResponse struct {
	Inserted    int   `json:"inserted"`              // triples actually new
	Deleted     int   `json:"deleted"`               // triples actually removed
	Stale       int   `json:"stale"`                 // materialized views still stale
	Refreshed   int   `json:"refreshed,omitempty"`   // views refreshed (maintain=eager)
	Incremental int   `json:"incremental,omitempty"` // of those, via the delta path
	Generation  int64 `json:"generation"`
}

// handleUpdate applies one batched write through the catalog so base graph
// and G+ stay consistent, materialized views turn stale, and the batch's
// effective delta is captured for incremental maintenance. The catalog's
// ApplyUpdate validates the whole insert batch before touching anything, so
// a non-200 response from the apply step means nothing was applied. The one
// exception is maintain=eager: a refresh failure returns 500 *after* the
// batch has committed — the error body states what was applied so clients
// do not re-send it.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON body")
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Maintain != "" && req.Maintain != "lazy" && req.Maintain != "eager" {
		httpError(w, http.StatusBadRequest, "unknown maintain mode %q (use lazy or eager)", req.Maintain)
		return
	}
	inserts, err := parseTriples(req.Insert)
	if err != nil {
		httpError(w, http.StatusBadRequest, "insert: %v", err)
		return
	}
	deletes, err := parseTriples(req.Delete)
	if err != nil {
		httpError(w, http.StatusBadRequest, "delete: %v", err)
		return
	}
	if len(inserts) == 0 && len(deletes) == 0 {
		httpError(w, http.StatusBadRequest, "empty update batch")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// An earlier batch committed in memory but never reached the WAL: until
	// a checkpoint captures it, logging any further batch would write a
	// version interval recovery cannot chain to (it would replay onto a
	// graph missing the unlogged batch). Heal by checkpointing first, or
	// refuse before applying anything.
	if s.dur != nil && s.walGap.Load() {
		if _, err := s.checkpointLocked(); err != nil {
			httpError(w, http.StatusServiceUnavailable,
				"write-ahead log has an unhealed gap and checkpointing failed: %v; update refused (nothing applied)", err)
			return
		}
		s.walGap.Store(false)
	}
	d, err := s.sys.Catalog.ApplyUpdate(inserts, deletes)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "applying batch: %v", err)
		return
	}
	resp := updateResponse{Inserted: len(d.Inserted), Deleted: len(d.Deleted)}
	var refreshErr error
	if req.Maintain == "eager" {
		plan, err := s.sys.Catalog.PlanRefresh(s.sys.Workers)
		if err != nil {
			refreshErr = fmt.Errorf(
				"batch applied (%d inserted, %d deleted) but eager refresh failed to plan: %v",
				resp.Inserted, resp.Deleted, err)
		} else {
			if plan != nil {
				resp.Incremental = plan.Incremental()
			}
			n, err := s.sys.Catalog.CommitRefresh(plan)
			if err != nil {
				refreshErr = fmt.Errorf(
					"batch applied (%d inserted, %d deleted) and %d views refreshed, then eager refresh failed: %v",
					resp.Inserted, resp.Deleted, n, err)
			} else {
				resp.Refreshed = n
			}
		}
	}
	// Durability point: the committed batch reaches the write-ahead log —
	// under -wal-sync=always, stable storage — before any acknowledgement,
	// including the post-commit refresh-failure 500s (those tell the client
	// the batch applied, so it must survive a crash too). The recorded
	// generation is the one the client will see; replay reinstates it
	// exactly.
	if s.dur != nil && d.FromVersion != d.ToVersion {
		rec := &persist.Record{
			FromVersion: d.FromVersion,
			ToVersion:   d.ToVersion,
			Generation:  s.sys.Generation(),
			Eager:       req.Maintain == "eager" && refreshErr == nil,
			Inserts:     d.Inserted,
			Deletes:     d.Deleted,
		}
		if err := s.dur.Log.Append(rec); err != nil {
			// The batch is live but unlogged — a gap every later logged
			// record would be unrecoverable across. A checkpoint heals it:
			// the snapshot captures the batch and rotates the log past the
			// gap, after which the batch IS durable and the ack can proceed.
			if _, cperr := s.checkpointLocked(); cperr != nil {
				s.walGap.Store(true)
				httpError(w, http.StatusInternalServerError,
					"batch committed in memory (%d inserted, %d deleted) but failed to reach the write-ahead log (%v) and the healing checkpoint failed (%v); it will not survive a restart, and further updates are refused until a checkpoint succeeds",
					resp.Inserted, resp.Deleted, err, cperr)
				return
			}
		}
	}
	if refreshErr != nil {
		httpError(w, http.StatusInternalServerError, "%v", refreshErr)
		return
	}
	// A no-op delta (nothing logged) can still have eagerly refreshed views
	// left stale by earlier lazy batches — a generation bump the WAL does
	// not capture. Snapshot it, as manual /views refreshes do.
	if s.dur != nil && d.FromVersion == d.ToVersion && resp.Refreshed > 0 &&
		!s.persistViewChange(w, "eager refresh") {
		return
	}
	resp.Stale = len(s.sys.Catalog.StaleViews())
	resp.Generation = s.sys.Generation()
	s.updates.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// parseTriples parses an N-Triples text block ("" means none).
func parseTriples(text string) ([]rdf.Triple, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	return rdf.NewParser(strings.NewReader(text)).ParseAll()
}

// viewInfo describes one materialized view in /views responses.
type viewInfo struct {
	ID      string   `json:"id"`
	Dims    []string `json:"dims"`
	Groups  int      `json:"groups"`
	Triples int      `json:"triples"` // encoding triples in G+
	Stale   bool     `json:"stale"`
}

// viewsResponse is the GET /views response body.
type viewsResponse struct {
	Facet        string     `json:"facet"`
	LatticeViews int        `json:"lattice_views"`
	Materialized []viewInfo `json:"materialized"`
	Generation   int64      `json:"generation"`
}

// viewsRequest is the POST /views action body.
type viewsRequest struct {
	// Action is one of "materialize", "refresh", "drop", "reset".
	Action string `json:"action"`
	// View names one view (dimension names joined by "+", or "apex") for
	// materialize/drop. Empty with materialize means select by Model and K.
	View string `json:"view,omitempty"`
	// Model and K drive cost-based selection for "materialize" without View.
	Model string `json:"model,omitempty"`
	K     int    `json:"k,omitempty"`
}

// viewsActionResponse reports a POST /views outcome.
type viewsActionResponse struct {
	Action     string   `json:"action"`
	Views      []string `json:"views,omitempty"` // views acted on
	Refreshed  int      `json:"refreshed"`       // refresh only
	Generation int64    `json:"generation"`
}

// handleViews lists (GET) or manages (POST) materializations.
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		resp := viewsResponse{
			Facet:        s.sys.Facet.Name,
			LatticeViews: s.sys.Lattice.Size(),
			Materialized: []viewInfo{},
			Generation:   s.sys.Generation(),
		}
		for _, m := range s.sys.Catalog.Materialized() {
			v := m.View()
			resp.Materialized = append(resp.Materialized, viewInfo{
				ID:      v.ID(),
				Dims:    v.Dims(),
				Groups:  m.Data.NumGroups(),
				Triples: m.Triples,
				Stale:   s.sys.Catalog.Stale(v.Mask),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		var req viewsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		s.handleViewsAction(w, req)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET lists views, POST manages them")
	}
}

// handleViewsAction dispatches one POST /views action.
func (s *Server) handleViewsAction(w http.ResponseWriter, req viewsRequest) {
	switch req.Action {
	case "materialize":
		s.actionMaterialize(w, req)
	case "refresh":
		s.actionRefresh(w)
	case "drop":
		v, err := s.resolveView(req.View)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.sys.Catalog.Drop(v) {
			httpError(w, http.StatusNotFound, "view %s is not materialized", v.ID())
			return
		}
		if !s.persistViewChange(w, "drop") {
			return
		}
		writeJSON(w, http.StatusOK, viewsActionResponse{
			Action: "drop", Views: []string{v.ID()}, Generation: s.sys.Generation(),
		})
	case "reset":
		s.mu.Lock()
		defer s.mu.Unlock()
		s.sys.Reset()
		if !s.persistViewChange(w, "reset") {
			return
		}
		writeJSON(w, http.StatusOK, viewsActionResponse{
			Action: "reset", Generation: s.sys.Generation(),
		})
	default:
		httpError(w, http.StatusBadRequest,
			"unknown action %q (use materialize, refresh, drop, reset)", req.Action)
	}
}

// actionMaterialize materializes one named view, or a cost-model selection
// when no view is named. Like refresh, the expensive read-only phases —
// lattice statistics, selection, view-content computation — run under the
// read lock so queries keep flowing; only the G+ encoding takes the write
// lock (Catalog.PlanMaterialize / CommitMaterialize).
func (s *Server) actionMaterialize(w http.ResponseWriter, req viewsRequest) {
	s.mu.RLock()
	targets, err := s.materializeTargets(req)
	if err != nil {
		s.mu.RUnlock()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := s.sys.Catalog.PlanMaterialize(targets, s.sys.Workers)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "computing view contents: %v", err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	mats, err := s.sys.Catalog.CommitMaterialize(plan)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "materializing: %v", err)
		return
	}
	// Report what was actually committed: targets already materialized at
	// plan time are excluded from the plan and must not be listed as acted on.
	resp := viewsActionResponse{Action: "materialize", Generation: s.sys.Generation()}
	for _, m := range mats {
		resp.Views = append(resp.Views, m.View().ID())
	}
	if len(mats) > 0 && !s.persistViewChange(w, "materialize") {
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// materializeTargets resolves a materialize request to concrete views: the
// named view, or a cost-model selection. Read-only; callers hold the read
// lock (System.Provider serializes its own lazy initialization).
func (s *Server) materializeTargets(req viewsRequest) ([]facet.View, error) {
	if req.View != "" {
		v, err := s.resolveView(req.View)
		if err != nil {
			return nil, err
		}
		return []facet.View{v}, nil
	}
	model := req.Model
	if model == "" {
		model = "aggvalues"
	}
	k := req.K
	if k <= 0 {
		k = 3
	}
	models, err := s.sys.AnalyticModels(s.cfg.SelectionSeed)
	if err != nil {
		return nil, fmt.Errorf("computing lattice statistics: %w", err)
	}
	var picked cost.Model
	for _, m := range models {
		if m.Name() == model {
			picked = m
			break
		}
	}
	if picked == nil {
		return nil, fmt.Errorf("unknown model %q (use random, triples, aggvalues, or nodes)", model)
	}
	sel, err := s.sys.SelectViews(picked, k)
	if err != nil {
		return nil, fmt.Errorf("selecting views: %w", err)
	}
	return sel.Views, nil
}

// actionRefresh refreshes stale views: contents are recomputed under the
// read lock (queries keep flowing), only the diff apply takes the write
// lock.
func (s *Server) actionRefresh(w http.ResponseWriter) {
	s.mu.RLock()
	plan, err := s.sys.Catalog.PlanRefresh(s.sys.Workers)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "recomputing stale views: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.sys.Catalog.CommitRefresh(plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "applying refresh: %v", err)
		return
	}
	// A manual refresh moves the generation without a WAL record (only
	// /update batches are logged), so snapshot the state it produced.
	if n > 0 && !s.persistViewChange(w, "refresh") {
		return
	}
	writeJSON(w, http.StatusOK, viewsActionResponse{
		Action: "refresh", Refreshed: n, Generation: s.sys.Generation(),
	})
}

// resolveView maps a view ID ("lang+year" or "apex") to a facet view.
func (s *Server) resolveView(id string) (facet.View, error) {
	if id == "apex" {
		return s.sys.Facet.View(0), nil
	}
	return s.sys.Facet.ViewByDims(strings.Split(id, "+")...)
}

// viewMaintStats is one materialized view's maintenance health in /stats:
// its maintainability classification, which refresh path last ran, and what
// it cost.
type viewMaintStats struct {
	ID            string `json:"id"`
	Groups        int    `json:"groups"`
	Stale         bool   `json:"stale"`
	Mode          string `json:"mode"`              // facet maintainability classification
	LastPath      string `json:"last_refresh_path"` // initial, incremental, or full
	LastRefreshUS int64  `json:"last_refresh_us"`
	LastDeltaSize int    `json:"last_delta_size,omitempty"` // |ΔG| of the last incremental refresh
}

// statsResponse is the GET /stats response body.
type statsResponse struct {
	UptimeS         float64          `json:"uptime_s"`
	Facet           string           `json:"facet"`
	Dims            []string         `json:"dims"`
	BaseTriples     int              `json:"base_triples"`
	ExpandedTriples int              `json:"expanded_triples"`
	Amplification   float64          `json:"amplification"`
	Materialized    int              `json:"materialized_views"`
	StaleViews      int              `json:"stale_views"`
	Maintenance     string           `json:"maintenance"` // facet maintainability classification
	Views           []viewMaintStats `json:"views"`
	Generation      int64            `json:"generation"`
	GraphVersion    int64            `json:"graph_version"`
	ViewSetHash     string           `json:"view_set_hash"`
	Workers         int              `json:"workers"`
	MaxConcurrent   int              `json:"max_concurrent"`
	InFlight        int              `json:"in_flight"` // queries holding execution slots
	Queries         int64            `json:"queries"`
	Updates         int64            `json:"updates"`
	Cache           CacheStats       `json:"cache"`
	Store           store.MemStats   `json:"store"`             // resident bytes per index + active codec
	Persist         *persistStats    `json:"persist,omitempty"` // nil when memory-only
}

// handleStats reports serving health.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := statsResponse{
		UptimeS:         time.Since(s.started).Seconds(),
		Facet:           s.sys.Facet.Name,
		Dims:            s.sys.Facet.Dims,
		BaseTriples:     s.sys.Graph.Len(),
		ExpandedTriples: s.sys.Catalog.Expanded().Len(),
		Amplification:   s.sys.Catalog.StorageAmplification(),
		Materialized:    len(s.sys.Catalog.Materialized()),
		StaleViews:      len(s.sys.Catalog.StaleViews()),
		Maintenance:     s.sys.Catalog.MaintenanceMode().String(),
		Views:           []viewMaintStats{},
		Generation:      s.sys.Generation(),
		GraphVersion:    s.sys.GraphVersion(),
		ViewSetHash:     strconv.FormatUint(s.sys.ViewSetHash(), 16),
		Workers:         s.sys.Workers,
		MaxConcurrent:   s.cfg.MaxConcurrent,
		InFlight:        len(s.sem),
		Queries:         s.queries.Load(),
		Updates:         s.updates.Load(),
		Store:           s.sys.Graph.MemStats(),
	}
	for _, m := range s.sys.Catalog.Materialized() {
		v := m.View()
		resp.Views = append(resp.Views, viewMaintStats{
			ID:            v.ID(),
			Groups:        m.Data.NumGroups(),
			Stale:         s.sys.Catalog.Stale(v.Mask),
			Mode:          m.Maint.Mode,
			LastPath:      m.Maint.LastPath,
			LastRefreshUS: m.Maint.LastCost.Microseconds(),
			LastDeltaSize: m.Maint.DeltaSize,
		})
	}
	if s.cache != nil {
		resp.Cache = s.cache.stats()
	}
	resp.Persist = s.persistStatsNow()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
