package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sofos/internal/api"
	"sofos/internal/core"
	"sofos/internal/cost"
	"sofos/internal/facet"
	"sofos/internal/persist"
	"sofos/internal/rdf"
	"sofos/internal/store"
)

// handleUpdate applies one write transaction through the catalog so base
// graph and G+ stay consistent, materialized views turn stale, and each
// statement's effective delta is captured for incremental maintenance. The
// body is either the single-statement shorthand (top-level insert/delete) or
// a multi-statement transaction ("statements": several batches applied in
// order). Either way the transaction is prepared on a private fork of the
// published state and made visible with one atomic publish: concurrent
// queries see none or all of it — including maintain=eager refreshes, which
// commit in the same publish. Every statement is parsed before anything is
// applied, and any failure (parse, apply, eager refresh) aborts the fork, so
// a non-200 response always means nothing was applied.
//
// Acknowledgement levels: "" or "local" acknowledges once the transaction
// reached the write-ahead log (the durability point); "replicas:N"
// additionally waits — after publishing, so replication itself is never
// stalled by the wait — until N replicas report the transaction applied.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST a JSON body")
		return
	}
	var req api.UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.Maintain != "" && req.Maintain != "lazy" && req.Maintain != "eager" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"unknown maintain mode %q (use lazy or eager)", req.Maintain)
		return
	}
	ackN, err := parseAckLevel(req.Ack)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	stmts, ok := parseStatements(w, &req)
	if !ok {
		return
	}

	resp, toVersion, ok := s.commitUpdate(w, &req, stmts)
	if !ok {
		return
	}
	if ackN > 0 {
		// The wait runs outside the write lock: replicas catch up by tailing
		// the WAL (file reads) and posting acks, neither of which needs the
		// lock, but queries and further writes must not stall behind us.
		start := time.Now()
		got, waitErr := s.tracker.waitFor(r.Context(), ackN, toVersion, s.cfg.AckTimeout)
		resp.Ack = fmt.Sprintf("replicas:%d", ackN)
		resp.AckReplicas = got
		resp.AckElapsedUS = time.Since(start).Microseconds()
		if waitErr != nil {
			httpError(w, http.StatusGatewayTimeout, api.CodeReplicationTimeout,
				"batch committed and locally durable at generation %d, but only %d of %d replicas acknowledged it: %v",
				resp.Generation, got, ackN, waitErr)
			return
		}
	} else {
		resp.Ack = "local"
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseAckLevel resolves an UpdateRequest.Ack value to the number of replica
// acknowledgements required (0 = local only).
func parseAckLevel(level string) (int, error) {
	switch {
	case level == "" || level == "local":
		return 0, nil
	case strings.HasPrefix(level, "replicas:"):
		n, err := strconv.Atoi(strings.TrimPrefix(level, "replicas:"))
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad ack level %q: replicas:N needs N >= 1", level)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("unknown ack level %q (use local or replicas:N)", level)
	}
}

// updateStatement is one parsed statement of an update transaction.
type updateStatement struct {
	inserts, deletes []rdf.Triple
}

// parseStatements resolves an UpdateRequest body to its parsed statements —
// the multi-statement transaction form, or the single-statement shorthand.
// Everything is parsed before anything is applied; on false the error
// response has been written.
func parseStatements(w http.ResponseWriter, req *api.UpdateRequest) ([]updateStatement, bool) {
	if len(req.Statements) > 0 {
		if req.Insert != "" || req.Delete != "" {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest,
				"use either the top-level insert/delete shorthand or statements, not both")
			return nil, false
		}
		stmts := make([]updateStatement, 0, len(req.Statements))
		for i, st := range req.Statements {
			ins, err := parseTriples(st.Insert)
			if err != nil {
				httpError(w, http.StatusBadRequest, api.CodeParseError, "statement %d insert: %v", i+1, err)
				return nil, false
			}
			del, err := parseTriples(st.Delete)
			if err != nil {
				httpError(w, http.StatusBadRequest, api.CodeParseError, "statement %d delete: %v", i+1, err)
				return nil, false
			}
			if len(ins) == 0 && len(del) == 0 {
				httpError(w, http.StatusBadRequest, api.CodeBadRequest, "statement %d is empty", i+1)
				return nil, false
			}
			stmts = append(stmts, updateStatement{inserts: ins, deletes: del})
		}
		return stmts, true
	}
	inserts, err := parseTriples(req.Insert)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeParseError, "insert: %v", err)
		return nil, false
	}
	deletes, err := parseTriples(req.Delete)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeParseError, "delete: %v", err)
		return nil, false
	}
	if len(inserts) == 0 && len(deletes) == 0 {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "empty update batch")
		return nil, false
	}
	return []updateStatement{{inserts: inserts, deletes: deletes}}, true
}

// commitUpdate is handleUpdate's writer transaction: fork the published
// state, apply every statement, run eager maintenance if asked, reach the
// local durability point, and publish. Readers are never blocked — they keep
// answering against the old snapshot until the atomic publish. It reports
// whether the caller may proceed to acknowledgement (on false the error
// response has been written and nothing was applied) plus the transaction's
// end version, which is what replica acknowledgements are counted against.
func (s *Server) commitUpdate(w http.ResponseWriter, req *api.UpdateRequest, stmts []updateStatement) (*api.UpdateResponse, int64, bool) {
	// An earlier transaction committed in memory but never reached the WAL:
	// until a checkpoint captures it, logging any further transaction would
	// write a version interval recovery cannot chain to (it would replay
	// onto a graph missing the unlogged one). Heal by checkpointing first,
	// or refuse before applying anything.
	if s.dur != nil && s.walGap.Load() {
		err := s.chain.Exclusive(func(st *core.GenerationState) error {
			_, cperr := s.checkpointState(st.Sys)
			return cperr
		})
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				"write-ahead log has an unhealed gap and checkpointing failed: %v; update refused (nothing applied)", err)
			return nil, 0, false
		}
		s.walGap.Store(false)
	}

	txn := s.chain.Begin()
	baseGen := txn.Base.Generation
	resp := &api.UpdateResponse{}
	if len(stmts) > 1 {
		resp.Statements = len(stmts)
	}
	// Apply statement by statement (rather than as one merged batch) so the
	// catalog's delta log records each statement's precise effective delta —
	// what keeps the eager refresh below on the O(|ΔG|) incremental path.
	deltas := make([]store.Delta, 0, len(stmts))
	for i, st := range stmts {
		d, err := txn.Sys.Catalog.ApplyUpdate(st.inserts, st.deletes)
		if err != nil {
			txn.Abort()
			if len(stmts) > 1 {
				httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError,
					"statement %d: applying batch: %v (transaction aborted, nothing applied)", i+1, err)
			} else {
				httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "applying batch: %v", err)
			}
			return nil, 0, false
		}
		resp.Inserted += len(d.Inserted)
		resp.Deleted += len(d.Deleted)
		deltas = append(deltas, d)
	}
	if req.Maintain == "eager" {
		plan, err := txn.Sys.Catalog.PlanRefresh(txn.Sys.Workers)
		if err != nil {
			txn.Abort()
			httpError(w, http.StatusInternalServerError, api.CodeInternal,
				"eager refresh failed to plan: %v (transaction aborted, nothing applied)", err)
			return nil, 0, false
		}
		if plan != nil {
			resp.Incremental = plan.Incremental()
		}
		n, err := txn.Sys.Catalog.CommitRefresh(plan)
		if err != nil {
			txn.Abort()
			httpError(w, http.StatusInternalServerError, api.CodeInternal,
				"eager refresh failed after %d views: %v (transaction aborted, nothing applied)", n, err)
			return nil, 0, false
		}
		resp.Refreshed = n
	}
	// Nothing changed (every statement was a no-op and no view refreshed):
	// keep the published state as is — no generation bump, no WAL record.
	if txn.Sys.Generation() == baseGen {
		resp.Stale = len(txn.Sys.Catalog.StaleViews())
		resp.Generation = baseGen
		toVersion := txn.Sys.GraphVersion()
		txn.Abort()
		s.updates.Add(1)
		return resp, toVersion, true
	}
	// One transaction, one generation: the statements and the eager refresh
	// each moved the fork's (unpublished) counter; normalize to a single
	// bump so clients and replicas observe exactly one new generation per
	// committed transaction.
	txn.Sys.Catalog.SetGeneration(baseGen + 1)

	// Durability point: the transaction reaches the write-ahead log as one
	// net record — under -wal-sync=always, stable storage — before it is
	// published or acknowledged. The recorded generation is the one the
	// client will see; replay reinstates it exactly.
	net := store.ComposeDeltas(deltas)
	if s.dur != nil && net.FromVersion != net.ToVersion {
		rec := &persist.Record{
			FromVersion: net.FromVersion,
			ToVersion:   net.ToVersion,
			Generation:  txn.Sys.Generation(),
			Eager:       req.Maintain == "eager",
			Inserts:     net.Inserted,
			Deletes:     net.Deleted,
		}
		if err := s.dur.Log.Append(rec); err != nil {
			// The prepared transaction cannot be logged — a gap every later
			// logged record would be unrecoverable across. A checkpoint of
			// the pending fork heals it: the snapshot captures the
			// transaction and rotates the log past the gap, after which the
			// transaction IS durable and publishing can proceed. If even
			// that fails, abort: the published state never contained the
			// transaction, so the client can simply re-send it once the gap
			// heals.
			if _, cperr := s.checkpointState(txn.Sys); cperr != nil {
				txn.Abort()
				s.walGap.Store(true)
				httpError(w, http.StatusInternalServerError, api.CodeInternal,
					"transaction failed to reach the write-ahead log (%v) and the healing checkpoint failed (%v); nothing was applied, and further updates are refused until a checkpoint succeeds",
					err, cperr)
				return nil, 0, false
			}
		}
	}
	// A no-op delta (nothing logged) can still have eagerly refreshed views
	// left stale by earlier lazy batches — a generation bump the WAL does
	// not capture. Snapshot the pending state before publishing it, as
	// manual /views refreshes do.
	if s.dur != nil && net.FromVersion == net.ToVersion && resp.Refreshed > 0 &&
		!s.persistViewChange(w, "eager refresh", txn.Sys) {
		txn.Abort()
		return nil, 0, false
	}
	resp.Stale = len(txn.Sys.Catalog.StaleViews())
	resp.Generation = txn.Sys.Generation()
	txn.Commit()
	s.updates.Add(1)
	return resp, net.ToVersion, true
}

// rejectReplicaWrite refuses mutations on a read replica, naming the
// primary. It reports whether the response has been written.
func (s *Server) rejectReplicaWrite(w http.ResponseWriter) bool {
	if s.role != RoleReplica {
		return false
	}
	httpError(w, http.StatusForbidden, api.CodeReadOnlyReplica,
		"this server is a read replica; send writes to the primary at %s", s.repl.primaryURL())
	return true
}

// parseTriples parses an N-Triples text block ("" means none).
func parseTriples(text string) ([]rdf.Triple, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	return rdf.NewParser(strings.NewReader(text)).ParseAll()
}

// handleViews lists (GET) or manages (POST) materializations.
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// One pointer load pins a consistent snapshot; no lock.
		st := s.chain.Load()
		sys := st.Sys
		resp := api.ViewsResponse{
			Facet:        sys.Facet.Name,
			LatticeViews: sys.Lattice.Size(),
			Materialized: []api.ViewInfo{},
			Generation:   st.Generation,
		}
		for _, m := range sys.Catalog.Materialized() {
			v := m.View()
			resp.Materialized = append(resp.Materialized, api.ViewInfo{
				ID:      v.ID(),
				Dims:    v.Dims(),
				Groups:  m.Data.NumGroups(),
				Triples: m.Triples,
				Stale:   sys.Catalog.Stale(v.Mask),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		if s.rejectReplicaWrite(w) {
			return
		}
		var req api.ViewsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
			return
		}
		s.handleViewsAction(w, req)
	default:
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET lists views, POST manages them")
	}
}

// handleViewsAction dispatches one POST /views action.
func (s *Server) handleViewsAction(w http.ResponseWriter, req api.ViewsRequest) {
	switch req.Action {
	case "materialize":
		s.actionMaterialize(w, req)
	case "refresh":
		s.actionRefresh(w)
	case "drop":
		v, err := s.resolveView(req.View)
		if err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
			return
		}
		txn := s.chain.Begin()
		if !txn.Sys.Catalog.Drop(v) {
			txn.Abort()
			httpError(w, http.StatusNotFound, api.CodeNotFound, "view %s is not materialized", v.ID())
			return
		}
		if !s.persistViewChange(w, "drop", txn.Sys) {
			txn.Abort()
			return
		}
		gen := txn.Sys.Generation()
		txn.Commit()
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "drop", Views: []string{v.ID()}, Generation: gen,
		})
	case "reset":
		txn := s.chain.Begin()
		txn.Sys.Reset()
		if !s.persistViewChange(w, "reset", txn.Sys) {
			txn.Abort()
			return
		}
		gen := txn.Sys.Generation()
		txn.Commit()
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "reset", Generation: gen,
		})
	default:
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"unknown action %q (use materialize, refresh, drop, reset)", req.Action)
	}
}

// actionMaterialize materializes one named view, or a cost-model selection
// when no view is named. The expensive read-only phases — lattice
// statistics, selection, view-content computation — run against the
// published snapshot with no lock held, so queries keep flowing; only the
// G+ encoding runs inside a writer transaction (Catalog.PlanMaterialize /
// CommitMaterialize), and even that never blocks readers.
func (s *Server) actionMaterialize(w http.ResponseWriter, req api.ViewsRequest) {
	st := s.chain.Load()
	targets, err := s.materializeTargets(st.Sys, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	plan, err := st.Sys.Catalog.PlanMaterialize(targets, st.Sys.Workers)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "computing view contents: %v", err)
		return
	}
	if plan == nil {
		// Every target was already materialized at plan time.
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "materialize", Generation: st.Generation,
		})
		return
	}

	txn := s.chain.Begin()
	mats, err := txn.Sys.Catalog.CommitMaterialize(plan)
	if err != nil {
		txn.Abort()
		httpError(w, http.StatusUnprocessableEntity, api.CodeExecutionError, "materializing: %v", err)
		return
	}
	// Report what was actually committed: targets materialized between plan
	// and commit keep their existing record and must not be listed twice.
	resp := api.ViewsActionResponse{Action: "materialize"}
	for _, m := range mats {
		resp.Views = append(resp.Views, m.View().ID())
	}
	if len(mats) == 0 {
		resp.Generation = txn.Base.Generation
		txn.Abort()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if !s.persistViewChange(w, "materialize", txn.Sys) {
		txn.Abort()
		return
	}
	resp.Generation = txn.Sys.Generation()
	txn.Commit()
	writeJSON(w, http.StatusOK, resp)
}

// materializeTargets resolves a materialize request to concrete views: the
// named view, or a cost-model selection. Read-only against a pinned
// snapshot (System.Provider serializes its own lazy initialization).
func (s *Server) materializeTargets(sys *core.System, req api.ViewsRequest) ([]facet.View, error) {
	if req.View != "" {
		v, err := s.resolveView(req.View)
		if err != nil {
			return nil, err
		}
		return []facet.View{v}, nil
	}
	model := req.Model
	if model == "" {
		model = "aggvalues"
	}
	k := req.K
	if k <= 0 {
		k = 3
	}
	models, err := sys.AnalyticModels(s.cfg.SelectionSeed)
	if err != nil {
		return nil, fmt.Errorf("computing lattice statistics: %w", err)
	}
	var picked cost.Model
	for _, m := range models {
		if m.Name() == model {
			picked = m
			break
		}
	}
	if picked == nil {
		return nil, fmt.Errorf("unknown model %q (use random, triples, aggvalues, or nodes)", model)
	}
	sel, err := sys.SelectViews(picked, k)
	if err != nil {
		return nil, fmt.Errorf("selecting views: %w", err)
	}
	return sel.Views, nil
}

// actionRefresh refreshes stale views: contents are recomputed against the
// published snapshot with no lock held (queries keep flowing), only the
// diff apply runs inside a writer transaction — and readers stay wait-free
// even through that.
func (s *Server) actionRefresh(w http.ResponseWriter) {
	st := s.chain.Load()
	plan, err := st.Sys.Catalog.PlanRefresh(st.Sys.Workers)
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "recomputing stale views: %v", err)
		return
	}
	if plan == nil {
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "refresh", Refreshed: 0, Generation: st.Generation,
		})
		return
	}
	txn := s.chain.Begin()
	n, err := txn.Sys.Catalog.CommitRefresh(plan)
	if err != nil {
		txn.Abort()
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "applying refresh: %v", err)
		return
	}
	if n == 0 {
		// Every planned view was dropped or re-recorded since planning;
		// nothing moved, so keep the published state.
		gen := txn.Base.Generation
		txn.Abort()
		writeJSON(w, http.StatusOK, api.ViewsActionResponse{
			Action: "refresh", Refreshed: 0, Generation: gen,
		})
		return
	}
	// A manual refresh moves the generation without a WAL record (only
	// /update transactions are logged), so snapshot the state it produced —
	// durably, before publishing it.
	if !s.persistViewChange(w, "refresh", txn.Sys) {
		txn.Abort()
		return
	}
	gen := txn.Sys.Generation()
	txn.Commit()
	writeJSON(w, http.StatusOK, api.ViewsActionResponse{
		Action: "refresh", Refreshed: n, Generation: gen,
	})
}

// resolveView maps a view ID ("lang+year" or "apex") to a facet view.
func (s *Server) resolveView(id string) (facet.View, error) {
	f := s.system().Facet
	if id == "apex" {
		return f.View(0), nil
	}
	return f.ViewByDims(strings.Split(id, "+")...)
}

// handleStats reports serving health.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET only")
		return
	}
	// Pin one published snapshot; every reported number is consistent with
	// every other, and no lock is held.
	st := s.chain.Load()
	sys := st.Sys
	resp := api.StatsResponse{
		UptimeS:         time.Since(s.started).Seconds(),
		Role:            s.role,
		Facet:           sys.Facet.Name,
		Dims:            sys.Facet.Dims,
		BaseTriples:     sys.Graph.Len(),
		ExpandedTriples: sys.Catalog.Expanded().Len(),
		Amplification:   sys.Catalog.StorageAmplification(),
		Materialized:    len(sys.Catalog.Materialized()),
		StaleViews:      len(sys.Catalog.StaleViews()),
		Maintenance:     sys.Catalog.MaintenanceMode().String(),
		Views:           []api.ViewMaintStats{},
		Generation:      st.Generation,
		GraphVersion:    sys.GraphVersion(),
		ViewSetHash:     strconv.FormatUint(st.ViewSetHash, 16),
		Workers:         sys.Workers,
		MaxConcurrent:   s.cfg.MaxConcurrent,
		InFlight:        len(s.sem),
		Queries:         s.queries.Load(),
		Updates:         s.updates.Load(),
		Store:           sys.Graph.MemStats(),
	}
	for _, m := range sys.Catalog.Materialized() {
		v := m.View()
		resp.Views = append(resp.Views, api.ViewMaintStats{
			ID:            v.ID(),
			Groups:        m.Data.NumGroups(),
			Stale:         sys.Catalog.Stale(v.Mask),
			Mode:          m.Maint.Mode,
			LastPath:      m.Maint.LastPath,
			LastRefreshUS: m.Maint.LastCost.Microseconds(),
			LastDeltaSize: m.Maint.DeltaSize,
		})
	}
	if s.cache != nil {
		resp.Cache = s.cache.stats()
	}
	resp.Persist = s.persistStatsNow()
	resp.Replication = s.replicationStatsNow(sys)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness probe: enough for a load balancer to route
// around a lagging replica without parsing full stats.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sys := s.system()
	resp := api.HealthResponse{
		OK:             true,
		Role:           s.role,
		Generation:     sys.Generation(),
		WALVersion:     sys.GraphVersion(),
		ReplicaLag:     s.replicaLag(sys),
		CheckpointAgeS: s.checkpointAge(),
	}
	if s.dur != nil {
		resp.WALBytes = s.dur.Log.Stats().Bytes
	}
	writeJSON(w, http.StatusOK, resp)
}
