package rewrite

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/store"
	"sofos/internal/views"
)

// fixture builds a population graph, facet, and catalog.
func fixture(t testing.TB, agg string) (*store.Graph, *facet.Facet, *views.Catalog) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for ci := 0; ci < 5; ci++ {
		for li := 0; li < 3; li++ {
			if (ci+li)%4 == 0 {
				continue
			}
			for yi := 0; yi < 3; yi++ {
				obs := ex(fmt.Sprintf("obs%d_%d_%d", ci, li, yi))
				g.MustAdd(rdf.Triple{S: obs, P: ex("country"), O: rdf.NewLiteral(fmt.Sprintf("C%d", ci))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("lang"), O: rdf.NewLiteral(fmt.Sprintf("L%d", li))})
				g.MustAdd(rdf.Triple{S: obs, P: ex("year"), O: rdf.NewYear(2015 + yi)})
				g.MustAdd(rdf.Triple{S: obs, P: ex("pop"), O: rdf.NewInteger(int64(rng.Intn(500) + 1))})
			}
		}
	}
	q := sparql.MustParse(fmt.Sprintf(`PREFIX ex: <http://ex.org/>
SELECT ?country ?lang ?year (%s(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
} GROUP BY ?country ?lang ?year`, agg))
	f, err := facet.FromQuery("pop", q)
	if err != nil {
		t.Fatal(err)
	}
	return g, f, views.NewCatalog(g, f)
}

// facetQuery builds a query targeting the facet with given dims and filter.
func facetQuery(t testing.TB, agg string, dims []string, filter string) *sparql.Query {
	t.Helper()
	sel := ""
	groupBy := ""
	for _, d := range dims {
		sel += "?" + d + " "
	}
	if len(dims) > 0 {
		groupBy = " GROUP BY"
		for _, d := range dims {
			groupBy += " ?" + d
		}
	}
	if filter != "" {
		filter = "FILTER (" + filter + ")"
	}
	src := fmt.Sprintf(`PREFIX ex: <http://ex.org/>
SELECT %s(%s(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
  %s
}%s`, sel, agg, filter, groupBy)
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("facetQuery parse: %v\n%s", err, src)
	}
	return q
}

func TestAnswerFallsBackWithoutViews(t *testing.T) {
	_, _, c := fixture(t, "SUM")
	r := New(c)
	ans, err := r.Answer(facetQuery(t, "SUM", []string{"lang"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	if ans.UsedView() {
		t.Error("used a view with empty catalog")
	}
	if ans.Reason == "" || ans.ViaLabel() != "base" {
		t.Errorf("reason = %q, via = %q", ans.Reason, ans.ViaLabel())
	}
	if len(ans.Result.Rows) == 0 {
		t.Error("no result rows")
	}
}

// TestViewAnswersEqualBaseAnswers is the central correctness property of
// the whole system: for every aggregate kind, every query granularity, and
// every materialized view choice, the view-based answer equals the base
// answer.
func TestViewAnswersEqualBaseAnswers(t *testing.T) {
	for _, agg := range []string{"SUM", "COUNT", "AVG", "MIN", "MAX"} {
		t.Run(agg, func(t *testing.T) {
			g, f, c := fixture(t, agg)
			_ = g
			// Materialize the full view and one mid view.
			if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Materialize(f.View(facet.MaskFromBits(0, 1))); err != nil {
				t.Fatal(err)
			}
			r := New(c)
			baseEng := c.BaseEngine()
			queries := [][]string{
				{"country", "lang", "year"},
				{"country", "lang"},
				{"country"},
				{"lang"},
				{"year"},
				{},
			}
			for _, dims := range queries {
				q := facetQuery(t, agg, dims, "")
				ans, err := r.Answer(q)
				if err != nil {
					t.Fatalf("Answer(%v): %v", dims, err)
				}
				if !ans.UsedView() {
					t.Fatalf("dims %v not answered from a view: %s", dims, ans.Reason)
				}
				base, err := baseEng.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRows(ans.Result.Sorted(), base.Sorted(), agg == "AVG") {
					t.Errorf("dims %v via %s:\nview: %v\nbase: %v",
						dims, ans.ViaLabel(), ans.Result.Sorted(), base.Sorted())
				}
			}
		})
	}
}

// sameRows compares canonical rows; for AVG, numeric comparison tolerates
// formatting differences.
func sameRows(a, b []string, numericTail bool) bool {
	if !numericTail {
		return reflect.DeepEqual(a, b)
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		var pa, pb string
		var va, vb float64
		if _, err := fmt.Sscanf(a[i], "%s \"%f\"", &pa, &va); err != nil {
			return false
		}
		if _, err := fmt.Sscanf(b[i], "%s \"%f\"", &pb, &vb); err != nil {
			return false
		}
		if pa != pb || va-vb > 1e-6 || vb-va > 1e-6 {
			return false
		}
	}
	return true
}

func TestAnswerWithFilters(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	cases := []struct {
		dims   []string
		filter string
	}{
		{[]string{"lang"}, `?year >= 2016`},
		{[]string{"country"}, `?lang = "L1"`},
		{[]string{"country", "lang"}, `?year = 2015 && ?lang != "L0"`},
		{nil, `?country = "C2"`},
	}
	for _, tc := range cases {
		q := facetQuery(t, "SUM", tc.dims, tc.filter)
		ans, err := r.Answer(q)
		if err != nil {
			t.Fatalf("Answer(%v, %q): %v", tc.dims, tc.filter, err)
		}
		if !ans.UsedView() {
			t.Fatalf("filtered query not view-answered: %s", ans.Reason)
		}
		base, err := c.BaseEngine().Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans.Result.Sorted(), base.Sorted()) {
			t.Errorf("dims %v filter %q:\nview: %v\nbase: %v", tc.dims, tc.filter, ans.Result.Sorted(), base.Sorted())
		}
	}
}

func TestFilterDimNotInViewFallsBack(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	// Only country+lang materialized; filter on year requires year dim.
	if _, err := c.Materialize(f.View(facet.MaskFromBits(0, 1))); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	q := facetQuery(t, "SUM", []string{"lang"}, "?year = 2016")
	ans, err := r.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.UsedView() {
		t.Error("view without filter dim was used")
	}
	// Without the filter, the view applies.
	ans, err = r.Answer(facetQuery(t, "SUM", []string{"lang"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.UsedView() {
		t.Errorf("coverable query fell back: %s", ans.Reason)
	}
}

func TestChooseViewPrefersSmallest(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	full, err := c.Materialize(f.View(f.FullMask()))
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.Materialize(f.View(facet.MaskFromBits(1)))
	if err != nil {
		t.Fatal(err)
	}
	if small.Data.NumGroups() >= full.Data.NumGroups() {
		t.Fatalf("fixture broken: small view not smaller (%d vs %d)",
			small.Data.NumGroups(), full.Data.NumGroups())
	}
	r := New(c)
	got, ok := r.ChooseView(facet.MaskFromBits(1))
	if !ok || got.View().Mask != facet.MaskFromBits(1) {
		t.Errorf("ChooseView = %v, want the lang view", got.View())
	}
	// A query needing country can only use the full view.
	got, ok = r.ChooseView(facet.MaskFromBits(0))
	if !ok || got.View().Mask != f.FullMask() {
		t.Errorf("ChooseView(country) = %v", got.View())
	}
	// Nothing covers an impossible requirement when catalog lacks it.
	c.Drop(f.View(f.FullMask()))
	if _, ok := r.ChooseView(facet.MaskFromBits(0)); ok {
		t.Error("ChooseView found a view it should not")
	}
}

func TestAnswerWithValuesClause(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	src := `PREFIX ex: <http://ex.org/>
SELECT ?country (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country .
  ?o ex:lang ?lang .
  ?o ex:year ?year .
  ?o ex:pop ?pop .
  VALUES ?lang { "L0" "L2" }
} GROUP BY ?country`
	q := sparql.MustParse(src)
	ans, err := r.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.UsedView() {
		t.Fatalf("VALUES query fell back: %s", ans.Reason)
	}
	base, err := c.BaseEngine().Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Result.Sorted(), base.Sorted()) {
		t.Errorf("VALUES rewrite diverges:\nview: %v\nbase: %v", ans.Result.Sorted(), base.Sorted())
	}
	// The rewritten query must carry the VALUES clause.
	if !contains(ans.Rewritten.String(), "VALUES ?lang") {
		t.Errorf("rewritten query lost VALUES:\n%s", ans.Rewritten)
	}
	// A view lacking the VALUES dimension cannot answer.
	c.Reset()
	if _, err := c.Materialize(f.View(facet.MaskFromBits(0))); err != nil { // country only
		t.Fatal(err)
	}
	ans, err = r.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.UsedView() {
		t.Error("view without the VALUES dimension was used")
	}
}

func TestAnswerMismatchedQueries(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	cases := []struct {
		name string
		src  string
	}{
		{"different aggregate", `PREFIX ex: <http://ex.org/>
SELECT ?lang (MAX(?pop) AS ?a) WHERE { ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop . } GROUP BY ?lang`},
		{"different measure", `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?year) AS ?a) WHERE { ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop . } GROUP BY ?lang`},
		{"different pattern", `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?a) WHERE { ?o ex:lang ?lang . ?o ex:pop ?pop . } GROUP BY ?lang`},
		{"two aggregates", `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?a) (COUNT(?pop) AS ?n) WHERE { ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop . } GROUP BY ?lang`},
		{"filter on non-dimension", `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?a) WHERE { ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop . FILTER(?o != ex:obs0_1_0) } GROUP BY ?lang`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := sparql.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := r.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if ans.UsedView() {
				t.Errorf("mismatched query answered from view")
			}
			if ans.Reason == "" {
				t.Error("no fallback reason recorded")
			}
		})
	}
}

func TestAnswerHavingOrderLimit(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	src := `PREFIX ex: <http://ex.org/>
SELECT ?lang (SUM(?pop) AS ?a) WHERE {
  ?o ex:country ?country . ?o ex:lang ?lang . ?o ex:year ?year . ?o ex:pop ?pop .
} GROUP BY ?lang HAVING (?a > 100) ORDER BY DESC(?a) LIMIT 2`
	q := sparql.MustParse(src)
	ans, err := r.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.UsedView() {
		t.Fatalf("fell back: %s", ans.Reason)
	}
	base, err := c.BaseEngine().Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered comparison (not sorted): ORDER BY semantics must match.
	if len(ans.Result.Rows) != len(base.Rows) {
		t.Fatalf("row counts %d vs %d", len(ans.Result.Rows), len(base.Rows))
	}
	for i := range base.Rows {
		for j := range base.Rows[i] {
			if ans.Result.Rows[i][j].String() != base.Rows[i][j].String() {
				t.Errorf("row %d col %d: %s vs %s", i, j, ans.Result.Rows[i][j], base.Rows[i][j])
			}
		}
	}
}

func TestRewrittenQueryShape(t *testing.T) {
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(f.FullMask())); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	ans, err := r.Answer(facetQuery(t, "SUM", []string{"lang"}, `?year = 2016`))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rewritten == nil {
		t.Fatal("no rewritten query recorded")
	}
	text := ans.Rewritten.String()
	for _, want := range []string{views.PredInView, views.DimPredicate("lang"), views.DimPredicate("year"), views.PredAgg, "GROUP BY ?lang"} {
		if !contains(text, want) {
			t.Errorf("rewritten query missing %q:\n%s", want, text)
		}
	}
	// The rewritten query must not scan the original facet pattern.
	if contains(text, "ex:country") || contains(text, "http://ex.org/country>") {
		t.Errorf("rewritten query still touches base predicates:\n%s", text)
	}
	// Must itself be parseable.
	if _, err := sparql.Parse(text); err != nil {
		t.Errorf("rewritten query does not re-parse: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAnswerUsesFewerScansThanBase(t *testing.T) {
	// The point of materialization: answering from a small view touches far
	// fewer intermediate bindings than the base computation.
	_, f, c := fixture(t, "SUM")
	if _, err := c.Materialize(f.View(facet.MaskFromBits(1))); err != nil {
		t.Fatal(err)
	}
	r := New(c)
	q := facetQuery(t, "SUM", []string{"lang"}, "")
	ans, err := r.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.BaseEngine().Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.UsedView() {
		t.Fatalf("fell back: %s", ans.Reason)
	}
	if ans.Result.Stats.IntermediateRows >= base.Stats.IntermediateRows {
		t.Errorf("view scan rows %d >= base %d",
			ans.Result.Stats.IntermediateRows, base.Stats.IntermediateRows)
	}
}
