package rewrite_test

import (
	"fmt"

	"sofos/internal/facet"
	"sofos/internal/rdf"
	"sofos/internal/rewrite"
	"sofos/internal/sparql"
	"sofos/internal/store"
	"sofos/internal/views"
)

// ExampleRewriter_Answer materializes one view of a sales facet and shows
// the online module answering a coarser query from it — the stored per
// (region, year) sums are re-aggregated to per-region granularity — and
// falling back to the base graph for a query the view cannot serve.
func ExampleRewriter_Answer() {
	// A tiny sales graph: each sale has a region, a year, and an amount.
	g := store.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }
	for i, sale := range []struct {
		region string
		year   int
		amount int64
	}{
		{"east", 2023, 10}, {"east", 2024, 20},
		{"west", 2023, 5}, {"west", 2024, 40},
	} {
		s := ex(fmt.Sprintf("sale%d", i))
		g.MustAdd(rdf.Triple{S: s, P: ex("region"), O: rdf.NewLiteral(sale.region)})
		g.MustAdd(rdf.Triple{S: s, P: ex("year"), O: rdf.NewYear(sale.year)})
		g.MustAdd(rdf.Triple{S: s, P: ex("amount"), O: rdf.NewInteger(sale.amount)})
	}

	// The facet: SUM(?amount) by (?region, ?year).
	template := sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?region ?year (SUM(?amount) AS ?total) WHERE {
  ?s ex:region ?region .
  ?s ex:year ?year .
  ?s ex:amount ?amount .
} GROUP BY ?region ?year`)
	f, err := facet.FromQuery("sales", template)
	if err != nil {
		panic(err)
	}

	// Materialize the (region, year) view into G+ and build the rewriter.
	catalog := views.NewCatalog(g, f)
	v, _ := f.ViewByDims("region", "year")
	if _, err := catalog.Materialize(v); err != nil {
		panic(err)
	}
	rw := rewrite.New(catalog)

	// A coarser query: per-region totals. The rewriter answers it from the
	// materialized view by summing the stored per-(region, year) values.
	ans, err := rw.Answer(sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT ?region (SUM(?amount) AS ?total) WHERE {
  ?s ex:region ?region .
  ?s ex:year ?year .
  ?s ex:amount ?amount .
} GROUP BY ?region ORDER BY ?region`))
	if err != nil {
		panic(err)
	}
	fmt.Println("answered via:", ans.ViaLabel())
	for _, row := range ans.Result.Rows {
		fmt.Printf("%s: %s\n", row[0].Term.Value, row[1].Term.Value)
	}

	// A counting query does not match the facet's SUM aggregate, so the
	// rewriter falls back to the base graph and says why.
	ans, err = rw.Answer(sparql.MustParse(`PREFIX ex: <http://ex.org/>
SELECT (COUNT(DISTINCT ?region) AS ?n) WHERE {
  ?s ex:region ?region .
  ?s ex:year ?year .
  ?s ex:amount ?amount .
}`))
	if err != nil {
		panic(err)
	}
	fmt.Println("answered via:", ans.ViaLabel())
	fmt.Println("reason:", ans.Reason)

	// Output:
	// answered via: region+year
	// east: 30
	// west: 45
	// answered via: base
	// reason: aggregate COUNT differs from facet SUM
}
