// Package rewrite implements the online module's query translation (§3.2 of
// the SOFOS paper): given an analytical query Q targeting a facet F, it
// identifies the best materialized view that can answer Q, translates Q into
// a query Q' over the view's blank-node encoding in the expanded graph G+,
// re-aggregates the precomputed values to Q's granularity, and falls back to
// the base graph G when no view is usable.
package rewrite

import (
	"fmt"
	"sort"
	"time"

	"sofos/internal/algebra"
	"sofos/internal/engine"
	"sofos/internal/facet"
	"sofos/internal/obs"
	"sofos/internal/rdf"
	"sofos/internal/sparql"
	"sofos/internal/views"
)

// GroupVar is the variable bound to the group blank node in rewritten
// queries; AggVar is bound to the stored aggregate value.
const (
	GroupVar = "__g"
	AggVar   = "__v"
	SumVar   = "__s"
	CountVar = "__c"
)

// Answer is the outcome of answering one query.
type Answer struct {
	Result    *engine.Result
	Via       *views.Materialized // nil when answered from the base graph
	Rewritten *sparql.Query       // the translated query, nil for base answers
	Reason    string              // why the base graph was used, "" otherwise
	// Outcome classifies how the answer was produced: obs.OutcomeViewHit
	// (the chosen view's granularity equals the query's GROUP BY, stored
	// groups are the answer), obs.OutcomePartialRollup (a finer view was
	// re-aggregated), or obs.OutcomeFullScan (base graph).
	Outcome string
	Elapsed time.Duration // total answering time including rewriting
}

// UsedView reports whether a materialized view served the answer.
func (a *Answer) UsedView() bool { return a.Via != nil }

// ViaLabel names the answering source for reports.
func (a *Answer) ViaLabel() string {
	if a.Via == nil {
		return "base"
	}
	return a.Via.View().ID()
}

// Rewriter answers facet queries using a catalog of materialized views.
type Rewriter struct {
	catalog *views.Catalog
}

// New returns a rewriter over the catalog.
func New(c *views.Catalog) *Rewriter { return &Rewriter{catalog: c} }

// analysis is the decomposition of a query against the facet.
type analysis struct {
	groupMask  facet.Mask // dims in GROUP BY
	filterMask facet.Mask // dims referenced by FILTERs
	agg        sparql.SelectItem
	reason     string // non-empty: not answerable from views
}

// analyze checks that q targets the catalog's facet and extracts the
// dimension sets. A non-empty reason means only the base graph can answer.
func (r *Rewriter) analyze(q *sparql.Query) analysis {
	f := r.catalog.Facet()
	aggs := q.Aggregates()
	if len(aggs) != 1 {
		return analysis{reason: "query must have exactly one aggregate"}
	}
	a := aggs[0]
	if a.Agg != f.Agg {
		return analysis{reason: fmt.Sprintf("aggregate %s differs from facet %s", a.Agg, f.Agg)}
	}
	if a.AggVar != f.Measure {
		return analysis{reason: fmt.Sprintf("measure ?%s differs from facet ?%s", a.AggVar, f.Measure)}
	}
	if a.AggDistinct {
		return analysis{reason: "DISTINCT aggregates cannot be answered from pre-aggregated views"}
	}
	if !samePattern(&q.Where, &f.Pattern) {
		return analysis{reason: "query pattern does not match the facet pattern"}
	}
	out := analysis{agg: a}
	for _, v := range q.GroupBy {
		i := f.DimIndex(v)
		if i < 0 {
			return analysis{reason: fmt.Sprintf("grouping variable ?%s is not a facet dimension", v)}
		}
		out.groupMask |= 1 << i
	}
	for _, fe := range q.Where.Filters {
		for _, v := range sparql.ExprVars(fe) {
			i := f.DimIndex(v)
			if i < 0 {
				return analysis{reason: fmt.Sprintf("filter variable ?%s is not a facet dimension", v)}
			}
			out.filterMask |= 1 << i
		}
	}
	// VALUES clauses constrain dimensions exactly like filters: the view
	// must carry the constrained dimension, and the clause is replayed in
	// the rewritten query.
	for _, d := range q.Where.Values {
		i := f.DimIndex(d.Var)
		if i < 0 {
			return analysis{reason: fmt.Sprintf("VALUES variable ?%s is not a facet dimension", d.Var)}
		}
		out.filterMask |= 1 << i
	}
	return out
}

// samePattern compares two graph patterns' triple sets (filters excluded:
// query filters specialize the facet).
func samePattern(q, f *sparql.GroupPattern) bool {
	if len(q.Triples) != len(f.Triples) || len(q.Optionals) != len(f.Optionals) ||
		len(q.Unions) != len(f.Unions) {
		return false
	}
	qs := make([]string, len(q.Triples))
	fs := make([]string, len(f.Triples))
	for i := range q.Triples {
		qs[i] = q.Triples[i].String()
		fs[i] = f.Triples[i].String()
	}
	sort.Strings(qs)
	sort.Strings(fs)
	for i := range qs {
		if qs[i] != fs[i] {
			return false
		}
	}
	return true
}

// ChooseView returns the best materialized view able to answer a query
// needing the given dimensions: the usable view with the fewest groups
// (the "smallest possible view" rule of §3). ok is false when none usable.
func (r *Rewriter) ChooseView(required facet.Mask) (*views.Materialized, bool) {
	return r.chooseView(required, obs.SpanHandle{})
}

// chooseView is ChooseView recording every candidate considered — and why
// the losers lost — as attributes on the given span.
func (r *Rewriter) chooseView(required facet.Mask, sp obs.SpanHandle) (*views.Materialized, bool) {
	var best *views.Materialized
	for _, m := range r.catalog.Materialized() {
		if !required.Subset(m.View().Mask) {
			sp.Attr("rejected:"+m.View().ID(), "does not cover the required dimensions")
			continue
		}
		if best == nil || m.Data.NumGroups() < best.Data.NumGroups() {
			if best != nil {
				sp.Attr("rejected:"+best.View().ID(), "usable, but more groups than a finer candidate")
			}
			best = m
		} else {
			sp.Attr("rejected:"+m.View().ID(), "usable, but more groups than a finer candidate")
		}
	}
	return best, best != nil
}

// Answer answers q, preferring materialized views, with the catalog's
// default engine options.
func (r *Rewriter) Answer(q *sparql.Query) (*Answer, error) {
	return r.answer(q, r.catalog.BaseEngine(), r.catalog.ExpandedEngine(), obs.SpanHandle{})
}

// AnswerWith is Answer with an explicit worker bound, so a serving layer
// can cap one request's intra-query parallelism independently of the
// catalog-wide default. All other engine options (e.g. join-order
// ablation) are inherited from the catalog. Engines are stateless handles
// over the graphs, so building a pair per call costs nothing.
func (r *Rewriter) AnswerWith(q *sparql.Query, opts engine.Options) (*Answer, error) {
	merged := r.catalog.EngineOptions()
	merged.Workers = opts.Workers
	merged.Span = opts.Span
	return r.answer(q,
		engine.NewWithOptions(r.catalog.Base(), merged),
		engine.NewWithOptions(r.catalog.Expanded(), merged),
		opts.Span)
}

// answer runs the rewriting pipeline against the given base/expanded engines,
// recording the rewrite decision on sp (zero handle = tracing off).
func (r *Rewriter) answer(q *sparql.Query, baseEng, expEng *engine.Engine, sp obs.SpanHandle) (*Answer, error) {
	start := time.Now()
	anSp := sp.Child("rewrite.analyze")
	an := r.analyze(q)
	if an.reason != "" {
		anSp.Attr("reason", an.reason)
		anSp.End()
		return r.answerBase(q, an.reason, start, baseEng, sp)
	}
	anSp.End()
	chSp := sp.Child("rewrite.choose_view")
	mat, ok := r.chooseView(an.groupMask|an.filterMask, chSp)
	if !ok {
		chSp.Attr("chosen", "none")
		chSp.End()
		return r.answerBase(q, "no materialized view covers the query dimensions", start, baseEng, sp)
	}
	outcome := obs.OutcomePartialRollup
	if mat.View().Mask == an.groupMask {
		outcome = obs.OutcomeViewHit
	}
	chSp.Attr("chosen", mat.View().ID())
	chSp.AttrInt("groups", int64(mat.Data.NumGroups()))
	chSp.Attr("outcome", outcome)
	chSp.End()
	trSp := sp.Child("rewrite.translate")
	rq, err := r.translate(q, an, mat)
	trSp.End()
	if err != nil {
		return nil, fmt.Errorf("rewrite: translating %s: %w", mat.View(), err)
	}
	res, err := expEng.Execute(rq)
	if err != nil {
		return nil, fmt.Errorf("rewrite: executing rewritten query: %w", err)
	}
	ppSp := sp.Child("rewrite.post_process")
	final, err := postProcess(q, an, res)
	ppSp.End()
	if err != nil {
		return nil, err
	}
	return &Answer{
		Result:    final,
		Via:       mat,
		Rewritten: rq,
		Outcome:   outcome,
		Elapsed:   time.Since(start),
	}, nil
}

// answerBase executes q on the base graph G.
func (r *Rewriter) answerBase(q *sparql.Query, reason string, start time.Time, baseEng *engine.Engine, sp obs.SpanHandle) (*Answer, error) {
	bSp := sp.Child("rewrite.base_scan")
	bSp.Attr("reason", reason)
	res, err := baseEng.Execute(q)
	bSp.End()
	if err != nil {
		return nil, fmt.Errorf("rewrite: base execution: %w", err)
	}
	return &Answer{Result: res, Reason: reason, Outcome: obs.OutcomeFullScan, Elapsed: time.Since(start)}, nil
}

// CacheKey returns a canonical, prefix-independent text of q, suitable as
// the query part of a result-cache key: two queries that parse to the same
// AST produce the same key regardless of whitespace, prefix labels, or
// clause spelling (constants print as full IRIs, clauses in canonical
// order). Pair it with the catalog generation and view-set hash to key a
// cache that invalidates exactly when an answer could change.
func CacheKey(q *sparql.Query) string {
	c := *q // shallow copy: only Prefixes is cleared, the rest is shared
	c.Prefixes = nil
	return c.String()
}

// translate builds the rewritten query over the view encoding:
//
//	SELECT Xq (reagg(?__v) AS ?alias) WHERE {
//	    ?__g sofos:inView <view> .
//	    ?__g sofos:d_x ?x .          for x ∈ Xq ∪ filter dims
//	    ?__g sofos:agg ?__v .        (aggSum/aggCount for AVG)
//	    FILTER ...                   original filters
//	} GROUP BY Xq
//
// HAVING, ORDER BY, DISTINCT and LIMIT/OFFSET are applied by postProcess so
// AVG recombination happens first.
func (r *Rewriter) translate(q *sparql.Query, an analysis, mat *views.Materialized) (*sparql.Query, error) {
	f := r.catalog.Facet()
	v := mat.View()
	g := sparql.Variable(GroupVar)
	rq := &sparql.Query{Prefixes: q.Prefixes, Limit: -1}
	rq.Where.Triples = append(rq.Where.Triples, sparql.TriplePattern{
		S: g,
		P: (iri(views.PredInView)),
		O: (iri(v.IRI())),
	})
	needed := an.groupMask | an.filterMask
	for i, d := range f.Dims {
		if needed&(1<<i) == 0 {
			continue
		}
		rq.Where.Triples = append(rq.Where.Triples, sparql.TriplePattern{
			S: g,
			P: (iri(views.DimPredicate(d))),
			O: sparql.Variable(d),
		})
	}
	isAvg := f.Agg == sparql.AggAvg
	if isAvg {
		rq.Where.Triples = append(rq.Where.Triples,
			sparql.TriplePattern{S: g, P: (iri(views.PredSum)), O: sparql.Variable(SumVar)},
			sparql.TriplePattern{S: g, P: (iri(views.PredCount)), O: sparql.Variable(CountVar)},
		)
	} else {
		rq.Where.Triples = append(rq.Where.Triples, sparql.TriplePattern{
			S: g, P: (iri(views.PredAgg)), O: sparql.Variable(AggVar),
		})
	}
	rq.Where.Filters = append(rq.Where.Filters, q.Where.Filters...)
	rq.Where.Values = append(rq.Where.Values, q.Where.Values...)

	// Projection: original select order, re-aggregating stored values.
	for _, si := range q.Select {
		if si.Agg == sparql.AggNone {
			rq.Select = append(rq.Select, si)
			continue
		}
		if isAvg {
			rq.Select = append(rq.Select,
				sparql.SelectItem{Var: SumVar + "_agg", Agg: sparql.AggSum, AggVar: SumVar},
				sparql.SelectItem{Var: CountVar + "_agg", Agg: sparql.AggSum, AggVar: CountVar},
			)
			continue
		}
		rq.Select = append(rq.Select, sparql.SelectItem{
			Var: si.Var, Agg: reaggKind(f.Agg), AggVar: AggVar,
		})
	}
	rq.GroupBy = append([]string(nil), q.GroupBy...)
	if err := rq.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: produced invalid query: %w (query: %s)", err, rq)
	}
	return rq, nil
}

// reaggKind maps the facet aggregate to the re-aggregation operator applied
// over per-group stored values: partial SUMs and COUNTs recombine by SUM,
// MIN/MAX by themselves.
func reaggKind(agg sparql.AggKind) sparql.AggKind {
	switch agg {
	case sparql.AggCount:
		return sparql.AggSum
	default:
		return agg
	}
}

func iri(s string) sparql.PatternTerm {
	return sparql.Constant(rdf.NewIRI(s))
}

// postProcess finalizes the rewritten result: recombines AVG from (sum,
// count) columns, then applies the original query's HAVING, DISTINCT,
// ORDER BY, and LIMIT/OFFSET.
func postProcess(q *sparql.Query, an analysis, res *engine.Result) (*engine.Result, error) {
	out := &engine.Result{Vars: make([]string, len(q.Select)), Stats: res.Stats}
	for i, si := range q.Select {
		out.Vars[i] = si.Var
	}
	isAvg := an.agg.Agg == sparql.AggAvg
	colOf := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		colOf[v] = i
	}
	for _, row := range res.Rows {
		orow := make([]algebra.Value, len(q.Select))
		for i, si := range q.Select {
			if si.Agg == sparql.AggNone {
				orow[i] = row[colOf[si.Var]]
				continue
			}
			if isAvg {
				sumV := row[colOf[SumVar+"_agg"]]
				cntV := row[colOf[CountVar+"_agg"]]
				if sumV.Bound && cntV.Bound {
					s, _ := algebra.NumericValue(sumV.Term)
					c, _ := algebra.NumericValue(cntV.Term)
					if c > 0 {
						orow[i] = algebra.Bind(algebra.FormatFloat(s / c))
					}
				}
				continue
			}
			orow[i] = row[colOf[si.Var]]
		}
		orow = orow[:len(q.Select)]
		if q.Having != nil {
			resolve := func(name string) algebra.Value {
				for i, v := range out.Vars {
					if v == name {
						return orow[i]
					}
				}
				return algebra.Unbound
			}
			if !algebra.EvalBool(q.Having, resolve) {
				continue
			}
		}
		out.Rows = append(out.Rows, orow)
	}
	if q.Distinct {
		out.Rows = dedup(out.Rows)
	}
	if len(q.OrderBy) > 0 {
		if err := sortRows(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(out.Rows) {
		out.Rows = out.Rows[:q.Limit]
	}
	out.Stats.ResultRows = len(out.Rows)
	return out, nil
}

// dedup removes duplicate rows preserving order.
func dedup(rows [][]algebra.Value) [][]algebra.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		key := ""
		for _, v := range row {
			key += v.String() + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
	}
	return out
}

// sortRows orders rows per the ORDER BY conditions.
func sortRows(res *engine.Result, conds []sparql.OrderCond) error {
	idx := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		idx[v] = i
	}
	cols := make([]struct {
		col  int
		desc bool
	}, len(conds))
	for i, oc := range conds {
		c, ok := idx[oc.Var]
		if !ok {
			return fmt.Errorf("rewrite: ORDER BY variable ?%s not projected", oc.Var)
		}
		cols[i] = struct {
			col  int
			desc bool
		}{c, oc.Desc}
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for _, c := range cols {
			cmp := algebra.SortCompare(res.Rows[i][c.col], res.Rows[j][c.col])
			if cmp != 0 {
				if c.desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return nil
}
