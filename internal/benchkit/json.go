package benchkit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Go-benchmark JSON emission. The CI bench job runs
// `go test -bench . -benchtime 1x -run '^$'`, pipes the text output through
// cmd/benchjson, and uploads the resulting BENCH_pr.json artifact — one data
// point per benchmark per push, so the repository's performance trajectory
// is measurable instead of anecdotal.

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix, e.g.
	// "BenchmarkExecJoinHeavyParallel/workers=4".
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`         // GOMAXPROCS suffix
	Iterations  int64              `json:"iterations"`              // b.N
	NsPerOp     float64            `json:"ns_per_op"`               // always present
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`  // -benchmem
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"` // -benchmem
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`    // b.SetBytes
	Extra       map[string]float64 `json:"extra,omitempty"`         // b.ReportMetric units
}

// BenchReport is the JSON document: run environment plus results.
type BenchReport struct {
	GoOS    string        `json:"goos,omitempty"`
	GoArch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// ParseGoBench parses the text output of `go test -bench`, collecting the
// goos/goarch/pkg/cpu header lines and every benchmark result line.
// Non-benchmark lines (test log output, PASS/ok trailers) are ignored.
func ParseGoBench(r io.Reader) (*BenchReport, error) {
	rep := &BenchReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchkit: reading bench output: %w", err)
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkName-8  100  123 ns/op  [value unit]..."
// line; ok is false for lines that merely start with "Benchmark" (e.g. log
// output) but do not have the result shape.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return BenchResult{}, false
	}
	res := BenchResult{Name: fields[0]}
	// Split a trailing -N GOMAXPROCS suffix off the name.
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	res.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			sawNs = true
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		case "MB/s":
			res.MBPerSec = val
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = val
		}
	}
	return res, sawNs
}

// WriteJSON renders the report as indented JSON.
func (rep *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("benchkit: encoding bench report: %w", err)
	}
	return nil
}
