package benchkit

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimingStats(t *testing.T) {
	var tm Timing
	if tm.Mean() != 0 || tm.P50() != 0 || tm.N() != 0 {
		t.Error("empty timing not zero")
	}
	for i := 1; i <= 100; i++ {
		tm.Add(time.Duration(i) * time.Millisecond)
	}
	if tm.N() != 100 {
		t.Errorf("N = %d", tm.N())
	}
	if tm.Mean() != 50500*time.Microsecond {
		t.Errorf("Mean = %v", tm.Mean())
	}
	if tm.P50() != 50*time.Millisecond {
		t.Errorf("P50 = %v", tm.P50())
	}
	if tm.P95() != 95*time.Millisecond {
		t.Errorf("P95 = %v", tm.P95())
	}
	if tm.Min() != 1*time.Millisecond || tm.Max() != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", tm.Min(), tm.Max())
	}
	if tm.Total() != 5050*time.Millisecond {
		t.Errorf("Total = %v", tm.Total())
	}
}

func TestTimingAddAfterPercentile(t *testing.T) {
	var tm Timing
	tm.Add(3 * time.Millisecond)
	tm.Add(1 * time.Millisecond)
	_ = tm.P50()
	tm.Add(2 * time.Millisecond)
	if tm.P50() != 2*time.Millisecond {
		t.Errorf("P50 after re-add = %v", tm.P50())
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := Spearman(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
}

func TestSpearmanMonotoneTransformInvariant(t *testing.T) {
	a := []float64{1, 4, 9, 16, 25, 36}
	b := []float64{2, 3, 5, 8, 13, 21} // both increasing: rho = 1
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone correlation = %v", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 1, 2, 2}
	b := []float64{1, 1, 2, 2}
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("tied correlation = %v", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if !math.IsNaN(Spearman([]float64{1}, []float64{2})) {
		t.Error("single sample should be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 2}, []float64{3})) {
		t.Error("mismatched lengths should be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "model", "time")
	tb.AddRow("random", "5ms")
	tb.AddRow("triples") // short row padded
	text := tb.String()
	if !strings.Contains(text, "Demo") || !strings.Contains(text, "random") {
		t.Errorf("text table:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), text)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| model | time |") || !strings.Contains(md, "### Demo") {
		t.Errorf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "| random | 5ms |") {
		t.Errorf("markdown row:\n%s", md)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Microsecond, "500µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1500 * time.Millisecond, "1.500s"},
	}
	for _, tc := range cases {
		if got := FmtDuration(tc.d); got != tc.want {
			t.Errorf("FmtDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
	if FmtFloat(3) != "3" || FmtFloat(3.14159) != "3.142" {
		t.Errorf("FmtFloat: %q %q", FmtFloat(3), FmtFloat(3.14159))
	}
	if FmtBytes(512) != "512B" {
		t.Errorf("FmtBytes(512) = %q", FmtBytes(512))
	}
	if FmtBytes(2048) != "2.0KiB" {
		t.Errorf("FmtBytes(2048) = %q", FmtBytes(2048))
	}
	if FmtBytes(3<<20) != "3.0MiB" {
		t.Errorf("FmtBytes(3MiB) = %q", FmtBytes(3<<20))
	}
}
