package benchkit

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Timing accumulates duration samples and reports order statistics.
type Timing struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (t *Timing) Add(d time.Duration) {
	t.samples = append(t.samples, d)
	t.sorted = false
}

// N returns the sample count.
func (t *Timing) N() int { return len(t.samples) }

// Total returns the sum of samples.
func (t *Timing) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.samples {
		sum += d
	}
	return sum
}

// Mean returns the average sample, 0 with no samples.
func (t *Timing) Mean() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	return t.Total() / time.Duration(len(t.samples))
}

// ensureSorted sorts the samples once.
func (t *Timing) ensureSorted() {
	if !t.sorted {
		sort.Slice(t.samples, func(i, j int) bool { return t.samples[i] < t.samples[j] })
		t.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (t *Timing) Percentile(p float64) time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	t.ensureSorted()
	rank := int(math.Ceil(p/100*float64(len(t.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(t.samples) {
		rank = len(t.samples) - 1
	}
	return t.samples[rank]
}

// P50 is the median.
func (t *Timing) P50() time.Duration { return t.Percentile(50) }

// P95 is the 95th percentile.
func (t *Timing) P95() time.Duration { return t.Percentile(95) }

// Min returns the smallest sample, 0 with no samples. It scans the samples
// directly: the old Percentile(0.0001) shortcut returned sample rank
// ⌈1e-6·n⌉-1, which stops being the minimum once n reaches 10⁶.
func (t *Timing) Min() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	min := t.samples[0]
	for _, d := range t.samples[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the largest sample.
func (t *Timing) Max() time.Duration { return t.Percentile(100) }

// Spearman computes the Spearman rank correlation of two equal-length
// vectors, handling ties by average ranks. It returns NaN for vectors
// shorter than 2 or with zero variance.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

// ranks returns average ranks (1-based) of the values.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// pearson computes the Pearson correlation coefficient.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// Table is a simple text/markdown table for experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable builds a table with a title and header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// String renders the plain-text form.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b) //nolint:errcheck // strings.Builder never fails
	return b.String()
}

// FmtDuration renders a duration compactly with microsecond precision for
// small values.
func FmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FmtFloat renders a float with adaptive precision.
func FmtFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.3f", f)
}

// FmtBytes renders a byte count in human units.
func FmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
