// Package benchkit provides the measurement utilities behind SOFOS's
// performance comparisons: duration aggregates with percentiles (Timing),
// Spearman rank correlation for cost-model fidelity, compact metric
// formatting (FmtDuration/FmtBytes/FmtFloat), and plain-text/markdown
// table rendering (Table) for the experiment reports.
//
// The JSON emitter (ParseGoBench and BenchReport.WriteJSON) converts `go
// test -bench` output into the BENCH_pr.json artifact CI uploads per push,
// so the repository accumulates one performance data point per commit;
// cmd/benchjson is its command-line front end.
package benchkit
