package benchkit

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: sofos
cpu: AMD EPYC 7B13
BenchmarkStoreBulkLoad/columnar-4         	     100	  11897139 ns/op	 9437345 B/op	      62 allocs/op
BenchmarkExecJoinHeavyParallel/workers=4-4	      39	  29341025 ns/op
BenchmarkWithMetric-4	     500	   2001234 ns/op	        12.50 rows/s
some unrelated log line
BenchmarkNotAResultLine ran fine
PASS
ok  	sofos	42.1s
`

func TestParseGoBench(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "sofos" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkStoreBulkLoad/columnar" || r.Procs != 4 ||
		r.Iterations != 100 || r.NsPerOp != 11897139 ||
		r.BytesPerOp != 9437345 || r.AllocsPerOp != 62 {
		t.Errorf("result[0] = %+v", r)
	}
	if r := rep.Results[1]; r.Name != "BenchmarkExecJoinHeavyParallel/workers=4" || r.NsPerOp != 29341025 {
		t.Errorf("result[1] = %+v", r)
	}
	if r := rep.Results[2]; r.Extra["rows/s"] != 12.5 {
		t.Errorf("result[2] extra = %+v", r.Extra)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, b.String())
	}
	if len(back.Results) != 3 || back.Results[0].Name != rep.Results[0].Name {
		t.Errorf("round trip lost results: %+v", back.Results)
	}
}

func TestParseGoBenchEmpty(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader("PASS\nok \tsofos\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("results = %+v", rep.Results)
	}
}

func TestTimingMinIsTrueMinimum(t *testing.T) {
	var tm Timing
	if tm.Min() != 0 {
		t.Error("empty Min != 0")
	}
	// Add samples descending so the minimum is last; before sorting kicks in,
	// a rank-based shortcut would be wrong for large n.
	for i := 2_000_000; i > 0; i-- {
		tm.Add(time.Duration(i))
	}
	if got := tm.Min(); got != 1 {
		t.Errorf("Min = %d, want 1", got)
	}
	if got := tm.Max(); got != 2_000_000 {
		t.Errorf("Max = %d, want 2000000", got)
	}
}
