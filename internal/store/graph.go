// Package store implements the dictionary-encoded, fully indexed in-memory
// triple store that serves as SOFOS's RDF substrate. A Graph maintains three
// nested-map indexes (SPO, POS, OSP) so that every triple-pattern shape —
// any combination of bound and unbound components — is answered by a direct
// index lookup. This is the standard layout of native RDF stores and is what
// the paper assumes of "any RDF triple store with SPARQL query processing".
package store

import (
	"fmt"
	"sync"

	"sofos/internal/rdf"
)

// index is a three-level adjacency: first key → second key → set of thirds.
type index map[rdf.ID]map[rdf.ID]map[rdf.ID]struct{}

// add inserts (a, b, c) and reports whether it was new.
func (ix index) add(a, b, c rdf.ID) bool {
	m2, ok := ix[a]
	if !ok {
		m2 = make(map[rdf.ID]map[rdf.ID]struct{})
		ix[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[rdf.ID]struct{})
		m2[b] = m3
	}
	if _, exists := m3[c]; exists {
		return false
	}
	m3[c] = struct{}{}
	return true
}

// remove deletes (a, b, c) and reports whether it was present, pruning empty
// inner maps so memory is reclaimed and level-lengths stay accurate.
func (ix index) remove(a, b, c rdf.ID) bool {
	m2, ok := ix[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, exists := m3[c]; !exists {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// Graph is an in-memory RDF graph with dictionary encoding and full triple
// indexing. It is safe for concurrent reads; writes are serialized by an
// internal mutex (reads during writes are also safe).
type Graph struct {
	mu   sync.RWMutex
	dict *rdf.Dict
	spo  index
	pos  index
	osp  index
	n    int

	// version counts successful mutations; view catalogs compare it against
	// the version captured at materialization time to detect staleness.
	version int64

	// Per-component occurrence counts for single-bound cardinality
	// estimation, updated incrementally.
	countS map[rdf.ID]int
	countP map[rdf.ID]int
	countO map[rdf.ID]int
}

// Version returns a counter that increases on every successful mutation.
// Equal versions imply identical contents for a graph only mutated through
// Add/Remove (the counter never repeats within one graph's lifetime).
func (g *Graph) Version() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{
		dict:   rdf.NewDict(),
		spo:    make(index),
		pos:    make(index),
		osp:    make(index),
		countS: make(map[rdf.ID]int),
		countP: make(map[rdf.ID]int),
		countO: make(map[rdf.ID]int),
	}
}

// Dict exposes the graph's term dictionary. Callers must not mutate it
// concurrently with graph writes; the engine only resolves IDs through it.
func (g *Graph) Dict() *rdf.Dict { return g.dict }

// Len returns the number of triples |G|.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Add inserts a triple, interning its terms. It reports whether the triple
// was new and returns an error for RDF-invalid triples.
func (g *Graph) Add(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	return g.addEncodedLocked(s, p, o), nil
}

// MustAdd is Add for construction code paths where the triple is known valid
// by construction; it panics on invalid triples.
func (g *Graph) MustAdd(t rdf.Triple) bool {
	ok, err := g.Add(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// AddEncoded inserts an already-encoded triple. The IDs must come from this
// graph's dictionary.
func (g *Graph) AddEncoded(s, p, o rdf.ID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEncodedLocked(s, p, o)
}

func (g *Graph) addEncodedLocked(s, p, o rdf.ID) bool {
	if !g.spo.add(s, p, o) {
		return false
	}
	g.pos.add(p, o, s)
	g.osp.add(o, s, p)
	g.n++
	g.version++
	g.countS[s]++
	g.countP[p]++
	g.countO[o]++
	return true
}

// Remove deletes a triple if present and reports whether it was.
func (g *Graph) Remove(t rdf.Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	return g.removeEncodedLocked(s, p, o)
}

func (g *Graph) removeEncodedLocked(s, p, o rdf.ID) bool {
	if !g.spo.remove(s, p, o) {
		return false
	}
	g.pos.remove(p, o, s)
	g.osp.remove(o, s, p)
	g.n--
	g.version++
	decOrDelete(g.countS, s)
	decOrDelete(g.countP, p)
	decOrDelete(g.countO, o)
	return true
}

// decOrDelete decrements a counter, deleting the key at zero so len() of the
// counter maps equals the number of distinct live components.
func decOrDelete(m map[rdf.ID]int, k rdf.ID) {
	if m[k] <= 1 {
		delete(m, k)
	} else {
		m[k]--
	}
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t rdf.Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	m2, ok := g.spo[s]
	if !ok {
		return false
	}
	m3, ok := m2[p]
	if !ok {
		return false
	}
	_, ok = m3[o]
	return ok
}

// Match invokes yield for every triple matching the pattern, where rdf.NoID
// components are wildcards. Iteration stops when yield returns false. The
// callback receives encoded IDs; resolve through Dict as needed.
//
// The best index for the bound-component combination is chosen so every
// pattern shape is a direct lookup rather than a scan.
func (g *Graph) Match(s, p, o rdf.ID, yield func(s, p, o rdf.ID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.matchLocked(s, p, o, yield)
}

func (g *Graph) matchLocked(s, p, o rdf.ID, yield func(s, p, o rdf.ID) bool) {
	switch {
	case s != rdf.NoID && p != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.spo[s]; ok {
			if m3, ok := m2[p]; ok {
				if _, ok := m3[o]; ok {
					yield(s, p, o)
				}
			}
		}
	case s != rdf.NoID && p != rdf.NoID:
		if m2, ok := g.spo[s]; ok {
			for oo := range m2[p] {
				if !yield(s, p, oo) {
					return
				}
			}
		}
	case s != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.osp[o]; ok {
			for pp := range m2[s] {
				if !yield(s, pp, o) {
					return
				}
			}
		}
	case p != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.pos[p]; ok {
			for ss := range m2[o] {
				if !yield(ss, p, o) {
					return
				}
			}
		}
	case s != rdf.NoID:
		if m2, ok := g.spo[s]; ok {
			for pp, m3 := range m2 {
				for oo := range m3 {
					if !yield(s, pp, oo) {
						return
					}
				}
			}
		}
	case p != rdf.NoID:
		if m2, ok := g.pos[p]; ok {
			for oo, m3 := range m2 {
				for ss := range m3 {
					if !yield(ss, p, oo) {
						return
					}
				}
			}
		}
	case o != rdf.NoID:
		if m2, ok := g.osp[o]; ok {
			for ss, m3 := range m2 {
				for pp := range m3 {
					if !yield(ss, pp, o) {
						return
					}
				}
			}
		}
	default:
		for ss, m2 := range g.spo {
			for pp, m3 := range m2 {
				for oo := range m3 {
					if !yield(ss, pp, oo) {
						return
					}
				}
			}
		}
	}
}

// Estimate returns the exact number of triples matching the pattern when it
// can be read off an index level in O(1), or the stored count otherwise.
// Used by the planner for greedy join ordering.
func (g *Graph) Estimate(s, p, o rdf.ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	switch {
	case s != rdf.NoID && p != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.spo[s]; ok {
			if m3, ok := m2[p]; ok {
				if _, ok := m3[o]; ok {
					return 1
				}
			}
		}
		return 0
	case s != rdf.NoID && p != rdf.NoID:
		if m2, ok := g.spo[s]; ok {
			return len(m2[p])
		}
		return 0
	case s != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.osp[o]; ok {
			return len(m2[s])
		}
		return 0
	case p != rdf.NoID && o != rdf.NoID:
		if m2, ok := g.pos[p]; ok {
			return len(m2[o])
		}
		return 0
	case s != rdf.NoID:
		return g.countS[s]
	case p != rdf.NoID:
		return g.countP[p]
	case o != rdf.NoID:
		return g.countO[o]
	default:
		return g.n
	}
}

// Triples returns all triples, decoded, in unspecified order.
func (g *Graph) Triples() []rdf.Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]rdf.Triple, 0, g.n)
	g.matchLocked(rdf.NoID, rdf.NoID, rdf.NoID, func(s, p, o rdf.ID) bool {
		out = append(out, rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
		return true
	})
	return out
}

// SortedTriples returns all triples in canonical order (for deterministic
// serialization and tests).
func (g *Graph) SortedTriples() []rdf.Triple {
	ts := g.Triples()
	rdf.SortTriples(ts)
	return ts
}

// Clone returns a deep, independent copy of the graph, including its
// dictionary. Materialization clones the base graph to build the expanded
// graph G+ without mutating G.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := NewGraph()
	c.dict = g.dict.Clone()
	g.matchLocked(rdf.NoID, rdf.NoID, rdf.NoID, func(s, p, o rdf.ID) bool {
		c.addEncodedLocked(s, p, o)
		return true
	})
	return c
}

// DistinctNodes returns |I ∪ B ∪ L| — the number of distinct terms occurring
// in subject or object position. This is the "number of nodes" quantity of
// the paper's fourth cost model.
func (g *Graph) DistinctNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[rdf.ID]struct{}, len(g.countS)+len(g.countO))
	for s := range g.countS {
		seen[s] = struct{}{}
	}
	for o := range g.countO {
		seen[o] = struct{}{}
	}
	return len(seen)
}

// DistinctPredicates returns the number of distinct predicates in use.
func (g *Graph) DistinctPredicates() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.countP)
}

// LoadTriples adds every triple in ts, returning the number actually new.
func (g *Graph) LoadTriples(ts []rdf.Triple) (int, error) {
	added := 0
	for _, t := range ts {
		ok, err := g.Add(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}
