package store

import (
	"fmt"
	"maps"
	"sync"

	"sofos/internal/rdf"
)

// compactMinDelta is the delta-overlay size below which compaction is never
// triggered automatically; above it, the overlay is merged once it reaches
// compactFraction of the base runs. Growing the threshold with the base
// keeps interleaved Add/Remove workloads amortized near-linear, while
// compactMaxDelta caps the overlay absolutely: scans and estimates filter
// through the whole delta, so on very large graphs the fraction alone would
// let per-scan overhead grow with the base.
const (
	compactMinDelta = 1024
	compactFraction = 8 // compact when delta ≥ base/compactFraction
	compactMaxDelta = 1 << 16
)

// Graph is an in-memory RDF graph with dictionary encoding and full triple
// indexing. It is safe for concurrent reads; writes are serialized by an
// internal mutex (reads during writes are also safe). The triple data lives
// in three sorted permutation runs plus a mutable delta overlay; see
// columnar.go for the layout and run.go/block.go for the run encodings.
type Graph struct {
	mu   sync.RWMutex
	dict *rdf.Dict

	// codec encodes the immutable runs; see Codec for the public selection.
	codec runCodec

	// runs are the immutable sorted columnar runs, one per permutation, each
	// storing keys in that permutation's component order. Compaction and bulk
	// loads replace the runs wholesale, never mutate them in place, so live
	// Iterators stay valid across writes. A nil run is an empty index.
	runs [numPerms]run

	// adds holds triples inserted since the last compaction (disjoint from
	// runs); dels holds tombstones for run triples removed since then. Both
	// are keyed in SPO order.
	adds map[rdf.EncodedTriple]struct{}
	dels map[rdf.EncodedTriple]struct{}

	n int // live triple count: runs[permSPO].size() - len(dels) + len(adds)

	// version counts successful mutations; view catalogs compare it against
	// the version captured at materialization time to detect staleness.
	version int64

	// Per-component occurrence counts for distinct-component statistics
	// (len(countS) = distinct subjects, ...), updated incrementally.
	countS map[rdf.ID]int
	countP map[rdf.ID]int
	countO map[rdf.ID]int

	// storage records how this graph's runs are resident (heap or mmap) and
	// pages holds the paged snapshot image the runs slice into, when the graph
	// was loaded from a v3 snapshot. Both are nil/zero for built graphs.
	storage Storage
	pages   pageStore

	// pagedPath is the on-disk v3 snapshot this graph was loaded from (or last
	// checkpointed to), and pagedDirty records whether the graph has logically
	// diverged from it. While clean, a checkpoint can hard-link the file
	// instead of re-serializing the runs; any successful mutation dirties it.
	// Compaction alone does not: it changes the physical layout, not the
	// triple set, and checkpoints capture logical content.
	pagedPath  string
	pagedDirty bool
}

// Version returns a counter that increases on every successful mutation.
// Equal versions imply identical contents for a graph only mutated through
// Add/Remove (the counter never repeats within one graph's lifetime).
func (g *Graph) Version() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// SetVersion forces the mutation counter — the restore hook the persistence
// layer uses so a snapshot-loaded graph resumes the saved numbering and the
// version intervals of durably logged update batches stay aligned across
// restarts. Never lower the counter on a live graph: staleness tracking and
// delta-log chaining assume it never repeats.
func (g *Graph) SetVersion(v int64) {
	g.mu.Lock()
	g.version = v
	g.mu.Unlock()
}

// NewGraph returns an empty graph with a fresh dictionary, using the
// process-wide default run codec (see SetDefaultCodec).
func NewGraph() *Graph {
	return &Graph{
		dict:   rdf.NewDict(),
		codec:  DefaultCodec().runCodec(),
		adds:   make(map[rdf.EncodedTriple]struct{}),
		dels:   make(map[rdf.EncodedTriple]struct{}),
		countS: make(map[rdf.ID]int),
		countP: make(map[rdf.ID]int),
		countO: make(map[rdf.ID]int),
	}
}

// BuildFrom constructs a compacted graph directly from a triple slice — the
// bulk-load fast path: one lock acquisition, one sort per permutation, no
// per-triple map allocations.
func BuildFrom(ts []rdf.Triple) (*Graph, error) {
	g := NewGraph()
	if _, err := g.LoadTriples(ts); err != nil {
		return nil, err
	}
	return g, nil
}

// Dict exposes the graph's term dictionary. Callers must not mutate it
// concurrently with graph writes; the engine only resolves IDs through it.
func (g *Graph) Dict() *rdf.Dict { return g.dict }

// Len returns the number of triples |G|.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Add inserts a triple, interning its terms. It reports whether the triple
// was new and returns an error for RDF-invalid triples.
func (g *Graph) Add(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	return g.addEncodedLocked(s, p, o), nil
}

// MustAdd is Add for construction code paths where the triple is known valid
// by construction; it panics on invalid triples.
func (g *Graph) MustAdd(t rdf.Triple) bool {
	ok, err := g.Add(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// AddEncoded inserts an already-encoded triple. The IDs must come from this
// graph's dictionary.
func (g *Graph) AddEncoded(s, p, o rdf.ID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEncodedLocked(s, p, o)
}

// inRunsLocked reports whether the SPO-ordered key is in the base runs
// (ignoring tombstones).
func (g *Graph) inRunsLocked(k rdf.EncodedTriple) bool {
	r := g.runs[permSPO]
	return r != nil && r.contains(k)
}

func (g *Graph) containsLocked(s, p, o rdf.ID) bool {
	k := rdf.EncodedTriple{s, p, o}
	if _, ok := g.adds[k]; ok {
		return true
	}
	if _, ok := g.dels[k]; ok {
		return false
	}
	return g.inRunsLocked(k)
}

func (g *Graph) addEncodedLocked(s, p, o rdf.ID) bool {
	k := rdf.EncodedTriple{s, p, o}
	if _, ok := g.adds[k]; ok {
		return false
	}
	if _, ok := g.dels[k]; ok {
		delete(g.dels, k) // resurrect the still-present run entry
	} else if g.inRunsLocked(k) {
		return false
	} else {
		g.adds[k] = struct{}{}
	}
	g.n++
	g.version++
	g.pagedDirty = true
	g.countS[s]++
	g.countP[p]++
	g.countO[o]++
	g.maybeCompactLocked()
	return true
}

// Remove deletes a triple if present and reports whether it was.
func (g *Graph) Remove(t rdf.Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	return g.removeEncodedLocked(s, p, o)
}

func (g *Graph) removeEncodedLocked(s, p, o rdf.ID) bool {
	if !g.deleteLocked(s, p, o) {
		return false
	}
	g.maybeCompactLocked()
	return true
}

// deleteLocked is removeEncodedLocked without the compaction check, so batch
// removals can defer one compaction to the end instead of rebuilding the
// runs repeatedly mid-batch.
func (g *Graph) deleteLocked(s, p, o rdf.ID) bool {
	k := rdf.EncodedTriple{s, p, o}
	if _, ok := g.adds[k]; ok {
		delete(g.adds, k)
	} else if _, ok := g.dels[k]; ok {
		return false
	} else if g.inRunsLocked(k) {
		g.dels[k] = struct{}{}
	} else {
		return false
	}
	g.n--
	g.version++
	g.pagedDirty = true
	decOrDelete(g.countS, s)
	decOrDelete(g.countP, p)
	decOrDelete(g.countO, o)
	return true
}

// decOrDelete decrements a counter, deleting the key at zero so len() of the
// counter maps equals the number of distinct live components.
func decOrDelete(m map[rdf.ID]int, k rdf.ID) {
	if m[k] <= 1 {
		delete(m, k)
	} else {
		m[k]--
	}
}

// maybeCompactLocked merges the delta overlay into the runs once it exceeds
// the size threshold.
func (g *Graph) maybeCompactLocked() {
	delta := len(g.adds) + len(g.dels)
	if delta >= compactMinDelta &&
		(delta >= compactMaxDelta || delta*compactFraction >= runSize(g.runs[permSPO])) {
		g.compactLocked()
	}
}

// compactLocked merges pending inserts and tombstones into freshly built
// sorted runs, leaving the delta overlay empty. Old runs are left untouched
// for any live Iterators.
func (g *Graph) compactLocked() {
	if len(g.adds) == 0 && len(g.dels) == 0 {
		return
	}
	adds := make([]rdf.EncodedTriple, 0, len(g.adds))
	for t := range g.adds {
		adds = append(adds, t)
	}
	dels := make([]rdf.EncodedTriple, 0, len(g.dels))
	for t := range g.dels {
		dels = append(dels, t)
	}
	for k := permKind(0); k < numPerms; k++ {
		g.runs[k] = mergeRuns(g.codec, g.runs[k], permuteSorted(k, adds), permuteSorted(k, dels))
	}
	g.adds = make(map[rdf.EncodedTriple]struct{})
	g.dels = make(map[rdf.EncodedTriple]struct{})
}

// Compact merges any pending delta overlay into the sorted runs. Scans and
// estimates are cheapest against a compacted graph, so call it after a batch
// of mutations and before a query-heavy phase; bulk-load paths compact
// automatically.
func (g *Graph) Compact() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.compactLocked()
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t rdf.Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	return g.containsLocked(s, p, o)
}

// Scan returns an Iterator over every triple matching the pattern, where
// rdf.NoID components are wildcards, in the chosen permutation's sorted
// order. The Iterator is a consistent snapshot: it stays valid (and yields
// the same triples) regardless of concurrent mutations, and it does not hold
// the graph lock while the caller iterates.
func (g *Graph) Scan(s, p, o rdf.ID) (it Iterator) {
	g.mu.RLock()
	g.scanInto(&it, s, p, o)
	g.mu.RUnlock()
	return it
}

// ScanInto is Scan reusing the caller's Iterator value (and its delta
// buffers plus decode arena), for allocation-free scan loops on hot paths.
func (g *Graph) ScanInto(it *Iterator, s, p, o rdf.ID) {
	it.base, it.extra, it.dels = nil, it.extra[:0], it.dels[:0]
	g.mu.RLock()
	g.scanInto(it, s, p, o)
	g.mu.RUnlock()
}

func (g *Graph) scanLocked(s, p, o rdf.ID) (it Iterator) {
	g.scanInto(&it, s, p, o)
	return it
}

func (g *Graph) scanInto(it *Iterator, s, p, o rdf.ID) {
	kind, key, depth := choosePerm(s, p, o)
	g.scanPermInto(it, kind, key, depth)
}

func (g *Graph) scanPermLocked(kind permKind, key rdf.EncodedTriple, depth int) (it Iterator) {
	g.scanPermInto(&it, kind, key, depth)
	return it
}

// scanPermInto fills an Iterator with one permutation range: the base-run
// segment found by binary search plus copies of the in-range delta entries.
// It builds in place so the hot path copies no Iterator values.
func (g *Graph) scanPermInto(it *Iterator, kind permKind, key rdf.EncodedTriple, depth int) {
	if depth == 0 && g.pages != nil {
		// A full scan over a paged snapshot touches every payload page in
		// offset order; tell the kernel so readahead runs ahead of the scan.
		g.pages.adviseSequential()
	}
	lo, hi := rangeOf(g.runs[kind], key, depth)
	it.kind = kind
	it.base = g.runs[kind]
	it.lo, it.hi = lo, hi
	if it.a != nil {
		it.a.reset() // stale decoded span from a previous scan
	}
	if len(g.adds) > 0 {
		for t := range g.adds {
			if pk := kind.key(t[0], t[1], t[2]); cmpPrefix(pk, key, depth) == 0 {
				it.extra = append(it.extra, pk)
			}
		}
		sortKeys(it.extra)
	}
	if len(g.dels) > 0 {
		for t := range g.dels {
			if pk := kind.key(t[0], t[1], t[2]); cmpPrefix(pk, key, depth) == 0 {
				it.dels = append(it.dels, pk)
			}
		}
		sortKeys(it.dels)
	}
}

// Match invokes yield for every triple matching the pattern, where rdf.NoID
// components are wildcards. Iteration stops when yield returns false. The
// callback receives encoded IDs; resolve through Dict as needed. Match is
// implemented on top of Scan; prefer Scan on hot paths to avoid the callback
// indirection.
func (g *Graph) Match(s, p, o rdf.ID, yield func(s, p, o rdf.ID) bool) {
	it := g.Scan(s, p, o)
	for it.Next() {
		if !yield(it.Triple()) {
			return
		}
	}
}

// Estimate returns the exact number of triples matching the pattern, read
// off a permutation range length (corrected by the in-range delta overlay).
// For block runs the range endpoints come from fence searches, so interior
// blocks are counted without being decoded. Used by the planner for greedy
// join ordering.
func (g *Graph) Estimate(s, p, o rdf.ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.estimateLocked(s, p, o)
}

func (g *Graph) estimateLocked(s, p, o rdf.ID) int {
	if s != rdf.NoID && p != rdf.NoID && o != rdf.NoID {
		if g.containsLocked(s, p, o) {
			return 1
		}
		return 0
	}
	kind, key, depth := choosePerm(s, p, o)
	lo, hi := rangeOf(g.runs[kind], key, depth)
	n := hi - lo
	// Delta entries match the range iff they match the pattern (tombstones
	// are always run members, so pattern match implies range membership).
	if len(g.dels) > 0 {
		for t := range g.dels {
			if matchesPattern(t, s, p, o) {
				n--
			}
		}
	}
	if len(g.adds) > 0 {
		for t := range g.adds {
			if matchesPattern(t, s, p, o) {
				n++
			}
		}
	}
	return n
}

// Triples returns all triples, decoded, in SPO-sorted ID order.
func (g *Graph) Triples() []rdf.Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	it := g.scanLocked(rdf.NoID, rdf.NoID, rdf.NoID)
	out := make([]rdf.Triple, 0, g.n)
	for it.Next() {
		s, p, o := it.Triple()
		out = append(out, rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
	}
	return out
}

// SortedTriples returns all triples in canonical term order (for
// deterministic serialization and tests).
func (g *Graph) SortedTriples() []rdf.Triple {
	ts := g.Triples()
	rdf.SortTriples(ts)
	return ts
}

// Clone returns an independent copy of the graph, including its dictionary.
// The immutable columnar runs are shared by pointer — compaction replaces
// runs wholesale and never mutates them in place, so sharing is safe and
// keeps cloning O(overlay + dictionary) instead of O(data). That matters for
// mmap-backed graphs, where deep-copying the runs would pull the whole file
// resident; materialization clones the base graph to build the expanded graph
// G+ without mutating G.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := NewGraph()
	c.dict = g.dict.Clone()
	c.codec = g.codec
	c.runs = g.runs
	c.storage = g.storage
	c.pages = g.pages
	maps.Copy(c.adds, g.adds)
	maps.Copy(c.dels, g.dels)
	maps.Copy(c.countS, g.countS)
	maps.Copy(c.countP, g.countP)
	maps.Copy(c.countO, g.countO)
	c.n = g.n
	c.version = g.version
	return c
}

// Fork returns a writable copy-on-write successor of the graph for MVCC
// commit chains: the term dictionary is shared by pointer (it is append-only
// and internally synchronized, so readers of the published snapshot and the
// writer preparing the next generation interleave safely), the immutable runs
// and any paged snapshot image are shared, and only the delta overlay and
// component counts are copied — O(overlay), never O(data) or O(dictionary).
// Unlike Clone, Fork carries the paged-snapshot provenance (pagedPath and
// dirtiness) so hard-link checkpoints keep working across generations.
//
// The receiver must be treated as frozen once it has been published: the fork
// is where all further mutation happens.
func (g *Graph) Fork() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := NewGraph()
	c.dict = g.dict
	c.codec = g.codec
	c.runs = g.runs
	c.storage = g.storage
	c.pages = g.pages
	maps.Copy(c.adds, g.adds)
	maps.Copy(c.dels, g.dels)
	maps.Copy(c.countS, g.countS)
	maps.Copy(c.countP, g.countP)
	maps.Copy(c.countO, g.countO)
	c.n = g.n
	c.version = g.version
	c.pagedPath = g.pagedPath
	c.pagedDirty = g.pagedDirty
	return c
}

// DistinctNodes returns |I ∪ B ∪ L| — the number of distinct terms occurring
// in subject or object position. This is the "number of nodes" quantity of
// the paper's fourth cost model.
func (g *Graph) DistinctNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[rdf.ID]struct{}, len(g.countS)+len(g.countO))
	for s := range g.countS {
		seen[s] = struct{}{}
	}
	for o := range g.countO {
		seen[o] = struct{}{}
	}
	return len(seen)
}

// DistinctPredicates returns the number of distinct predicates in use.
func (g *Graph) DistinctPredicates() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.countP)
}

// LoadTriples adds every triple in ts in one batch — single lock
// acquisition, sort-and-merge into the runs — returning the number actually
// new. On an invalid triple it loads the preceding prefix and returns an
// error.
func (g *Graph) LoadTriples(ts []rdf.Triple) (int, error) {
	valid := len(ts)
	var verr error
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			valid, verr = i, fmt.Errorf("store: %w", err)
			break
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	enc := make([]rdf.EncodedTriple, valid)
	for i, t := range ts[:valid] {
		enc[i] = rdf.EncodedTriple{g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O)}
	}
	return g.loadEncodedLocked(enc), verr
}

// LoadEncoded bulk-inserts already-encoded triples (IDs from this graph's
// dictionary), returning the number actually new. Like LoadTriples, it takes
// the write lock once and merges sorted batches directly into the runs,
// leaving the graph compacted.
func (g *Graph) LoadEncoded(ts []rdf.EncodedTriple) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.loadEncodedLocked(ts)
}

func (g *Graph) loadEncodedLocked(ts []rdf.EncodedTriple) int {
	if len(ts) == 0 {
		return 0
	}
	// Fold any pending delta into the runs first so the batch merge below is
	// a clean two-way merge against the full base.
	g.compactLocked()
	batch := append([]rdf.EncodedTriple(nil), ts...)
	sortKeys(batch)
	fresh := batch[:0]
	var prev rdf.EncodedTriple
	for i, t := range batch {
		if i > 0 && t == prev {
			continue // duplicate within the batch
		}
		prev = t
		if g.inRunsLocked(t) {
			continue // already present
		}
		fresh = append(fresh, t)
		g.countS[t[0]]++
		g.countP[t[1]]++
		g.countO[t[2]]++
	}
	if len(fresh) == 0 {
		return 0
	}
	for k := permKind(0); k < numPerms; k++ {
		ins := fresh
		if k != permSPO {
			ins = permuteSorted(k, fresh)
		}
		g.runs[k] = mergeRuns(g.codec, g.runs[k], ins, nil)
	}
	g.n += len(fresh)
	g.version += int64(len(fresh))
	g.pagedDirty = true
	return len(fresh)
}

// PagedSource returns the path of the on-disk paged (v3) snapshot whose
// logical content this graph still matches, if any. The persistence layer
// uses it to hard-link checkpoints instead of re-serializing unchanged runs.
func (g *Graph) PagedSource() (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.pagedPath == "" || g.pagedDirty {
		return "", false
	}
	return g.pagedPath, true
}

// AdoptPagedSource records that the file at path is a paged snapshot of the
// graph's current logical content. The loader and the checkpoint writer call
// it; the path stays valid until the next mutation.
func (g *Graph) AdoptPagedSource(path string) {
	g.mu.Lock()
	g.pagedPath = path
	g.pagedDirty = false
	g.mu.Unlock()
}

// RemoveTriples deletes every listed triple in one batch under a single lock
// acquisition, returning how many were actually present. The batch view-drop
// path in views.Catalog uses this.
func (g *Graph) RemoveTriples(ts []rdf.Triple) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	for _, t := range ts {
		s, ok := g.dict.Lookup(t.S)
		if !ok {
			continue
		}
		p, ok := g.dict.Lookup(t.P)
		if !ok {
			continue
		}
		o, ok := g.dict.Lookup(t.O)
		if !ok {
			continue
		}
		if g.deleteLocked(s, p, o) {
			removed++
		}
	}
	g.maybeCompactLocked()
	return removed
}
