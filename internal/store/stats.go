package store

import (
	"sort"

	"sofos/internal/rdf"
)

// PredicateStat summarizes one predicate's usage in a graph. These statistics
// feed both the planner's selectivity estimates and the learned cost model's
// feature encoding ("statistics about the relationship frequency and the
// attribute frequency", §3.1 of the paper).
type PredicateStat struct {
	Predicate        rdf.Term
	Count            int // number of triples with this predicate
	DistinctSubjects int
	DistinctObjects  int
}

// Stats is a snapshot of graph-level statistics.
type Stats struct {
	Triples            int
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
	DistinctNodes      int
	Predicates         []PredicateStat // sorted by descending Count, then IRI

	// byIRI indexes Predicates by IRI for O(1) lookup; nil for Stats values
	// constructed literally, in which case lookups fall back to a scan.
	byIRI map[string]int
}

// Predicate returns the statistics of a predicate IRI, if present.
func (s *Stats) Predicate(iri string) (PredicateStat, bool) {
	if s.byIRI != nil {
		if i, ok := s.byIRI[iri]; ok {
			return s.Predicates[i], true
		}
		return PredicateStat{}, false
	}
	for _, p := range s.Predicates {
		if p.Predicate.Value == iri {
			return p, true
		}
	}
	return PredicateStat{}, false
}

// PredicateCount returns the triple count of a predicate IRI, 0 if absent.
func (s *Stats) PredicateCount(iri string) int {
	p, ok := s.Predicate(iri)
	if !ok {
		return 0
	}
	return p.Count
}

// Snapshot computes current statistics for the graph. Per-predicate counts
// and distinct-object counts are read directly off the POS permutation run —
// each predicate is one contiguous range sorted by object — so only the
// per-predicate distinct-subject sets need scratch memory.
func (g *Graph) Snapshot() *Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := &Stats{
		Triples:            g.n,
		DistinctSubjects:   len(g.countS),
		DistinctPredicates: len(g.countP),
		DistinctObjects:    len(g.countO),
	}
	seen := make(map[rdf.ID]struct{}, len(g.countS)+len(g.countO))
	for s := range g.countS {
		seen[s] = struct{}{}
	}
	for o := range g.countO {
		seen[o] = struct{}{}
	}
	st.DistinctNodes = len(seen)
	it := g.scanPermLocked(permPOS, rdf.EncodedTriple{}, 0)

	// The iterator yields (p, o, s)-sorted triples: predicate ranges are
	// contiguous and objects are grouped within each range.
	var cur PredicateStat
	curP, curO := rdf.NoID, rdf.NoID
	subjects := make(map[rdf.ID]struct{})
	flush := func() {
		if curP == rdf.NoID {
			return
		}
		cur.DistinctSubjects = len(subjects)
		st.Predicates = append(st.Predicates, cur)
	}
	for it.Next() {
		s, p, o := it.Triple()
		if p != curP {
			flush()
			curP, curO = p, rdf.NoID
			cur = PredicateStat{Predicate: g.dict.Term(p)}
			clear(subjects)
		}
		cur.Count++
		if o != curO {
			cur.DistinctObjects++
			curO = o
		}
		subjects[s] = struct{}{}
	}
	flush()
	sort.Slice(st.Predicates, func(i, j int) bool {
		if st.Predicates[i].Count != st.Predicates[j].Count {
			return st.Predicates[i].Count > st.Predicates[j].Count
		}
		return st.Predicates[i].Predicate.Value < st.Predicates[j].Predicate.Value
	})
	st.byIRI = make(map[string]int, len(st.Predicates))
	for i, p := range st.Predicates {
		st.byIRI[p.Predicate.Value] = i
	}
	return st
}

// EstimatedBytes approximates the in-memory footprint of the graph's triple
// data, used for the paper's storage-amplification reports and the memory-
// budget selection variant. It counts dictionary string bytes once plus the
// columnar index cost: three permutation runs at 12 bytes (three 4-byte IDs)
// per triple, plus map overhead for any uncompacted delta entries.
func (g *Graph) EstimatedBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total int64
	g.dict.EachTerm(func(_ rdf.ID, t rdf.Term) bool {
		total += int64(len(t.Value) + len(t.Datatype) + len(t.Lang) + 16)
		return true
	})
	total += int64(runSize(g.runs[permSPO])) * (3 * 12)
	total += int64(len(g.adds)+len(g.dels)) * 48
	return total
}

// IndexMemStats is the resident footprint of one permutation index.
type IndexMemStats struct {
	Keys     int   `json:"keys"`                      // triples stored in the run
	Blocks   int   `json:"blocks,omitempty"`          // compressed blocks (0 for flat)
	Verified int   `json:"verified_blocks,omitempty"` // blocks with their payload CRC checked
	Bytes    int64 `json:"bytes"`                     // heap-resident bytes of the run encoding
	Mapped   int64 `json:"mapped_bytes,omitempty"`    // mmap-backed payload bytes
}

// MemStats reports the actual resident bytes of the graph's storage, broken
// down per permutation index, plus the active run codec. Unlike
// EstimatedBytes — which is a codec-independent cost-model quantity the
// planner and selection variants consume — MemStats measures the real
// encoding, so the block codec's compression win is observable in /stats.
type MemStats struct {
	Codec       string        `json:"codec"`
	Storage     string        `json:"storage"` // heap | mmap
	Triples     int           `json:"triples"`
	Pages       int           `json:"pages,omitempty"`     // paged-snapshot pages backing the runs
	PageSize    int           `json:"page_size,omitempty"` // bytes per page
	SPO         IndexMemStats `json:"spo"`
	POS         IndexMemStats `json:"pos"`
	OSP         IndexMemStats `json:"osp"`
	OverlayAdds int           `json:"overlay_adds"`
	OverlayDels int           `json:"overlay_dels"`
	DictBytes   int64         `json:"dict_bytes"`
	IndexBytes  int64         `json:"index_bytes"`  // SPO+POS+OSP+overlay, heap-resident
	MappedBytes int64         `json:"mapped_bytes"` // mmap-backed snapshot bytes (not heap)
	TotalBytes  int64         `json:"total_bytes"`  // IndexBytes + DictBytes
}

// MemStats measures the graph's current resident storage footprint.
func (g *Graph) MemStats() MemStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ms := MemStats{
		Codec:       g.codec.name(),
		Storage:     g.storage.String(),
		Triples:     g.n,
		OverlayAdds: len(g.adds),
		OverlayDels: len(g.dels),
	}
	if g.pages != nil {
		ms.Pages = g.pages.pages()
		ms.PageSize = g.pages.pageSize()
		ms.MappedBytes = g.pages.mappedBytes()
	}
	perms := [numPerms]*IndexMemStats{&ms.SPO, &ms.POS, &ms.OSP}
	for k := permKind(0); k < numPerms; k++ {
		if r := g.runs[k]; r != nil {
			perms[k].Keys = r.size()
			perms[k].Blocks = r.numBlocks()
			perms[k].Verified = r.verifiedBlocks()
			perms[k].Bytes = r.memBytes()
			perms[k].Mapped = r.mappedBytes()
		}
		ms.IndexBytes += perms[k].Bytes
	}
	// Each overlay entry costs roughly one map bucket slot: 12-byte key plus
	// bucket and pointer overhead.
	ms.IndexBytes += int64(len(g.adds)+len(g.dels)) * 48
	g.dict.EachTerm(func(_ rdf.ID, t rdf.Term) bool {
		ms.DictBytes += int64(len(t.Value) + len(t.Datatype) + len(t.Lang) + 16)
		return true
	})
	ms.TotalBytes = ms.IndexBytes + ms.DictBytes
	return ms
}
