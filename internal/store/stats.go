package store

import (
	"sort"

	"sofos/internal/rdf"
)

// PredicateStat summarizes one predicate's usage in a graph. These statistics
// feed both the planner's selectivity estimates and the learned cost model's
// feature encoding ("statistics about the relationship frequency and the
// attribute frequency", §3.1 of the paper).
type PredicateStat struct {
	Predicate        rdf.Term
	Count            int // number of triples with this predicate
	DistinctSubjects int
	DistinctObjects  int
}

// Stats is a snapshot of graph-level statistics.
type Stats struct {
	Triples            int
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
	DistinctNodes      int
	Predicates         []PredicateStat // sorted by descending Count, then IRI
}

// PredicateCount returns the triple count of a predicate IRI, 0 if absent.
func (s *Stats) PredicateCount(iri string) int {
	for _, p := range s.Predicates {
		if p.Predicate.Value == iri {
			return p.Count
		}
	}
	return 0
}

// Snapshot computes current statistics for the graph. It takes time linear
// in the number of distinct predicates, not in the number of triples.
func (g *Graph) Snapshot() *Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := &Stats{
		Triples:            g.n,
		DistinctSubjects:   len(g.countS),
		DistinctPredicates: len(g.countP),
		DistinctObjects:    len(g.countO),
	}
	seen := make(map[rdf.ID]struct{}, len(g.countS)+len(g.countO))
	for s := range g.countS {
		seen[s] = struct{}{}
	}
	for o := range g.countO {
		seen[o] = struct{}{}
	}
	st.DistinctNodes = len(seen)

	for p, m2 := range g.pos {
		ps := PredicateStat{
			Predicate:       g.dict.Term(p),
			Count:           g.countP[p],
			DistinctObjects: len(m2),
		}
		subjects := make(map[rdf.ID]struct{})
		for _, m3 := range m2 {
			for s := range m3 {
				subjects[s] = struct{}{}
			}
		}
		ps.DistinctSubjects = len(subjects)
		st.Predicates = append(st.Predicates, ps)
	}
	sort.Slice(st.Predicates, func(i, j int) bool {
		if st.Predicates[i].Count != st.Predicates[j].Count {
			return st.Predicates[i].Count > st.Predicates[j].Count
		}
		return st.Predicates[i].Predicate.Value < st.Predicates[j].Predicate.Value
	})
	return st
}

// EstimatedBytes approximates the in-memory footprint of the graph's triple
// data, used for the paper's storage-amplification reports and the memory-
// budget selection variant. It counts dictionary string bytes once plus a
// fixed per-triple index overhead.
func (g *Graph) EstimatedBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total int64
	g.dict.EachTerm(func(_ rdf.ID, t rdf.Term) bool {
		total += int64(len(t.Value) + len(t.Datatype) + len(t.Lang) + 16)
		return true
	})
	// Three indexes, each storing one 4-byte ID per triple plus map overhead
	// (~48 bytes amortized per entry across three nested hash maps).
	total += int64(g.n) * (3*4 + 3*48)
	return total
}
