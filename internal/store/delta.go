package store

import (
	"fmt"
	"maps"

	"sofos/internal/rdf"
)

// Delta is the effective change ΔG of one committed update batch: the
// triples that were actually new and the triples that were actually present
// and removed, tagged with the graph-version interval the batch moved the
// graph across. Writers capture it at commit time (see Graph.Apply) so view
// maintenance can replay exactly the batches a stale view missed instead of
// re-deriving the difference from two full graphs.
type Delta struct {
	Inserted []rdf.Triple // triples that were new (absent before, present after)
	Deleted  []rdf.Triple // triples that were removed (present before, absent after)

	// FromVersion and ToVersion are the graph's Version immediately before
	// and after the batch; chained deltas with matching endpoints reconstruct
	// ΔG across any retained interval.
	FromVersion int64
	ToVersion   int64
}

// Len is |ΔG|: the number of effective insertions plus deletions.
func (d *Delta) Len() int { return len(d.Inserted) + len(d.Deleted) }

// Empty reports whether the batch changed nothing.
func (d *Delta) Empty() bool { return d.Len() == 0 }

// Apply commits one batched update — inserts first, then deletes, matching
// the /update endpoint's order — under a single lock acquisition and returns
// the effective delta. A triple inserted (as new) and deleted by the same
// batch cancels out of the delta entirely: the graph is unchanged with
// respect to it. Inserts are validated up front, so an error means nothing
// was applied.
func (g *Graph) Apply(inserts, deletes []rdf.Triple) (Delta, error) {
	for _, t := range inserts {
		if err := t.Validate(); err != nil {
			return Delta{}, fmt.Errorf("store: %w", err)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	d := Delta{FromVersion: g.version}
	var insIdx map[rdf.EncodedTriple]int // effective insert key -> index in d.Inserted
	if len(inserts) > 0 && len(deletes) > 0 {
		insIdx = make(map[rdf.EncodedTriple]int, len(inserts))
	}
	for _, t := range inserts {
		s, p, o := g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O)
		if g.addEncodedLocked(s, p, o) {
			if insIdx != nil {
				insIdx[rdf.EncodedTriple{s, p, o}] = len(d.Inserted)
			}
			d.Inserted = append(d.Inserted, t)
		}
	}
	var cancelled map[int]bool // indices of d.Inserted undone by a same-batch delete
	for _, t := range deletes {
		s, ok := g.dict.Lookup(t.S)
		if !ok {
			continue
		}
		p, ok := g.dict.Lookup(t.P)
		if !ok {
			continue
		}
		o, ok := g.dict.Lookup(t.O)
		if !ok {
			continue
		}
		if !g.deleteLocked(s, p, o) {
			continue
		}
		if i, ok := insIdx[rdf.EncodedTriple{s, p, o}]; ok {
			if cancelled == nil {
				cancelled = make(map[int]bool)
			}
			cancelled[i] = true
			delete(insIdx, rdf.EncodedTriple{s, p, o})
			continue
		}
		d.Deleted = append(d.Deleted, t)
	}
	if len(cancelled) > 0 {
		kept := d.Inserted[:0]
		for i, t := range d.Inserted {
			if !cancelled[i] {
				kept = append(kept, t)
			}
		}
		d.Inserted = kept
	}
	g.maybeCompactLocked()
	d.ToVersion = g.version
	return d, nil
}

// ComposeDeltas flattens a sequence of consecutively committed deltas into
// one net delta spanning the whole interval: a triple inserted by one
// statement and deleted by a later one (or vice versa) cancels out entirely,
// exactly as if the statements had been one batch. Multi-statement /update
// transactions use it to log a single WAL record for the transaction. The
// input deltas must chain (each FromVersion equal to the previous ToVersion);
// surviving triples keep first-touch order.
func ComposeDeltas(ds []Delta) Delta {
	if len(ds) == 0 {
		return Delta{}
	}
	if len(ds) == 1 {
		return ds[0]
	}
	net := Delta{FromVersion: ds[0].FromVersion, ToVersion: ds[len(ds)-1].ToVersion}
	sign := make(map[rdf.Triple]int8)
	var order []rdf.Triple
	for _, d := range ds {
		for _, t := range d.Inserted {
			if _, seen := sign[t]; !seen {
				order = append(order, t)
			}
			sign[t]++
		}
		for _, t := range d.Deleted {
			if _, seen := sign[t]; !seen {
				order = append(order, t)
			}
			sign[t]--
		}
	}
	for _, t := range order {
		switch {
		case sign[t] > 0:
			net.Inserted = append(net.Inserted, t)
		case sign[t] < 0:
			net.Deleted = append(net.Deleted, t)
		}
	}
	return net
}

// OverlayWith returns a read-only union of the graph and the extra triples,
// sharing the receiver's immutable sorted runs and its term dictionary: the
// cost is O(|delta overlay| + |extra|), never O(|G|). Incremental view
// maintenance uses it to evaluate delete-side joins against G ∪ Δ⁻ without
// rebuilding the pre-update graph.
//
// The overlay supports the read API only (Scan, Match, Contains, Estimate,
// Len, Triples); mutating it — or mutating the receiver or its dictionary
// while the overlay is in use — is undefined. Component-count statistics
// (DistinctNodes, DistinctPredicates) are not maintained and read as zero.
// Extra triples whose terms were never interned in the receiver's dictionary
// are skipped: such a triple cannot have been part of any earlier graph
// state, and adding it would mutate the shared dictionary.
func (g *Graph) OverlayWith(extra []rdf.Triple) *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	o := &Graph{
		dict:    g.dict,
		codec:   g.codec,
		runs:    g.runs, // shares the immutable runs; never mutated in place
		adds:    make(map[rdf.EncodedTriple]struct{}, len(g.adds)+len(extra)),
		dels:    make(map[rdf.EncodedTriple]struct{}, len(g.dels)),
		countS:  make(map[rdf.ID]int),
		countP:  make(map[rdf.ID]int),
		countO:  make(map[rdf.ID]int),
		n:       g.n,
		version: g.version,
	}
	maps.Copy(o.adds, g.adds)
	maps.Copy(o.dels, g.dels)
	for _, t := range extra {
		s, ok := g.dict.Lookup(t.S)
		if !ok {
			continue
		}
		p, ok := g.dict.Lookup(t.P)
		if !ok {
			continue
		}
		ob, ok := g.dict.Lookup(t.O)
		if !ok {
			continue
		}
		k := rdf.EncodedTriple{s, p, ob}
		if _, tomb := o.dels[k]; tomb {
			delete(o.dels, k) // resurrect the still-present run entry
			o.n++
			continue
		}
		if _, dup := o.adds[k]; dup {
			continue
		}
		if o.inRunsLocked(k) {
			continue
		}
		o.adds[k] = struct{}{}
		o.n++
	}
	return o
}
