package store

import (
	"slices"

	"sofos/internal/rdf"
)

// Columnar permutation-index layout.
//
// Each graph keeps three sorted runs — one per access permutation (SPO, POS,
// OSP) — with the triple components stored in that permutation's key order,
// so every bound-component prefix of a triple pattern maps to one contiguous
// run range found by binary search. The runs are stored behind the run
// interface (run.go): flat fixed-width slices or delta/varint-compressed
// blocks (block.go), chosen per graph by codec. On top of the immutable runs
// sits a small mutable delta overlay (pending inserts and tombstones) that is
// merged into fresh runs once it exceeds a fraction of the base (LSM-style).
// Readers capture the run plus a copy of the in-range delta, so scans never
// hold the graph lock while yielding and mutations never invalidate a live
// Iterator.

// permKind selects one of the three sorted permutations.
type permKind uint8

const (
	permSPO permKind = iota
	permPOS
	permOSP
	numPerms
)

// key reorders an (s, p, o) triple into the permutation's key order.
func (k permKind) key(s, p, o rdf.ID) rdf.EncodedTriple {
	switch k {
	case permSPO:
		return rdf.EncodedTriple{s, p, o}
	case permPOS:
		return rdf.EncodedTriple{p, o, s}
	default: // permOSP
		return rdf.EncodedTriple{o, s, p}
	}
}

// spo recovers (s, p, o) from a key in this permutation's order.
func (k permKind) spo(t rdf.EncodedTriple) (s, p, o rdf.ID) {
	switch k {
	case permSPO:
		return t[0], t[1], t[2]
	case permPOS:
		return t[2], t[0], t[1]
	default: // permOSP
		return t[1], t[2], t[0]
	}
}

// cmpKeys orders permuted keys lexicographically.
func cmpKeys(a, b rdf.EncodedTriple) int {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// cmpPrefix compares only the first depth components.
func cmpPrefix(a, b rdf.EncodedTriple, depth int) int {
	for i := 0; i < depth; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortKeys sorts permuted keys in place.
func sortKeys(ts []rdf.EncodedTriple) {
	slices.SortFunc(ts, cmpKeys)
}

// rangeOf binary-searches the half-open run range whose first depth key
// components equal key's. depth 0 returns the whole run; a nil run (an index
// never written to) is the empty range.
func rangeOf(r run, key rdf.EncodedTriple, depth int) (lo, hi int) {
	if r == nil {
		return 0, 0
	}
	if depth == 0 {
		return 0, r.size()
	}
	if br, ok := r.(*blockRun); ok {
		// Combined bound search: one fence narrowing and at most one decode
		// when both bounds land in the same block — the common case for
		// selective probes.
		return br.searchRange(key, depth)
	}
	lo = r.search(0, key, depth, false)
	hi = r.search(lo, key, depth, true)
	return lo, hi
}

// searchPrefix returns the first index in run[from:] ∪ {len(run)} whose
// depth-prefix is ≥ key's (upper=false) or > key's (upper=true). Depths 1
// and 2 reduce to a lower-bound search against a packed integer target
// (upper bound = lower bound of target+1), keeping the comparison loop
// branch-light. This is the flat-slice search primitive, shared by flatRun,
// the delta-overlay slices, and in-block searches over decoded columns.
func searchPrefix(run []rdf.EncodedTriple, from int, key rdf.EncodedTriple, depth int, upper bool) int {
	lo, hi := from, len(run)
	switch depth {
	case 1:
		target := uint64(key[0])
		if upper {
			target++
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if uint64(run[mid][0]) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	case 2:
		target := uint64(key[0])<<32 | uint64(key[1])
		if upper {
			target++
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if uint64(run[mid][0])<<32|uint64(run[mid][1]) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	default:
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			c := cmpPrefix(run[mid], key, depth)
			if c < 0 || (upper && c == 0) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	return lo
}

// choosePerm picks the permutation whose key order turns the pattern's bound
// components into a prefix, so the matching triples form one run range.
func choosePerm(s, p, o rdf.ID) (kind permKind, key rdf.EncodedTriple, depth int) {
	sb, pb, ob := s != rdf.NoID, p != rdf.NoID, o != rdf.NoID
	switch {
	case sb && pb && ob:
		return permSPO, rdf.EncodedTriple{s, p, o}, 3
	case sb && pb:
		return permSPO, rdf.EncodedTriple{s, p, rdf.NoID}, 2
	case pb && ob:
		return permPOS, rdf.EncodedTriple{p, o, rdf.NoID}, 2
	case sb && ob:
		return permOSP, rdf.EncodedTriple{o, s, rdf.NoID}, 2
	case sb:
		return permSPO, rdf.EncodedTriple{s, rdf.NoID, rdf.NoID}, 1
	case pb:
		return permPOS, rdf.EncodedTriple{p, rdf.NoID, rdf.NoID}, 1
	case ob:
		return permOSP, rdf.EncodedTriple{o, rdf.NoID, rdf.NoID}, 1
	default:
		return permSPO, rdf.EncodedTriple{}, 0
	}
}

// matchesPattern reports whether an SPO-ordered triple matches the pattern
// (NoID components are wildcards).
func matchesPattern(t rdf.EncodedTriple, s, p, o rdf.ID) bool {
	return (s == rdf.NoID || t[0] == s) &&
		(p == rdf.NoID || t[1] == p) &&
		(o == rdf.NoID || t[2] == o)
}

// mergeRuns three-way merges a base run with sorted inserts and sorted
// tombstones, streaming the result through a fresh builder in the graph's
// codec — block runs are re-encoded block by block with no intermediate flat
// materialization. Inserts are disjoint from base; tombstones are a subset
// of base.
func mergeRuns(c runCodec, base run, ins, del []rdf.EncodedTriple) run {
	n := runSize(base)
	b := c.newBuilder(n + len(ins) - len(del))
	var a spanArena
	pos, j, k := 0, 0, 0
	for pos < n || j < len(ins) {
		if pos < n {
			if a.idx >= a.n {
				base.fill(&a, pos, n)
			}
			bk := a.key(a.idx)
			if j >= len(ins) || cmpKeys(bk, ins[j]) < 0 {
				pos++
				a.idx++
				for k < len(del) && cmpKeys(del[k], bk) < 0 {
					k++
				}
				if k < len(del) && del[k] == bk {
					k++
					continue
				}
				b.add(bk)
				continue
			}
		}
		b.add(ins[j])
		j++
	}
	return b.finish()
}

// permuteSorted returns a sorted copy of SPO-ordered triples rekeyed into the
// permutation's order.
func permuteSorted(kind permKind, ts []rdf.EncodedTriple) []rdf.EncodedTriple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]rdf.EncodedTriple, len(ts))
	for i, t := range ts {
		out[i] = kind.key(t[0], t[1], t[2])
	}
	sortKeys(out)
	return out
}

// Iterator streams the triples matching one pattern in the permutation's
// sorted order. The base range is read block-at-a-time through a reusable
// decode arena, so iteration performs no per-triple allocation for either
// codec (the arena itself is allocated once, lazily, and survives ScanInto
// reuse).
//
// An Iterator is a consistent snapshot: concurrent writes to the graph do not
// affect triples it yields, and it must not be shared between goroutines.
type Iterator struct {
	kind   permKind
	base   run                 // shared immutable run (nil for pure-delta ranges)
	lo, hi int                 // remaining base positions [lo, hi)
	a      *spanArena          // decoded span; a.key(a.idx) is the key at lo
	extra  []rdf.EncodedTriple // remaining in-range delta inserts (sorted)
	dels   []rdf.EncodedTriple // remaining in-range tombstones (sorted)

	// ms/mp/mo are the merge buffers NextSpan fills when the delta overlay is
	// non-empty and spans cannot be served straight from the arena.
	ms, mp, mo []rdf.ID

	s, p, o rdf.ID // current triple
}

// headBase returns the key at base position lo, refilling the arena if the
// decoded span is exhausted. Callers guarantee lo < hi.
func (it *Iterator) headBase() rdf.EncodedTriple {
	a := it.a
	if a == nil {
		a = new(spanArena)
		it.a = a
	}
	if a.idx >= a.n {
		it.base.fill(a, it.lo, it.hi)
	}
	return a.key(a.idx)
}

// Next advances to the next matching triple, reporting whether one exists.
func (it *Iterator) Next() bool {
	for {
		var t rdf.EncodedTriple
		switch {
		case it.lo >= it.hi && len(it.extra) == 0:
			return false
		case len(it.extra) == 0 || (it.lo < it.hi && cmpKeys(it.headBase(), it.extra[0]) < 0):
			t = it.headBase()
			it.lo++
			it.a.idx++
			for len(it.dels) > 0 && cmpKeys(it.dels[0], t) < 0 {
				it.dels = it.dels[1:]
			}
			if len(it.dels) > 0 && it.dels[0] == t {
				it.dels = it.dels[1:]
				continue // tombstoned base triple
			}
		default:
			t = it.extra[0]
			it.extra = it.extra[1:]
		}
		it.s, it.p, it.o = it.kind.spo(t)
		return true
	}
}

// NextSpan yields the next decoded span as parallel SoA component slices
// (already in s, p, o order) and consumes it, returning empty slices once the
// iterator is exhausted. When the delta overlay is empty — the common state
// after a bulk load or compaction — the slices alias the iterator's decode
// arena directly: one block decode per call, zero copying, zero allocation.
// The slices are valid only until the next NextSpan or Next call.
//
// NextSpan and Next may be interleaved; both consume the same sequence.
func (it *Iterator) NextSpan() (s, p, o []rdf.ID) {
	if len(it.extra) == 0 && len(it.dels) == 0 {
		if it.lo >= it.hi {
			return nil, nil, nil
		}
		a := it.a
		if a == nil {
			a = new(spanArena)
			it.a = a
		}
		if a.idx >= a.n {
			it.base.fill(a, it.lo, it.hi)
		}
		c0, c1, c2 := a.c0[a.idx:a.n], a.c1[a.idx:a.n], a.c2[a.idx:a.n]
		it.lo += a.n - a.idx
		a.idx = a.n
		switch it.kind {
		case permSPO:
			return c0, c1, c2
		case permPOS:
			return c2, c0, c1
		default: // permOSP
			return c1, c2, c0
		}
	}
	// Delta overlay in range: merge through Next into reusable buffers.
	if it.ms == nil {
		it.ms = make([]rdf.ID, 0, spanChunk)
		it.mp = make([]rdf.ID, 0, spanChunk)
		it.mo = make([]rdf.ID, 0, spanChunk)
	}
	it.ms, it.mp, it.mo = it.ms[:0], it.mp[:0], it.mo[:0]
	for len(it.ms) < spanChunk && it.Next() {
		it.ms = append(it.ms, it.s)
		it.mp = append(it.mp, it.p)
		it.mo = append(it.mo, it.o)
	}
	return it.ms, it.mp, it.mo
}

// Triple returns the current triple's encoded components. Valid only after a
// Next call that returned true.
func (it *Iterator) Triple() (s, p, o rdf.ID) { return it.s, it.p, it.o }

// S returns the current subject ID.
func (it *Iterator) S() rdf.ID { return it.s }

// P returns the current predicate ID.
func (it *Iterator) P() rdf.ID { return it.p }

// O returns the current object ID.
func (it *Iterator) O() rdf.ID { return it.o }

// Remaining returns the exact number of triples Next has yet to yield.
// Tombstones are discounted lazily — only those falling inside the remaining
// base range [lo, hi) cancel anything — so partitioned iterators whose
// tombstone slices over-cover their key range (block-aligned splits) still
// report exact counts.
func (it *Iterator) Remaining() int {
	n := (it.hi - it.lo) + len(it.extra)
	if len(it.dels) == 0 || it.lo >= it.hi {
		// Tombstones only ever cancel base triples; with no base left they
		// cancel nothing.
		return n
	}
	first := it.base.keyAt(it.lo)
	last := it.base.keyAt(it.hi - 1)
	dlo := searchPrefix(it.dels, 0, first, 3, false)
	dhi := searchPrefix(it.dels, dlo, last, 3, true)
	return n - (dhi - dlo)
}

// Split partitions the iterator's remaining triples into at most n
// sub-iterators covering contiguous, disjoint key ranges, such that running
// the sub-iterators in order yields exactly the sequence the receiver would
// have yielded. The receiver is not consumed. Each part shares the immutable
// base run (and so stays a consistent snapshot) and owns a disjoint slice of
// the delta buffers, so the parts may be iterated from different goroutines
// concurrently — every part gets its own decode arena, lazily. Partition
// boundaries are aligned to block starts so no part ever decodes a partial
// block at its edges. This is the data-parallel scan primitive: the engine
// splits a leading pattern range into per-worker sub-ranges.
func (it *Iterator) Split(n int) []Iterator {
	if n <= 1 || it.Remaining() == 0 {
		p := *it
		p.a, p.ms, p.mp, p.mo = nil, nil, nil, nil
		return []Iterator{p}
	}
	if it.lo >= it.hi {
		// Pure-delta range: chunk the sorted inserts evenly. Tombstones only
		// ever cancel base triples, so none can be pending here.
		return splitExtras(it.kind, it.extra, n)
	}
	total := it.hi - it.lo
	parts := make([]Iterator, 0, n)
	prevPos, prevExtra, prevDel := it.lo, 0, 0
	for i := 0; i < n; i++ {
		p := Iterator{kind: it.kind, base: it.base, lo: prevPos}
		if i == n-1 {
			p.hi = it.hi
			p.extra = it.extra[prevExtra:]
			p.dels = it.dels[prevDel:]
		} else {
			// Tentative even cut, rounded down to a block boundary. The cut
			// stays strictly below hi (integer division plus round-down), so
			// keyAt(end) is always valid.
			end := it.base.alignSplit(it.lo + (i+1)*total/n)
			if end < prevPos {
				end = prevPos
			}
			p.hi = end
			// Delta entries below the next part's first key belong here
			// (lower-bound search: first key ≥ the boundary).
			boundary := it.base.keyAt(end)
			extraHi := searchPrefix(it.extra, prevExtra, boundary, 3, false)
			delHi := searchPrefix(it.dels, prevDel, boundary, 3, false)
			p.extra = it.extra[prevExtra:extraHi]
			p.dels = it.dels[prevDel:delHi]
			prevPos, prevExtra, prevDel = end, extraHi, delHi
		}
		parts = append(parts, p)
	}
	return parts
}

// splitExtras chunks a sorted insert-only sequence into n sub-iterators.
func splitExtras(kind permKind, extra []rdf.EncodedTriple, n int) []Iterator {
	parts := make([]Iterator, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(extra)/n, (i+1)*len(extra)/n
		parts = append(parts, Iterator{kind: kind, extra: extra[lo:hi]})
	}
	return parts
}
