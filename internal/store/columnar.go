package store

import (
	"slices"

	"sofos/internal/rdf"
)

// Columnar permutation-index layout.
//
// Each graph keeps three flat, sorted []rdf.EncodedTriple runs — one per
// access permutation (SPO, POS, OSP) — with the triple components stored in
// that permutation's key order, so every bound-component prefix of a triple
// pattern maps to one contiguous run range found by binary search. On top of
// the immutable runs sits a small mutable delta overlay (pending inserts and
// tombstones) that is merged into fresh runs once it exceeds a fraction of
// the base (LSM-style). Readers capture the run slices plus a copy of the
// in-range delta, so scans never hold the graph lock while yielding and
// mutations never invalidate a live Iterator.

// permKind selects one of the three sorted permutations.
type permKind uint8

const (
	permSPO permKind = iota
	permPOS
	permOSP
	numPerms
)

// key reorders an (s, p, o) triple into the permutation's key order.
func (k permKind) key(s, p, o rdf.ID) rdf.EncodedTriple {
	switch k {
	case permSPO:
		return rdf.EncodedTriple{s, p, o}
	case permPOS:
		return rdf.EncodedTriple{p, o, s}
	default: // permOSP
		return rdf.EncodedTriple{o, s, p}
	}
}

// spo recovers (s, p, o) from a key in this permutation's order.
func (k permKind) spo(t rdf.EncodedTriple) (s, p, o rdf.ID) {
	switch k {
	case permSPO:
		return t[0], t[1], t[2]
	case permPOS:
		return t[2], t[0], t[1]
	default: // permOSP
		return t[1], t[2], t[0]
	}
}

// cmpKeys orders permuted keys lexicographically.
func cmpKeys(a, b rdf.EncodedTriple) int {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// cmpPrefix compares only the first depth components.
func cmpPrefix(a, b rdf.EncodedTriple, depth int) int {
	for i := 0; i < depth; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortKeys sorts permuted keys in place.
func sortKeys(ts []rdf.EncodedTriple) {
	slices.SortFunc(ts, cmpKeys)
}

// rangeOf binary-searches the half-open run range whose first depth key
// components equal key's. depth 0 returns the whole run. The searches are
// hand-rolled (rather than sort.Search) because this sits under every
// pattern scan and cardinality estimate the engine issues.
func rangeOf(run []rdf.EncodedTriple, key rdf.EncodedTriple, depth int) (lo, hi int) {
	if depth == 0 {
		return 0, len(run)
	}
	lo = searchPrefix(run, 0, key, depth, false)
	hi = searchPrefix(run, lo, key, depth, true)
	return lo, hi
}

// searchPrefix returns the first index in run[from:] ∪ {len(run)} whose
// depth-prefix is ≥ key's (upper=false) or > key's (upper=true). Depths 1
// and 2 reduce to a lower-bound search against a packed integer target
// (upper bound = lower bound of target+1), keeping the comparison loop
// branch-light.
func searchPrefix(run []rdf.EncodedTriple, from int, key rdf.EncodedTriple, depth int, upper bool) int {
	lo, hi := from, len(run)
	switch depth {
	case 1:
		target := uint64(key[0])
		if upper {
			target++
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if uint64(run[mid][0]) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	case 2:
		target := uint64(key[0])<<32 | uint64(key[1])
		if upper {
			target++
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if uint64(run[mid][0])<<32|uint64(run[mid][1]) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	default:
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			c := cmpPrefix(run[mid], key, depth)
			if c < 0 || (upper && c == 0) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	return lo
}

// choosePerm picks the permutation whose key order turns the pattern's bound
// components into a prefix, so the matching triples form one run range.
func choosePerm(s, p, o rdf.ID) (kind permKind, key rdf.EncodedTriple, depth int) {
	sb, pb, ob := s != rdf.NoID, p != rdf.NoID, o != rdf.NoID
	switch {
	case sb && pb && ob:
		return permSPO, rdf.EncodedTriple{s, p, o}, 3
	case sb && pb:
		return permSPO, rdf.EncodedTriple{s, p, rdf.NoID}, 2
	case pb && ob:
		return permPOS, rdf.EncodedTriple{p, o, rdf.NoID}, 2
	case sb && ob:
		return permOSP, rdf.EncodedTriple{o, s, rdf.NoID}, 2
	case sb:
		return permSPO, rdf.EncodedTriple{s, rdf.NoID, rdf.NoID}, 1
	case pb:
		return permPOS, rdf.EncodedTriple{p, rdf.NoID, rdf.NoID}, 1
	case ob:
		return permOSP, rdf.EncodedTriple{o, rdf.NoID, rdf.NoID}, 1
	default:
		return permSPO, rdf.EncodedTriple{}, 0
	}
}

// matchesPattern reports whether an SPO-ordered triple matches the pattern
// (NoID components are wildcards).
func matchesPattern(t rdf.EncodedTriple, s, p, o rdf.ID) bool {
	return (s == rdf.NoID || t[0] == s) &&
		(p == rdf.NoID || t[1] == p) &&
		(o == rdf.NoID || t[2] == o)
}

// mergeRun three-way merges a sorted base run with sorted inserts and sorted
// tombstones into a freshly allocated run. Inserts are disjoint from base;
// tombstones are a subset of base.
func mergeRun(base, ins, del []rdf.EncodedTriple) []rdf.EncodedTriple {
	out := make([]rdf.EncodedTriple, 0, len(base)+len(ins)-len(del))
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(ins) {
		if i < len(base) && (j >= len(ins) || cmpKeys(base[i], ins[j]) < 0) {
			t := base[i]
			i++
			for k < len(del) && cmpKeys(del[k], t) < 0 {
				k++
			}
			if k < len(del) && del[k] == t {
				k++
				continue
			}
			out = append(out, t)
		} else {
			out = append(out, ins[j])
			j++
		}
	}
	return out
}

// permuteSorted returns a sorted copy of SPO-ordered triples rekeyed into the
// permutation's order.
func permuteSorted(kind permKind, ts []rdf.EncodedTriple) []rdf.EncodedTriple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]rdf.EncodedTriple, len(ts))
	for i, t := range ts {
		out[i] = kind.key(t[0], t[1], t[2])
	}
	sortKeys(out)
	return out
}

// Iterator streams the triples matching one pattern in the permutation's
// sorted order. It is a value type: obtaining one from Graph.Scan performs no
// heap allocation when the graph's delta overlay is empty (the common state
// after a bulk load or Compact), and iteration itself never allocates.
//
// An Iterator is a consistent snapshot: concurrent writes to the graph do not
// affect triples it yields, and it must not be shared between goroutines.
type Iterator struct {
	kind    permKind
	base    []rdf.EncodedTriple // remaining base-run segment
	extra   []rdf.EncodedTriple // remaining in-range delta inserts (sorted)
	dels    []rdf.EncodedTriple // remaining in-range tombstones (sorted)
	s, p, o rdf.ID              // current triple
}

// Next advances to the next matching triple, reporting whether one exists.
func (it *Iterator) Next() bool {
	for {
		var t rdf.EncodedTriple
		switch {
		case len(it.base) == 0 && len(it.extra) == 0:
			return false
		case len(it.extra) == 0 || (len(it.base) > 0 && cmpKeys(it.base[0], it.extra[0]) < 0):
			t = it.base[0]
			it.base = it.base[1:]
			for len(it.dels) > 0 && cmpKeys(it.dels[0], t) < 0 {
				it.dels = it.dels[1:]
			}
			if len(it.dels) > 0 && it.dels[0] == t {
				it.dels = it.dels[1:]
				continue // tombstoned base triple
			}
		default:
			t = it.extra[0]
			it.extra = it.extra[1:]
		}
		it.s, it.p, it.o = it.kind.spo(t)
		return true
	}
}

// Triple returns the current triple's encoded components. Valid only after a
// Next call that returned true.
func (it *Iterator) Triple() (s, p, o rdf.ID) { return it.s, it.p, it.o }

// S returns the current subject ID.
func (it *Iterator) S() rdf.ID { return it.s }

// P returns the current predicate ID.
func (it *Iterator) P() rdf.ID { return it.p }

// O returns the current object ID.
func (it *Iterator) O() rdf.ID { return it.o }

// Remaining returns the exact number of triples Next has yet to yield.
func (it *Iterator) Remaining() int { return len(it.base) + len(it.extra) - len(it.dels) }

// Split partitions the iterator's remaining triples into at most n
// sub-iterators covering contiguous, disjoint key ranges, such that running
// the sub-iterators in order yields exactly the sequence the receiver would
// have yielded. The receiver is not consumed. Each part shares the immutable
// base run (and so stays a consistent snapshot) and owns a disjoint slice of
// the delta buffers, so the parts may be iterated from different goroutines
// concurrently. This is the data-parallel scan primitive: the engine splits a
// leading pattern range into per-worker sub-ranges.
func (it *Iterator) Split(n int) []Iterator {
	if n <= 1 || it.Remaining() == 0 {
		return []Iterator{*it}
	}
	if len(it.base) == 0 {
		// Pure-delta range: chunk the sorted inserts evenly. Tombstones only
		// ever cancel base triples, so none can be pending here.
		return splitExtras(it.kind, it.extra, n)
	}
	parts := make([]Iterator, 0, n)
	prevExtra, prevDel := 0, 0
	for i := 0; i < n; i++ {
		lo, hi := i*len(it.base)/n, (i+1)*len(it.base)/n
		p := Iterator{kind: it.kind, base: it.base[lo:hi]}
		if i == n-1 {
			p.extra = it.extra[prevExtra:]
			p.dels = it.dels[prevDel:]
		} else if hi < len(it.base) {
			// Delta entries below the next chunk's first key belong here
			// (lower-bound search: first key ≥ the boundary).
			boundary := it.base[hi]
			extraHi := searchPrefix(it.extra, prevExtra, boundary, 3, false)
			delHi := searchPrefix(it.dels, prevDel, boundary, 3, false)
			p.extra = it.extra[prevExtra:extraHi]
			p.dels = it.dels[prevDel:delHi]
			prevExtra, prevDel = extraHi, delHi
		}
		parts = append(parts, p)
	}
	return parts
}

// splitExtras chunks a sorted insert-only sequence into n sub-iterators.
func splitExtras(kind permKind, extra []rdf.EncodedTriple, n int) []Iterator {
	parts := make([]Iterator, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(extra)/n, (i+1)*len(extra)/n
		parts = append(parts, Iterator{kind: kind, extra: extra[lo:hi]})
	}
	return parts
}
