//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile is unavailable off unix; LoadFileWith reports the error to the
// caller, which should fall back to -storage=heap.
func mmapFile(f *os.File) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap storage is not supported on this platform")
}

// munmapFile matches the unix cleanup hook; nothing was ever mapped here.
func munmapFile(data []byte) {}

// madviseSequential matches the unix readahead hint; a no-op off unix.
func madviseSequential(data []byte) {}
