package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sofos/internal/rdf"
)

// TestDifferentialFlatVsBlock drives a flat-codec graph and a block-codec
// graph side by side through a randomized insert/delete workload and asserts
// bit-identical results for every read API the engine consumes — Match,
// Estimate, Contains, Scan, NextSpan, Remaining, and Split — including
// states with a live delta overlay and freshly compacted states. The flat
// codec is the differential oracle: any divergence is a block-codec bug.
func TestDifferentialFlatVsBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	flat := NewGraphWithCodec(CodecFlat)
	block := NewGraphWithCodec(CodecBlock)

	// Pre-intern a fixed term universe so both graphs speak the same IDs.
	nS, nP, nO := 40, 6, 50
	for i := 0; i < nS+nP+nO; i++ {
		term := rdf.NewIRI(fmt.Sprintf("http://ex.org/t%d", i))
		if flat.dict.Intern(term) != block.dict.Intern(term) {
			t.Fatal("dictionaries diverged during setup")
		}
	}
	randS := func() rdf.ID { return rdf.ID(1 + rng.Intn(nS)) }
	randP := func() rdf.ID { return rdf.ID(1 + nS + rng.Intn(nP)) }
	randO := func() rdf.ID { return rdf.ID(1 + nS + nP + rng.Intn(nO)) }

	checkPattern := func(step int, s, p, o rdf.ID) {
		t.Helper()
		if got, want := block.Estimate(s, p, o), flat.Estimate(s, p, o); got != want {
			t.Fatalf("step %d: Estimate(%d,%d,%d) = %d (block), %d (flat)", step, s, p, o, got, want)
		}
		bm := collectMatches(block.Match, s, p, o)
		fm := collectMatches(flat.Match, s, p, o)
		if bm != fm {
			t.Fatalf("step %d: Match(%d,%d,%d) diverged:\n block: %s\n flat:  %s", step, s, p, o, bm, fm)
		}
		// Scan order must be identical, not just set-equal.
		bit, fit := block.Scan(s, p, o), flat.Scan(s, p, o)
		if bit.Remaining() != fit.Remaining() {
			t.Fatalf("step %d: Remaining %d (block) != %d (flat)", step, bit.Remaining(), fit.Remaining())
		}
		for {
			bn, fn := bit.Next(), fit.Next()
			if bn != fn {
				t.Fatalf("step %d: Scan(%d,%d,%d) lengths diverged", step, s, p, o)
			}
			if !bn {
				break
			}
			bs, bp, bo := bit.Triple()
			fs, fp, fo := fit.Triple()
			if bs != fs || bp != fp || bo != fo {
				t.Fatalf("step %d: Scan yielded (%d,%d,%d) block vs (%d,%d,%d) flat",
					step, bs, bp, bo, fs, fp, fo)
			}
		}
		// NextSpan must flatten to the same sequence as Next.
		bspan := collectSpans(block.Scan(s, p, o))
		fspan := collectSpans(flat.Scan(s, p, o))
		if renderTriples(bspan) != renderTriples(fspan) {
			t.Fatalf("step %d: NextSpan diverged for (%d,%d,%d)", step, s, p, o)
		}
		// Split: concatenated parts must reproduce the serial sequence for
		// both codecs, and part Remaining sums must be exact.
		for _, n := range []int{2, 3, 7} {
			bit, fit := block.Scan(s, p, o), flat.Scan(s, p, o)
			bparts, fparts := bit.Split(n), fit.Split(n)
			var bcat, fcat []rdf.EncodedTriple
			bsum, fsum := 0, 0
			for i := range bparts {
				bsum += bparts[i].Remaining()
				bcat = append(bcat, collect(bparts[i])...)
			}
			for i := range fparts {
				fsum += fparts[i].Remaining()
				fcat = append(fcat, collect(fparts[i])...)
			}
			serial := collect(flat.Scan(s, p, o))
			if fmt.Sprint(bcat) != fmt.Sprint(serial) || fmt.Sprint(fcat) != fmt.Sprint(serial) {
				t.Fatalf("step %d: Split(%d) concatenation diverged for (%d,%d,%d)", step, n, s, p, o)
			}
			if bsum != len(serial) || fsum != len(serial) {
				t.Fatalf("step %d: Split(%d) Remaining sums %d (block) / %d (flat), want %d",
					step, n, bsum, fsum, len(serial))
			}
		}
	}

	check := func(step int) {
		t.Helper()
		if flat.Len() != block.Len() {
			t.Fatalf("step %d: Len %d (flat) != %d (block)", step, flat.Len(), block.Len())
		}
		if got, want := block.EstimatedBytes(), flat.EstimatedBytes(); got != want {
			t.Fatalf("step %d: EstimatedBytes must be codec-independent: %d vs %d", step, got, want)
		}
		for trial := 0; trial < 25; trial++ {
			var s, p, o rdf.ID
			if rng.Intn(2) == 0 {
				s = randS()
			}
			if rng.Intn(2) == 0 {
				p = randP()
			}
			if rng.Intn(2) == 0 {
				o = randO()
			}
			checkPattern(step, s, p, o)
		}
		checkPattern(step, rdf.NoID, rdf.NoID, rdf.NoID)
	}

	// Bulk-load a shared base so compacted runs span many blocks' worth of
	// keys, then churn with interleaved adds/removes.
	var batch []rdf.EncodedTriple
	for i := 0; i < 6000; i++ {
		batch = append(batch, rdf.EncodedTriple{randS(), randP(), randO()})
	}
	if flat.LoadEncoded(batch) != block.LoadEncoded(batch) {
		t.Fatal("bulk load counts diverged")
	}
	check(0)
	for step := 1; step <= 2400; step++ {
		s, p, o := randS(), randP(), randO()
		if rng.Intn(3) == 0 {
			if flat.removeEncoded(s, p, o) != block.removeEncoded(s, p, o) {
				t.Fatalf("step %d: Remove(%d,%d,%d) return values diverged", step, s, p, o)
			}
		} else {
			if flat.AddEncoded(s, p, o) != block.AddEncoded(s, p, o) {
				t.Fatalf("step %d: Add(%d,%d,%d) return values diverged", step, s, p, o)
			}
		}
		if rng.Intn(2) == 0 {
			k := rdf.EncodedTriple{randS(), randP(), randO()}
			q := rdf.Triple{S: flat.dict.Term(k[0]), P: flat.dict.Term(k[1]), O: flat.dict.Term(k[2])}
			if flat.Contains(q) != block.Contains(q) {
				t.Fatalf("step %d: Contains(%v) diverged", step, k)
			}
		}
		if step%400 == 399 {
			check(step)
		}
	}
	flat.Compact()
	block.Compact()
	check(2401)
}

// collectSpans flattens NextSpan batches into SPO triples.
func collectSpans(it Iterator) []rdf.EncodedTriple {
	var out []rdf.EncodedTriple
	for {
		s, p, o := it.NextSpan()
		if len(s) == 0 {
			return out
		}
		for i := range s {
			out = append(out, rdf.EncodedTriple{s[i], p[i], o[i]})
		}
	}
}

// TestSnapshotCrossCodec proves the version-gated load matrix: a v1 (flat)
// snapshot loads under the block codec, a v2 (block) snapshot loads under
// the flat codec, and both round-trips preserve contents exactly — the
// durability layer's cross-version recovery path.
func TestSnapshotCrossCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	build := func(c Codec) *Graph {
		g := NewGraphWithCodec(c)
		for i := 0; i < 3000; i++ {
			g.MustAdd(tr(fmt.Sprintf("s%d", rng.Intn(300)), fmt.Sprintf("p%d", rng.Intn(8)),
				fmt.Sprintf("o%d", rng.Intn(400))))
		}
		// Leave a live overlay so v2 snapshots exercise the overlay sections.
		for i := 0; i < 40; i++ {
			g.Remove(tr(fmt.Sprintf("s%d", rng.Intn(300)), fmt.Sprintf("p%d", rng.Intn(8)),
				fmt.Sprintf("o%d", rng.Intn(400))))
			g.MustAdd(tr(fmt.Sprintf("x%d", i), "pnew", "onew"))
		}
		return g
	}
	for _, src := range []Codec{CodecFlat, CodecBlock} {
		g := build(src)
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("save %v: %v", src, err)
		}
		wantMagic := snapshotMagic
		if src == CodecBlock {
			wantMagic = snapshotMagicV3
		}
		if got := string(buf.Bytes()[:8]); got != wantMagic {
			t.Fatalf("%v snapshot wrote magic %q, want %q", src, got, wantMagic)
		}
		want := g.SortedTriples()
		for _, dst := range []Codec{CodecFlat, CodecBlock} {
			loaded, err := LoadWithCodec(bytes.NewReader(buf.Bytes()), dst)
			if err != nil {
				t.Fatalf("load %v snapshot under %v: %v", src, dst, err)
			}
			if loaded.CodecName() != dst.String() {
				t.Fatalf("loaded graph reports codec %q, want %q", loaded.CodecName(), dst)
			}
			if loaded.Len() != g.Len() {
				t.Fatalf("load %v→%v: Len %d, want %d", src, dst, loaded.Len(), g.Len())
			}
			got := loaded.SortedTriples()
			if len(got) != len(want) {
				t.Fatalf("load %v→%v: %d triples, want %d", src, dst, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("load %v→%v: triple %d is %v, want %v", src, dst, i, got[i], want[i])
				}
			}
			// Statistics must come back exact, not just contents.
			if loaded.DistinctNodes() != g.DistinctNodes() ||
				loaded.DistinctPredicates() != g.DistinctPredicates() {
				t.Fatalf("load %v→%v: distinct-component statistics diverged", src, dst)
			}
		}
	}
}

// TestMemStats checks the per-index accounting and that block compression
// actually shrinks resident bytes on a compacted graph.
func TestMemStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var batch []rdf.EncodedTriple
	flat := NewGraphWithCodec(CodecFlat)
	block := NewGraphWithCodec(CodecBlock)
	for i := 0; i < 20000; i++ {
		batch = append(batch, rdf.EncodedTriple{
			rdf.ID(1 + rng.Intn(2000)), rdf.ID(1 + rng.Intn(10)), rdf.ID(1 + rng.Intn(4000))})
	}
	flat.LoadEncoded(batch)
	block.LoadEncoded(batch)
	fs, bs := flat.MemStats(), block.MemStats()
	if fs.Codec != "flat" || bs.Codec != "block" {
		t.Fatalf("codec names: %q / %q", fs.Codec, bs.Codec)
	}
	if fs.Triples != flat.Len() || bs.Triples != block.Len() {
		t.Fatal("MemStats triple counts diverge from Len")
	}
	if fs.SPO.Keys != fs.Triples || bs.SPO.Keys != bs.Triples {
		t.Fatal("SPO key counts diverge from triple count")
	}
	if fs.SPO.Blocks != 0 {
		t.Fatalf("flat run reports %d blocks", fs.SPO.Blocks)
	}
	if want := (bs.SPO.Keys + blockSize - 1) / blockSize; bs.SPO.Blocks != want {
		t.Fatalf("block run reports %d blocks, want %d", bs.SPO.Blocks, want)
	}
	if bs.IndexBytes >= fs.IndexBytes {
		t.Fatalf("block index bytes %d not smaller than flat %d", bs.IndexBytes, fs.IndexBytes)
	}
	// The headline claim: ≥2x smaller runs under the block codec for
	// realistic ID distributions.
	if 2*bs.SPO.Bytes > fs.SPO.Bytes {
		t.Fatalf("block SPO run %d B vs flat %d B: less than 2x reduction", bs.SPO.Bytes, fs.SPO.Bytes)
	}
}
