package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sofos/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func tr(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

func TestGraphAddContainsLen(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatalf("empty Len = %d", g.Len())
	}
	added, err := g.Add(tr("s", "p", "o"))
	if err != nil || !added {
		t.Fatalf("Add = %v, %v", added, err)
	}
	if !g.Contains(tr("s", "p", "o")) {
		t.Error("Contains after Add = false")
	}
	added, err = g.Add(tr("s", "p", "o"))
	if err != nil || added {
		t.Errorf("duplicate Add = %v, %v; want false, nil", added, err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if g.Contains(tr("s", "p", "x")) {
		t.Error("Contains of absent triple = true")
	}
}

func TestGraphAddInvalid(t *testing.T) {
	g := NewGraph()
	_, err := g.Add(rdf.Triple{S: rdf.NewLiteral("s"), P: iri("p"), O: iri("o")})
	if err == nil {
		t.Error("literal subject accepted")
	}
	_, err = g.Add(rdf.Triple{S: iri("s"), P: rdf.NewBlank("p"), O: iri("o")})
	if err == nil {
		t.Error("blank predicate accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on invalid triple")
		}
	}()
	g.MustAdd(rdf.Triple{S: rdf.NewLiteral("s"), P: iri("p"), O: iri("o")})
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.MustAdd(tr("s", "p", "o"))
	g.MustAdd(tr("s", "p", "o2"))
	if !g.Remove(tr("s", "p", "o")) {
		t.Fatal("Remove of present triple = false")
	}
	if g.Remove(tr("s", "p", "o")) {
		t.Error("second Remove = true")
	}
	if g.Remove(tr("never", "seen", "terms")) {
		t.Error("Remove of unknown terms = true")
	}
	if g.Len() != 1 || g.Contains(tr("s", "p", "o")) || !g.Contains(tr("s", "p", "o2")) {
		t.Error("graph state wrong after Remove")
	}
}

// matchAll collects every decoded triple matching a pattern where empty
// strings are wildcards.
func matchAll(g *Graph, s, p, o rdf.Term) []rdf.Triple {
	lookup := func(t rdf.Term) rdf.ID {
		if t.Value == "" {
			return rdf.NoID
		}
		id, ok := g.Dict().Lookup(t)
		if !ok {
			return rdf.ID(1 << 30) // unknown term: impossible ID
		}
		return id
	}
	var out []rdf.Triple
	sid, pid, oid := lookup(s), lookup(p), lookup(o)
	if sid == 1<<30 || pid == 1<<30 || oid == 1<<30 {
		return nil
	}
	g.Match(sid, pid, oid, func(a, b, c rdf.ID) bool {
		out = append(out, rdf.Triple{S: g.Dict().Term(a), P: g.Dict().Term(b), O: g.Dict().Term(c)})
		return true
	})
	return out
}

func TestGraphMatchAllShapes(t *testing.T) {
	g := NewGraph()
	triples := []rdf.Triple{
		tr("s1", "p1", "o1"), tr("s1", "p1", "o2"), tr("s1", "p2", "o1"),
		tr("s2", "p1", "o1"), tr("s2", "p2", "o3"),
	}
	for _, x := range triples {
		g.MustAdd(x)
	}
	var none rdf.Term
	cases := []struct {
		name    string
		s, p, o rdf.Term
		want    int
	}{
		{"spo hit", iri("s1"), iri("p1"), iri("o1"), 1},
		{"spo miss", iri("s1"), iri("p2"), iri("o3"), 0},
		{"sp", iri("s1"), iri("p1"), none, 2},
		{"so", iri("s1"), none, iri("o1"), 2},
		{"po", none, iri("p1"), iri("o1"), 2},
		{"s", iri("s1"), none, none, 3},
		{"p", none, iri("p1"), none, 3},
		{"o", none, none, iri("o1"), 3},
		{"all", none, none, none, 5},
		{"unknown term", iri("zzz"), none, none, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := matchAll(g, tc.s, tc.p, tc.o)
			if len(got) != tc.want {
				t.Errorf("match returned %d triples, want %d: %v", len(got), tc.want, got)
			}
			for _, tri := range got {
				if !g.Contains(tri) {
					t.Errorf("match produced non-member triple %s", tri)
				}
			}
		})
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.MustAdd(tr("s", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	g.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(_, _, _ rdf.ID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestGraphEstimate(t *testing.T) {
	g := NewGraph()
	g.MustAdd(tr("s1", "p1", "o1"))
	g.MustAdd(tr("s1", "p1", "o2"))
	g.MustAdd(tr("s2", "p1", "o1"))
	g.MustAdd(tr("s2", "p2", "o1"))
	d := g.Dict()
	id := func(s string) rdf.ID {
		v, ok := d.Lookup(iri(s))
		if !ok {
			t.Fatalf("term %s not interned", s)
		}
		return v
	}
	cases := []struct {
		name    string
		s, p, o rdf.ID
		want    int
	}{
		{"exact hit", id("s1"), id("p1"), id("o1"), 1},
		{"exact miss", id("s1"), id("p2"), id("o1"), 0},
		{"sp", id("s1"), id("p1"), rdf.NoID, 2},
		{"po", rdf.NoID, id("p1"), id("o1"), 2},
		{"so", id("s1"), rdf.NoID, id("o1"), 1},
		{"s only", id("s1"), rdf.NoID, rdf.NoID, 2},
		{"p only", rdf.NoID, id("p1"), rdf.NoID, 3},
		{"o only", rdf.NoID, rdf.NoID, id("o1"), 3},
		{"all", rdf.NoID, rdf.NoID, rdf.NoID, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.Estimate(tc.s, tc.p, tc.o); got != tc.want {
				t.Errorf("Estimate = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestGraphEstimateMatchesMatchCount(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 500)
	d := g.Dict()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		var s, p, o rdf.ID
		if rng.Intn(2) == 0 {
			s = rdf.ID(rng.Intn(d.Len()) + 1)
		}
		if rng.Intn(2) == 0 {
			p = rdf.ID(rng.Intn(d.Len()) + 1)
		}
		if rng.Intn(2) == 0 {
			o = rdf.ID(rng.Intn(d.Len()) + 1)
		}
		n := 0
		g.Match(s, p, o, func(_, _, _ rdf.ID) bool { n++; return true })
		if est := g.Estimate(s, p, o); est != n {
			t.Fatalf("Estimate(%d,%d,%d) = %d but Match found %d", s, p, o, est, n)
		}
	}
}

// randomGraph builds a graph of about n random triples over a small term
// universe so patterns hit often.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("s%d", rng.Intn(20))
		p := fmt.Sprintf("p%d", rng.Intn(6))
		o := fmt.Sprintf("o%d", rng.Intn(30))
		g.MustAdd(tr(s, p, o))
	}
	return g
}

func TestGraphClone(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(5)), 200)
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len %d != %d", c.Len(), g.Len())
	}
	for _, x := range g.Triples() {
		if !c.Contains(x) {
			t.Fatalf("clone missing %s", x)
		}
	}
	// Clone is independent in both directions.
	c.MustAdd(tr("new", "p", "o"))
	if g.Contains(tr("new", "p", "o")) {
		t.Error("clone write leaked into original")
	}
	g.MustAdd(tr("orig", "p", "o"))
	if c.Contains(tr("orig", "p", "o")) {
		t.Error("original write leaked into clone")
	}
}

func TestGraphTriplesAndSorted(t *testing.T) {
	g := NewGraph()
	g.MustAdd(tr("b", "p", "o"))
	g.MustAdd(tr("a", "p", "o"))
	ts := g.SortedTriples()
	if len(ts) != 2 || ts[0].S.Value != "http://ex.org/a" {
		t.Errorf("SortedTriples = %v", ts)
	}
}

func TestDistinctNodesAndPredicates(t *testing.T) {
	g := NewGraph()
	g.MustAdd(tr("s1", "p1", "o1"))
	g.MustAdd(tr("s1", "p2", "o2"))
	g.MustAdd(rdf.Triple{S: iri("s1"), P: iri("p1"), O: rdf.NewInteger(5)})
	// Nodes: s1, o1, o2, "5" -> 4. Predicates p1, p2 are NOT nodes here.
	if got := g.DistinctNodes(); got != 4 {
		t.Errorf("DistinctNodes = %d, want 4", got)
	}
	if got := g.DistinctPredicates(); got != 2 {
		t.Errorf("DistinctPredicates = %d, want 2", got)
	}
	// A predicate also used as subject/object counts as a node.
	g.MustAdd(rdf.Triple{S: iri("p1"), P: iri("p2"), O: rdf.NewLiteral("meta")})
	if got := g.DistinctNodes(); got != 6 {
		t.Errorf("DistinctNodes after meta-triple = %d, want 6", got)
	}
}

func TestLoadTriples(t *testing.T) {
	g := NewGraph()
	n, err := g.LoadTriples([]rdf.Triple{tr("a", "p", "b"), tr("a", "p", "b"), tr("c", "p", "d")})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || g.Len() != 2 {
		t.Errorf("LoadTriples added %d (len %d), want 2", n, g.Len())
	}
	_, err = g.LoadTriples([]rdf.Triple{{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("y")}})
	if err == nil {
		t.Error("LoadTriples accepted invalid triple")
	}
}

// TestAddRemoveInvariantProperty: after any sequence of adds and removes, the
// graph's Len, Contains, and all three indexes agree with a reference
// map-based implementation.
func TestAddRemoveInvariantProperty(t *testing.T) {
	type op struct {
		Add     bool
		S, P, O uint8
	}
	prop := func(ops []op) bool {
		g := NewGraph()
		ref := make(map[rdf.Triple]bool)
		for _, o := range ops {
			x := tr(fmt.Sprintf("s%d", o.S%8), fmt.Sprintf("p%d", o.P%4), fmt.Sprintf("o%d", o.O%8))
			if o.Add {
				added, err := g.Add(x)
				if err != nil {
					return false
				}
				if added == ref[x] {
					return false // added must be true iff not already present
				}
				ref[x] = true
			} else {
				removed := g.Remove(x)
				if removed != ref[x] {
					return false
				}
				delete(ref, x)
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !g.Contains(x) {
				return false
			}
		}
		// Full scan must produce exactly ref.
		got := g.Triples()
		if len(got) != len(ref) {
			return false
		}
		for _, x := range got {
			if !ref[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotStats(t *testing.T) {
	g := NewGraph()
	g.MustAdd(tr("s1", "p1", "o1"))
	g.MustAdd(tr("s2", "p1", "o1"))
	g.MustAdd(tr("s1", "p2", "o2"))
	st := g.Snapshot()
	if st.Triples != 3 {
		t.Errorf("Triples = %d", st.Triples)
	}
	if st.DistinctSubjects != 2 || st.DistinctPredicates != 2 || st.DistinctObjects != 2 {
		t.Errorf("distinct S/P/O = %d/%d/%d", st.DistinctSubjects, st.DistinctPredicates, st.DistinctObjects)
	}
	if st.DistinctNodes != 4 {
		t.Errorf("DistinctNodes = %d, want 4", st.DistinctNodes)
	}
	if len(st.Predicates) != 2 {
		t.Fatalf("Predicates = %v", st.Predicates)
	}
	// Sorted by count descending: p1 (2) before p2 (1).
	if st.Predicates[0].Predicate.Value != "http://ex.org/p1" || st.Predicates[0].Count != 2 {
		t.Errorf("top predicate = %+v", st.Predicates[0])
	}
	if st.Predicates[0].DistinctSubjects != 2 || st.Predicates[0].DistinctObjects != 1 {
		t.Errorf("p1 distinct S/O = %d/%d", st.Predicates[0].DistinctSubjects, st.Predicates[0].DistinctObjects)
	}
	if st.PredicateCount("http://ex.org/p2") != 1 {
		t.Errorf("PredicateCount(p2) = %d", st.PredicateCount("http://ex.org/p2"))
	}
	if st.PredicateCount("http://ex.org/absent") != 0 {
		t.Error("PredicateCount of absent predicate != 0")
	}
}

func TestEstimatedBytesGrowsWithData(t *testing.T) {
	g := NewGraph()
	empty := g.EstimatedBytes()
	for i := 0; i < 100; i++ {
		g.MustAdd(tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	full := g.EstimatedBytes()
	if full <= empty {
		t.Errorf("EstimatedBytes did not grow: %d -> %d", empty, full)
	}
}

func TestConcurrentReaders(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(9)), 300)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				g.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(_, _, _ rdf.ID) bool { return true })
				g.Snapshot()
				g.Len()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		g.MustAdd(tr(fmt.Sprintf("cs%d", i), "cp", "co"))
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
