package store

import (
	"fmt"
	"sync/atomic"

	"sofos/internal/rdf"
)

// Codec selects the storage representation for a graph's immutable sorted
// runs. The block codec is the production default (delta/varint block
// compression, see block.go); the flat codec is the original fixed-width
// layout, kept selectable as the differential-test oracle and for
// flat-vs-block benchmarking.
type Codec uint8

const (
	// CodecBlock stores runs as fixed-size compressed blocks.
	CodecBlock Codec = iota
	// CodecFlat stores runs as plain []rdf.EncodedTriple slices.
	CodecFlat
)

// String returns the codec's flag-compatible name.
func (c Codec) String() string {
	if c == CodecFlat {
		return "flat"
	}
	return "block"
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "block":
		return CodecBlock, nil
	case "flat":
		return CodecFlat, nil
	default:
		return CodecBlock, fmt.Errorf("store: unknown codec %q (want flat or block)", s)
	}
}

func (c Codec) runCodec() runCodec {
	if c == CodecFlat {
		return flatCodec{}
	}
	return blockCodec{}
}

// defaultCodec is the process-wide codec for graphs created without an
// explicit choice (NewGraph, BuildFrom, Load). Binaries set it once at
// startup from the -codec flag; it is atomic so tests can flip it safely
// around parallel subtests.
var defaultCodec atomic.Uint32 // holds a Codec

// SetDefaultCodec sets the process-wide default run codec.
func SetDefaultCodec(c Codec) { defaultCodec.Store(uint32(c)) }

// DefaultCodec returns the process-wide default run codec.
func DefaultCodec() Codec { return Codec(defaultCodec.Load()) }

// NewGraphWithCodec returns an empty graph whose runs use the given codec.
func NewGraphWithCodec(c Codec) *Graph {
	g := NewGraph()
	g.codec = c.runCodec()
	return g
}

// BuildFromWithCodec is BuildFrom with an explicit run codec.
func BuildFromWithCodec(c Codec, ts []rdf.Triple) (*Graph, error) {
	g := NewGraphWithCodec(c)
	if _, err := g.LoadTriples(ts); err != nil {
		return nil, err
	}
	return g, nil
}

// CodecName returns the name of the codec this graph's runs use.
func (g *Graph) CodecName() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.codec.name()
}
