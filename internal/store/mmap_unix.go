//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps the open file read-only in its entirety. The mapping is
// shared (file-backed, never written), so every process mapping the same
// snapshot shares one copy in the page cache.
func mmapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat snapshot: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size < 0 || size > math.MaxInt {
		return nil, fmt.Errorf("store: snapshot size %d not mappable", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap snapshot: %w", err)
	}
	return data, nil
}

// madviseSequential hints that the mapping will be read front to back, so
// the kernel runs readahead ahead of a full scan. The address is the mmap
// base (page-aligned by construction); failure is ignored — the hint is an
// optimization, never a correctness requirement.
func madviseSequential(data []byte) {
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}

// munmapFile releases a mapping from mmapFile. Only called when a load fails
// validation — a successfully loaded graph keeps its mapping for the process
// lifetime (live iterators may reference it indefinitely).
func munmapFile(data []byte) {
	if len(data) > 0 {
		_ = syscall.Munmap(data)
	}
}
