package store

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"sofos/internal/rdf"
)

// sortedRandomKeys builds a strictly increasing key sequence with realistic
// clustering (small leading-column deltas, scattered trailing columns).
func sortedRandomKeys(rng *rand.Rand, n int) []rdf.EncodedTriple {
	set := make(map[rdf.EncodedTriple]struct{}, n)
	for len(set) < n {
		set[rdf.EncodedTriple{
			rdf.ID(1 + rng.Intn(n/3+1)),
			rdf.ID(1 + rng.Intn(16)),
			rdf.ID(1 + rng.Intn(n)),
		}] = struct{}{}
	}
	keys := make([]rdf.EncodedTriple, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// TestBlockRunAgainstFlat checks every run-interface primitive of the block
// encoding against the flat oracle over the same keys: search at every
// depth/bound, contains for hits and misses, keyAt at every position, fill
// windows, and alignSplit monotonicity.
func TestBlockRunAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 2, blockSize - 1, blockSize, blockSize + 1, 3*blockSize + 17} {
		keys := sortedRandomKeys(rng, n)
		br := buildRun(blockCodec{}, keys)
		fr := buildRun(flatCodec{}, keys)
		if br.size() != n || fr.size() != n {
			t.Fatalf("n=%d: sizes %d/%d", n, br.size(), fr.size())
		}
		// Fence overhead dominates below a block; compression only pays off
		// once runs actually span blocks.
		if n >= blockSize && br.memBytes() >= fr.memBytes() {
			t.Errorf("n=%d: block run %d B not smaller than flat %d B", n, br.memBytes(), fr.memBytes())
		}
		for pos := 0; pos < n; pos++ {
			if br.keyAt(pos) != fr.keyAt(pos) {
				t.Fatalf("n=%d: keyAt(%d) = %v, want %v", n, pos, br.keyAt(pos), fr.keyAt(pos))
			}
		}
		for trial := 0; trial < 300; trial++ {
			var probe rdf.EncodedTriple
			if n > 0 && trial%2 == 0 {
				probe = keys[rng.Intn(n)] // existing key
			} else {
				probe = rdf.EncodedTriple{
					rdf.ID(rng.Intn(n + 2)), rdf.ID(rng.Intn(20)), rdf.ID(rng.Intn(n + 2))}
			}
			if got, want := br.contains(probe), fr.contains(probe); got != want {
				t.Fatalf("n=%d: contains(%v) = %v, want %v", n, probe, got, want)
			}
			for depth := 0; depth <= 3; depth++ {
				for _, upper := range []bool{false, true} {
					from := 0
					if n > 0 && rng.Intn(3) == 0 {
						from = rng.Intn(n)
					}
					got := br.search(from, probe, depth, upper)
					want := fr.search(from, probe, depth, upper)
					if got != want {
						t.Fatalf("n=%d: search(%d, %v, %d, %v) = %d, want %d",
							n, from, probe, depth, upper, got, want)
					}
				}
				wantLo := fr.search(0, probe, depth, false)
				wantHi := fr.search(wantLo, probe, depth, true)
				gotLo, gotHi := br.(*blockRun).searchRange(probe, depth)
				if gotLo != wantLo || gotHi != wantHi {
					t.Fatalf("n=%d: searchRange(%v, %d) = [%d,%d), want [%d,%d)",
						n, probe, depth, gotLo, gotHi, wantLo, wantHi)
				}
			}
		}
		// fill must reproduce the key sequence from any start position.
		var a spanArena
		for lo := 0; lo < n; lo += 1 + rng.Intn(blockSize/2+1) {
			br.fill(&a, lo, n)
			if a.key(a.idx) != keys[lo] {
				t.Fatalf("n=%d: fill(%d) decodes %v at idx, want %v", n, lo, a.key(a.idx), keys[lo])
			}
			for i := a.idx; i < a.n; i++ {
				if a.key(i) != keys[lo+i-a.idx] {
					t.Fatalf("n=%d: fill(%d) wrong at offset %d", n, lo, i-a.idx)
				}
			}
		}
		for pos := 0; pos <= n; pos++ {
			ap := br.alignSplit(pos)
			if ap > pos || ap%blockSize != 0 && ap != n {
				t.Fatalf("n=%d: alignSplit(%d) = %d", n, pos, ap)
			}
		}
	}
}

// blockSnapshotBytes serializes a block-codec graph of n base triples with a
// live overlay, so the byte stream exercises every v2 section. Sizes below
// blockSize keep the exhaustive sweeps fast; multi-block layouts are covered
// by the strided pass and the cross-codec round-trip tests.
func blockSnapshotBytes(t testing.TB, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g := NewGraphWithCodec(CodecBlock)
	keys := sortedRandomKeys(rng, n)
	for i := range keys {
		g.MustAdd(tr(
			"s"+itoa(int(keys[i][0])), "p"+itoa(int(keys[i][1])), "o"+itoa(int(keys[i][2]))))
	}
	for i := 0; i < len(keys)/5; i++ {
		g.Remove(tr("s"+itoa(int(keys[i*3][0])), "p"+itoa(int(keys[i*3][1])), "o"+itoa(int(keys[i*3][2]))))
		g.MustAdd(tr("extra"+itoa(i), "pextra", "oextra"))
	}
	var buf bytes.Buffer
	if err := g.saveV2(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Bytes()[:8]) != snapshotMagicV2 {
		t.Fatalf("expected a v2 snapshot, got magic %q", buf.Bytes()[:8])
	}
	return buf.Bytes()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestBlockLoadTruncationEveryPrefix feeds LoadWithCodec every prefix of a
// valid v2 snapshot under both target codecs: all but the full input must
// return an error — never panic, never a silently short graph.
func TestBlockLoadTruncationEveryPrefix(t *testing.T) {
	full := blockSnapshotBytes(t, 120)
	for _, codec := range []Codec{CodecBlock, CodecFlat} {
		for cut := 0; cut < len(full); cut++ {
			if _, err := LoadWithCodec(bytes.NewReader(full[:cut]), codec); err == nil {
				t.Fatalf("codec %v: truncation at %d/%d loaded successfully", codec, cut, len(full))
			}
		}
		if _, err := LoadWithCodec(bytes.NewReader(full), codec); err != nil {
			t.Fatalf("codec %v: full snapshot failed: %v", codec, err)
		}
	}
}

// TestBlockLoadTruncationMultiBlock repeats the truncation check at a stride
// over a snapshot whose runs span multiple blocks, so cuts land inside every
// structural region of a multi-block run section too.
func TestBlockLoadTruncationMultiBlock(t *testing.T) {
	full := blockSnapshotBytes(t, 3*blockSize/2)
	for cut := 0; cut < len(full); cut += 23 {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", cut, len(full))
		}
	}
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full snapshot failed: %v", err)
	}
}

// TestBlockLoadBitFlips flips bits across a v2 snapshot: every outcome must
// be an error or a fully consistent graph, never a panic and never decoded
// garbage — scans, Len, and the per-component statistics must all agree.
func TestBlockLoadBitFlips(t *testing.T) {
	full := blockSnapshotBytes(t, 120)
	step := 1
	if testing.Short() {
		step = 7
	}
	for off := 0; off < len(full); off += step {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), full...)
			mut[off] ^= bit
			g, err := Load(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			n := 0
			it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
			for it.Next() {
				n++
			}
			if n != g.Len() {
				t.Fatalf("flip at %d/%#x: Len()=%d but scan found %d", off, bit, g.Len(), n)
			}
		}
	}
}

// FuzzBlockDecode hammers the raw in-block decoder with arbitrary payload
// bytes and fence metadata: every outcome must be a clean error or a decode
// whose keys are in range — never a panic, never an out-of-bounds read.
func FuzzBlockDecode(f *testing.F) {
	keys := sortedRandomKeys(rand.New(rand.NewSource(5)), 600)
	valid := appendBlockPayload(nil, keys)
	f.Add(uint16(len(keys)), uint32(keys[0][0]), uint32(keys[0][1]), uint32(keys[0][2]), valid)
	f.Add(uint16(1), uint32(1), uint32(1), uint32(1), []byte{})
	f.Add(uint16(3), uint32(7), uint32(9), uint32(2), []byte{0x01, 0x01, 0x02, 0x02, 0x03, 0x03})
	f.Fuzz(func(t *testing.T, count uint16, min0, min1, min2 uint32, payload []byte) {
		if count == 0 {
			return
		}
		r := &blockRun{
			meta: []blockMeta{{
				off:   0,
				plen:  uint32(len(payload)),
				count: uint32(count),
				min:   rdf.EncodedTriple{rdf.ID(min0), rdf.ID(min1), rdf.ID(min2)},
				max:   rdf.EncodedTriple{^rdf.ID(0), ^rdf.ID(0), ^rdf.ID(0)},
			}},
			data: payload,
			n:    int(count),
		}
		var a spanArena
		a.grow(int(count))
		if err := r.decodeBlock(0, a.c0, a.c1, a.c2); err != nil {
			return
		}
		// A successful decode must yield exactly count keys starting at min.
		if a.key(0) != r.meta[0].min {
			t.Fatal("decode did not start at the fence min key")
		}
	})
}

// FuzzSnapshotLoadV2 mirrors FuzzSnapshotLoad for the v2 block format: every
// mutated input either loads into a consistent graph (under both target
// codecs) or errors — no panics, no runaway allocations.
func FuzzSnapshotLoadV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagicV2))
	f.Add(blockSnapshotBytes(f, 120))
	var empty bytes.Buffer
	if err := NewGraphWithCodec(CodecBlock).saveV2(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, codec := range []Codec{CodecBlock, CodecFlat} {
			g, err := LoadWithCodec(bytes.NewReader(data), codec)
			if err != nil {
				continue
			}
			n := 0
			it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
			for it.Next() {
				n++
			}
			if n != g.Len() {
				t.Fatalf("codec %v: loaded graph inconsistent: Len()=%d, scan=%d", codec, g.Len(), n)
			}
		}
	})
}

// TestLoadHugeBlockCounts feeds v2 headers whose counts demand absurd
// allocations; they must fail on the reads, not by exhausting memory.
func TestLoadHugeBlockCounts(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	uv := func(b *bytes.Buffer, v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
	header := func() *bytes.Buffer {
		var b bytes.Buffer
		b.WriteString(snapshotMagicV2)
		b.WriteByte(1)
		uv(&b, blockSize)
		uv(&b, 1)                        // one term
		b.Write([]byte{0, 1, 'x', 0, 0}) // IRI "x"
		uv(&b, 0)                        // no overlay adds
		uv(&b, 0)                        // no overlay dels
		return &b
	}
	// Huge key count for the SPO run.
	b := header()
	uv(b, 1<<50)
	uv(b, 1)
	if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("huge key count accepted")
	}
	// Huge per-block count.
	b = header()
	uv(b, 1<<20)
	uv(b, 1)
	uv(b, 1<<32) // block count field
	if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("huge block count accepted")
	}
	// Huge payload length.
	b = header()
	uv(b, 2)
	uv(b, 1)
	uv(b, 2) // two keys in the block
	uv(b, 1) // min
	uv(b, 1)
	uv(b, 1)
	uv(b, 2) // max
	uv(b, 2)
	uv(b, 2)
	uv(b, 1<<40) // payload length
	if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("huge payload length accepted")
	}
}

// TestIteratorRemainingLazyDeletions is the regression test for the eager
// Remaining accounting: tombstones outside the iterator's base range must
// not be subtracted. The old formula reported base+extra-len(dels)
// unconditionally, under-counting whenever a partition's tombstone slice
// over-covers its key range.
func TestIteratorRemainingLazyDeletions(t *testing.T) {
	keys := sortedRandomKeys(rand.New(rand.NewSource(17)), 4*blockSize)
	for _, codec := range []runCodec{flatCodec{}, blockCodec{}} {
		r := buildRun(codec, keys)
		// An iterator restricted to the middle of the run whose tombstone
		// slice also names keys before, inside, and after its range.
		lo, hi := blockSize, 3*blockSize
		dels := []rdf.EncodedTriple{
			keys[0], keys[5], // before the range: must not count
			keys[lo+10], keys[lo+20], keys[hi-1], // inside: must count
			keys[hi], keys[len(keys)-1], // after the range: must not count
		}
		it := Iterator{kind: permSPO, base: r, lo: lo, hi: hi, dels: dels}
		want := (hi - lo) - 3
		if got := it.Remaining(); got != want {
			t.Fatalf("%s: Remaining = %d, want %d", codec.name(), got, want)
		}
		// The count must stay exact as iteration consumes the range.
		n := 0
		for it.Next() {
			n++
			if got := it.Remaining(); got != want-n {
				t.Fatalf("%s: after %d yields Remaining = %d, want %d", codec.name(), n, got, want-n)
			}
		}
		if n != want {
			t.Fatalf("%s: iterator yielded %d, want %d", codec.name(), n, want)
		}
		// With no base left, pending tombstones cancel nothing.
		empty := Iterator{kind: permSPO, base: r, lo: hi, hi: hi,
			extra: []rdf.EncodedTriple{{1, 1, 1}}, dels: dels}
		if got := empty.Remaining(); got != 1 {
			t.Fatalf("%s: exhausted-base Remaining = %d, want 1", codec.name(), got)
		}
	}
}
