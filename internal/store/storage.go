package store

import (
	"fmt"
	"sync/atomic"
)

// Storage selects how a paged (v3) snapshot's pages are made resident when a
// graph is loaded from a file. Heap storage reads the whole file into memory
// — today's behavior, and the differential-test oracle. Mmap storage maps the
// file read-only and serves block payloads straight out of the mapping, so
// the OS page cache is the buffer pool: boot cost is O(open) and the servable
// graph size is bounded by the address space, not RAM.
type Storage uint8

const (
	// StorageHeap reads snapshot pages into the Go heap.
	StorageHeap Storage = iota
	// StorageMmap maps snapshot pages from the file via mmap.
	StorageMmap
)

// String returns the storage's flag-compatible name.
func (s Storage) String() string {
	if s == StorageMmap {
		return "mmap"
	}
	return "heap"
}

// ParseStorage parses a -storage flag value.
func ParseStorage(s string) (Storage, error) {
	switch s {
	case "heap":
		return StorageHeap, nil
	case "mmap":
		return StorageMmap, nil
	default:
		return StorageHeap, fmt.Errorf("store: unknown storage %q (want heap or mmap)", s)
	}
}

// defaultStorage is the process-wide storage for snapshot loads without an
// explicit choice (Load, LoadFile). Binaries set it once at startup from the
// -storage flag; it is atomic so tests can flip it safely around parallel
// subtests.
var defaultStorage atomic.Uint32 // holds a Storage

// SetDefaultStorage sets the process-wide default snapshot storage.
func SetDefaultStorage(s Storage) { defaultStorage.Store(uint32(s)) }

// DefaultStorage returns the process-wide default snapshot storage.
func DefaultStorage() Storage { return Storage(defaultStorage.Load()) }

// pageStore owns the byte region backing a paged snapshot: the full file
// image (header, directory, and page-aligned payload pages). Runs slice
// their payload regions out of it without copying; the store only exists so
// the graph can report how the region is resident.
type pageStore interface {
	// bytes returns the full snapshot image.
	bytes() []byte
	// pages returns the total number of payload pages across permutations.
	pages() int
	// pageSize returns the page size the snapshot was written with.
	pageSize() int
	// storage names how the region is resident.
	storage() Storage
	// mappedBytes returns the bytes held in an mmap rather than the heap.
	mappedBytes() int64
	// adviseSequential hints that the region is about to be read front to
	// back (a full scan), so the kernel can read ahead aggressively. A no-op
	// for heap-resident regions and on platforms without madvise.
	adviseSequential()
}

// heapPages is the heap-resident pageStore: the snapshot image is a plain
// in-memory byte slice. It is today's load behavior and the oracle the
// mmap backend is differentially tested against.
type heapPages struct {
	buf []byte
	n   int // payload pages
	psz int
}

func (h *heapPages) bytes() []byte      { return h.buf }
func (h *heapPages) pages() int         { return h.n }
func (h *heapPages) pageSize() int      { return h.psz }
func (h *heapPages) storage() Storage   { return StorageHeap }
func (h *heapPages) mappedBytes() int64 { return 0 }
func (h *heapPages) adviseSequential()  {}

// mmapPages is the mmap-backed pageStore: the snapshot image is a read-only
// mapping of the snapshot file. The mapping is held for the life of the
// process — live iterators may reference it indefinitely, and unmapping under
// them would fault — so it is never munmap'd; the kernel reclaims clean pages
// under memory pressure, which is the entire buffer-pool story.
type mmapPages struct {
	data []byte
	n    int
	psz  int

	// advised latches the one-shot MADV_SEQUENTIAL hint: full scans dominate
	// the workloads that benefit, the hint is sticky per mapping, and the
	// mapping is shared by every graph generation forked off this snapshot,
	// so one syscall per mapping per process is all that is ever needed.
	advised atomic.Bool
}

func (m *mmapPages) bytes() []byte      { return m.data }
func (m *mmapPages) pages() int         { return m.n }
func (m *mmapPages) pageSize() int      { return m.psz }
func (m *mmapPages) storage() Storage   { return StorageMmap }
func (m *mmapPages) mappedBytes() int64 { return int64(len(m.data)) }

func (m *mmapPages) adviseSequential() {
	if len(m.data) > 0 && m.advised.CompareAndSwap(false, true) {
		madviseSequential(m.data)
	}
}
