package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sofos/internal/rdf"
)

// collect drains an iterator into SPO triples.
func collect(it Iterator) []rdf.EncodedTriple {
	var out []rdf.EncodedTriple
	for it.Next() {
		s, p, o := it.Triple()
		out = append(out, rdf.EncodedTriple{s, p, o})
	}
	return out
}

// splitGraph builds a graph with a compacted bulk load plus an uncompacted
// delta overlay (inserts and tombstones), so Split must route delta entries.
func splitGraph(t *testing.T, n int, rng *rand.Rand) *Graph {
	t.Helper()
	g := NewGraph()
	enc := make([]rdf.EncodedTriple, n)
	for i := range enc {
		enc[i] = rdf.EncodedTriple{
			rdf.ID(1 + rng.Intn(n/4+1)),
			rdf.ID(1 + rng.Intn(8)),
			rdf.ID(1 + rng.Intn(n/2+1)),
		}
	}
	g.LoadEncoded(enc)
	// Tombstone some run triples and add fresh delta inserts, staying below
	// the compaction threshold so the overlay survives.
	for i := 0; i < 50 && i < len(enc); i += 3 {
		g.removeEncoded(enc[i][0], enc[i][1], enc[i][2])
	}
	for i := 0; i < 50; i++ {
		g.AddEncoded(rdf.ID(1+rng.Intn(n/4+1)), rdf.ID(9+rng.Intn(4)), rdf.ID(1+rng.Intn(n/2+1)))
	}
	return g
}

// TestSplitConcatenationIdentity checks the core contract: for every pattern
// shape and every n, running the parts in order yields exactly the serial
// iteration, and part Remaining counts sum to the whole.
func TestSplitConcatenationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := splitGraph(t, 2000, rng)
	shapes := []struct {
		name    string
		s, p, o rdf.ID
	}{
		{"all", rdf.NoID, rdf.NoID, rdf.NoID},
		{"p", rdf.NoID, 3, rdf.NoID},
		{"s", 5, rdf.NoID, rdf.NoID},
		{"delta-only-p", rdf.NoID, 10, rdf.NoID}, // predicate existing only in the delta
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			serial := collect(g.Scan(sh.s, sh.p, sh.o))
			for _, n := range []int{1, 2, 3, 4, 7, 16, 1000} {
				it := g.Scan(sh.s, sh.p, sh.o)
				parts := it.Split(n)
				if len(parts) > n {
					t.Fatalf("Split(%d) returned %d parts", n, len(parts))
				}
				total := 0
				var merged []rdf.EncodedTriple
				for _, p := range parts {
					total += p.Remaining()
					merged = append(merged, collect(p)...)
				}
				if total != it.Remaining() {
					t.Errorf("n=%d: Remaining sum = %d, want %d", n, total, it.Remaining())
				}
				if fmt.Sprint(merged) != fmt.Sprint(serial) {
					t.Errorf("n=%d: concatenation differs from serial scan\ngot  %v\nwant %v",
						n, merged, serial)
				}
			}
		})
	}
}

// TestSplitEmptyAndTiny covers degenerate inputs.
func TestSplitEmptyAndTiny(t *testing.T) {
	g := NewGraph()
	it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	parts := it.Split(4)
	if len(parts) != 1 || parts[0].Next() {
		t.Errorf("empty split = %d parts", len(parts))
	}
	g.MustAdd(tr("s1", "p1", "o1"))
	g.Compact()
	it = g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	var got []rdf.EncodedTriple
	for _, p := range it.Split(8) {
		got = append(got, collect(p)...)
	}
	if len(got) != 1 {
		t.Errorf("single-triple split yielded %d triples", len(got))
	}
}

// TestSplitConcurrentIteration iterates all parts from separate goroutines
// while the graph mutates, asserting the snapshot property per part (run
// under -race in CI).
func TestSplitConcurrentIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := splitGraph(t, 4000, rng)
	it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	want := it.Remaining()
	parts := it.Split(8)
	counts := make([]int, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = len(collect(parts[i]))
		}(i)
	}
	// Concurrent writers must not affect the captured parts.
	for i := 0; i < 200; i++ {
		g.AddEncoded(rdf.ID(1+i), rdf.ID(20), rdf.ID(1+i))
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != want {
		t.Errorf("concurrent split yielded %d triples, want %d", total, want)
	}
}
