package store

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sofos/internal/rdf"
)

// pagedTestGraph builds a block-codec graph of about n triples with a live
// overlay (inserts and tombstones), so a paged snapshot of it exercises every
// v3 section.
func pagedTestGraph(t testing.TB, n int) *Graph {
	t.Helper()
	g := NewGraphWithCodec(CodecBlock)
	base := randomGraph(rand.New(rand.NewSource(7)), n).Triples()
	if _, err := g.LoadTriples(base); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/10+1; i++ {
		g.MustAdd(tr("extra"+itoa(i), "pextra", "oextra"+itoa(i%3)))
		g.Remove(base[(i*7)%len(base)])
	}
	return g
}

// pagedBytes serializes the graph as a v3 snapshot with the given page size.
func pagedBytes(t testing.TB, g *Graph, pageSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.SavePaged(&buf, pageSize); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeSnapshotFile materializes snapshot bytes as a file for LoadFileWith.
func writeSnapshotFile(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanOutcome runs a full scan over the graph, classifying the result: count
// of yielded triples on success, or the message of a tagged corruption panic
// (the only panic mmap-backed runs are allowed — lazy CRC verification fires
// on first decode). Any other panic propagates and fails the test.
func scanOutcome(g *Graph) (n int, corrupt string) {
	defer func() {
		if r := recover(); r != nil {
			msg, ok := r.(string)
			if !ok || !strings.HasPrefix(msg, "store: corrupt block run: ") {
				panic(r)
			}
			corrupt = msg
		}
	}()
	it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	for it.Next() {
		n++
	}
	return n, ""
}

// TestPagedRoundTripStorages loads one paged snapshot under every
// storage × codec combination and checks the content is bit-identical to the
// source graph, and that the storage accounting (mapped bytes, page counts)
// tells the truth.
func TestPagedRoundTripStorages(t *testing.T) {
	g := pagedTestGraph(t, 400)
	want := g.SortedTriples()
	for _, pageSize := range []int{4096, defaultPageSize} {
		path := writeSnapshotFile(t, pagedBytes(t, g, pageSize))
		for _, st := range []Storage{StorageHeap, StorageMmap} {
			for _, codec := range []Codec{CodecBlock, CodecFlat} {
				loaded, err := LoadFileWith(path, codec, st)
				if err != nil {
					t.Fatalf("page %d, %v/%v: %v", pageSize, st, codec, err)
				}
				got := loaded.SortedTriples()
				if len(got) != len(want) {
					t.Fatalf("page %d, %v/%v: %d triples, want %d", pageSize, st, codec, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("page %d, %v/%v: triple %d = %v, want %v", pageSize, st, codec, i, got[i], want[i])
					}
				}
				ms := loaded.MemStats()
				switch {
				case codec == CodecFlat:
					// Flat targets decode to heap slices regardless of storage.
					if ms.MappedBytes != 0 {
						t.Fatalf("page %d, %v/flat: mapped %d bytes", pageSize, st, ms.MappedBytes)
					}
				case st == StorageMmap:
					if ms.Storage != "mmap" || ms.MappedBytes == 0 || ms.Pages == 0 || ms.PageSize != pageSize {
						t.Fatalf("page %d mmap stats wrong: %+v", pageSize, ms)
					}
					if ms.SPO.Mapped == 0 {
						t.Fatalf("page %d mmap: SPO reports no mapped payload: %+v", pageSize, ms.SPO)
					}
				default:
					if ms.Storage != "heap" || ms.MappedBytes != 0 || ms.Pages == 0 {
						t.Fatalf("page %d heap stats wrong: %+v", pageSize, ms)
					}
				}
			}
		}
	}
}

// TestPagedLoadSkipsPayloadReads is the O(open) recovery proof: a corrupted
// byte inside a payload page must not be noticed by an mmap load — the
// directory is validated, payload pages are not read — and must then be
// caught by the lazy per-block CRC as a tagged panic on first scan. The heap
// load of the same bytes pays O(data) anyway and must refuse up front.
func TestPagedLoadSkipsPayloadReads(t *testing.T) {
	g := pagedTestGraph(t, 600)
	// Compact so the overlay is empty: with overlay sections present, load
	// legitimately decodes the O(overlay) blocks its membership checks touch.
	g.Compact()
	data := pagedBytes(t, g, 4096)

	// Locate the page region from a clean load's own accounting, then corrupt
	// the very first payload byte — block 0 of the SPO run.
	clean, err := LoadFileWith(writeSnapshotFile(t, data), CodecBlock, StorageHeap)
	if err != nil {
		t.Fatal(err)
	}
	regionStart := len(data) - clean.MemStats().Pages*4096
	mut := append([]byte(nil), data...)
	mut[regionStart] ^= 0x40
	path := writeSnapshotFile(t, mut)

	loaded, err := LoadFileWith(path, CodecBlock, StorageMmap)
	if err != nil {
		t.Fatalf("mmap load read payload bytes at boot (failed with %v); recovery is not O(open)", err)
	}
	if _, corrupt := scanOutcome(loaded); corrupt == "" {
		t.Fatal("scan over the corrupted block did not trip the lazy CRC")
	}

	if _, err := LoadFileWith(path, CodecBlock, StorageHeap); err == nil {
		t.Fatal("heap load accepted a corrupt payload page; eager CRC verification is gone")
	}
}

// TestPagedTruncationEveryPrefix feeds every prefix of a v3 snapshot through
// the byte loader (heap) and, at a stride, through file loads under both
// storages: nothing but the full input may load.
func TestPagedTruncationEveryPrefix(t *testing.T) {
	full := pagedBytes(t, pagedTestGraph(t, 120), minPageSize)
	for _, codec := range []Codec{CodecBlock, CodecFlat} {
		for cut := 0; cut < len(full); cut++ {
			if _, err := LoadWithCodec(bytes.NewReader(full[:cut]), codec); err == nil {
				t.Fatalf("codec %v: truncation at %d/%d loaded successfully", codec, cut, len(full))
			}
		}
		if _, err := LoadWithCodec(bytes.NewReader(full), codec); err != nil {
			t.Fatalf("codec %v: full snapshot failed: %v", codec, err)
		}
	}
	dir := t.TempDir()
	for cut := 0; cut < len(full); cut += 13 {
		path := filepath.Join(dir, "cut.snap")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		for _, st := range []Storage{StorageHeap, StorageMmap} {
			if _, err := LoadFileWith(path, CodecBlock, st); err == nil {
				t.Fatalf("%v: truncated file (%d/%d bytes) loaded successfully", st, cut, len(full))
			}
		}
	}
}

// TestPagedBitFlipsBothStorages flips bits across a whole v3 snapshot. Under
// heap storage every outcome must be an error or a fully consistent graph
// (eager CRC). Under mmap a flip in a payload page legitimately surfaces
// later, as a tagged corruption panic on the first scan that decodes the
// block — anything else (wrong counts, untagged panic) is a bug.
func TestPagedBitFlipsBothStorages(t *testing.T) {
	full := pagedBytes(t, pagedTestGraph(t, 120), minPageSize)
	step := 1
	if testing.Short() {
		step = 7
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.snap")
	for off := 0; off < len(full); off += step {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), full...)
			mut[off] ^= bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := LoadFileWith(path, CodecBlock, StorageHeap)
			if err == nil {
				if n, corrupt := scanOutcome(g); corrupt != "" {
					t.Fatalf("flip at %d/%#x: heap load accepted bytes that scan as corrupt: %s", off, bit, corrupt)
				} else if n != g.Len() {
					t.Fatalf("flip at %d/%#x: heap Len()=%d but scan found %d", off, bit, g.Len(), n)
				}
			}
			g, err = LoadFileWith(path, CodecBlock, StorageMmap)
			if err != nil {
				continue
			}
			if n, corrupt := scanOutcome(g); corrupt == "" && n != g.Len() {
				t.Fatalf("flip at %d/%#x: mmap Len()=%d but scan found %d", off, bit, g.Len(), n)
			}
		}
	}
}

// TestPagedHugeCounts feeds v3 headers whose section and page counts demand
// absurd allocations; every one must fail on the reads or the size equation,
// never by exhausting memory.
func TestPagedHugeCounts(t *testing.T) {
	var vbuf [binary.MaxVarintLen64]byte
	uv := func(b *bytes.Buffer, v uint64) { b.Write(vbuf[:binary.PutUvarint(vbuf[:], v)]) }
	header := func() *bytes.Buffer {
		var b bytes.Buffer
		b.WriteString(snapshotMagicV3)
		b.WriteByte(1)
		uv(&b, blockSize)
		uv(&b, minPageSize)
		uv(&b, 1)                        // one term
		b.Write([]byte{0, 1, 'x', 0, 0}) // IRI "x"
		uv(&b, 0)                        // no overlay adds
		uv(&b, 0)                        // no overlay dels
		return &b
	}
	load := func(b *bytes.Buffer) error {
		_, err := Load(bytes.NewReader(b.Bytes()))
		return err
	}
	// Huge count-section length.
	b := header()
	uv(b, 1<<40)
	if load(b) == nil {
		t.Fatal("huge count-section length accepted")
	}
	// Valid empty count sections, then a huge key count.
	b = header()
	for i := 0; i < 3; i++ {
		uv(b, 0)
	}
	uv(b, 1<<50) // SPO key count
	uv(b, 1)
	if load(b) == nil {
		t.Fatal("huge key count accepted")
	}
	// Huge page count for a one-block run.
	b = header()
	for i := 0; i < 3; i++ {
		uv(b, 0)
	}
	uv(b, 1)     // one key
	uv(b, 1)     // one block
	uv(b, 1<<50) // pages
	if load(b) == nil {
		t.Fatal("huge page count accepted")
	}
	// Structurally plausible counts whose page regions dwarf the input: the
	// exact-size equation must reject without allocating page space.
	b = header()
	for i := 0; i < 3; i++ {
		uv(b, 1)
		uv(b, 1)
		uv(b, 1)
	}
	for k := 0; k < 3; k++ {
		uv(b, 1) // one key
		uv(b, 1) // one block
		uv(b, 1) // one page
		uv(b, 1) // block count=1
		for c := 0; c < 6; c++ {
			uv(b, 1) // min/max fences
		}
		uv(b, 0)                    // plen (single-key block)
		uv(b, 0)                    // pageIdx
		uv(b, 0)                    // pageOff
		b.Write([]byte{0, 0, 0, 0}) // payload CRC of empty payload? (wrong on purpose is fine)
	}
	if load(b) == nil {
		t.Fatal("undersized page region accepted")
	}
}

// TestLegacySnapshotsLoadUnderBothStorages pins backward compatibility: v1
// (flat) and v2 (block) snapshot files must keep loading whatever the
// -storage setting, falling back to heap residency.
func TestLegacySnapshotsLoadUnderBothStorages(t *testing.T) {
	g := pagedTestGraph(t, 150)
	want := g.SortedTriples()

	var v2 bytes.Buffer
	if err := g.saveV2(&v2); err != nil {
		t.Fatal(err)
	}
	fg := NewGraphWithCodec(CodecFlat)
	if _, err := fg.LoadTriples(want); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := fg.Save(&v1); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{{"v1", v1.Bytes()}, {"v2", v2.Bytes()}} {
		path := writeSnapshotFile(t, tc.data)
		for _, st := range []Storage{StorageHeap, StorageMmap} {
			loaded, err := LoadFileWith(path, CodecBlock, st)
			if err != nil {
				t.Fatalf("%s under %v: %v", tc.name, st, err)
			}
			got := loaded.SortedTriples()
			if len(got) != len(want) {
				t.Fatalf("%s under %v: %d triples, want %d", tc.name, st, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s under %v: triple %d differs", tc.name, st, i)
				}
			}
			if ms := loaded.MemStats(); ms.MappedBytes != 0 {
				t.Fatalf("%s under %v: legacy snapshot reports %d mapped bytes", tc.name, st, ms.MappedBytes)
			}
		}
	}
}

// TestPagedSourceTracking pins the hard-link contract: a graph loaded from a
// paged file advertises it as a linkable source exactly until the first
// mutation, and re-adopting after a fresh snapshot restores it. Compaction
// alone must not invalidate the source — it changes layout, not content.
func TestPagedSourceTracking(t *testing.T) {
	g := pagedTestGraph(t, 100)
	path := writeSnapshotFile(t, pagedBytes(t, g, minPageSize))
	loaded, err := LoadFileWith(path, CodecBlock, StorageHeap)
	if err != nil {
		t.Fatal(err)
	}
	if src, ok := loaded.PagedSource(); !ok || src != path {
		t.Fatalf("fresh load: PagedSource = %q, %v; want %q, true", src, ok, path)
	}
	loaded.SetVersion(42) // restore-time counter reinstatement must not dirty
	if _, ok := loaded.PagedSource(); !ok {
		t.Fatal("SetVersion invalidated the paged source")
	}
	loaded.Compact()
	if _, ok := loaded.PagedSource(); !ok {
		t.Fatal("compaction invalidated the paged source")
	}
	loaded.MustAdd(tr("fresh", "p", "o"))
	if src, ok := loaded.PagedSource(); ok {
		t.Fatalf("mutation left the paged source valid: %q", src)
	}
	loaded.AdoptPagedSource(path)
	if _, ok := loaded.PagedSource(); !ok {
		t.Fatal("AdoptPagedSource did not restore the source")
	}
	if !loaded.Remove(tr("fresh", "p", "o")) {
		t.Fatal("remove failed")
	}
	if _, ok := loaded.PagedSource(); ok {
		t.Fatal("removal left the paged source valid")
	}
}

// TestCloneSharesMappedRuns pins that cloning an mmap-backed graph does not
// copy the runs onto the heap: catalog restore clones the base graph for G+,
// and a deep copy would pull the whole file resident at boot.
func TestCloneSharesMappedRuns(t *testing.T) {
	g := pagedTestGraph(t, 200)
	path := writeSnapshotFile(t, pagedBytes(t, g, 4096))
	loaded, err := LoadFileWith(path, CodecBlock, StorageMmap)
	if err != nil {
		t.Fatal(err)
	}
	c := loaded.Clone()
	cms, lms := c.MemStats(), loaded.MemStats()
	if cms.SPO.Mapped != lms.SPO.Mapped || cms.SPO.Mapped == 0 {
		t.Fatalf("clone SPO mapped %d bytes, original %d; runs were copied", cms.SPO.Mapped, lms.SPO.Mapped)
	}
	// The clone must stay independent for mutations...
	c.MustAdd(tr("cloneonly", "p", "o"))
	if loaded.Contains(tr("cloneonly", "p", "o")) {
		t.Fatal("clone mutation leaked into the original")
	}
	// ...and identical for reads.
	want, got := loaded.SortedTriples(), c.SortedTriples()
	if len(got) != len(want)+1 {
		t.Fatalf("clone has %d triples, original %d", len(got), len(want))
	}
}

// FuzzPagedSnapshotLoad hammers the v3 loader with mutated paged snapshots
// under both target codecs: every input either loads into a consistent graph
// or errors — no panics (heap loads verify payloads eagerly), no runaway
// allocations.
func FuzzPagedSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagicV3))
	f.Add(pagedBytes(f, pagedTestGraph(f, 60), minPageSize))
	var empty bytes.Buffer
	if err := NewGraphWithCodec(CodecBlock).SavePaged(&empty, minPageSize); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, codec := range []Codec{CodecBlock, CodecFlat} {
			g, err := LoadWithCodec(bytes.NewReader(data), codec)
			if err != nil {
				continue
			}
			n := 0
			it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
			for it.Next() {
				n++
			}
			if n != g.Len() {
				t.Fatalf("codec %v: loaded graph inconsistent: Len()=%d, scan=%d", codec, g.Len(), n)
			}
		}
	})
}
