package store

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"sofos/internal/rdf"
)

// snapshotBytes serializes a small deterministic graph as a paged (v3)
// snapshot. The minimum page size keeps the file a few KiB so the exhaustive
// every-prefix and bit-flip sweeps stay fast; production-sized pages are
// covered by the round-trip and differential tests.
func snapshotBytes(t testing.TB) []byte {
	t.Helper()
	g := NewGraphWithCodec(CodecBlock)
	base := randomGraph(rand.New(rand.NewSource(99)), 40).Triples()
	if _, err := g.LoadTriples(base); err != nil {
		t.Fatal(err)
	}
	g.MustAdd(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewLangLiteral("héllo", "fr")})
	g.MustAdd(rdf.Triple{S: rdf.NewBlank("b"), P: iri("p"), O: rdf.NewTypedLiteral("2.5", rdf.XSDDouble)})
	g.Remove(base[0]) // one run tombstone, so every overlay section is non-empty
	var buf bytes.Buffer
	if err := g.SavePaged(&buf, minPageSize); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadTruncationEveryPrefix feeds Load every prefix of a valid snapshot:
// all but the full input must return an error — never panic, never a
// silently short graph.
func TestLoadTruncationEveryPrefix(t *testing.T) {
	full := snapshotBytes(t)
	for cut := 0; cut < len(full); cut++ {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", cut, len(full))
		}
	}
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full snapshot failed: %v", err)
	}
}

// TestLoadBitFlips flips bits across the snapshot: every outcome must be an
// error or a well-formed graph (a flip inside string payload bytes yields a
// different but valid graph), never a panic.
func TestLoadBitFlips(t *testing.T) {
	full := snapshotBytes(t)
	for off := 0; off < len(full); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), full...)
			mut[off] ^= bit
			g, err := Load(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			// Survivors must be internally consistent and scannable.
			n := 0
			it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
			for it.Next() {
				n++
			}
			if n != g.Len() {
				t.Fatalf("flip at %d/%#x: Len()=%d but scan found %d", off, bit, g.Len(), n)
			}
		}
	}
}

// TestLoadHugeCounts feeds headers whose counts demand absurd allocations;
// they must fail on the reads, not by exhausting memory.
func TestLoadHugeCounts(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	for _, count := range []uint64{1 << 40, 1<<64 - 1} {
		var b bytes.Buffer
		b.WriteString(snapshotMagic)
		b.Write(buf[:binary.PutUvarint(buf[:], count)]) // termCount
		if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
			t.Fatalf("termCount %d accepted", count)
		}
	}
	// Same for the triple count, after one valid term.
	var b bytes.Buffer
	b.WriteString(snapshotMagic)
	b.WriteByte(1)                                      // one term
	b.Write([]byte{0, 1, 'x', 0, 0})                    // IRI "x"
	b.Write(buf[:binary.PutUvarint(buf[:], (1<<64)-1)]) // tripleCount
	if _, err := Load(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("huge tripleCount accepted")
	}
}

// FuzzSnapshotLoad hammers Load with mutated snapshots: the contract under
// fuzzing is that every input either loads into a consistent graph or
// returns an error — no panics, no runaway allocations.
func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(snapshotBytes(f))
	var empty bytes.Buffer
	if err := NewGraphWithCodec(CodecBlock).SavePaged(&empty, minPageSize); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		it := g.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
		for it.Next() {
			n++
		}
		if n != g.Len() {
			t.Fatalf("loaded graph inconsistent: Len()=%d, scan=%d", g.Len(), n)
		}
	})
}
