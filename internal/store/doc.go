// Package store implements the dictionary-encoded, fully indexed in-memory
// triple store that serves as SOFOS's RDF substrate. A Graph maintains
// three columnar permutation indexes (SPO, POS, OSP) — flat sorted runs
// with binary-search range lookup plus a small LSM-style delta overlay — so
// that every triple-pattern shape, any combination of bound and unbound
// components, is answered by one contiguous range scan. This is the layout
// of native RDF stores such as RDF-3X/HDT and is what the paper assumes of
// "any RDF triple store with SPARQL query processing".
//
// Concurrency: a Graph is safe for concurrent readers, with writes
// serialized by an internal mutex. Reads are snapshot-isolated per scan —
// an Iterator captures the immutable run slices plus a copy of its
// in-range delta, so it never holds the graph lock while yielding and
// stays valid (returning the same triples) across concurrent mutations.
// Compaction and bulk loads replace run slices wholesale rather than
// mutating them, which is what makes the zero-coordination parallel scans
// of internal/engine and the serve-during-maintenance behaviour of
// internal/server possible.
//
// Beyond point mutations (Add/Remove), the store offers batched bulk paths
// (LoadTriples/LoadEncoded/RemoveTriples, BuildFrom) that take the write
// lock once and sort-merge into the runs, a near-O(n) memcpy Clone used to
// derive the expanded graph G+, exact pattern-cardinality Estimate for the
// planner, per-predicate statistics (Stats), a binary snapshot format
// (Save/Load), and Version — a mutation counter view catalogs compare to
// detect staleness. Apply commits a whole insert+delete batch under one
// lock and returns its effective Delta (the triples actually added and
// removed, tagged with the version interval) so writers capture ΔG at
// commit time for incremental view maintenance; OverlayWith builds an
// O(|Δ|) read-only union of the graph and extra triples — sharing the
// immutable runs — which maintenance uses to evaluate delete-side joins
// against the pre-update state. NestedMapGraph preserves the seed's
// nested-map design as a differential-testing and benchmarking baseline.
package store
