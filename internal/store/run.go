package store

import "sofos/internal/rdf"

// run is one immutable sorted sequence of permuted triple keys — the storage
// representation behind a permutation index. Two implementations exist: the
// original flat []rdf.EncodedTriple layout (flatRun) and the block-compressed
// layout (blockRun, see block.go). Runs are immutable once built; compaction
// and bulk loads replace a graph's runs wholesale through a runBuilder, so a
// live Iterator can keep reading a replaced run forever.
//
// Positions are global triple ordinals in [0, size()); both implementations
// answer the same searches over the same key order, so every layer above
// (scans, estimates, splits, the engine) is codec-oblivious.
type run interface {
	// size returns the number of keys in the run.
	size() int

	// memBytes returns the resident bytes of the representation itself
	// (excluding the dictionary), for memory accounting.
	memBytes() int64

	// mappedBytes returns the bytes of the representation backed by an
	// mmap'd snapshot region rather than the heap (0 for heap-resident runs).
	mappedBytes() int64

	// numBlocks returns the number of fixed-size blocks (0 for flat runs).
	numBlocks() int

	// verifiedBlocks returns how many blocks have had their payload CRC
	// checked. Runs without lazy snapshot CRCs (flat, or built/verified
	// in-process) count every block as verified; for mmap-backed runs the
	// count grows as lazy first-decode verification touches blocks.
	verifiedBlocks() int

	// search returns the first position in [from, size()] whose depth-prefix
	// is ≥ key's (upper=false) or > key's (upper=true) — the primitive under
	// range scans and exact estimates. depth 0 means "match everything":
	// lower bound is from, upper bound is size().
	search(from int, key rdf.EncodedTriple, depth int, upper bool) int

	// contains reports whether the exact key is present.
	contains(key rdf.EncodedTriple) bool

	// keyAt returns the key at a position. O(1) for flat runs and for block
	// fence positions (first/last key of a block); decodes one block
	// otherwise — callers use it for split boundaries, never per triple.
	keyAt(pos int) rdf.EncodedTriple

	// fill decodes a span starting at position lo (bounded by hi) into the
	// arena, setting a.idx so a.key(a.idx) is the key at lo. It decodes at
	// least one key; callers guarantee lo < hi ≤ size().
	fill(a *spanArena, lo, hi int)

	// alignSplit rounds a tentative split position down to the nearest cheap
	// boundary (a block start; flat runs return pos unchanged), so Split
	// partitions never force partial-block decodes at partition edges.
	alignSplit(pos int) int

	// clone returns an independent deep copy.
	clone() run
}

// runBuilder accumulates sorted keys and emits a run in the builder's codec.
// Compaction and bulk loads stream their merge output through one, so block
// runs are encoded directly — no intermediate flat materialization.
type runBuilder interface {
	add(k rdf.EncodedTriple)
	finish() run
}

// runCodec names a run representation and builds runs in it.
type runCodec interface {
	name() string
	newBuilder(sizeHint int) runBuilder
}

// buildRun encodes an already-sorted key slice through the codec.
func buildRun(c runCodec, sorted []rdf.EncodedTriple) run {
	b := c.newBuilder(len(sorted))
	for _, k := range sorted {
		b.add(k)
	}
	return b.finish()
}

// runSize is size() tolerating a nil run (an index never written to).
func runSize(r run) int {
	if r == nil {
		return 0
	}
	return r.size()
}

// spanArena is a per-iterator reusable decode buffer: one block (or flat
// chunk) at a time is decoded into SoA column slices, and iteration consumes
// [idx, n). Reusing the arena across refills and scans means steady-state
// iteration performs zero per-triple allocation for either codec.
//
// src/bi remember which block run and block index the columns currently hold,
// so block-codec refills and point lookups that land in the same block skip
// the decode — the common case for index-ordered probe streams like join
// bindings. Any path that overwrites the columns through grow invalidates the
// cache; only blockRun decode paths set it.
type spanArena struct {
	c0, c1, c2 []rdf.ID
	idx, n     int
	src        *blockRun
	bi         int
}

// grow ensures capacity for n decoded keys and resets the window to [0, n).
// The caller is about to overwrite the columns, so the block cache is
// invalidated.
func (a *spanArena) grow(n int) {
	if cap(a.c0) < n {
		a.c0 = make([]rdf.ID, n)
		a.c1 = make([]rdf.ID, n)
		a.c2 = make([]rdf.ID, n)
	}
	a.c0, a.c1, a.c2 = a.c0[:cap(a.c0)][:n], a.c1[:cap(a.c1)][:n], a.c2[:cap(a.c2)][:n]
	a.idx, a.n = 0, n
	a.src = nil
}

// key assembles the permuted key at arena index i.
func (a *spanArena) key(i int) rdf.EncodedTriple {
	return rdf.EncodedTriple{a.c0[i], a.c1[i], a.c2[i]}
}

// reset empties the window without releasing capacity.
func (a *spanArena) reset() { a.idx, a.n = 0, 0 }

// spanChunk is the flat codec's fill granularity, matching the block codec's
// block size so both codecs hand the engine comparable span widths.
const spanChunk = blockSize

// flatCodec is the original fixed-width representation: 12 bytes per key,
// binary-searchable in place. It remains selectable as the differential-test
// oracle and the zero-decode baseline.
type flatCodec struct{}

func (flatCodec) name() string { return "flat" }

func (flatCodec) newBuilder(sizeHint int) runBuilder {
	return &flatBuilder{keys: make([]rdf.EncodedTriple, 0, sizeHint)}
}

type flatBuilder struct{ keys []rdf.EncodedTriple }

func (b *flatBuilder) add(k rdf.EncodedTriple) { b.keys = append(b.keys, k) }

func (b *flatBuilder) finish() run { return flatRun(b.keys) }

// flatRun stores keys as a plain sorted slice.
type flatRun []rdf.EncodedTriple

func (r flatRun) size() int           { return len(r) }
func (r flatRun) memBytes() int64     { return int64(len(r)) * int64(3*4) }
func (r flatRun) mappedBytes() int64  { return 0 }
func (r flatRun) numBlocks() int      { return 0 }
func (r flatRun) verifiedBlocks() int { return 0 }

func (r flatRun) search(from int, key rdf.EncodedTriple, depth int, upper bool) int {
	return searchPrefix(r, from, key, depth, upper)
}

func (r flatRun) contains(key rdf.EncodedTriple) bool {
	lo := searchPrefix(r, 0, key, 3, false)
	return lo < len(r) && r[lo] == key
}

func (r flatRun) keyAt(pos int) rdf.EncodedTriple { return r[pos] }

func (r flatRun) fill(a *spanArena, lo, hi int) {
	n := hi - lo
	if n > spanChunk {
		n = spanChunk
	}
	a.grow(n)
	for i, k := range r[lo : lo+n] {
		a.c0[i], a.c1[i], a.c2[i] = k[0], k[1], k[2]
	}
}

func (r flatRun) alignSplit(pos int) int { return pos }

func (r flatRun) clone() run {
	if len(r) == 0 {
		return flatRun(nil)
	}
	return flatRun(append([]rdf.EncodedTriple(nil), r...))
}
