package store

import (
	"fmt"
	"testing"

	"sofos/internal/rdf"
)

func deltaTriple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", i)),
		P: rdf.NewIRI("http://ex.org/p"),
		O: rdf.NewInteger(int64(i)),
	}
}

func TestApplyEffectiveDelta(t *testing.T) {
	g := NewGraph()
	pre := []rdf.Triple{deltaTriple(1), deltaTriple(2)}
	if _, err := g.LoadTriples(pre); err != nil {
		t.Fatal(err)
	}
	v0 := g.Version()
	// Insert one duplicate, one new (twice), and delete one present, one
	// absent triple.
	d, err := g.Apply(
		[]rdf.Triple{deltaTriple(1), deltaTriple(3), deltaTriple(3)},
		[]rdf.Triple{deltaTriple(2), deltaTriple(9)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inserted) != 1 || d.Inserted[0] != deltaTriple(3) {
		t.Errorf("Inserted = %v, want exactly the new triple", d.Inserted)
	}
	if len(d.Deleted) != 1 || d.Deleted[0] != deltaTriple(2) {
		t.Errorf("Deleted = %v, want exactly the removed triple", d.Deleted)
	}
	if d.FromVersion != v0 || d.ToVersion != g.Version() || d.FromVersion == d.ToVersion {
		t.Errorf("version interval [%d, %d], graph at %d", d.FromVersion, d.ToVersion, g.Version())
	}
	if !g.Contains(deltaTriple(3)) || g.Contains(deltaTriple(2)) || g.Len() != 2 {
		t.Error("graph contents do not match the delta")
	}
}

func TestApplySameBatchCancel(t *testing.T) {
	g := NewGraph()
	d, err := g.Apply([]rdf.Triple{deltaTriple(1)}, []rdf.Triple{deltaTriple(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("delta = %+v, want empty (insert then delete cancels)", d)
	}
	if g.Len() != 0 {
		t.Errorf("graph has %d triples after a cancelling batch", g.Len())
	}
	// A pre-existing triple deleted in the same batch as its (duplicate)
	// insert is a genuine deletion.
	if _, err := g.LoadTriples([]rdf.Triple{deltaTriple(2)}); err != nil {
		t.Fatal(err)
	}
	d, err = g.Apply([]rdf.Triple{deltaTriple(2)}, []rdf.Triple{deltaTriple(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inserted) != 0 || len(d.Deleted) != 1 {
		t.Errorf("delta = %+v, want one deletion", d)
	}
}

func TestApplyInvalidInsertAllOrNothing(t *testing.T) {
	g := NewGraph()
	bad := rdf.Triple{S: rdf.NewLiteral("x"), P: rdf.NewIRI("http://ex.org/p"), O: rdf.NewInteger(1)}
	if _, err := g.Apply([]rdf.Triple{deltaTriple(1), bad}, nil); err == nil {
		t.Fatal("invalid insert accepted")
	}
	if g.Len() != 0 || g.Version() != 0 {
		t.Error("failed batch left partial state")
	}
}

func TestOverlayWith(t *testing.T) {
	g := NewGraph()
	if _, err := g.LoadTriples([]rdf.Triple{deltaTriple(1), deltaTriple(2), deltaTriple(3)}); err != nil {
		t.Fatal(err)
	}
	// Delete triple 2 so the overlay must resurrect a tombstoned run entry,
	// and triple 3 post-compaction so it is a genuine overlay re-add.
	g.Remove(deltaTriple(2))
	g.Compact()
	g.Remove(deltaTriple(3))

	o := g.OverlayWith([]rdf.Triple{deltaTriple(2), deltaTriple(3), deltaTriple(1)})
	if o.Len() != 3 {
		t.Errorf("overlay Len = %d, want 3", o.Len())
	}
	for i := 1; i <= 3; i++ {
		if !o.Contains(deltaTriple(i)) {
			t.Errorf("overlay missing triple %d", i)
		}
	}
	// The receiver is untouched.
	if g.Len() != 1 || g.Contains(deltaTriple(2)) || g.Contains(deltaTriple(3)) {
		t.Error("OverlayWith mutated the receiver")
	}
	// Estimates see the overlay contents.
	p, _ := g.Dict().Lookup(rdf.NewIRI("http://ex.org/p"))
	if got := o.Estimate(rdf.NoID, p, rdf.NoID); got != 3 {
		t.Errorf("overlay Estimate = %d, want 3", got)
	}
	if got := g.Estimate(rdf.NoID, p, rdf.NoID); got != 1 {
		t.Errorf("base Estimate = %d, want 1", got)
	}
	// Scans agree with Triples.
	if got := len(o.Triples()); got != 3 {
		t.Errorf("overlay Triples = %d", got)
	}
	// Triples with never-interned terms are skipped, not interned.
	before := g.Dict().Len()
	o2 := g.OverlayWith([]rdf.Triple{{
		S: rdf.NewIRI("http://ex.org/never"),
		P: rdf.NewIRI("http://ex.org/p"),
		O: rdf.NewInteger(1),
	}})
	if o2.Len() != g.Len() {
		t.Error("unknown-term extra changed the overlay size")
	}
	if g.Dict().Len() != before {
		t.Error("OverlayWith interned new terms into the shared dictionary")
	}
}
