package store

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sofos/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(41)), 500)
	g.MustAdd(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewLangLiteral("héllo", "fr")})
	g.MustAdd(rdf.Triple{S: rdf.NewBlank("b1"), P: iri("p"), O: rdf.NewInteger(-5)})

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != g.Len() {
		t.Fatalf("loaded %d triples, want %d", loaded.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !loaded.Contains(tr) {
			t.Fatalf("loaded graph missing %s", tr)
		}
	}
	// Index integrity on the loaded graph: estimates match matches.
	st := loaded.Snapshot()
	if st.Triples != g.Len() {
		t.Errorf("loaded stats = %+v", st)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGraph().Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), int(n))
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		if loaded.Len() != g.Len() {
			return false
		}
		for _, tr := range g.Triples() {
			if !loaded.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad magic", "NOTSOFOS"},
		{"truncated after magic", "SOFOSGR1"},
		{"truncated terms", "SOFOSGR1\x05"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.data)); err == nil {
				t.Error("corrupt snapshot accepted")
			}
		})
	}
}

func TestLoadRejectsBadTermReferences(t *testing.T) {
	// Craft a snapshot with 1 term but a triple referencing term 9.
	var buf bytes.Buffer
	buf.WriteString("SOFOSGR1")
	buf.WriteByte(1) // term count = 1
	buf.WriteByte(0) // kind IRI
	buf.WriteByte(1) // value len 1
	buf.WriteByte('x')
	buf.WriteByte(0) // datatype ""
	buf.WriteByte(0) // lang ""
	buf.WriteByte(1) // triple count 1
	buf.WriteByte(9) // s = 9 (invalid)
	buf.WriteByte(1)
	buf.WriteByte(1)
	if _, err := Load(&buf); err == nil {
		t.Error("out-of-range term reference accepted")
	}
}

func TestSnapshotPreservesTermDetails(t *testing.T) {
	g := NewGraph()
	terms := []rdf.Term{
		rdf.NewIRI("http://ex.org/a"),
		rdf.NewLangLiteral("bonjour", "fr-CA"),
		rdf.NewTypedLiteral("3.14", rdf.XSDDecimal),
		rdf.NewLiteral("with \"quotes\" and\nnewlines"),
	}
	for i, o := range terms {
		g.MustAdd(rdf.Triple{S: iri("s"), P: iri("p"), O: o})
		_ = i
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range terms {
		if !loaded.Contains(rdf.Triple{S: iri("s"), P: iri("p"), O: o}) {
			t.Errorf("term %s lost in round trip", o)
		}
	}
}
