package store

import (
	"fmt"
	"testing"

	"sofos/internal/rdf"
)

// loadPagedGraph snapshots g as a v3 paged file and loads it back under the
// given storage backend.
func loadPagedGraph(t *testing.T, g *Graph, pageSize int, st Storage) *Graph {
	t.Helper()
	path := writeSnapshotFile(t, pagedBytes(t, g, pageSize))
	loaded, err := LoadFileWith(path, CodecBlock, st)
	if err != nil {
		t.Fatalf("loading paged snapshot (%v): %v", st, err)
	}
	return loaded
}

// TestSplitAlignsToPageBoundaries checks the page-aware partitioning
// contract on v3 snapshots: every partition cut of a full-scan Split lands
// on a block whose payload starts exactly at a page boundary, so parallel
// partitions touch disjoint page sets — no page is faulted in by two
// workers. The concatenation identity must of course still hold.
func TestSplitAlignsToPageBoundaries(t *testing.T) {
	const pageSize = 4096
	g := pagedTestGraph(t, 4000)
	for _, st := range []Storage{StorageHeap, StorageMmap} {
		t.Run(st.String(), func(t *testing.T) {
			loaded := loadPagedGraph(t, g, pageSize, st)
			serial := collect(loaded.Scan(rdf.NoID, rdf.NoID, rdf.NoID))
			for _, n := range []int{2, 3, 4, 8, 16} {
				it := loaded.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
				br, ok := it.base.(*blockRun)
				if !ok {
					t.Fatalf("full scan over a paged snapshot is not a block run (%T)", it.base)
				}
				if br.psz != pageSize {
					t.Fatalf("paged run page size = %d, want %d", br.psz, pageSize)
				}
				parts := it.Split(n)
				var merged []rdf.EncodedTriple
				for i, p := range parts {
					if i > 0 && p.base != nil && p.lo < br.n {
						bi := br.blockOf(p.lo)
						if br.meta[bi].start != p.lo {
							t.Fatalf("n=%d part %d: cut %d is not a block start", n, i, p.lo)
						}
						if int(br.meta[bi].off)%pageSize != 0 {
							t.Fatalf("n=%d part %d: cut %d starts at payload offset %d, not page-aligned",
								n, i, p.lo, br.meta[bi].off)
						}
					}
					merged = append(merged, collect(p)...)
				}
				if fmt.Sprint(merged) != fmt.Sprint(serial) {
					t.Fatalf("n=%d: page-aligned split concatenation differs from serial scan", n)
				}
			}
		})
	}
}

// TestSplitCompactionRevertsToBlockAlignment checks that a run rebuilt in
// memory (a post-mutation Compact re-encodes the merged content into heap
// blocks) drops the page constraint: the rebuilt run has no pages to keep
// disjoint, so its splits align to block starts only.
func TestSplitCompactionRevertsToBlockAlignment(t *testing.T) {
	const pageSize = 4096
	g := pagedTestGraph(t, 1500)
	loaded := loadPagedGraph(t, g, pageSize, StorageHeap)
	loaded.MustAdd(tr("post-load", "p", "o"))
	loaded.Compact()
	it := loaded.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	br, ok := it.base.(*blockRun)
	if !ok {
		t.Skipf("compacted scan is not a block run (%T)", it.base)
	}
	if br.psz != 0 {
		t.Fatalf("rebuilt run kept page size %d, want 0 (heap re-encodings are not paged)", br.psz)
	}
}

// TestAdviseSequentialOnFullScan checks the madvise hook: a full scan over
// an mmap-backed snapshot flags the mapping MADV_SEQUENTIAL exactly once;
// bounded scans never do (their access pattern is a seek, not a sweep).
func TestAdviseSequentialOnFullScan(t *testing.T) {
	const pageSize = 4096
	g := pagedTestGraph(t, 1000)
	loaded := loadPagedGraph(t, g, pageSize, StorageMmap)
	mp, ok := loaded.pages.(*mmapPages)
	if !ok {
		t.Fatalf("mmap-loaded graph has page store %T", loaded.pages)
	}
	if mp.advised.Load() {
		t.Fatal("mapping advised before any scan")
	}
	// A bounded scan must not trigger the sequential hint.
	bounded := loaded.Scan(rdf.NoID, 1, rdf.NoID)
	for bounded.Next() {
	}
	if mp.advised.Load() {
		t.Fatal("bounded scan advised the mapping sequential")
	}
	full := loaded.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	for full.Next() {
	}
	if !mp.advised.Load() {
		t.Fatal("full scan did not advise the mapping sequential")
	}
	// Idempotent: further full scans keep the flag set and do not re-advise
	// (the CAS makes the syscall once per mapping).
	again := loaded.Scan(rdf.NoID, rdf.NoID, rdf.NoID)
	for again.Next() {
	}
	if !mp.advised.Load() {
		t.Fatal("advice flag lost after a second scan")
	}
}
